"""Kill-anywhere crash recovery: SIGKILL at any durability op, then prove
the resumed campaign converges to a store row-for-row identical to an
uninterrupted run (zero duplicates, zero losses, same snapshot membership).

Driven through ``python -m repro.engine.killtest`` in subprocesses so the
deaths are real SIGKILLs — no atexit, no flushed buffers, no cleanup —
across both the serial and process executor backends.

``REPRO_KILL_POINTS`` scales the sampled kill-point count (CI smoke runs
reduced; the default meets the ≥25-point acceptance bar).
"""

import json
import os
import random
import signal
import subprocess
import sys

import pytest

from repro.engine.killtest import SNAPSHOT
from repro.store import ResultStore

#: Total seeded SIGKILL points across both backends (serial + process).
TOTAL_POINTS = int(os.environ.get("REPRO_KILL_POINTS", "25"))
SERIAL_POINTS = max(1, (TOTAL_POINTS * 2) // 3)
PROCESS_POINTS = max(1, TOTAL_POINTS - SERIAL_POINTS)

ENV = {**os.environ, "PYTHONPATH": "src"}


def _run(directory, *flags, check=True):
    proc = subprocess.run(
        [sys.executable, "-m", "repro.engine.killtest", "--dir",
         str(directory), *flags],
        capture_output=True, text=True, env=ENV, cwd=os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))),
    )
    if check and proc.returncode != 0:
        raise AssertionError(
            f"killtest run failed ({proc.returncode}):\n{proc.stderr}"
        )
    return proc


def _row_multiset(store_dir):
    """The committed snapshot's rows as a sorted multiset + segment names."""
    store = ResultStore(store_dir)
    snapshot = store.snapshot(SNAPSHOT)
    rows = sorted(
        (r.target.value, r.responder.value, r.kind.value,
         r.icmp_type, r.icmp_code)
        for r in store.iter_rows(snapshot.segments)
    )
    return rows, set(snapshot.segments)


def _baseline(tmp_path, executor):
    """One uninterrupted run; returns (rows, segments, total-op-count)."""
    directory = tmp_path / f"baseline-{executor}"
    proc = _run(directory, "--executor", executor, "--count-ops")
    report = json.loads(proc.stdout)
    assert report["rows"] > 0
    rows, segments = _row_multiset(directory / "store")
    assert len(rows) == report["rows"]
    return rows, segments, int(report["ops"])


def _kill_and_recover(directory, executor, kill_after):
    """Kill a fresh run at op N, resume until success; bounded attempts."""
    proc = _run(directory, "--executor", executor, "--kill-after-ops",
                str(kill_after), check=False)
    statuses = [proc.returncode]
    if proc.returncode == 0:
        # The kill landed in a pool worker and in-run retry absorbed it
        # (process backend), or N exceeded this run's op count.  Either
        # way the property below still must hold.
        return statuses
    for _ in range(6):
        proc = _run(directory, "--executor", executor, "--resume",
                    check=False)
        statuses.append(proc.returncode)
        if proc.returncode == 0:
            return statuses
    raise AssertionError(
        f"campaign never recovered after kill at op {kill_after} "
        f"({executor}): exit codes {statuses}"
    )


class TestKillAnywhere:
    """The tentpole property, at real-SIGKILL strength."""

    @pytest.mark.parametrize(
        "executor,points",
        [("serial", SERIAL_POINTS), ("process", PROCESS_POINTS)],
    )
    def test_sigkill_at_seeded_ops_recovers_identical_store(
        self, tmp_path, executor, points
    ):
        want_rows, want_segments, total_ops = _baseline(tmp_path, executor)
        if executor == "process":
            # The parent's own op count is small — forked workers tick
            # their *own* counters — so sample kill points from the serial
            # op census (the full durability stream); a point beyond what
            # any one process reaches simply yields an unkilled run, and
            # the store property is asserted regardless.
            _, _, total_ops = _baseline(tmp_path, "serial")
        assert total_ops > 10  # the harness exercises real durability work
        rng = random.Random(20260807 if executor == "serial" else 1337)
        kill_points = sorted(
            rng.sample(range(1, total_ops + 1), min(points, total_ops))
        )
        assert len(kill_points) >= min(points, total_ops)
        for kill_after in kill_points:
            directory = tmp_path / f"{executor}-kill-{kill_after}"
            statuses = _kill_and_recover(directory, executor, kill_after)
            rows, segments = _row_multiset(directory / "store")
            assert rows == want_rows, (
                f"store diverged after kill at op {kill_after} "
                f"({executor}, exits {statuses}): "
                f"{len(rows)} rows vs {len(want_rows)} expected"
            )
            assert segments == want_segments

    def test_backends_agree_on_the_baseline(self, tmp_path):
        serial_rows, serial_segments, _ = _baseline(tmp_path, "serial")
        process_rows, process_segments, _ = _baseline(tmp_path, "process")
        assert process_rows == serial_rows
        assert process_segments == serial_segments


class TestSealCommitWindow:
    """The narrowest window: death between segment seal and manifest
    commit leaves sealed-but-unreferenced orphans, never partial state;
    resume absorbs them and commits exactly once."""

    def test_orphans_absorbed_never_double_committed(self, tmp_path):
        directory = tmp_path / "window"
        want_rows, want_segments, total_ops = _baseline(
            tmp_path, "serial"
        )
        # Walk backwards from the end of the op stream: the tail ops are
        # the final seals, the manifest write/fsync/rename, and the
        # directory fsync.  Kill at every one of the last eight.
        for kill_after in range(max(1, total_ops - 7), total_ops + 1):
            subdir = directory / f"op-{kill_after}"
            proc = _run(subdir, "--kill-after-ops", str(kill_after),
                        check=False)
            assert proc.returncode == -signal.SIGKILL.value or \
                proc.returncode == 137
            store_dir = subdir / "store"
            # Pre-resume: either the snapshot landed atomically or it is
            # wholly absent with orphans on disk — no third state.
            store = ResultStore(store_dir)
            if SNAPSHOT not in store.snapshots:
                committed = set(store.segments)
                assert all(
                    name not in committed for name in store.orphans()
                )
            del store
            _run(subdir, "--resume")
            rows, segments = _row_multiset(store_dir)
            assert rows == want_rows
            assert segments == want_segments
            # Exactly one committed copy; orphans for this round are gone.
            final = ResultStore(store_dir)
            assert final.orphans() == []
            assert sorted(final.segments) == sorted(want_segments)
