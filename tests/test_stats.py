"""Scan statistics and the §III-B feasibility arithmetic."""

import pytest

from repro.core.stats import (
    FeasibilityRow,
    ScanStats,
    probes_per_second,
    scan_duration_seconds,
)


class TestScanStats:
    def test_hit_rate(self):
        stats = ScanStats(sent=1000, validated=37)
        assert stats.hit_rate == pytest.approx(0.037)

    def test_zero_sent(self):
        stats = ScanStats()
        assert stats.hit_rate == 0.0
        assert stats.virtual_pps == 0.0
        assert stats.wall_pps == 0.0

    def test_virtual_pps(self):
        stats = ScanStats(sent=500, virtual_start=1.0, virtual_end=3.0)
        assert stats.virtual_pps == 250.0

    def test_summary_renders(self):
        text = ScanStats(sent=10, validated=2).summary()
        assert "sent=10" in text
        assert "20.0000%" in text


class TestFeasibility:
    def test_paper_projection_slash64_in_slash24(self):
        """§III-B: a 1 Gbps scanner covers all /64s of a /24 (2^40) in ~8
        days."""
        seconds = scan_duration_seconds(40, 1e9)
        days = seconds / 86400
        assert 6 <= days <= 13

    def test_paper_projection_slash60_in_slash28(self):
        """§III-B: all /60 sub-prefixes (2^36) in ~14 hours."""
        seconds = scan_duration_seconds(36, 1e9)
        hours = seconds / 3600
        assert 9 <= hours <= 20

    def test_paper_budget_25kpps(self):
        """§IV-E: <15 Mbps uplink sustains the paper's 25 kpps budget."""
        assert probes_per_second(15e6) >= 19_000

    def test_48_hour_sample_block(self):
        """§IV-E: a 32-bit window at ~25 kpps takes ~48 hours."""
        seconds = (1 << 32) / 25_000
        assert 40 <= seconds / 3600 <= 55

    def test_feasibility_row_humanises(self):
        row = FeasibilityRow("demo", 40, 1e9)
        assert "days" in row.human
        short = FeasibilityRow("demo", 20, 1e9)
        assert "s" in short.human
