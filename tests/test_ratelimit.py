"""Token-bucket pacing over the virtual clock."""

import pytest

from repro.core.ratelimit import TokenBucket, VirtualPacer
from repro.net.network import Network


class TestTokenBucket:
    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            TokenBucket(0)

    def test_first_send_immediate(self):
        bucket = TokenBucket(100)
        assert bucket.consume(0.0) == 0.0

    def test_sustained_rate(self):
        bucket = TokenBucket(1000)
        now = 0.0
        for _ in range(500):
            now = bucket.consume(now)
        # 500 packets at 1000 pps take ~0.5 virtual seconds.
        assert now == pytest.approx(0.5, rel=0.02)

    def test_burst_allows_initial_clump(self):
        bucket = TokenBucket(10, burst=5)
        times = [bucket.consume(0.0) for _ in range(5)]
        assert times == [0.0] * 5
        assert bucket.consume(0.0) > 0.0

    def test_idle_refills_up_to_burst(self):
        bucket = TokenBucket(10, burst=2)
        bucket.consume(0.0)
        bucket.consume(0.0)
        # After a long idle period only `burst` tokens are available.
        assert bucket.consume(100.0) == 100.0
        assert bucket.consume(100.0) == 100.0
        assert bucket.consume(100.0) > 100.0


class TestVirtualPacer:
    def test_advances_network_clock(self):
        network = Network()
        pacer = VirtualPacer(network, rate_pps=100)
        for _ in range(200):
            pacer.pace()
        assert network.clock == pytest.approx(199 / 100, rel=0.05)

    def test_clock_never_goes_backwards(self):
        network = Network()
        pacer = VirtualPacer(network, rate_pps=10)
        previous = network.clock
        for _ in range(50):
            pacer.pace()
            assert network.clock >= previous
            previous = network.clock
