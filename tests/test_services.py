"""Application services: codecs, handlers, and the zgrab prober parsers."""

import pytest
from hypothesis import given, strategies as st

from repro.services.banner import FtpServer, SshServer, TelnetServer
from repro.services.base import Software
from repro.services.dns import (
    DnsError,
    DnsForwarder,
    DnsMessage,
    DnsQuestion,
    DnsRecord,
    QTYPE_A,
    QTYPE_AAAA,
    QTYPE_TXT,
    QCLASS_CHAOS,
    decode_name,
    encode_name,
    make_query,
    version_bind_query,
)
from repro.services.http import HttpServer, TlsServer, make_client_hello, make_get_request
from repro.services.ntp import MODE_SERVER, NtpServer, make_client_query, parse_header
from repro.services.zgrab import _parse_software

DNSMASQ = Software("dnsmasq", "2.45")


class TestDnsCodec:
    def test_name_roundtrip(self):
        wire = encode_name("www.example.com")
        name, offset = decode_name(wire, 0)
        assert name == "www.example.com"
        assert offset == len(wire)

    def test_root_name(self):
        assert encode_name(".") == b"\x00"
        assert decode_name(b"\x00", 0) == ("", 1)

    def test_rejects_oversize_label(self):
        with pytest.raises(DnsError):
            encode_name("a" * 64 + ".com")

    def test_rejects_truncated_name(self):
        with pytest.raises(DnsError):
            decode_name(b"\x05ab", 0)

    @given(st.lists(
        st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1,
                max_size=20),
        min_size=1, max_size=5,
    ))
    def test_message_roundtrip(self, labels):
        name = ".".join(labels)
        message = DnsMessage(
            ident=0x1234, flags=0x8180,
            questions=[DnsQuestion(name, QTYPE_A)],
            answers=[DnsRecord(name, QTYPE_A, 1, 300, b"\x01\x02\x03\x04")],
        )
        back = DnsMessage.decode(message.encode())
        assert back.ident == 0x1234
        assert back.questions[0].name == name
        assert back.answers[0].rdata == b"\x01\x02\x03\x04"

    def test_decode_rejects_short(self):
        with pytest.raises(DnsError):
            DnsMessage.decode(b"\x00" * 5)


class TestDnsForwarder:
    def test_answers_a_query_open_resolver(self):
        service = DnsForwarder(DNSMASQ)
        reply = DnsMessage.decode(service.handle(make_query(7, "example.com", QTYPE_A)))
        assert reply.is_response
        assert reply.ident == 7
        assert reply.answers and reply.answers[0].rtype == QTYPE_A

    def test_answers_aaaa(self):
        service = DnsForwarder(DNSMASQ)
        reply = DnsMessage.decode(
            service.handle(make_query(8, "example.com", QTYPE_AAAA))
        )
        assert len(reply.answers[0].rdata) == 16

    def test_version_bind(self):
        service = DnsForwarder(DNSMASQ)
        reply = DnsMessage.decode(service.handle(version_bind_query(9)))
        rdata = reply.answers[0].rdata
        assert rdata[1 : 1 + rdata[0]] == b"dnsmasq 2.45"
        assert reply.answers[0].rclass == QCLASS_CHAOS

    def test_ignores_responses(self):
        service = DnsForwarder(DNSMASQ)
        response = DnsMessage(1, flags=0x8180,
                              questions=[DnsQuestion("x", QTYPE_A)]).encode()
        assert service.handle(response) is None

    def test_ignores_garbage(self):
        assert DnsForwarder(DNSMASQ).handle(b"\x01\x02") is None

    def test_unsupported_qtype_refused_not_silent(self):
        service = DnsForwarder(DNSMASQ)
        reply = DnsMessage.decode(service.handle(make_query(5, "x", QTYPE_TXT)))
        assert reply.rcode != 0

    def test_udp_only(self):
        service = DnsForwarder(DNSMASQ)
        assert service.handle_tcp(make_query(5, "x", QTYPE_A)) is None
        assert service.handle_udp(make_query(5, "x", QTYPE_A)) is not None


class TestNtp:
    def test_client_query_shape(self):
        query = make_client_query()
        leap, version, mode = parse_header(query)
        assert (version, mode) == (4, 3)

    def test_server_reply(self):
        service = NtpServer(Software("NTP", "4"))
        reply = service.handle(make_client_query())
        assert len(reply) == 48
        _leap, version, mode = parse_header(reply)
        assert mode == MODE_SERVER
        assert version == 4

    def test_ignores_non_client(self):
        service = NtpServer(Software("NTP", "4"))
        reply = service.handle(service.handle(make_client_query()))
        assert reply is None

    def test_short_packet(self):
        assert NtpServer(Software("NTP", "4")).handle(b"\x00" * 4) is None


class TestBannerServices:
    def test_ftp_greeting(self):
        service = FtpServer(Software("GNU Inetutils", "1.4.1"))
        reply = service.handle(b"\r\n").decode()
        assert reply.startswith("220 GNU Inetutils 1.4.1")

    def test_ftp_user_flow(self):
        service = FtpServer(Software("vsftpd", "3.0.3"))
        assert service.handle(b"USER admin\r\n").startswith(b"331")
        assert service.handle(b"QUIT\r\n").startswith(b"221")

    def test_ssh_identification(self):
        service = SshServer(Software("dropbear", "0.46"))
        reply = service.handle(b"SSH-2.0-scanner\r\n").decode()
        assert reply.splitlines()[0] == "SSH-2.0-dropbear_0.46"

    def test_ssh_hostkey(self):
        service = SshServer(Software("openssh", "3.5"),
                            host_key_fingerprint="aa:bb")
        assert "hostkey:aa:bb" in service.handle(b"x").decode()

    def test_telnet_negotiation_and_banner(self):
        service = TelnetServer(Software("telnetd", ""), vendor_banner="ZTE")
        reply = service.handle(b"\r\n")
        assert reply[0] == 255  # IAC
        assert b"ZTE" in reply
        assert reply.endswith(b"login: ")


class TestHttp:
    def test_login_page(self):
        service = HttpServer(
            Software("micro_httpd", "1.0"), vendor="ZTE", model="F660"
        )
        reply = service.handle(make_get_request()).decode()
        assert reply.startswith("HTTP/1.1 200 OK")
        assert "Server: micro_httpd 1.0" in reply
        assert "ZTE F660 Router Login" in reply
        assert "password" in reply

    def test_head_omits_body(self):
        service = HttpServer(Software("Jetty", "6.1.26"))
        reply = service.handle(b"HEAD / HTTP/1.1\r\n\r\n").decode()
        assert "<html>" not in reply

    def test_bad_request(self):
        service = HttpServer(Software("Jetty", "6.1.26"))
        assert b"400" in service.handle(b"NONSENSE")

    def test_auth_gated_page(self):
        service = HttpServer(
            Software("micro_httpd", "1.0"), vendor="ZTE", model="F660",
            requires_auth=True,
        )
        reply = service.handle(make_get_request()).decode()
        assert reply.startswith("HTTP/1.1 401")
        assert "Server: micro_httpd 1.0" in reply
        assert "Router Login" not in reply

    def test_anonymous_vendor_page(self):
        service = HttpServer(Software("Jetty", "6.1.26"), vendor="", model="GW")
        reply = service.handle(make_get_request()).decode()
        assert "GW Router Login" in reply

    def test_tls_certificate_summary(self):
        service = TlsServer(
            Software("GoAhead Embedded", "2.5.0"), vendor="AVM GmbH",
            model="FRITZ!Box 7590",
        )
        reply = service.handle(make_client_hello())
        assert reply[0] == 0x16
        text = reply[3:].decode()
        assert "cert-cn=AVM GmbH FRITZ!Box 7590" in text
        assert "cipher=" in text

    def test_tls_rejects_non_hello(self):
        service = TlsServer(Software("x", "1"))
        assert service.handle(b"GET / HTTP/1.1") is None


class TestSoftwareParsing:
    @pytest.mark.parametrize("banner,name,version", [
        ("dnsmasq 2.45", "dnsmasq", "2.45"),
        ("GNU Inetutils 1.4.1", "GNU Inetutils", "1.4.1"),
        ("dropbear 0.46", "dropbear", "0.46"),
        ("MiniWeb HTTP Server 0.8.19", "MiniWeb HTTP Server", "0.8.19"),
        ("Fritz!Box 7.2.1", "Fritz!Box", "7.2.1"),
        ("Jetty 6.1.26", "Jetty", "6.1.26"),
    ])
    def test_parses(self, banner, name, version):
        software = _parse_software(banner)
        assert software == Software(name, version)

    def test_unparseable(self):
        assert _parse_software("no version here") is None
        assert _parse_software("") is None
