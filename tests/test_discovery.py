"""Discovery pipeline: census vs ground truth, subnet inference, vendor ID."""

import pytest

from repro.discovery.periphery import discover
from repro.discovery.subnet import infer_subprefix_length
from repro.discovery.vendor_id import VendorIdentifier
from repro.services.zgrab import AppScanner


class TestPeripheryCensus:
    def test_finds_every_device(self, cn_mobile_deployment):
        dep = cn_mobile_deployment
        isp = dep.isps["cn-mobile-broadband"]
        census = discover(dep.network, dep.vantage, isp.scan_spec, seed=3)
        truth_addrs = {t.last_hop.value for t in isp.truths}
        found = {r.last_hop.value for r in census.records}
        assert found == truth_addrs

    def test_same_diff_classification_matches_truth(self, jio_deployment):
        dep = jio_deployment
        isp = dep.isps["in-jio-broadband"]
        census = discover(dep.network, dep.vantage, isp.scan_spec, seed=3)
        truth = isp.truth_by_last_hop()
        for record in census.records:
            archetype = truth[record.last_hop.value].archetype
            assert record.same_slash64 == (archetype == "same")

    def test_iid_classes_match_truth(self, cn_mobile_deployment):
        dep = cn_mobile_deployment
        isp = dep.isps["cn-mobile-broadband"]
        census = discover(dep.network, dep.vantage, isp.scan_spec, seed=3)
        truth = isp.truth_by_last_hop()
        for record in census.records:
            assert record.iid_class is truth[record.last_hop.value].iid_class

    def test_loop_devices_surface_as_time_exceeded(self, cn_mobile_deployment):
        from repro.core.probes.base import ReplyKind

        dep = cn_mobile_deployment
        isp = dep.isps["cn-mobile-broadband"]
        census = discover(dep.network, dep.vantage, isp.scan_spec, seed=3)
        truth = isp.truth_by_last_hop()
        te = [r for r in census.records if r.reply_kind is ReplyKind.TIME_EXCEEDED]
        assert te, "expected looping devices among the discoveries"
        # The overwhelming majority of Time Exceeded responders are truly
        # loop-vulnerable (a correct device can also reply Time Exceeded only
        # if probed at exactly its subnet during a transient; none here).
        assert all(truth[r.last_hop.value].loop_vulnerable for r in te)

    def test_census_statistics(self, cn_mobile_deployment):
        dep = cn_mobile_deployment
        isp = dep.isps["cn-mobile-broadband"]
        census = discover(dep.network, dep.vantage, isp.scan_spec, seed=3)
        profile = isp.profile
        assert census.eui64_pct == pytest.approx(profile.eui64_frac * 100, abs=3)
        assert census.unique64_pct > 95
        assert census.mac_unique_pct == pytest.approx(
            profile.mac_unique_frac * 100, abs=4
        )

    def test_merged_census_dedups(self, jio_deployment):
        dep = jio_deployment
        isp = dep.isps["in-jio-broadband"]
        a = discover(dep.network, dep.vantage, isp.scan_spec, seed=3)
        merged = a.merged_with(a)
        assert merged.n_unique == a.n_unique


class TestSubnetInference:
    def test_infers_64(self, jio_deployment):
        dep = jio_deployment
        isp = dep.isps["in-jio-broadband"]
        result = infer_subprefix_length(
            dep.network, dep.vantage, isp.scan_base, seed=11
        )
        assert result.boundary_length == 64
        assert result.confident

    def test_infers_60(self, cn_mobile_deployment):
        dep = cn_mobile_deployment
        isp = dep.isps["cn-mobile-broadband"]
        result = infer_subprefix_length(
            dep.network, dep.vantage, isp.scan_base, seed=11
        )
        assert result.boundary_length == 60

    def test_uses_few_probes(self, cn_mobile_deployment):
        dep = cn_mobile_deployment
        isp = dep.isps["cn-mobile-broadband"]
        result = infer_subprefix_length(
            dep.network, dep.vantage, isp.scan_base, seed=11
        )
        # The whole point of §IV-A: orders of magnitude below exhaustion.
        assert result.probes_sent < 300

    def test_rejects_overlong_base(self, jio_deployment):
        dep = jio_deployment
        base = dep.isps["in-jio-broadband"].scan_base
        with pytest.raises(ValueError):
            infer_subprefix_length(
                dep.network, dep.vantage, base, longest=base.length - 1
            )


class TestVendorIdentification:
    @pytest.fixture(scope="class")
    def identified(self, cn_mobile_deployment):
        dep = cn_mobile_deployment
        isp = dep.isps["cn-mobile-broadband"]
        census = discover(dep.network, dep.vantage, isp.scan_spec, seed=3)
        app = AppScanner(dep.network, dep.vantage).scan(
            census.last_hop_addresses()
        )
        vid = VendorIdentifier(dep.catalog)
        return isp, census, vid.identify(census.records, app.observations)

    def test_mac_identifications_are_correct(self, identified):
        isp, census, devices = identified
        truth = isp.truth_by_last_hop()
        for device in devices:
            assert device.vendor == truth[device.last_hop.value].vendor

    def test_unregistered_vendors_stay_unidentified(self, identified):
        isp, census, devices = identified
        identified_addrs = {d.last_hop.value for d in devices}
        for truth in isp.truths:
            if truth.vendor in ("Generic OEM", "Generic UE"):
                assert truth.last_hop.value not in identified_addrs

    def test_banner_channel_contributes(self, identified):
        _isp, _census, devices = identified
        methods = {d.method for d in devices}
        assert methods == {"mac", "banner"}

    def test_kind_attribution(self, identified):
        isp, _census, devices = identified
        truth = isp.truth_by_last_hop()
        for device in devices:
            assert device.kind == truth[device.last_hop.value].kind

    def test_vendor_counts_helper(self, identified):
        _isp, _census, devices = identified
        counts = VendorIdentifier.vendor_counts(devices)
        assert sum(counts["CPE"].values()) + sum(counts["UE"].values()) == len(
            devices
        )
