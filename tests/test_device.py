"""Device models: the RFC 4443 behaviours the discovery technique rests on."""

import pytest

from repro.net.addr import IPv6Addr, IPv6Prefix
from repro.net.device import (
    CpeRouter,
    ErrorRateLimiter,
    Host,
    IspRouter,
    Router,
    UeDevice,
)
from repro.net.network import Network
from repro.net.packet import (
    Icmpv6Message,
    Icmpv6Type,
    Packet,
    TcpFlags,
    TcpSegment,
    TimeExceededCode,
    UdpDatagram,
    UnreachableCode,
    echo_request,
)
from repro.services.base import Software
from repro.services.dns import DnsForwarder, make_query, QTYPE_A


def _addr(text):
    return IPv6Addr.from_string(text)


def _prefix(text):
    return IPv6Prefix.from_string(text)


@pytest.fixture
def net():
    return Network(seed=1)


@pytest.fixture
def host(net):
    h = Host("h", _addr("2001:db8::10"))
    net.register(h)
    return h


OUTSIDE = _addr("2001:4860::99")


class TestLocalDelivery:
    def test_echo_reply(self, net, host):
        probe = echo_request(OUTSIDE, host.primary_address, 5, 6, b"p")
        result = host.receive(probe, net)
        assert len(result.replies) == 1
        reply = result.replies[0]
        assert reply.src == host.primary_address
        assert reply.dst == OUTSIDE
        assert isinstance(reply.payload, Icmpv6Message)
        assert reply.payload.type == Icmpv6Type.ECHO_REPLY
        assert reply.payload.ident == 5
        assert reply.payload.payload == b"p"

    def test_echo_reply_from_secondary_address(self, net, host):
        secondary = _addr("2001:db8::11")
        net.bind(secondary, host)
        probe = echo_request(OUTSIDE, secondary, 1, 1)
        result = host.receive(probe, net)
        assert result.replies[0].src == secondary

    def test_udp_closed_port_unreachable(self, net, host):
        packet = Packet(src=OUTSIDE, dst=host.primary_address,
                        payload=UdpDatagram(4000, 53, b"x"))
        result = host.receive(packet, net)
        assert len(result.replies) == 1
        msg = result.replies[0].payload
        assert msg.type == Icmpv6Type.DEST_UNREACHABLE
        assert msg.code == UnreachableCode.PORT_UNREACHABLE

    def test_udp_open_port_served(self, net, host):
        host.bind_service(DnsForwarder(Software("dnsmasq", "2.45")))
        query = make_query(9, "example.com", QTYPE_A)
        packet = Packet(src=OUTSIDE, dst=host.primary_address,
                        payload=UdpDatagram(4000, 53, query))
        result = host.receive(packet, net)
        assert len(result.replies) == 1
        reply = result.replies[0].payload
        assert isinstance(reply, UdpDatagram)
        assert reply.sport == 53
        assert reply.dport == 4000

    def test_tcp_closed_port_rst(self, net, host):
        packet = Packet(src=OUTSIDE, dst=host.primary_address,
                        payload=TcpSegment(4000, 80, seq=7, flags=int(TcpFlags.SYN)))
        result = host.receive(packet, net)
        segment = result.replies[0].payload
        assert segment.has_flag(TcpFlags.RST)
        assert segment.ack == 8

    def test_tcp_open_port_synack(self, net, host):
        from repro.services.http import HttpServer

        host.bind_service(HttpServer(Software("Jetty", "6.1.26")))
        packet = Packet(src=OUTSIDE, dst=host.primary_address,
                        payload=TcpSegment(4000, 80, seq=7, flags=int(TcpFlags.SYN)))
        result = host.receive(packet, net)
        segment = result.replies[0].payload
        assert segment.has_flag(TcpFlags.SYN)
        assert segment.has_flag(TcpFlags.ACK)
        assert segment.ack == 8

    def test_host_drops_transit(self, net, host):
        packet = echo_request(OUTSIDE, _addr("2001:db8::999"), 1, 1)
        result = host.receive(packet, net)
        assert not result.replies
        assert result.forward is None


class TestForwarding:
    def _router(self, net):
        router = Router("r", _addr("2001:db8::1"))
        net.register(router)
        return router

    def test_no_route_unreachable(self, net):
        router = self._router(net)
        packet = echo_request(OUTSIDE, _addr("2400::1"), 1, 1)
        result = router.receive(packet, net)
        msg = result.replies[0].payload
        assert msg.type == Icmpv6Type.DEST_UNREACHABLE
        assert msg.code == UnreachableCode.NO_ROUTE
        assert result.replies[0].src == router.primary_address

    def test_unreachable_route(self, net):
        router = self._router(net)
        router.table.add_unreachable(_prefix("2400::/16"))
        result = router.receive(echo_request(OUTSIDE, _addr("2400::1"), 1, 1), net)
        assert result.replies[0].payload.code == UnreachableCode.NO_ROUTE

    def test_blackhole_is_silent(self, net):
        router = self._router(net)
        router.table.add_blackhole(_prefix("2400::/16"))
        result = router.receive(echo_request(OUTSIDE, _addr("2400::1"), 1, 1), net)
        assert not result.replies
        assert result.forward is None

    def test_next_hop_decrements(self, net):
        router = self._router(net)
        router.table.add_next_hop(_prefix("2400::/16"), _addr("2001:db8::2"))
        packet = echo_request(OUTSIDE, _addr("2400::1"), 1, 1, hop_limit=9)
        result = router.receive(packet, net)
        next_addr, forwarded = result.forward
        assert next_addr == _addr("2001:db8::2")
        assert forwarded.hop_limit == 8

    def test_hop_limit_exhaustion(self, net):
        router = self._router(net)
        router.table.add_next_hop(_prefix("2400::/16"), _addr("2001:db8::2"))
        packet = echo_request(OUTSIDE, _addr("2400::1"), 1, 1, hop_limit=1)
        result = router.receive(packet, net)
        msg = result.replies[0].payload
        assert msg.type == Icmpv6Type.TIME_EXCEEDED
        assert msg.code == TimeExceededCode.HOP_LIMIT

    def test_connected_delivers_to_neighbour(self, net):
        router = self._router(net)
        neighbour = Host("n", _addr("2001:db8:0:1::5"))
        net.register(neighbour)
        router.table.add_connected(_prefix("2001:db8:0:1::/64"))
        packet = echo_request(OUTSIDE, neighbour.primary_address, 1, 1)
        result = router.receive(packet, net)
        assert result.forward[0] == neighbour.primary_address

    def test_connected_neighbour_miss_unreachable(self, net):
        """THE paper mechanism: nonexistent on-link address -> ICMPv6 error."""
        router = self._router(net)
        router.table.add_connected(_prefix("2001:db8:0:1::/64"))
        packet = echo_request(OUTSIDE, _addr("2001:db8:0:1::dead"), 1, 1)
        result = router.receive(packet, net)
        msg = result.replies[0].payload
        assert msg.type == Icmpv6Type.DEST_UNREACHABLE
        assert msg.code == UnreachableCode.ADDR_UNREACHABLE
        assert result.replies[0].src == router.primary_address

    def test_no_error_for_error(self, net):
        """RFC 4443 §2.4(e): never generate an error about an error."""
        from repro.net.packet import icmpv6_error

        router = self._router(net)
        probe = echo_request(OUTSIDE, _addr("2400::1"), 1, 1)
        error = icmpv6_error(
            _addr("2400::2"), _addr("2400::3"),
            Icmpv6Type.TIME_EXCEEDED, 0, probe,
        )
        result = router.receive(error, net)
        assert not result.replies

    def test_error_rate_limit(self, net):
        router = Router(
            "rl", _addr("2001:db8::1"),
            error_rate_limit=ErrorRateLimiter(rate_per_second=1, burst=2),
        )
        net.register(router)
        packet = echo_request(OUTSIDE, _addr("2400::1"), 1, 1)
        allowed = sum(
            1 for _ in range(10) if router.receive(packet, net).replies
        )
        assert allowed == 2
        assert router.errors_suppressed == 8
        net.advance(5.0)  # tokens refill with virtual time
        assert router.receive(packet, net).replies


class TestErrorRateLimiter:
    def test_burst_then_throttle(self):
        limiter = ErrorRateLimiter(rate_per_second=10, burst=3)
        assert [limiter.allow(0.0) for _ in range(4)] == [True, True, True, False]

    def test_refill(self):
        limiter = ErrorRateLimiter(rate_per_second=10, burst=1)
        assert limiter.allow(0.0)
        assert not limiter.allow(0.0)
        assert limiter.allow(0.2)


class TestCpeRouter:
    WAN = _prefix("2001:db8:0:1::/64")
    LAN = _prefix("2001:db8:1:10::/60")
    SUBNET = _prefix("2001:db8:1:10::/64")
    ISP = _addr("2001:db8::1")

    def _cpe(self, net, **kwargs):
        cpe = CpeRouter(
            "cpe", self.WAN.address(1), self.WAN, self.LAN,
            subnet_prefix=self.SUBNET, isp_address=self.ISP, **kwargs,
        )
        net.register(cpe)
        return cpe

    def test_correct_firmware_installs_discard_route(self, net):
        cpe = self._cpe(net)
        route = cpe.table.lookup(self.LAN.subprefix(5, 64).address(1))
        from repro.net.routing import RouteKind

        assert route.kind is RouteKind.UNREACHABLE

    def test_vulnerable_lan_bounces_upstream(self, net):
        cpe = self._cpe(net, vulnerable_lan=True)
        route = cpe.table.lookup(self.LAN.subprefix(5, 64).address(1))
        from repro.net.routing import RouteKind

        assert route.kind is RouteKind.NEXT_HOP
        assert route.next_hop == self.ISP

    def test_correct_wan_covers_whole_prefix(self, net):
        cpe = self._cpe(net)
        packet = echo_request(OUTSIDE, self.WAN.address(0xDEAD), 1, 1)
        result = cpe.receive(packet, net)
        assert result.replies[0].payload.code == UnreachableCode.ADDR_UNREACHABLE
        assert result.replies[0].src == cpe.wan_address

    def test_vulnerable_wan_bounces_upstream(self, net):
        cpe = self._cpe(net, vulnerable_wan=True)
        packet = echo_request(OUTSIDE, self.WAN.address(0xDEAD), 1, 1, hop_limit=30)
        result = cpe.receive(packet, net)
        assert result.forward is not None
        assert result.forward[0] == self.ISP

    def test_wan_address_requires_containment(self, net):
        with pytest.raises(ValueError):
            CpeRouter("bad", _addr("2400::1"), self.WAN, self.LAN)

    def test_loop_forward_limit(self, net):
        cpe = self._cpe(net, vulnerable_lan=True, loop_forward_limit=3)
        packet = echo_request(
            OUTSIDE, self.LAN.subprefix(5, 64).address(1), 1, 1, hop_limit=200
        )
        forwards = 0
        for _ in range(10):
            result = cpe.receive(packet, net)
            if result.forward is None:
                break
            forwards += 1
        assert forwards == 3


class TestUeDevice:
    def test_ue_answers_for_its_prefix(self, net):
        prefix = _prefix("2001:db8:ab::/64")
        ue = UeDevice("ue", prefix.address(0x42), prefix)
        net.register(ue)
        packet = echo_request(OUTSIDE, prefix.address(0x9999), 1, 1)
        result = ue.receive(packet, net)
        msg = result.replies[0].payload
        assert msg.type == Icmpv6Type.DEST_UNREACHABLE
        assert result.replies[0].src == ue.ue_address

    def test_ue_address_must_be_inside_prefix(self):
        with pytest.raises(ValueError):
            UeDevice("ue", _addr("2400::1"), _prefix("2001:db8:ab::/64"))


class TestIspRouter:
    def test_blackhole_default(self, net):
        block = _prefix("2001:db8::/32")
        isp = IspRouter("isp", block.address(1), block)
        net.register(isp)
        result = isp.receive(echo_request(OUTSIDE, block.address(0xFFF), 1, 1), net)
        assert not result.replies

    def test_unreachable_behaviour(self, net):
        block = _prefix("2001:db8::/32")
        isp = IspRouter("isp", block.address(1), block,
                        unassigned_behavior="unreachable")
        net.register(isp)
        result = isp.receive(echo_request(OUTSIDE, block.address(0xFFF), 1, 1), net)
        assert result.replies[0].payload.type == Icmpv6Type.DEST_UNREACHABLE

    def test_rejects_unknown_behaviour(self, net):
        block = _prefix("2001:db8::/32")
        with pytest.raises(ValueError):
            IspRouter("isp", block.address(1), block, unassigned_behavior="x")

    def test_drop_external_errors(self, net):
        block = _prefix("2001:db8::/32")
        isp = IspRouter("isp", block.address(1), block,
                        unassigned_behavior="unreachable",
                        drop_external_errors=True)
        net.register(isp)
        external = echo_request(OUTSIDE, block.address(0xFFF), 1, 1)
        assert not isp.receive(external, net).replies
        internal = echo_request(block.address(0xAAAA), block.address(0xFFF), 1, 1)
        assert isp.receive(internal, net).replies

    def test_delegate(self, net):
        block = _prefix("2001:db8::/32")
        isp = IspRouter("isp", block.address(1), block)
        net.register(isp)
        customer = _prefix("2001:db8:0:10::/60")
        via = _addr("2001:db8:ffff::2")
        isp.delegate(customer, via)
        route = isp.table.lookup(customer.address(5))
        assert route.next_hop == via
