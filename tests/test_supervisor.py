"""Campaign supervision: breakers, retry budgets, SIGTERM drain.

The supervisor is opt-in (``SupervisorPolicy(enabled=True)``); everything
here also pins the contract that a disabled policy leaves the campaign
bit-identical to the stock fail-fast loop.
"""

import os
import signal

import pytest

from repro.core.scanner import ScanConfig
from repro.core.target import ScanRange
from repro.engine import (
    Campaign,
    CampaignError,
    SerialExecutor,
    Supervisor,
    SupervisorPolicy,
    failure_signature,
)
from repro.engine.supervisor import (
    BREAKER_OPEN,
    BUDGET_EXHAUSTED,
    DRAINED,
    RETRIES_EXHAUSTED,
)
from repro.net.spec import TopologySpec

SPEC = "2001:db8:1::/56-64"


def _config():
    return ScanConfig(scan_range=ScanRange.parse(SPEC), seed=5)


def _campaign(shards=2, supervisor=None, hook=None, max_retries=2,
              **kwargs):
    executor = SerialExecutor(fault_hook=hook) if hook else "serial"
    return Campaign(
        TopologySpec.mini(),
        {"sup": _config()},
        shards=shards,
        executor=executor,
        backoff_base=0.0,
        max_retries=max_retries,
        supervisor=supervisor,
        **kwargs,
    )


class TestSignatures:
    def test_oserror_refined_by_errno(self):
        import errno as errno_mod

        assert failure_signature(
            OSError(errno_mod.EIO, "boom")
        ) == "OSError:EIO"
        assert failure_signature(
            OSError(errno_mod.ENOSPC, "full")
        ) == "OSError:ENOSPC"

    def test_plain_exceptions_by_type(self):
        assert failure_signature(ValueError("x")) == "ValueError"
        assert failure_signature(KeyError("x")) == "KeyError"


class TestSupervisorUnit:
    def test_same_signature_retries_until_exhausted(self):
        sup = Supervisor(SupervisorPolicy(enabled=True))
        exc = OSError(5, "io")
        assert sup.note_failure("j", exc, attempt=1, max_retries=2) == "retry"
        assert sup.note_failure("j", exc, attempt=2, max_retries=2) == "retry"
        assert sup.note_failure("j", exc, attempt=3, max_retries=2) == "park"
        assert sup.parked[0].reason == RETRIES_EXHAUSTED
        assert sup.parked[0].signatures == ["OSError:EIO"]

    def test_distinct_signatures_open_the_breaker_early(self):
        sup = Supervisor(SupervisorPolicy(enabled=True, breaker_distinct=3))
        assert sup.note_failure("j", ValueError(), 1, 99) == "retry"
        assert sup.note_failure("j", KeyError(), 2, 99) == "retry"
        assert sup.note_failure("j", RuntimeError(), 3, 99) == "park"
        assert sup.parked[0].reason == BREAKER_OPEN
        assert len(sup.parked[0].signatures) == 3

    def test_global_budget_parks_across_shards(self):
        sup = Supervisor(SupervisorPolicy(enabled=True, retry_budget=2))
        assert sup.note_failure("a", ValueError(), 1, 99) == "retry"
        assert sup.note_failure("b", ValueError(), 1, 99) == "retry"
        assert sup.note_failure("c", ValueError(), 1, 99) == "park"
        assert sup.parked[0].reason == BUDGET_EXHAUSTED

    def test_drain_flag_and_scope(self):
        sup = Supervisor(SupervisorPolicy(enabled=True))
        assert not sup.draining
        with sup.drain_scope():
            os.kill(os.getpid(), signal.SIGTERM)
            # The handler ran synchronously in this (main) thread.
            assert sup.draining
        # Scope exited: the previous handler is back.
        assert signal.getsignal(signal.SIGTERM) == signal.SIG_DFL


class _FlakyHook:
    """Fails selected shards with a scripted exception sequence."""

    def __init__(self, victim, sequence):
        self.victim = victim
        self.sequence = list(sequence)
        self.calls = {}

    def __call__(self, job):
        if self.victim not in job.job_id:
            return
        attempt = self.calls.get(job.job_id, 0)
        self.calls[job.job_id] = attempt + 1
        if attempt < len(self.sequence):
            raise self.sequence[attempt]


class TestCampaignSupervision:
    def test_disabled_policy_is_the_stock_path(self):
        hook = _FlakyHook("s00of02", [ValueError("always")] * 99)
        campaign = _campaign(hook=hook, supervisor=SupervisorPolicy())
        with pytest.raises(CampaignError):
            campaign.run()

    def test_flaky_shard_recovers_within_retries(self):
        baseline = _campaign().run()
        hook = _FlakyHook("s00of02", [ValueError("once")])
        policy = SupervisorPolicy(enabled=True)
        result = _campaign(hook=hook, supervisor=policy).run()
        assert result.degraded == []
        assert not result.drained
        assert len(result.outcomes) == 2
        assert result.stats.validated == baseline.stats.validated

    def test_breaker_parks_a_shard_failing_distinct_ways(self):
        hook = _FlakyHook(
            "s00of02",
            [ValueError("a"), KeyError("b"), RuntimeError("c"),
             ValueError("d")],
        )
        policy = SupervisorPolicy(enabled=True, breaker_distinct=3)
        result = _campaign(hook=hook, supervisor=policy,
                           max_retries=99).run()
        assert len(result.degraded) == 1
        parked = result.degraded[0]
        assert parked["reason"] == BREAKER_OPEN
        assert parked["signatures"] == ["ValueError", "KeyError",
                                        "RuntimeError"]
        assert len(result.outcomes) == 1
        assert result.metadata()["degraded"] == 1

    def test_budget_exhaustion_emits_and_parks(self):
        hook = _FlakyHook("s00of02", [ValueError("x")] * 99)
        policy = SupervisorPolicy(enabled=True, retry_budget=0)
        result = _campaign(hook=hook, supervisor=policy).run()
        assert result.degraded[0]["reason"] == BUDGET_EXHAUSTED
        assert result.events.of_type("retry_budget_exhausted")

    def test_sigterm_drains_gracefully(self):
        drained_campaign = {}

        def hook(job):
            # The second shard's hook fires after the first completed:
            # SIGTERM lands, the drain flag flips, this shard still runs
            # to completion, and the third never dispatches.
            if "s01of03" in job.job_id:
                os.kill(os.getpid(), signal.SIGTERM)

        policy = SupervisorPolicy(enabled=True)
        campaign = _campaign(shards=3, hook=hook, supervisor=policy)
        result = campaign.run()
        assert result.drained
        assert len(result.outcomes) == 2
        assert [d["reason"] for d in result.degraded] == [DRAINED]
        assert result.events.of_type("campaign_drain_requested")
        assert result.events.of_type("campaign_drained")
        assert result.metadata()["drained"] is True

    def test_supervised_clean_run_matches_stock_results(self):
        stock = _campaign().run()
        policy = SupervisorPolicy(enabled=True, retry_budget=5)
        supervised = _campaign(supervisor=policy).run()
        stock_rows = {
            (r.target.value, r.responder.value, r.kind)
            for r in stock.results["sup"].results
        }
        supervised_rows = {
            (r.target.value, r.responder.value, r.kind)
            for r in supervised.results["sup"].results
        }
        assert supervised_rows == stock_rows
        assert supervised.stats.sent == stock.stats.sent
        assert supervised.degraded == [] and not supervised.drained


class TestCliSupervision:
    """`repro-xmap scan --supervise/--retry-budget/--drain-timeout/
    --host-faults`: supervised partial results exit 0 with the parked
    shards named on stderr."""

    def _host_schedule(self, tmp_path, path_filter="shard-"):
        import json

        schedule = tmp_path / "host-faults.json"
        schedule.write_text(json.dumps({
            "seed": 3,
            "events": [{"kind": "fs-error", "op": "fsync", "err": "EIO",
                        "path": path_filter, "start": 0.0, "end": 999.0}],
        }))
        return str(schedule)

    def test_flag_validation(self, capsys):
        from repro.cli import main

        assert main(["scan", "--retry-budget", "-1"]) == 2
        assert "--retry-budget" in capsys.readouterr().err
        assert main(["scan", "--drain-timeout", "0"]) == 2
        assert "--drain-timeout" in capsys.readouterr().err
        assert main(["scan", "--host-faults", "/nonexistent.json"]) == 2
        assert "--host-faults" in capsys.readouterr().err

    def test_host_faults_park_shards_but_exit_zero(self, tmp_path, capsys):
        from repro.cli import main

        assert main([
            "scan", "--range", SPEC, "--shards", "2",
            "--checkpoint-dir", str(tmp_path / "ckpt"),
            "--host-faults", self._host_schedule(tmp_path),
            "--supervise",
        ]) == 0
        err = capsys.readouterr().err
        assert "fault schedule armed: 1 event(s) (1 host, 0 network)" in err
        assert "shard degraded" in err
        assert "OSError:EIO" in err

    def test_unsupervised_host_faults_fail_the_campaign(self, tmp_path,
                                                        capsys):
        from repro.cli import main

        assert main([
            "scan", "--range", SPEC, "--shards", "2",
            "--checkpoint-dir", str(tmp_path / "ckpt"),
            "--host-faults", self._host_schedule(tmp_path),
        ]) == 1
        assert "campaign failed" in capsys.readouterr().err

    def test_retry_budget_implies_supervision(self, tmp_path, capsys):
        from repro.cli import main

        assert main([
            "scan", "--range", SPEC, "--shards", "2",
            "--checkpoint-dir", str(tmp_path / "ckpt"),
            "--host-faults", self._host_schedule(tmp_path),
            "--retry-budget", "0",
        ]) == 0
        err = capsys.readouterr().err
        assert "retry-budget-exhausted" in err

    def test_overlapping_domains_merge_cleanly(self, tmp_path, capsys):
        import json

        from repro.cli import main

        network = tmp_path / "net-faults.json"
        network.write_text(json.dumps({
            "seed": 3,
            "events": [{"kind": "loss-burst", "rate": 0.5,
                        "start": 0.0, "end": 0.001}],
        }))
        assert main([
            "scan", "--range", SPEC, "--shards", "2",
            "--fault-schedule", str(network),
            "--host-faults", self._host_schedule(
                tmp_path, path_filter="no-such-file"),
            "--supervise",
        ]) == 0
        err = capsys.readouterr().err
        assert "2 event(s) (1 host, 1 network)" in err
