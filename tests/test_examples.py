"""The runnable examples stay runnable (fast ones, as subprocesses)."""

import pathlib
import subprocess
import sys

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def _run(name: str, *args: str, timeout: int = 420) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_all_examples_exist(self):
        names = {p.name for p in EXAMPLES.glob("*.py")}
        assert {
            "quickstart.py", "periphery_census.py",
            "exposed_services_audit.py", "routing_loop_attack.py",
            "bgp_survey.py", "longitudinal_churn.py", "custom_isp.py",
            "full_reproduction.py", "sharded_campaign.py",
            "chaos_campaign.py", "service_campaigns.py",
        } <= names

    def test_quickstart(self):
        out = _run("quickstart.py")
        assert "Discovered" in out
        assert "same-/64 replies" in out
        assert "dest-unreachable" in out

    def test_sharded_campaign(self):
        out = _run("sharded_campaign.py")
        assert "campaign killed" in out
        assert "Shards from checkpoint" in out
        assert "Unique peripheries" in out

    def test_chaos_campaign(self):
        out = _run("chaos_campaign.py")
        assert "loss-burst" in out
        assert "chaos / naive" in out
        assert "chaos / hardened" in out
        assert "recovered" in out

    def test_service_campaigns(self):
        out = _run("service_campaigns.py")
        assert "admission rejected (HTTP 429)" in out
        assert "cancelled demo-0003" in out
        assert "per-tenant time to first result" in out
        assert "all asserted above" in out

    def test_custom_isp(self):
        out = _run("custom_isp.py")
        assert "Inferred delegation length: /60" in out
        assert "AcmeNet" in out
        assert "Routing-loop vulnerable" in out
