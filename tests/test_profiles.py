"""Profile data invariants: the paper-derived parameter sets are coherent."""

import pytest

from repro.isp.profiles import (
    PAPER_PROFILES,
    PAPER_TOTALS,
    SERVICE_KEYS,
    profile_by_index,
    profile_by_key,
)
from repro.isp.vendors import DEFAULT_CATALOG


class TestProfileInvariants:
    def test_fifteen_blocks_twelve_isps(self):
        assert len(PAPER_PROFILES) == 15
        assert len({p.isp for p in PAPER_PROFILES}) == 12

    def test_indices_are_paper_rows(self):
        assert sorted(p.index for p in PAPER_PROFILES) == list(range(1, 16))

    def test_countries(self):
        by_country = {}
        for p in PAPER_PROFILES:
            by_country.setdefault(p.country, []).append(p)
        assert set(by_country) == {"IN", "US", "CN"}
        assert len(by_country["IN"]) == 4
        assert len(by_country["US"]) == 6
        assert len(by_country["CN"]) == 5

    def test_blocks_do_not_overlap(self):
        prefixes = [p.block_prefix for p in PAPER_PROFILES]
        for i, a in enumerate(prefixes):
            for b in prefixes[i + 1:]:
                assert not a.contains_prefix(b) and not b.contains_prefix(a)

    def test_fractions_in_range(self):
        for p in PAPER_PROFILES:
            for value in (p.same_frac, p.unique64_frac, p.eui64_frac,
                          p.mac_unique_frac, p.loop_same_frac):
                assert 0.0 <= value <= 1.0, p.key
            assert 0.0 <= p.loop_frac <= 1.0, p.key

    def test_mobile_blocks_are_slash64(self):
        for p in PAPER_PROFILES:
            if p.is_mobile:
                assert p.subprefix_len == 64, p.key

    def test_subprefix_at_most_64(self):
        """Table I: every ISP assigns prefixes of length at most 64."""
        for p in PAPER_PROFILES:
            assert p.block_prefix.length < p.subprefix_len <= 64, p.key

    def test_service_totals_consistent(self):
        for p in PAPER_PROFILES:
            total_counts = sum(p.service_counts.values())
            # One device can expose several services, never fewer than one.
            assert p.service_total <= total_counts or p.service_total < 10, p.key
            assert p.service_total <= p.paper_last_hops, p.key

    def test_service_rates_are_probabilities(self):
        for p in PAPER_PROFILES:
            for key in SERVICE_KEYS:
                assert 0.0 <= p.service_rate(key) <= 1.0, (p.key, key)

    def test_loop_counts_bounded(self):
        for p in PAPER_PROFILES:
            assert p.loop_count <= p.paper_last_hops, p.key

    def test_vendor_mixes_resolve_and_sum(self):
        for p in PAPER_PROFILES:
            total = 0.0
            for name, weight in p.vendor_mix:
                assert name in DEFAULT_CATALOG, (p.key, name)
                assert weight > 0
                total += weight
            assert total == pytest.approx(1.0, abs=0.05), p.key

    def test_mobile_mixes_are_ue(self):
        for p in PAPER_PROFILES:
            kinds = {
                DEFAULT_CATALOG.get(name).kind for name, _w in p.vendor_mix
            }
            if p.is_mobile:
                assert kinds == {"UE"}, p.key
            else:
                assert kinds == {"CPE"}, p.key

    def test_scan_labels(self):
        assert profile_by_key("in-jio-broadband").scan_label == "/32-64"
        assert profile_by_key("us-comcast-broadband").scan_label == "/24-56"
        assert profile_by_key("cn-telecom-broadband").scan_label == "/28-60"

    def test_lookup_helpers(self):
        assert profile_by_index(13).key == "cn-mobile-broadband"
        with pytest.raises(KeyError):
            profile_by_key("nope")

    def test_paper_grand_totals(self):
        # The paper's printed per-row values do not sum exactly to its
        # printed totals (off by ~0.4%); the profiles carry the rows as
        # published, so compare within that tolerance.
        last_hops = sum(p.paper_last_hops for p in PAPER_PROFILES)
        assert last_hops == pytest.approx(PAPER_TOTALS["last_hops"], rel=0.005)
        loops = sum(p.loop_count for p in PAPER_PROFILES)
        assert loops == pytest.approx(PAPER_TOTALS["loop"], rel=0.005)

    def test_same_counts_roughly_match_total_split(self):
        """Table II's 77.2% same emerges from the per-ISP rows."""
        total = PAPER_TOTALS["last_hops"]
        same = sum(p.paper_last_hops * p.same_frac for p in PAPER_PROFILES)
        assert 100 * same / total == pytest.approx(77.2, abs=1.0)
