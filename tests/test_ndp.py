"""Neighbor Discovery: message formats, cache behaviour, resolution path."""

import pytest

from repro.net.addr import IPv6Addr, IPv6Prefix, MacAddress
from repro.net.device import Host, Router
from repro.net.ndp import (
    NEGATIVE_TIME,
    NeighborAdvertisement,
    NeighborCache,
    NeighborSolicitation,
    resolve,
)
from repro.net.network import Network

TARGET = IPv6Addr.from_string("2001:db8::42")
MAC = MacAddress.from_string("34:56:78:9a:bc:de")


class TestMessageFormats:
    def test_solicitation_roundtrip(self):
        ns = NeighborSolicitation(target=TARGET, source_lladdr=MAC)
        back = NeighborSolicitation.from_message(ns.to_message())
        assert back.target == TARGET
        assert back.source_lladdr == MAC

    def test_solicitation_without_lladdr(self):
        ns = NeighborSolicitation(target=TARGET)
        back = NeighborSolicitation.from_message(ns.to_message())
        assert back.source_lladdr is None

    def test_advertisement_roundtrip(self):
        na = NeighborAdvertisement(target=TARGET, target_lladdr=MAC,
                                   solicited=True, override=False)
        back = NeighborAdvertisement.from_message(na.to_message())
        assert back.target == TARGET
        assert back.target_lladdr == MAC
        assert back.solicited
        assert not back.override

    def test_type_mismatch_rejected(self):
        na = NeighborAdvertisement(target=TARGET)
        with pytest.raises(ValueError):
            NeighborSolicitation.from_message(na.to_message())


class TestNeighborCache:
    def test_miss_then_hit(self):
        cache = NeighborCache()
        assert cache.lookup(TARGET, now=0.0) is None
        cache.store(TARGET, MAC, reachable=True, now=0.0)
        entry = cache.lookup(TARGET, now=1.0)
        assert entry is not None and entry.reachable
        assert cache.hits == 1 and cache.misses == 1

    def test_positive_entry_expires(self):
        cache = NeighborCache(reachable_time=5.0)
        cache.store(TARGET, MAC, reachable=True, now=0.0)
        assert cache.lookup(TARGET, now=4.9) is not None
        assert cache.lookup(TARGET, now=5.1) is None

    def test_negative_entry_short_lived(self):
        cache = NeighborCache()
        cache.store(TARGET, None, reachable=False, now=0.0)
        entry = cache.lookup(TARGET, now=1.0)
        assert entry is not None and not entry.reachable
        assert cache.lookup(TARGET, now=NEGATIVE_TIME + 0.1) is None

    def test_flush(self):
        cache = NeighborCache()
        cache.store(TARGET, MAC, reachable=True, now=0.0)
        cache.flush()
        assert len(cache) == 0


class TestResolution:
    def _world(self):
        net = Network()
        router = Router("r", IPv6Addr.from_string("2001:db8::1"))
        net.register(router)
        host = Host("h", TARGET)
        host.lladdr = MAC
        net.register(host)
        return net, router, host

    def test_resolves_existing_neighbor(self):
        net, router, host = self._world()
        assert resolve(router, TARGET, net)
        entry = router.neighbor_cache.lookup(TARGET, net.clock)
        assert entry.reachable
        assert entry.lladdr == MAC

    def test_fails_for_missing_neighbor(self):
        net, router, _host = self._world()
        ghost = IPv6Addr.from_string("2001:db8::dead")
        assert not resolve(router, ghost, net)
        assert not router.neighbor_cache.lookup(ghost, net.clock).reachable

    def test_cache_suppresses_repeat_solicitations(self):
        net, router, _host = self._world()
        resolve(router, TARGET, net)
        resolve(router, TARGET, net)
        assert router.neighbor_cache.solicitations == 1

    def test_negative_cache_retries_after_expiry(self):
        net, router, _host = self._world()
        ghost = IPv6Addr.from_string("2001:db8::dead")
        resolve(router, ghost, net)
        net.advance(NEGATIVE_TIME + 1.0)
        resolve(router, ghost, net)
        assert router.neighbor_cache.solicitations == 2

    def test_forwarding_uses_ndp(self):
        """The CONNECTED path consults the cache (end-to-end check)."""
        from repro.net.packet import echo_request

        net, router, host = self._world()
        router.table.add_connected(IPv6Prefix.from_string("2001:db8::/64"))
        probe = echo_request(
            IPv6Addr.from_string("2001:4860::1"), TARGET, 1, 1
        )
        result = router.receive(probe, net)
        assert result.forward is not None
        assert router.neighbor_cache.solicitations == 1
        # Second packet to the same neighbour: served from the cache.
        router.receive(probe, net)
        assert router.neighbor_cache.solicitations == 1
