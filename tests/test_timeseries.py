"""Virtual-clock time series: sampler mechanics and shard-merge identity.

The load-bearing property mirrors the PR 2 metrics-merge contract on the
time axis: the merged per-bucket series of a sharded campaign must equal
the unsharded scan's series bit for bit — on every executor backend —
for the scanner's probe/reply counter families.  Pacer counters carry the
documented ``shards - 1`` burst-credit caveat and are excluded, exactly
as in ``tests/test_telemetry.py``.
"""

import json

import pytest

from repro.core.scanner import ScanConfig, Scanner
from repro.core.target import ScanRange
from repro.engine import Campaign, ProbeSpec
from repro.net.spec import TopologySpec
from repro.telemetry import MetricsRegistry
from repro.telemetry.timeseries import (
    MetricSeries,
    SeriesSampler,
    SeriesSet,
    sparkline,
)

from tests.topo import build_mini

#: 16 targets behind cpe-ok; at 2 kpps the scan spans 8 virtual ms.
SPEC = "2001:db8:1:50::/60-64"
RATE = 2000.0
#: 4 probes per bucket — 4 shards divide it, so merge is bit-identical.
INTERVAL = 0.002

#: Families asserted bit-identical across the shard merge (pacer counters
#: excluded: each shard's token bucket starts with its own burst credit).
SCANNER_FAMILIES = (
    "scanner_probes_sent",
    "scanner_replies_received",
    "scanner_replies_validated",
    "scanner_replies",
    "scanner_replies_discarded",
)


def _config(**kwargs) -> ScanConfig:
    kwargs.setdefault("timeseries_interval", INTERVAL)
    return ScanConfig(scan_range=ScanRange.parse(SPEC), seed=1,
                      rate_pps=RATE, **kwargs)


def _single_shot(**config_kwargs):
    topo = build_mini(seed=1)
    probe = ProbeSpec.for_seed(1).build()
    scanner = Scanner(topo.network, topo.vantage, probe,
                      _config(**config_kwargs))
    result = scanner.run()
    return scanner, result


def _family_points(series_set: SeriesSet, name: str):
    """{labels: sorted points} for one family — full fidelity, not summed."""
    return {
        series.labels: dict(sorted(series.points.items()))
        for series in series_set
        if series.name == name
    }


class TestSparkline:
    def test_scales_to_eight_levels(self):
        assert sparkline([0, 7]) == "▁█"
        assert sparkline([0, 1, 2, 3, 4, 5, 6, 7]) == "▁▂▃▄▅▆▇█"

    def test_flat_and_empty(self):
        assert sparkline([]) == ""
        assert sparkline([0, 0, 0]) == "▁▁▁"  # flat zero hugs the floor
        assert sparkline([5, 5]) == "▅▅"      # flat nonzero sits mid-scale

    def test_width_keeps_newest(self):
        assert sparkline([9, 9, 0, 9], width=2) == "▁█"


class TestMetricSeries:
    def test_ring_evicts_oldest_and_flags_truncation(self):
        series = MetricSeries("m", ())
        for bucket in range(4):
            series.add(bucket, 1, max_buckets=3)
        assert series.truncated
        assert sorted(series.points) == [1, 2, 3]

    def test_same_bucket_accumulates_without_eviction(self):
        series = MetricSeries("m", ())
        series.add(0, 1, max_buckets=1)
        series.add(0, 2, max_buckets=1)
        assert series.points == {0: 3}
        assert not series.truncated


class TestSeriesSet:
    def test_named_sums_label_variants(self):
        series = SeriesSet(0.5)
        series.record("replies", (("kind", "echo"),), 0, 2)
        series.record("replies", (("kind", "unreach"),), 0, 3)
        series.record("replies", (("kind", "echo"),), 1, 1)
        assert series.named("replies") == {0: 5, 1: 1}
        assert series.bucket_range() == (0, 1)
        assert series.t_of(2) == 1.0

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            SeriesSet(0.0)

    def test_merge_interval_mismatch_raises(self):
        with pytest.raises(ValueError, match="cannot merge"):
            SeriesSet(0.5).merge(SeriesSet(0.25))

    def test_merge_sums_per_bucket(self):
        a, b = SeriesSet(1.0), SeriesSet(1.0)
        a.record("sent", (), 0, 2)
        b.record("sent", (), 0, 3)
        b.record("sent", (), 1, 1)
        merged = a.merge(b)
        assert merged is a
        assert merged.named("sent") == {0: 5, 1: 1}

    def test_round_trips_through_dict_and_ndjson(self):
        series = SeriesSet(0.25)
        series.record("sent", (), 0, 4)
        series.record("replies", (("kind", "echo"),), 1, 2)
        doc = series.to_dict()
        assert doc["format"] == "repro-timeseries"
        back = SeriesSet.from_dict(json.loads(json.dumps(doc)))
        assert back.interval == series.interval
        assert back.to_dict() == doc
        lines = list(series.ndjson_lines())
        assert len(lines) == 2
        assert all(json.loads(line)["interval"] == 0.25 for line in lines)


class TestSeriesSampler:
    def _sampler(self, interval=1.0, shards=1, **kwargs):
        registry = MetricsRegistry()
        return registry, SeriesSampler(registry, interval, shards=shards,
                                       **kwargs)

    def test_validates_arguments(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            SeriesSampler(registry, 0.0)
        with pytest.raises(ValueError):
            SeriesSampler(registry, 1.0, shards=0)

    def test_deltas_land_in_their_buckets(self):
        registry, sampler = self._sampler(interval=1.0)
        sampler.start(10.0)  # origin off zero: buckets index from start
        registry.counter("sent").inc(2)
        sampler.tick(11.0)  # closes bucket 0
        registry.counter("sent").inc(3)
        series = sampler.finish()
        assert series.named("sent") == {0: 2, 1: 3}
        assert sampler.boundary == float("inf")

    def test_start_is_idempotent(self):
        registry, sampler = self._sampler()
        sampler.start(5.0)
        first = sampler.boundary
        sampler.start(99.0)
        assert sampler.boundary == first

    def test_epsilon_guard_absorbs_float_error(self):
        registry, sampler = self._sampler(interval=0.001)
        sampler.start(0.0)
        registry.counter("sent").inc()
        # An ulp short of the boundary still counts as bucket 1.
        sampler.tick(0.001 - 1e-12)
        assert sampler.finish().named("sent") == {0: 1}
        assert sampler.ticks == 2  # bucket 0 closed by tick, 1 by finish

    def test_gap_buckets_stay_sparse(self):
        registry, sampler = self._sampler(interval=1.0)
        sampler.start(0.0)
        registry.counter("sent").inc()
        sampler.tick(5.5)  # silence from bucket 1 through 4
        registry.counter("sent").inc()
        series = sampler.finish()
        assert series.named("sent") == {0: 1, 5: 1}

    def test_sharded_sampler_uses_compressed_local_interval(self):
        registry, sampler = self._sampler(interval=1.0, shards=4)
        assert sampler.local_interval == 0.25
        sampler.start(0.0)
        registry.counter("sent").inc()
        sampler.tick(0.25)  # one *local* interval = one global bucket
        registry.counter("sent").inc()
        series = sampler.finish()
        assert series.interval == 1.0  # exported on the campaign axis
        assert series.named("sent") == {0: 1, 1: 1}


class TestScannerSampling:
    def test_sampler_disabled_without_interval_or_metrics(self):
        scanner, _ = _single_shot(timeseries_interval=0.0)
        assert scanner.sampler is None
        scanner, _ = _single_shot(collect_metrics=False)
        assert scanner.sampler is None

    def test_series_totals_match_registry(self):
        scanner, result = _single_shot()
        series = scanner.sampler.series
        sent = series.named("scanner_probes_sent")
        assert sum(sent.values()) == result.stats.sent == 16
        assert sum(series.named("scanner_replies_validated").values()) == (
            result.stats.validated
        )
        # 16 targets at 2 kpps over 2 ms buckets: 4 probes per bucket.
        assert sent == {0: 4, 1: 4, 2: 4, 3: 4}

    def test_batched_series_identical_to_serial(self):
        serial_scanner, _ = _single_shot()
        batched_scanner, _ = _single_shot(batched=True, batch_size=3)
        assert batched_scanner.sampler.to_dict() == (
            serial_scanner.sampler.to_dict()
        )


class TestShardMergeIdentity:
    """Merged shard series == unsharded series, on every backend."""

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_merged_series_bit_identical(self, executor, tmp_path):
        _, single_result = _single_shot()
        single_scanner, _ = _single_shot()
        single = single_scanner.sampler.series
        campaign = Campaign(
            TopologySpec.mini(seed=1),
            {SPEC: _config()},
            probe=ProbeSpec.for_seed(1),
            shards=4,
            executor=executor,
            workers=2,
            checkpoint_dir=str(tmp_path / "state"),
        )
        merged = campaign.run().timeseries
        assert merged is not None
        assert merged.interval == single.interval
        for family in SCANNER_FAMILIES:
            assert _family_points(merged, family) == (
                _family_points(single, family)
            ), family

    def test_campaign_without_sampling_has_no_series(self):
        campaign = Campaign(
            TopologySpec.mini(seed=1),
            {SPEC: _config(timeseries_interval=0.0)},
            probe=ProbeSpec.for_seed(1),
            shards=2,
        )
        assert campaign.run().timeseries is None


class TestCliFlags:
    def test_timeseries_must_be_positive(self, capsys):
        from repro.cli import main
        assert main(["scan", "--timeseries", "0"]) == 2
        assert "--timeseries" in capsys.readouterr().err

    def test_timeseries_out_requires_sampling(self, capsys):
        from repro.cli import main
        assert main(["scan", "--timeseries-out", "x.json"]) == 2
        assert "--timeseries-out requires --timeseries" in (
            capsys.readouterr().err
        )

    def test_health_requires_sampling(self, capsys):
        from repro.cli import main
        assert main(["scan", "--health"]) == 2
        assert "--health" in capsys.readouterr().err

    def test_shared_telemetry_flags_on_other_subcommands(self):
        from repro.cli import build_parser
        parser = build_parser()
        for argv in (
            ["internet", "--metrics-out", "m.ndjson", "--log-json"],
            ["store", "info", "s", "--metrics-out", "m.ndjson"],
            ["store", "query", "s", "--metrics-out", "m.ndjson",
             "--log-json"],
            ["store", "diff", "s", "a", "b", "--log-json"],
            ["store", "compact", "s", "--metrics-out", "m.ndjson"],
        ):
            args = parser.parse_args(argv)
            assert hasattr(args, "metrics_out")
            assert hasattr(args, "log_json")
