"""The application-layer scanner end-to-end against real devices."""

import pytest

from repro.net.addr import IPv6Addr, IPv6Prefix
from repro.net.device import Host, Router
from repro.net.network import Network
from repro.services.banner import SshServer, TelnetServer
from repro.services.base import SERVICE_ORDER, SERVICE_SPECS, Software
from repro.services.dns import DnsForwarder
from repro.services.http import HttpServer
from repro.services.zgrab import AppScanner


@pytest.fixture
def world():
    network = Network(seed=2)
    vantage = Host("vantage", IPv6Addr.from_string("2001:4860::100"))
    core = Router("core", IPv6Addr.from_string("2001:4860::1"))
    network.register(core)
    network.attach_host(vantage, core)
    core.table.add_connected(vantage.primary_address.prefix(128), "v")
    core.table.add_connected(IPv6Prefix.from_string("2001:db8::/64"))

    target = Host("t", IPv6Addr.from_string("2001:db8::1"))
    target.gateway = core  # type: ignore[attr-defined]
    network.register(target)
    return network, vantage, target


class TestAppScanner:
    def test_dns_probe(self, world):
        network, vantage, target = world
        target.bind_service(DnsForwarder(Software("dnsmasq", "2.45")))
        scanner = AppScanner(network, vantage)
        obs = scanner.probe_service(target.primary_address, "DNS/53")
        assert obs.alive
        assert obs.software == Software("dnsmasq", "2.45")

    def test_closed_udp_port_not_alive(self, world):
        network, vantage, target = world
        scanner = AppScanner(network, vantage)
        obs = scanner.probe_service(target.primary_address, "DNS/53")
        assert not obs.alive

    def test_closed_tcp_port_not_alive(self, world):
        network, vantage, target = world
        scanner = AppScanner(network, vantage)
        for key in ("SSH/22", "HTTP/80", "TLS/443"):
            assert not scanner.probe_service(target.primary_address, key).alive

    def test_unreachable_target_not_alive(self, world):
        network, vantage, _target = world
        scanner = AppScanner(network, vantage)
        ghost = IPv6Addr.from_string("2001:db8::dead")
        for key in SERVICE_ORDER:
            assert not scanner.probe_service(ghost, key).alive

    def test_ssh_and_telnet_banners(self, world):
        network, vantage, target = world
        target.bind_service(SshServer(Software("dropbear", "0.48")))
        target.bind_service(
            TelnetServer(Software("telnetd", ""), vendor_banner="China Unicom")
        )
        scanner = AppScanner(network, vantage)
        ssh = scanner.probe_service(target.primary_address, "SSH/22")
        assert ssh.alive and ssh.software.version == "0.48"
        telnet = scanner.probe_service(target.primary_address, "TELNET/23")
        assert telnet.alive and "China Unicom" in telnet.vendor_hint

    def test_http_8080_distinct_from_80(self, world):
        network, vantage, target = world
        target.bind_service(
            HttpServer(Software("Jetty", "6.1.26"),
                       spec=SERVICE_SPECS["HTTP/8080"], vendor="StarNet",
                       model="SN-GW100")
        )
        scanner = AppScanner(network, vantage)
        assert not scanner.probe_service(target.primary_address, "HTTP/80").alive
        alt = scanner.probe_service(target.primary_address, "HTTP/8080")
        assert alt.alive
        assert alt.service == "HTTP/8080"
        assert alt.vendor_hint == "StarNet SN-GW100"

    def test_scan_aggregation(self, world):
        network, vantage, target = world
        target.bind_service(DnsForwarder(Software("dnsmasq", "2.45")))
        target.bind_service(HttpServer(Software("micro_httpd", "1.0")))
        scanner = AppScanner(network, vantage)
        result = scanner.scan([target.primary_address])
        assert len(result.observations) == len(SERVICE_ORDER)
        assert result.alive_targets() == {target.primary_address}
        by_service = result.by_service()
        assert len(by_service["DNS/53"]) == 1
        assert len(by_service["HTTP/80"]) == 1
        assert len(by_service["SSH/22"]) == 0

    def test_software_counts(self, world):
        network, vantage, target = world
        target.bind_service(DnsForwarder(Software("dnsmasq", "2.66")))
        scanner = AppScanner(network, vantage)
        result = scanner.scan([target.primary_address], services=("DNS/53",))
        assert result.software_counts()["DNS/53"] == {"dnsmasq 2.66": 1}

    def test_pacing_advances_clock(self, world):
        network, vantage, target = world
        scanner = AppScanner(network, vantage, rate_pps=10)
        before = network.clock
        scanner.scan([target.primary_address])
        assert network.clock > before
