"""The synthetic OUI registry."""

import pytest

from repro.net.addr import MacAddress
from repro.net.oui import OuiRegistry


class TestOuiRegistry:
    def test_register_and_lookup(self):
        registry = OuiRegistry()
        registry.register("ZTE", count=2)
        mac = registry.make_mac("ZTE", nic=7)
        assert registry.vendor_of(mac) == "ZTE"

    def test_count_registers_exactly(self):
        registry = OuiRegistry()
        registry.register("Acme", count=3)
        assert len(registry.ouis_for("Acme")) == 3
        assert len(registry) == 3

    def test_register_is_incremental(self):
        registry = OuiRegistry()
        registry.register("Acme", count=1)
        registry.register("Acme", count=2)
        assert len(registry.ouis_for("Acme")) == 3

    def test_deterministic_across_instances(self):
        a, b = OuiRegistry(), OuiRegistry()
        a.register("ZTE")
        b.register("ZTE")
        assert a.ouis_for("ZTE") == b.ouis_for("ZTE")

    def test_ouis_are_unicast_global(self):
        registry = OuiRegistry()
        registry.register_all(["A", "B", "C"], count=2)
        for vendor in registry.vendors():
            for oui in registry.ouis_for(vendor):
                first_octet = oui >> 16
                assert first_octet & 0x01 == 0  # not multicast
                assert first_octet & 0x02 == 0  # not locally administered

    def test_unknown_vendor_raises(self):
        with pytest.raises(KeyError):
            OuiRegistry().ouis_for("nobody")

    def test_unknown_mac_resolves_to_none(self):
        registry = OuiRegistry()
        registry.register("ZTE")
        assert registry.vendor_of(MacAddress(0xFFFFFF000001)) is None

    def test_make_mac_nic_range(self):
        registry = OuiRegistry()
        registry.register("ZTE")
        with pytest.raises(ValueError):
            registry.make_mac("ZTE", nic=1 << 24)

    def test_oui_index_cycles(self):
        registry = OuiRegistry()
        registry.register("ZTE", count=2)
        a = registry.make_mac("ZTE", 0, oui_index=0)
        b = registry.make_mac("ZTE", 0, oui_index=1)
        c = registry.make_mac("ZTE", 0, oui_index=2)  # wraps to index 0
        assert a.oui != b.oui
        assert c.oui == a.oui

    def test_contains(self):
        registry = OuiRegistry()
        registry.register("ZTE")
        assert "ZTE" in registry
        assert "Acme" not in registry
