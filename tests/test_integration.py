"""End-to-end integration: the paper's three pipelines on one deployment."""

import pytest

from repro.core.probes.base import ReplyKind
from repro.discovery.periphery import discover
from repro.discovery.subnet import infer_subprefix_length
from repro.discovery.vendor_id import VendorIdentifier
from repro.isp.builder import build_deployment
from repro.isp.profiles import profile_by_key
from repro.loop.attack import run_loop_attack
from repro.loop.detector import find_loops
from repro.net.packet import MAX_HOP_LIMIT
from repro.services.zgrab import AppScanner


@pytest.fixture(scope="module")
def dep():
    return build_deployment(
        profiles=[
            profile_by_key("cn-unicom-broadband"),
            profile_by_key("cn-unicom-mobile"),
        ],
        scale=20_000,
        seed=13,
    )


class TestFullPipeline:
    def test_inference_then_discovery_then_audit_then_attack(self, dep):
        isp = dep.isps["cn-unicom-broadband"]

        # 1. Infer the delegation length, as a fresh measurement would.
        inference = infer_subprefix_length(
            dep.network, dep.vantage, isp.scan_base, seed=2
        )
        assert inference.boundary_length == 60

        # 2. Discover the periphery.
        census = discover(dep.network, dep.vantage, isp.scan_spec, seed=3)
        assert census.n_unique == isp.n_devices

        # 3. Audit services on the discoveries.
        app = AppScanner(dep.network, dep.vantage).scan(
            census.last_hop_addresses()
        )
        alive = app.alive_targets()
        assert alive  # Unicom broadband is a service hot spot (24.6%)
        alive_rate = len(alive) / census.n_unique
        assert 0.05 < alive_rate < 0.6

        # 4. Identify vendors over both channels.
        identified = VendorIdentifier(dep.catalog).identify(
            census.records, app.observations
        )
        truth = isp.truth_by_last_hop()
        for device in identified:
            assert device.vendor == truth[device.last_hop.value].vendor

        # 5. Find loops and attack one.
        survey = find_loops(dep.network, dep.vantage, isp.scan_spec, seed=4)
        assert survey.n_unique > 0.5 * isp.n_devices  # paper: 78.8%
        victim = truth[survey.records[0].last_hop.value]
        target = victim.delegated.subprefix(3, 64).address(0x5555)
        report = run_loop_attack(
            dep.network, dep.vantage, target, isp.router.name, victim.name,
            hop_limit=MAX_HOP_LIMIT,
        )
        assert report.amplification > 200

    def test_mobile_block_shape(self, dep):
        isp = dep.isps["cn-unicom-mobile"]
        census = discover(dep.network, dep.vantage, isp.scan_spec, seed=5)
        assert census.same_pct > 90  # UE-model: replies share the probed /64
        # Nearly no loops (paper: 190 of 3.7M).
        survey = find_loops(dep.network, dep.vantage, isp.scan_spec, seed=6)
        assert survey.n_unique <= 2

    def test_rescan_is_stable(self, dep):
        """Two scans with different secrets discover the same population."""
        isp = dep.isps["cn-unicom-broadband"]
        a = discover(dep.network, dep.vantage, isp.scan_spec, seed=21)
        b = discover(dep.network, dep.vantage, isp.scan_spec, seed=22)
        assert {r.last_hop for r in a.records} == {r.last_hop for r in b.records}

    def test_census_reply_kind_mix(self, dep):
        isp = dep.isps["cn-unicom-broadband"]
        census = discover(dep.network, dep.vantage, isp.scan_spec, seed=3)
        kinds = {r.reply_kind for r in census.records}
        # Loop-heavy block: both unreachables and time-exceeded discoveries.
        assert ReplyKind.DEST_UNREACHABLE in kinds
        assert ReplyKind.TIME_EXCEEDED in kinds
