"""Scan-space permutations: bijectivity, sharding, determinism, backends."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cyclic import CyclicGroupPermutation
from repro.core.feistel import FeistelPermutation
from repro.core.permutation import make_permutation

sizes = st.integers(min_value=1, max_value=4000)
seeds = st.integers(min_value=0, max_value=2**32)

BACKENDS = [CyclicGroupPermutation, FeistelPermutation]


@pytest.mark.parametrize("backend", BACKENDS)
class TestPermutationContract:
    @settings(max_examples=40, deadline=None)
    @given(size=sizes, seed=seeds)
    def test_full_cycle_bijection(self, backend, size, seed):
        perm = backend(size, seed)
        values = list(perm)
        assert sorted(values) == list(range(size))

    @settings(max_examples=25, deadline=None)
    @given(size=st.integers(min_value=1, max_value=1200), seed=seeds,
           shards=st.integers(min_value=1, max_value=7))
    def test_shards_partition(self, backend, size, seed, shards):
        perm = backend(size, seed)
        union = []
        for shard in range(shards):
            union.extend(perm.indices(shard, shards))
        assert sorted(union) == list(range(size))

    @given(size=st.integers(min_value=2, max_value=2000), seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_deterministic(self, backend, size, seed):
        assert list(backend(size, seed)) == list(backend(size, seed))

    def test_different_seeds_differ(self, backend):
        a = list(backend(1000, seed=1))
        b = list(backend(1000, seed=2))
        assert a != b

    def test_rejects_nonpositive_size(self, backend):
        with pytest.raises(ValueError):
            backend(0)

    def test_rejects_bad_shard(self, backend):
        perm = backend(10)
        with pytest.raises(ValueError):
            list(perm.indices(3, 3))

    def test_len(self, backend):
        assert len(backend(17)) == 17

    def test_looks_shuffled(self, backend):
        # Not identity and not reversal for a non-trivial size.
        values = list(backend(2048, seed=3))
        assert values != list(range(2048))
        assert values != list(reversed(range(2048)))
        # Probes spread: first 100 values span a wide range of the space.
        window = values[:100]
        assert max(window) - min(window) > 1024


class TestCyclicSpecifics:
    def test_prime_just_above_size(self):
        perm = CyclicGroupPermutation(1000, seed=1)
        assert perm.prime is not None
        assert perm.prime >= 1001
        assert perm.prime - 1000 < 100

    def test_tiny_sizes(self):
        for size in (1, 2):
            assert sorted(CyclicGroupPermutation(size, 5)) == list(range(size))

    def test_generator_has_full_order(self):
        perm = CyclicGroupPermutation(500, seed=9)
        p, g = perm.prime, perm.generator
        seen = set()
        x = 1
        for _ in range(p - 1):
            x = x * g % p
            seen.add(x)
        assert len(seen) == p - 1


class TestFeistelSpecifics:
    def test_random_access_matches_iteration(self):
        perm = FeistelPermutation(777, seed=4)
        assert [perm.permute(i) for i in range(777)] == list(perm)

    def test_rejects_too_few_rounds(self):
        with pytest.raises(ValueError):
            FeistelPermutation(10, rounds=1)

    def test_wide_domain(self):
        # A 2^72-sized space: only spot-check injectivity of random access.
        perm = FeistelPermutation(1 << 72, seed=8)
        outputs = {perm.permute(i) for i in range(2000)}
        assert len(outputs) == 2000
        assert all(0 <= v < (1 << 72) for v in outputs)


class TestBackendSelection:
    def test_auto_small_is_cyclic(self):
        assert isinstance(make_permutation(1 << 16), CyclicGroupPermutation)

    def test_auto_huge_is_feistel(self):
        assert isinstance(make_permutation(1 << 100), FeistelPermutation)

    def test_explicit_backends(self):
        assert isinstance(
            make_permutation(100, backend="cyclic"), CyclicGroupPermutation
        )
        assert isinstance(
            make_permutation(100, backend="feistel"), FeistelPermutation
        )

    def test_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_permutation(10, backend="nope")
