"""The repro-xmap command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_census_defaults(self):
        args = build_parser().parse_args(["census"])
        assert args.scale == 20_000.0
        assert args.rate == 25_000.0
        assert args.isp is None

    def test_isp_repeatable(self):
        args = build_parser().parse_args(
            ["loops", "--isp", "in-jio-broadband", "--isp", "cn-mobile-broadband"]
        )
        assert args.isp == ["in-jio-broadband", "cn-mobile-broadband"]


class TestCommands:
    def test_feasibility(self, capsys):
        assert main(["feasibility", "--gbps", "1"]) == 0
        out = capsys.readouterr().out
        assert "2^40" in out or "/24 block" in out
        assert "days" in out

    def test_attack(self, capsys):
        assert main(["attack"]) == 0
        out = capsys.readouterr().out
        assert "link crossings measured" in out

    def test_census_one_block(self, capsys, tmp_path):
        csv_path = tmp_path / "census.csv"
        assert main([
            "census", "--isp", "in-bsnl-broadband", "--scale", "20000",
            "--csv", str(csv_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "BSNL" in out
        assert csv_path.exists()
        assert "last_hop" in csv_path.read_text().splitlines()[0]

    def test_loops_one_block(self, capsys):
        assert main([
            "loops", "--isp", "cn-unicom-broadband", "--scale", "50000",
        ]) == 0
        out = capsys.readouterr().out
        assert "Table XI" in out

    def test_services_one_block(self, capsys):
        assert main([
            "services", "--isp", "us-centurylink-broadband",
            "--scale", "20000",
        ]) == 0
        out = capsys.readouterr().out
        assert "Table VII" in out

    def test_disclose_one_block(self, capsys):
        assert main([
            "disclose", "--isp", "cn-unicom-broadband", "--scale", "30000",
        ]) == 0
        out = capsys.readouterr().out
        assert "Responsible disclosure summary" in out
        assert "tracking numbers" in out

    def test_bad_isp_key(self):
        with pytest.raises(KeyError):
            main(["census", "--isp", "not-a-key"])
