"""Routing loops: detector recall, amplification, spoofing, case study."""

import pytest

from repro.loop.attack import run_loop_attack
from repro.loop.casestudy import (
    CASE_STUDY_ROUTERS,
    RouterModel,
    run_case_study,
    test_router as bench_router,
)
from repro.loop.detector import find_loops
from repro.net.packet import MAX_HOP_LIMIT

from tests.topo import MiniTopology, build_mini


class TestDetector:
    def test_finds_loop_devices(self, cn_mobile_deployment):
        dep = cn_mobile_deployment
        isp = dep.isps["cn-mobile-broadband"]
        survey = find_loops(dep.network, dep.vantage, isp.scan_spec, seed=5)
        truth = isp.truth_by_last_hop()
        # Every confirmed finding is genuinely vulnerable: no false positives.
        for record in survey.records:
            assert truth[record.last_hop.value].loop_vulnerable
        # Recall: probes land in the not-used space of a /60 delegation with
        # probability 15/16, so only a small fraction of loop devices can be
        # missed per scan.
        n_vulnerable = sum(1 for t in isp.truths if t.loop_vulnerable)
        assert survey.n_unique >= 0.85 * n_vulnerable

    def test_correct_devices_never_flagged(self, jio_deployment):
        dep = jio_deployment
        isp = dep.isps["in-jio-broadband"]
        survey = find_loops(dep.network, dep.vantage, isp.scan_spec, seed=5)
        truth = isp.truth_by_last_hop()
        for record in survey.records:
            assert truth[record.last_hop.value].loop_vulnerable

    def test_candidates_at_least_confirmed(self, cn_mobile_deployment):
        dep = cn_mobile_deployment
        isp = dep.isps["cn-mobile-broadband"]
        survey = find_loops(dep.network, dep.vantage, isp.scan_spec, seed=5)
        assert survey.candidates >= survey.n_unique

    def test_mini_topology_detection(self):
        topo = build_mini()
        survey = find_loops(
            topo.network, topo.vantage, "2001:db8:1:60::/60-64", seed=1
        )
        assert survey.n_unique == 1
        assert survey.records[0].last_hop == topo.cpe_vuln.wan_address


class TestAmplification:
    def test_unspoofed_factor(self):
        topo = build_mini()
        target = MiniTopology.LAN_VULN.subprefix(9, 64).address(0xBAD)
        report = run_loop_attack(
            topo.network, topo.vantage, target, "isp", "cpe-vuln"
        )
        # One extra crossing comes from the final Time Exceeded leaving.
        assert report.theoretical <= report.amplification <= report.theoretical + 1
        assert report.amplification > 200  # the paper's headline claim

    def test_hop_limit_scales_amplification(self):
        topo = build_mini()
        target = MiniTopology.LAN_VULN.subprefix(9, 64).address(0xBAD)
        small = run_loop_attack(
            topo.network, topo.vantage, target, "isp", "cpe-vuln", hop_limit=64
        )
        big = run_loop_attack(
            topo.network, topo.vantage, target, "isp", "cpe-vuln",
            hop_limit=MAX_HOP_LIMIT,
        )
        assert big.amplification > small.amplification
        assert small.amplification == pytest.approx(62, abs=2)

    def test_spoofed_source_doubles(self):
        topo = build_mini()
        target = MiniTopology.LAN_VULN.subprefix(9, 64).address(0xBAD)
        spoofed_src = MiniTopology.LAN_VULN.subprefix(10, 64).address(0xFACE)
        plain = run_loop_attack(
            topo.network, topo.vantage, target, "isp", "cpe-vuln"
        )
        spoofed = run_loop_attack(
            topo.network, topo.vantage, target, "isp", "cpe-vuln",
            spoofed_source=spoofed_src,
        )
        assert spoofed.spoofed
        assert spoofed.amplification >= 1.8 * plain.amplification

    def test_correct_cpe_does_not_amplify(self):
        topo = build_mini()
        target = MiniTopology.LAN_OK.subprefix(9, 64).address(0xBAD)
        report = run_loop_attack(
            topo.network, topo.vantage, target, "isp", "cpe-ok"
        )
        assert report.amplification <= 2

    def test_per_router_forwards(self):
        topo = build_mini()
        target = MiniTopology.LAN_VULN.subprefix(9, 64).address(0xBAD)
        report = run_loop_attack(
            topo.network, topo.vantage, target, "isp", "cpe-vuln"
        )
        # The paper: each router forwards the packet (255-n)/2 times.
        assert report.per_router_forwards == pytest.approx(
            (255 - report.hops_before_isp) / 2, abs=1
        )


class TestCaseStudy:
    def test_roster_size(self):
        hardware = [u for u in CASE_STUDY_ROUTERS if not u.is_os]
        oses = [u for u in CASE_STUDY_ROUTERS if u.is_os]
        assert len(hardware) == 95
        assert len(oses) == 4
        assert len(CASE_STUDY_ROUTERS) == 99

    def test_tplink_dominates_roster(self):
        brands = [u.brand for u in CASE_STUDY_ROUTERS]
        assert brands.count("TP-Link") == 42
        assert brands.count("Mercury") == 8

    def test_all_routers_vulnerable(self):
        """The paper: all 99 units are vulnerable to the loop attack."""
        results = run_case_study()
        assert len(results) == 99
        assert all(r.vulnerable for r in results)

    def test_showcased_verdicts_match_table12(self):
        verdicts = {}
        for unit in CASE_STUDY_ROUTERS:
            result = bench_router(unit)
            verdicts[(unit.brand, unit.model)] = (
                result.wan_loops, result.lan_loops
            )
        assert verdicts[("ASUS", "GT-AC5300")] == (True, False)
        assert verdicts[("Huawei", "WS5100")] == (True, True)
        assert verdicts[("Netgear", "R6400v2")] == (True, True)
        assert verdicts[("Xiaomi", "AX5")] == (True, False)
        assert verdicts[("Tenda", "AC23")] == (True, False)

    def test_immune_prefix_answers_unreachable(self):
        unit = RouterModel("X", "M", "1.0", True, False)
        result = bench_router(unit)
        assert result.immune_prefix_unreachable

    def test_loop_cap_firmware(self):
        capped = bench_router(
            RouterModel("Xiaomi", "AX5", "1.0.33", True, False, 10)
        )
        uncapped = bench_router(
            RouterModel("Huawei", "WS5100", "10.0.2.8", True, True)
        )
        assert 10 <= capped.wan_crossings <= 25  # ">10 times"
        assert uncapped.wan_crossings > 200  # (255-n)/2 forwards per router
