"""The BGP fabric: solver determinism, Gao–Rexford policy, scenarios."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.bgp import (
    AsRole,
    BgpFabric,
    FabricError,
    Failover,
    PREF_CUSTOMER,
    PREF_PEER,
    PREF_PROVIDER,
    PrefixHijack,
    RouteLeak,
    SessionFlap,
    build_internet,
    build_leak_demo,
    compute_delta,
    rib_digest,
)
from repro.bgp.world import (
    LEAK_DEMO_LEAKER,
    LEAK_DEMO_R2,
    LEAK_DEMO_T1,
    LEAK_DEMO_T2,
    LEAK_DEMO_VICTIM,
)
from repro.core.scanner import ScanConfig
from repro.core.target import ScanRange
from repro.engine import Campaign
from repro.faults import (
    ROUTE_SET,
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    ScheduleError,
)
from repro.net.addr import IPv6Prefix
from repro.net.spec import TopologySpec

SRC = str(Path(__file__).resolve().parent.parent / "src")


def _mini_fabric(seed=0):
    """T1 ── T2 peers; R under T1; stub S under both T1 and R."""
    fabric = BgpFabric(seed=seed)
    fabric.add_as(10, role=AsRole.TRANSIT,
                  block=IPv6Prefix.from_string("2f00::/32"))
    fabric.add_as(20, role=AsRole.TRANSIT,
                  block=IPv6Prefix.from_string("2f01::/32"))
    fabric.add_as(30, role=AsRole.TRANSIT,
                  block=IPv6Prefix.from_string("2f02::/32"))
    fabric.add_as(40, role=AsRole.STUB,
                  block=IPv6Prefix.from_string("2f03::/32"))
    fabric.peer(10, 20)
    fabric.provider(10, 30)
    fabric.provider(30, 40)
    fabric.provider(10, 40)
    return fabric


class TestSolverPolicy:
    def test_customer_beats_peer_beats_provider(self):
        fabric = _mini_fabric()
        fabric.compile()
        rib = fabric.rib
        target = IPv6Prefix.from_string("2f03::/32")  # AS40's block
        # AS30 hears 40 as a direct customer.
        assert rib[30][target].pref == PREF_CUSTOMER
        assert rib[30][target].path == (40,)
        # AS10 hears 40 directly (customer) and via 30 (customer): the
        # shorter customer path wins.
        assert rib[10][target].pref == PREF_CUSTOMER
        assert rib[10][target].path == (40,)
        # AS20 only hears 40 across the peering: one peer hop.
        assert rib[20][target].pref == PREF_PEER
        assert rib[20][target].path == (10, 40)

    def test_no_valley_through_peer(self):
        # AS20's peer-learned route must NOT be re-exported upward, so a
        # provider of 20 would never hear 40 through it.
        fabric = _mini_fabric()
        fabric.add_as(50, role=AsRole.TRANSIT,
                      block=IPv6Prefix.from_string("2f04::/32"))
        fabric.provider(50, 20)  # 50 sells transit to 20
        fabric.compile()
        target = IPv6Prefix.from_string("2f03::/32")
        assert target not in fabric.rib.get(50, {})

    def test_provider_route_reaches_customer(self):
        fabric = _mini_fabric()
        fabric.compile()
        target = IPv6Prefix.from_string("2f01::/32")  # AS20's block
        # AS30 buys from 10, which peers with 20: provider route, 2 hops.
        assert fabric.rib[30][target].pref == PREF_PROVIDER
        assert fabric.rib[30][target].path == (10, 20)


def _relationships(fabric):
    providers = {}  # asn -> set of its providers
    peers = set()  # frozenset pairs
    for session in fabric.sessions.values():
        if session.rel == "transit":
            providers.setdefault(session.b, set()).add(session.a)
        else:
            peers.add(frozenset((session.a, session.b)))
    return providers, peers


def _assert_valley_free(fabric):
    """Every RIB path, origin→holder, must match up* peer? down*."""
    providers, peers = _relationships(fabric)
    for asn, entries in fabric.rib.items():
        for prefix, route in entries.items():
            hops = list(reversed((asn,) + route.path))  # origin ... holder
            phase = "up"
            for u, v in zip(hops, hops[1:]):
                if v in providers.get(u, ()):
                    step = "up"  # route climbed from customer u to v
                elif frozenset((u, v)) in peers:
                    step = "peer"
                elif u in providers.get(v, ()):
                    step = "down"  # route descended from provider u to v
                else:
                    raise AssertionError(
                        f"AS{asn} {prefix}: no session between {u} and {v}"
                    )
                if step == "up":
                    assert phase == "up", (
                        f"AS{asn} {prefix}: valley in path {hops}"
                    )
                elif step == "peer":
                    assert phase == "up", (
                        f"AS{asn} {prefix}: second peer/late peer in {hops}"
                    )
                    phase = "down"
                else:
                    phase = "down"


class TestValleyFree:
    def test_internet_rib_is_valley_free(self):
        world = build_internet(
            seed=11, scale=20_000, n_tail_ases=30, populate=False
        )
        assert world.fabric.rib_routes() > 0
        _assert_valley_free(world.fabric)

    def test_leak_breaks_valley_free_on_purpose(self):
        world = build_leak_demo(seed=11)
        fabric = world.fabric
        _assert_valley_free(fabric)  # clean fabric is valley-free
        delta = compute_delta(fabric, RouteLeak(
            leaker=LEAK_DEMO_LEAKER, from_as=LEAK_DEMO_R2,
            to_as=LEAK_DEMO_T1, prefixes=(str(world.edges[0].block),),
        ))
        target = world.edges[0].block
        leaked = delta.rib_after[LEAK_DEMO_T1][target]
        # T1 now prefers a customer-classed route through the leaker whose
        # true shape is provider-learned — the deliberate valley.
        assert leaked.pref == PREF_CUSTOMER
        assert leaked.path[0] == LEAK_DEMO_LEAKER
        assert LEAK_DEMO_R2 in leaked.path


class TestDeterminism:
    def test_same_seed_same_rib(self):
        a = build_internet(seed=5, scale=20_000, n_tail_ases=20,
                           populate=False)
        b = build_internet(seed=5, scale=20_000, n_tail_ases=20,
                           populate=False)
        assert rib_digest(a.fabric.rib) == rib_digest(b.fabric.rib)
        assert a.fabric.fib == b.fabric.fib

    def test_different_seed_reshuffles_tiebreaks(self):
        a = build_internet(seed=5, scale=20_000, n_tail_ases=20,
                           populate=False)
        b = build_internet(seed=6, scale=20_000, n_tail_ases=20,
                           populate=False)
        # Same announcements, different tiebreaks somewhere in the mesh.
        assert rib_digest(a.fabric.rib) != rib_digest(b.fabric.rib)

    def test_digest_matches_across_process_boundary(self):
        local = rib_digest(build_leak_demo(seed=9).fabric.rib)
        code = (
            "import sys; sys.path.insert(0, sys.argv[1])\n"
            "from repro.bgp import build_leak_demo, rib_digest\n"
            "print(rib_digest(build_leak_demo(seed=9).fabric.rib))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code, SRC],
            capture_output=True, text=True, check=True,
        )
        assert out.stdout.strip() == local

    @pytest.mark.parametrize("executor,workers", [
        ("thread", 2), ("process", 2),
    ])
    def test_campaign_backends_agree_on_leak_demo(self, executor, workers):
        spec = TopologySpec.leak_demo(seed=5)
        config = ScanConfig(
            scan_range=ScanRange.parse(spec.build().handle.edges[0].scan_spec),
            seed=5,
        )

        def replies(executor, workers=None):
            result = Campaign(
                spec, {"victim": config}, shards=2,
                executor=executor, workers=workers,
            ).run()
            return {
                (r.responder.value, r.target.value, r.kind)
                for r in result.results["victim"].results
            }

        assert replies(executor, workers) == replies("serial")


class TestScenarios:
    @pytest.fixture(scope="class")
    def demo(self):
        return build_leak_demo(seed=3)

    def test_hijack_locality(self, demo):
        edge = demo.edges[0]
        window = edge.block.subprefix(1, 40)
        hijacked = window.subprefix(0, 44)
        delta = compute_delta(demo.fabric, PrefixHijack(
            hijacker=LEAK_DEMO_LEAKER, prefix=str(hijacked),
        ))
        assert delta.dirty == (hijacked,)
        # Every op touches only the hijacked /44; the covering /32 rows
        # stay exactly as compiled.
        assert delta.ops
        assert all(op.prefix == str(hijacked) for op in delta.ops)
        blackholes = [op for op in delta.ops if op.action == "blackhole"]
        assert [op.device for op in blackholes] == [
            f"as{LEAK_DEMO_LEAKER}-core"
        ]

    def test_flap_withdraws_single_homed_default(self, demo):
        delta = compute_delta(demo.fabric, SessionFlap(
            LEAK_DEMO_R2, LEAK_DEMO_VICTIM,
        ))
        by_device = {op.device: op for op in delta.ops}
        edge_op = by_device[demo.edges[0].access_router]
        assert edge_op.action == "withdraw"
        assert edge_op.prefix == "::/0"
        # The victim's block disappears from every transit FIB.
        assert all(
            op.action == "withdraw" for op in delta.ops
        )

    def test_unknown_session_rejected(self, demo):
        with pytest.raises(FabricError):
            compute_delta(demo.fabric, SessionFlap(LEAK_DEMO_T1, 65010))

    def test_leak_applies_and_reverts_on_live_tables(self, demo):
        fabric = demo.fabric
        edge = demo.edges[0]
        target = edge.delegations[0].address(1)

        def path():
            hops, device = [], demo.core
            for _ in range(12):
                hops.append(device.name)
                route = device.table.lookup(target)
                if route is None or route.next_hop is None:
                    break
                device = demo.network.device_at(route.next_hop)
            return hops

        baseline = path()
        assert len(baseline) == 8  # 7 routers + the CPE
        delta = compute_delta(fabric, RouteLeak(
            leaker=LEAK_DEMO_LEAKER, from_as=LEAK_DEMO_R2,
            to_as=LEAK_DEMO_T1, prefixes=(str(edge.block),),
        ))
        injector = FaultInjector(
            demo.network, delta.to_fault_schedule(0.0, 100.0)
        )
        injector.arm()
        injector.sync(0.0)
        leaked = path()
        assert len(leaked) == 6  # 5 routers + the CPE
        assert f"as{LEAK_DEMO_LEAKER}-core" in leaked
        assert leaked[-1] == baseline[-1]  # same CPE answers
        injector.restore()
        assert path() == baseline

    def test_failover_rehomes_multihomed_edge(self):
        world = build_internet(
            seed=2, scale=20_000, n_tail_ases=10, multihome_rate=1.0,
        )
        edge = next(e for e in world.edges if len(e.providers) == 2)
        delta = compute_delta(world.fabric, Failover(edge.asn))
        by_device = {
            op.device: op for op in delta.ops
            if op.device == edge.access_router
        }
        op = by_device[edge.access_router]
        # Multi-homed: the default re-homes to the surviving provider
        # instead of vanishing.
        assert op.action == "set"
        assert op.prefix == "::/0"
        failed = world.fabric.default_session(edge.asn)
        survivor = world.fabric.edge_default_next_hop(
            edge.asn, exclude=(failed.key(),)
        )
        assert op.next_hop == str(survivor)

        # Live round-trip: the CPE stays reachable during the failover.
        target = edge.delegations[0].address(1)
        injector = FaultInjector(
            world.network, delta.to_fault_schedule(0.0, 100.0)
        )
        injector.arm()
        injector.sync(0.0)
        device = world.core
        for _ in range(12):
            route = device.table.lookup(target)
            if route is None or route.next_hop is None:
                break
            device = world.network.device_at(route.next_hop)
        assert device.name.startswith(f"as{edge.asn}-dev-")
        injector.restore()


class TestDerivedViews:
    def test_bgp_table_roles_filter(self):
        world = build_leak_demo(seed=1)
        full = world.fabric.bgp_table()
        edges_only = world.fabric.bgp_table(roles=(AsRole.EDGE,))
        assert len(edges_only) == 1
        assert len(full) > len(edges_only)
        info = edges_only.lookup(world.edges[0].block.address(5))
        assert info.asn == LEAK_DEMO_VICTIM
        assert info.country == "BR"

    def test_fib_is_compressed(self):
        world = build_internet(
            seed=4, scale=20_000, n_tail_ases=30, populate=False
        )
        fabric = world.fabric
        # Compression must pay: installed rows well under the full RIB
        # cross product, but every tracked route still resolvable.
        assert fabric.fib_routes() < fabric.rib_routes()
        # Spot-check resolvability: a tier-1 core can still reach another
        # transit AS's block despite the compressed rows.
        t1 = next(a for a in fabric.ases.values() if a.role == AsRole.TRANSIT)
        other = next(
            a for a in fabric.ases.values()
            if a.role == AsRole.TRANSIT and a.asn != t1.asn
        )
        core = fabric.devices[(t1.asn, "core")]
        assert core.table.lookup(other.block.address(1)) is not None


class TestRouteSetFault:
    def test_json_round_trip(self):
        event = FaultEvent(
            kind=ROUTE_SET, start=0.0, end=5.0, device="r1",
            prefix="2a00::/32", next_hop="2f00::1",
        )
        schedule = FaultSchedule(events=(event,), seed=3)
        parsed = FaultSchedule.from_json(schedule.to_json())
        assert parsed.events[0] == event

    def test_next_hop_required(self):
        with pytest.raises(ScheduleError):
            FaultEvent(
                kind=ROUTE_SET, start=0.0, end=5.0, device="r1",
                prefix="2a00::/32",
            ).validate()

    def test_apply_and_revert_restore_prior_route(self):
        world = build_leak_demo(seed=3)
        t1_core = world.fabric.devices[(LEAK_DEMO_T1, "core")]
        prefix = IPv6Prefix.from_string("2a00::/32")
        before = t1_core.table.lookup(prefix.address(1))
        assert before is not None
        schedule = FaultSchedule(events=(FaultEvent(
            kind=ROUTE_SET, start=0.0, end=10.0, device=t1_core.name,
            prefix=str(prefix), next_hop="2f80::1",
        ),))
        injector = FaultInjector(world.network, schedule)
        injector.arm()
        injector.sync(0.0)
        assert str(t1_core.table.lookup(prefix.address(1)).next_hop) \
            == "2f80::1"
        injector.sync(10.0)
        after = t1_core.table.lookup(prefix.address(1))
        assert after.next_hop == before.next_hop

    def test_revert_removes_route_that_did_not_exist(self):
        world = build_leak_demo(seed=3)
        t1_core = world.fabric.devices[(LEAK_DEMO_T1, "core")]
        prefix = IPv6Prefix.from_string("3a00::/32")  # nobody routes this
        schedule = FaultSchedule(events=(FaultEvent(
            kind=ROUTE_SET, start=0.0, end=10.0, device=t1_core.name,
            prefix=str(prefix), next_hop="2f80::1",
        ),))
        injector = FaultInjector(world.network, schedule)
        injector.arm()
        injector.sync(0.0)
        assert t1_core.table.lookup(prefix.address(1)) is not None
        injector.sync(10.0)
        route = t1_core.table.lookup(prefix.address(1))
        # Back to whatever covered it before — not the injected next hop.
        assert route is None or str(route.next_hop) != "2f80::1"
