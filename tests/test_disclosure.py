"""The responsible-disclosure report generator (§VII)."""

import pytest

from repro.analysis.disclosure import (
    LOOP_FINDING,
    SERVICE_FINDING,
    build_disclosure_report,
)
from repro.discovery.periphery import discover
from repro.discovery.vendor_id import VendorIdentifier
from repro.loop.detector import find_loops
from repro.services.zgrab import AppScanner


@pytest.fixture(scope="module")
def measured(cn_mobile_deployment):
    dep = cn_mobile_deployment
    isp = dep.isps["cn-mobile-broadband"]
    census = discover(dep.network, dep.vantage, isp.scan_spec, seed=3)
    app = AppScanner(dep.network, dep.vantage).scan(
        census.last_hop_addresses()
    )
    loops = find_loops(dep.network, dep.vantage, isp.scan_spec, seed=5)
    identified = VendorIdentifier(dep.catalog).identify(
        census.records, app.observations
    )
    return dep, isp, identified, loops, app


class TestDisclosureReport:
    def test_loop_findings_per_vendor(self, measured):
        dep, isp, identified, loops, app = measured
        report = build_disclosure_report(
            identified, {"cn-mobile-broadband": loops}, app.observations
        )
        loop_findings = [
            f for f in report.findings if f.kind == LOOP_FINDING
        ]
        assert loop_findings
        # China Mobile has by far the most loop devices in its own AS.
        leader = max(loop_findings, key=lambda f: f.device_count)
        assert leader.vendor == "China Mobile"

    def test_service_findings_carry_cves(self, measured):
        dep, isp, identified, loops, app = measured
        report = build_disclosure_report(identified, {}, app.observations)
        dns_findings = [
            f for f in report.findings
            if f.kind == SERVICE_FINDING and "DNS/53" in f.detail
            and "dnsmasq 2.4x" in f.detail
        ]
        assert dns_findings
        assert all(f.cve_count == 7 for f in dns_findings)

    def test_tracking_ids_unique_and_stable(self, measured):
        dep, isp, identified, loops, app = measured
        a = build_disclosure_report(
            identified, {"k": loops}, app.observations
        )
        b = build_disclosure_report(
            identified, {"k": loops}, app.observations
        )
        assert a.tracking_ids == b.tracking_ids
        assert len(set(a.tracking_ids)) == len(a.tracking_ids)

    def test_advisory_rendering(self, measured):
        dep, isp, identified, loops, app = measured
        report = build_disclosure_report(
            identified, {"k": loops}, app.observations
        )
        advisory = report.render_advisory("China Mobile")
        assert "Security advisory — China Mobile" in advisory
        assert "RFC 7084" in advisory
        summary = report.render_summary()
        assert "vendors notified" in summary
        assert "China Mobile" in summary

    def test_min_devices_filters_noise(self, measured):
        dep, isp, identified, loops, app = measured
        full = build_disclosure_report(identified, {}, app.observations)
        filtered = build_disclosure_report(
            identified, {}, app.observations, min_devices=5
        )
        assert len(filtered.findings) < len(full.findings)
        assert all(f.device_count >= 5 for f in filtered.findings)

    def test_empty_inputs(self):
        report = build_disclosure_report([])
        assert report.findings == []
        assert "vendors notified : 0" in report.render_summary()
