"""The one-call reproduction orchestrator."""

import pytest

from repro.analysis.reproduce import reproduce_all


@pytest.fixture(scope="module")
def run():
    messages = []
    result = reproduce_all(
        scale=1_000_000.0,  # min-device floors: ~40 devices per block
        seed=3,
        include_bgp=False,
        include_case_study=False,
        progress=messages.append,
    )
    result._progress = messages  # type: ignore[attr-defined]
    return result


class TestReproduceAll:
    def test_census_per_block(self, run):
        assert len(run.censuses) == 15
        for key, census in run.censuses.items():
            assert census.n_unique == run.deployment.isps[key].n_devices

    def test_app_and_identification_populated(self, run):
        assert len(run.app_results) == 15
        assert any(run.identified.values())

    def test_loop_surveys_populated(self, run):
        assert len(run.loop_surveys) == 15
        assert sum(s.n_unique for s in run.loop_surveys.values()) > 0

    def test_report_contains_every_section(self, run):
        report = run.report()
        for marker in (
            "Table I —", "Table II —", "Table III —", "Table IV —",
            "Table V —", "Table VII —", "Table VIII —", "Table XI —",
            "Figure 2 —", "Figure 3 —", "Figure 6 —", "§VI-A amplification",
        ):
            assert marker in report, marker

    def test_bgp_and_case_study_skippable(self, run):
        report = run.report()
        assert "Table IX —" not in report
        assert "Table XII —" not in report
        assert run.world is None

    def test_progress_reported(self, run):
        messages = run._progress
        assert any("discovery" in m for m in messages)
        assert any("loop" in m for m in messages)
