"""The scan service: admission, WDRR fairness, drain, crash recovery, API.

The three satellite properties from the issue get dedicated classes:

* **Determinism** — the same submission trace replays to the identical
  lease order (fresh queue, and across a mid-trace save/load).
* **Fairness** — a low-priority tenant under sustained interactive
  pressure from another tenant provably keeps making progress.
* **Kill-anywhere** — a daemon SIGKILLed between lease transitions (real
  ``kill -9`` via ``python -m repro.service.killtest`` subprocesses)
  restarts with no lost and no duplicated campaigns, converging to
  stores digest-identical to an uninterrupted run.

Plus the acceptance demo: three tenants × four campaigns through the
daemon concurrently, per-tenant stores bit-identical to running the same
specs standalone, and a mid-run drain that requeues leases a restarted
daemon finishes.
"""

import json
import os
import random
import subprocess
import sys
import threading

import pytest

from repro.engine.campaign import Campaign, CampaignAborted, NullSignals
from repro.service import (
    AdmissionError,
    CampaignQueue,
    CampaignSpec,
    QueueError,
    ScanService,
    ServiceClient,
    ServiceServer,
    SpecError,
    TenantPolicy,
)
from repro.service.api import ApiError
from repro.store import ResultStore
from repro.telemetry.events import CampaignIdAllocator, EventLog

ENV = {**os.environ, "PYTHONPATH": "src"}

#: Seeded SIGKILL points for the daemon kill-anywhere class.
SERVICE_KILL_POINTS = int(os.environ.get("REPRO_SERVICE_KILL_POINTS", "4"))

#: Windows the mini topology answers, so stores are non-trivial.
RESPONSIVE = [
    "2001:db8:1:40::/58-64",
    "2001:db8:0::/61-64",
    "2001:db8:1:50::/60-64",
    "2001:db8:1:60::/60-64",
    "2001:db8:2::/61-64",
    "2001:db8:1::/59-64",
]


def spec(tenant, name, rng="2001:db8:0::/61-64", **kw):
    return CampaignSpec(tenant=tenant, name=name, scan_range=rng, **kw)


def store_rows(store_dir):
    store = ResultStore(store_dir)
    return sorted(
        (str(r.target), str(r.responder), r.kind.value)
        for r in store.iter_rows()
    )


# ---------------------------------------------------------------------------


class TestCampaignSpec:
    def test_round_trip(self):
        s = spec("alice", "a0", "2001:db8:1::/56-64", priority="batch",
                 shards=4, seed=9, topology_params=(("seed", 2),))
        assert CampaignSpec.from_dict(s.to_dict()) == s
        assert CampaignSpec.from_dict(
            json.loads(json.dumps(s.to_dict()))
        ) == s

    def test_rejects_bad_submissions(self):
        with pytest.raises(SpecError):
            spec("alice", "x", "not-a-range")
        with pytest.raises(SpecError):
            spec("alice", "x", priority="urgent")
        with pytest.raises(SpecError):
            spec("", "x")
        with pytest.raises(SpecError):
            spec("../escape", "x")
        with pytest.raises(SpecError):
            TenantPolicy(weight=0)

    def test_priority_scales_effective_cost(self):
        interactive = spec("a", "i", "2001:db8::/58-64",
                           priority="interactive")
        batch = spec("a", "b", "2001:db8::/58-64", priority="batch")
        normal = spec("a", "n", "2001:db8::/58-64")
        assert normal.probe_budget == 64
        assert interactive.effective_cost == normal.effective_cost / 4
        assert batch.effective_cost == normal.effective_cost * 4

    def test_max_probes_caps_budget(self):
        assert spec("a", "m", "2001:db8::/56-64",
                    max_probes=10).probe_budget == 10


class TestAdmission:
    def test_backlog_cap(self, tmp_path):
        q = CampaignQueue(
            str(tmp_path / "q.json"),
            default_policy=TenantPolicy(max_queued=2),
        )
        q.submit(spec("alice", "a0"))
        q.submit(spec("alice", "a1"))
        with pytest.raises(AdmissionError):
            q.submit(spec("alice", "a2"))
        # Other tenants are unaffected.
        q.submit(spec("bob", "b0"))

    def test_probe_budget_quota(self, tmp_path):
        q = CampaignQueue(
            str(tmp_path / "q.json"),
            default_policy=TenantPolicy(probe_budget=20),
        )
        q.submit(spec("alice", "a0"))  # 8 probes outstanding
        q.submit(spec("alice", "a1"))  # 16 outstanding
        with pytest.raises(AdmissionError):
            q.submit(spec("alice", "a2"))  # would be 24 > 20
        record = q.next_lease()
        q.complete(record.campaign_id, {})
        # Completion releases the budget.
        q.submit(spec("alice", "a2"))

    def test_cancel_states(self, tmp_path):
        q = CampaignQueue(str(tmp_path / "q.json"))
        a = q.submit(spec("alice", "a0"))
        assert q.cancel(a.campaign_id).state == "cancelled"
        b = q.submit(spec("alice", "b0"))
        leased = q.next_lease()
        assert leased.campaign_id == b.campaign_id
        assert q.cancel(b.campaign_id).cancel_requested
        # An aborted lease whose cancel landed mid-run ends terminal.
        assert q.requeue(b.campaign_id).state == "cancelled"
        with pytest.raises(QueueError):
            q.cancel(a.campaign_id)


class TestSchedulerDeterminism:
    def submit_trace(self, q):
        for i in range(3):
            q.submit(spec("alice", f"a{i}", RESPONSIVE[0],
                          priority="interactive"))
            q.submit(spec("bob", f"b{i}", RESPONSIVE[1]))
            q.submit(spec("carol", f"c{i}", RESPONSIVE[2],
                          priority="batch"))

    def drain_order(self, q):
        order = []
        while True:
            record = q.next_lease()
            if record is None:
                break
            order.append(f"{record.tenant}/{record.spec.name}")
            q.complete(record.campaign_id, {})
        return order

    def drive(self, path, seed=3):
        """One fixed submission trace; returns the full lease order."""
        q = CampaignQueue(str(path), seed=seed, scope="det")
        self.submit_trace(q)
        return self.drain_order(q)

    def test_same_trace_same_lease_order(self, tmp_path):
        first = self.drive(tmp_path / "q1.json")
        second = self.drive(tmp_path / "q2.json")
        assert first == second
        assert len(first) == 9

    def test_seed_changes_the_tiebreaks(self, tmp_path):
        assert self.drive(tmp_path / "q1.json", seed=3) != self.drive(
            tmp_path / "q2.json", seed=4
        )

    def test_replay_survives_save_load(self, tmp_path):
        """Restarting the queue mid-trace continues the same order."""
        full = self.drive(tmp_path / "ref.json")
        path = tmp_path / "q.json"
        q = CampaignQueue(str(path), seed=3, scope="det")
        self.submit_trace(q)
        order = []
        for _ in range(4):
            record = q.next_lease()
            order.append(f"{record.tenant}/{record.spec.name}")
            q.complete(record.campaign_id, {})
        # Reload from disk: records, deficits, and the round come back.
        q2 = CampaignQueue(str(path))
        order.extend(self.drain_order(q2))
        assert order == full


class TestFairness:
    def test_starved_batch_tenant_progresses(self, tmp_path):
        """A batch tenant keeps leasing under sustained interactive load.

        ``big`` floods interactive campaigns (re-submitting after every
        lease so its backlog never empties); ``small`` queues batch work
        at 16x the effective cost.  WDRR accrues deficit to both every
        round, so small must keep appearing in the lease order.
        """
        q = CampaignQueue(
            str(tmp_path / "q.json"), seed=11, scope="fair", quantum=64.0,
            default_policy=TenantPolicy(max_in_flight=4, max_queued=64),
        )
        for i in range(8):
            q.submit(spec("small", f"s{i}", "2001:db8::/60-64",
                          priority="batch"))  # cost 16 / 0.25 = 64
        flood = 0
        for _ in range(4):
            q.submit(spec("big", f"f{flood}", "2001:db8::/60-64",
                          priority="interactive"))  # cost 16 / 4 = 4
            flood += 1
        leases = []
        for _ in range(60):
            record = q.next_lease()
            assert record is not None
            leases.append(record.tenant)
            q.complete(record.campaign_id, {})
            if record.tenant == "big":
                q.submit(spec("big", f"f{flood}", "2001:db8::/60-64",
                              priority="interactive"))
                flood += 1
        small = leases.count("small")
        assert small >= 3, f"batch tenant starved: {leases}"
        # The interactive flood still dominates, as priced: big pays 4
        # deficit per lease against small's 64.
        assert leases.count("big") > small

    def test_weights_shift_the_share(self, tmp_path):
        q = CampaignQueue(
            str(tmp_path / "q.json"), seed=2, scope="w", quantum=16.0,
            policies={"heavy": TenantPolicy(weight=4.0, max_queued=128),
                      "light": TenantPolicy(weight=1.0, max_queued=128)},
        )
        for i in range(40):
            q.submit(spec("heavy", f"h{i}", "2001:db8::/60-64"))
            q.submit(spec("light", f"l{i}", "2001:db8::/60-64"))
        leases = []
        for _ in range(30):
            record = q.next_lease()
            leases.append(record.tenant)
            q.complete(record.campaign_id, {})
        assert leases.count("heavy") >= 2 * leases.count("light")


class TestQueuePersistence:
    def test_leased_records_requeue_on_load(self, tmp_path):
        path = tmp_path / "q.json"
        q = CampaignQueue(str(path), scope="p")
        q.submit(spec("alice", "a0"))
        q.submit(spec("alice", "a1"))
        leased = q.next_lease()
        q2 = CampaignQueue(str(path))
        record = q2.get(leased.campaign_id)
        assert record.state == "queued"
        assert record.resume is True
        assert record.attempts == 1
        assert q2.recovered_leases == [leased.campaign_id]
        # Nothing lost, nothing duplicated, ids stay aligned.
        assert len(q2.records) == 2
        assert q2.allocator.allocated == 2
        assert q2.allocator.scope == "p"

    def test_cancel_requested_lease_cancels_on_load(self, tmp_path):
        path = tmp_path / "q.json"
        q = CampaignQueue(str(path), scope="p")
        a = q.submit(spec("alice", "a0"))
        q.next_lease()
        q.cancel(a.campaign_id)
        q2 = CampaignQueue(str(path))
        assert q2.get(a.campaign_id).state == "cancelled"
        assert q2.recovered_leases == []

    def test_corrupt_state_refuses_loudly(self, tmp_path):
        path = tmp_path / "q.json"
        path.write_text("{not json")
        with pytest.raises(QueueError):
            CampaignQueue(str(path))


class TestCampaignIdAllocator:
    def test_monotonic_and_scoped(self):
        alloc = CampaignIdAllocator(scope="svc")
        ids = [alloc.next() for _ in range(3)]
        assert ids == ["svc-0000", "svc-0001", "svc-0002"]
        assert alloc.allocated == 3
        alloc.reserve(10)
        assert alloc.next() == "svc-0010"

    def test_distinct_scopes_never_collide(self):
        a, b = CampaignIdAllocator(), CampaignIdAllocator()
        assert a.scope != b.scope
        assert {a.next() for _ in range(4)}.isdisjoint(
            {b.next() for _ in range(4)}
        )


class TestEventLogTenantLabels:
    def test_labels_stamp_every_record(self):
        log = EventLog(campaign_id="c0", labels={"tenant": "alice"})
        log.emit("x")
        log.ingest([{"type": "worker_event", "t": 0.1, "seq": 0}])
        assert all(e["tenant"] == "alice" for e in log.events)

    def test_ingest_preserves_existing_tenant(self):
        log = EventLog(campaign_id="c0", labels={"tenant": "alice"})
        log.ingest([{"type": "worker_event", "tenant": "bob"}])
        assert log.events[-1]["tenant"] == "bob"

    def test_explicit_field_wins(self):
        log = EventLog(labels={"tenant": "alice"})
        record = log.emit("x", tenant="carol")
        assert record["tenant"] == "carol"


class TestCampaignAbort:
    def test_request_abort_before_run_commits_nothing(self, tmp_path):
        s = spec("t", "x", RESPONSIVE[2])
        campaign = Campaign(
            s.topology_spec(), {"x": s.scan_config()}, shards=2,
            checkpoint_dir=str(tmp_path / "ckpt"),
            store_dir=str(tmp_path / "store"), snapshot="r0",
            backoff_base=0.0, signals=NullSignals(),
        )
        campaign.request_abort()
        with pytest.raises(CampaignAborted):
            campaign.run()
        assert ResultStore(str(tmp_path / "store")).snapshots == {}

    def test_abort_at_boundary_then_resume_bitidentical(self, tmp_path):
        s = spec("t", "x", RESPONSIVE[0])

        def build(resume, abort_check=None):
            return Campaign(
                s.topology_spec(), {"x": s.scan_config()}, shards=4,
                checkpoint_dir=str(tmp_path / "ckpt"),
                checkpoint_every=8,
                store_dir=str(tmp_path / "store"), snapshot="r0",
                resume=resume, backoff_base=0.0,
                signals=NullSignals(), abort_check=abort_check,
            )

        # The check runs at the top of the wave and before each serial
        # batch: tripping on the third call aborts after exactly one of
        # the four shards ran.
        calls = []

        def abort_after_one_shard():
            calls.append(1)
            return len(calls) > 2

        aborted = build(False, abort_check=abort_after_one_shard)
        with pytest.raises(CampaignAborted):
            aborted.run()
        # Nothing committed, but checkpoints persist for the resume.
        assert ResultStore(str(tmp_path / "store")).snapshots == {}
        result = build(True).run()
        assert result.shards_from_checkpoint >= 1
        assert result.snapshot == "r0"
        # Baseline: the same spec uninterrupted in a fresh directory.
        Campaign(
            s.topology_spec(), {"x": s.scan_config()}, shards=4,
            store_dir=str(tmp_path / "base"), snapshot="r0",
            backoff_base=0.0, signals=NullSignals(),
        ).run()
        assert store_rows(str(tmp_path / "store")) == store_rows(
            str(tmp_path / "base")
        )


WORK = [
    ("alice", "a0", RESPONSIVE[0], 3, "interactive"),
    ("alice", "a1", RESPONSIVE[3], 4, "normal"),
    ("alice", "a2", RESPONSIVE[1], 5, "normal"),
    ("alice", "a3", RESPONSIVE[4], 6, "batch"),
    ("bob", "b0", RESPONSIVE[1], 7, "normal"),
    ("bob", "b1", RESPONSIVE[2], 8, "interactive"),
    ("bob", "b2", RESPONSIVE[4], 9, "batch"),
    ("bob", "b3", RESPONSIVE[3], 10, "normal"),
    ("carol", "c0", RESPONSIVE[2], 11, "batch"),
    ("carol", "c1", RESPONSIVE[4], 12, "normal"),
    ("carol", "c2", RESPONSIVE[1], 13, "interactive"),
    ("carol", "c3", RESPONSIVE[5], 14, "normal"),
]


def submit_work(service):
    for tenant, name, rng, seed, priority in WORK:
        service.submit(CampaignSpec(
            tenant=tenant, name=name, scan_range=rng, seed=seed,
            priority=priority, shards=2,
        ))


def standalone_rows(tmp_path, service):
    """Each done campaign re-run standalone (same snapshot name) into a
    fresh per-tenant store; returns tenant -> sorted rows."""
    for record in service.queue.in_state("done"):
        s = record.spec
        Campaign(
            s.topology_spec(), {s.name: s.scan_config()}, shards=s.shards,
            checkpoint_dir=str(
                tmp_path / "solo" / s.tenant / "ckpt" / record.campaign_id
            ),
            store_dir=str(tmp_path / "solo" / s.tenant / "store"),
            snapshot=record.snapshot, backoff_base=0.0,
            signals=NullSignals(),
        ).run()
    return {
        tenant: store_rows(str(tmp_path / "solo" / tenant / "store"))
        for tenant in {w[0] for w in WORK}
    }


class TestServiceEndToEnd:
    def test_three_tenants_twelve_campaigns_bitidentical(self, tmp_path):
        """The acceptance demo: ≥3 tenants × ≥4 campaigns concurrently;
        per-tenant stores bit-identical to standalone runs."""
        service = ScanService(
            str(tmp_path / "svc"), max_workers=3, seed=1, scope="e2e",
            default_policy=TenantPolicy(max_in_flight=2),
        )
        submit_work(service)
        service.run_until_idle()
        records = service.queue.in_state("done")
        assert len(records) == len(WORK)
        solo = standalone_rows(tmp_path, service)
        for tenant, expected in solo.items():
            got = store_rows(service.stores.store_dir(tenant))
            assert got == expected, f"tenant {tenant} diverged"
            assert len(got) == len(set(got))  # no duplicated rows
        # Snapshot membership matches the campaign set per tenant.
        for tenant in solo:
            store = ResultStore(service.stores.store_dir(tenant))
            assert set(store.snapshots) == {
                r.snapshot for r in records if r.tenant == tenant
            }
        # Service metrics saw every lease and first result.
        status = service.service_status()
        assert status["states"] == {"done": len(WORK)}
        assert set(status["ttfr_seconds"]) == set(solo)
        for summary in status["ttfr_seconds"].values():
            assert summary["count"] >= 4
            assert summary["p99"] >= summary["p50"] > 0

    def test_retention_drops_old_rounds(self, tmp_path):
        service = ScanService(
            str(tmp_path / "svc"), max_workers=1, scope="ret",
            default_policy=TenantPolicy(
                max_in_flight=1, retain_snapshots=2
            ),
        )
        for i, rng in enumerate(RESPONSIVE[:4]):
            service.submit(spec("alice", f"a{i}", rng, seed=i))
        service.run_until_idle()
        store = ResultStore(service.stores.store_dir("alice"))
        # Only the newest two rounds survive retention.
        assert sorted(store.snapshots) == [
            "round-ret-0002", "round-ret-0003"
        ]


class TestServiceDrain:
    def test_drain_requeues_and_restart_finishes(self, tmp_path):
        root = str(tmp_path / "svc")
        service = ScanService(
            root, max_workers=2, seed=5, scope="dr",
            default_policy=TenantPolicy(max_in_flight=2),
        )
        submit_work(service)
        drained = threading.Event()

        def drain_soon(event):
            # After the first lease completes, ask for a drain: remaining
            # leases abort at their next shard boundary and requeue.
            if event.get("type") == "service_lease_done" and (
                not drained.is_set()
            ):
                drained.set()
                service.request_drain()

        service.events.subscribe(drain_soon)
        service.run_until_idle()
        assert service.draining
        states = {r.state for r in service.queue.records.values()}
        assert "leased" not in states  # every lease settled or requeued
        assert "failed" not in states
        remaining = service.queue.in_state("queued")
        assert service.queue.in_state("done"), "drain beat every lease"
        assert remaining, "drain left nothing to requeue"
        assert all(r.resume for r in remaining if r.attempts)

        # A successor daemon on the same root finishes the backlog.
        successor = ScanService(
            root, max_workers=2, seed=5,
            default_policy=TenantPolicy(max_in_flight=2),
        )
        successor.run_until_idle()
        assert len(successor.queue.in_state("done")) == len(WORK)
        solo = standalone_rows(tmp_path, successor)
        for tenant, expected in solo.items():
            assert store_rows(
                successor.stores.store_dir(tenant)
            ) == expected


class TestHttpApi:
    def test_api_round_trip(self, tmp_path):
        service = ScanService(str(tmp_path / "svc"), max_workers=1,
                              scope="api")
        server = ServiceServer(service).start()
        try:
            client = ServiceClient(server.address)
            record = client.submit(
                spec("alice", "a0", RESPONSIVE[2], seed=3).to_dict()
            )
            assert record["state"] == "queued"
            assert record["campaign_id"] == "api-0000"
            assert client.status("api-0000")["state"] == "queued"
            with pytest.raises(ApiError) as bad:
                client.submit({"tenant": "alice"})
            assert bad.value.status == 400
            with pytest.raises(ApiError) as missing:
                client.status("nope-0000")
            assert missing.value.status == 404
            with pytest.raises(ApiError) as early:
                client.results("api-0000")
            assert early.value.status == 404
            service.run_until_idle()
            assert client.status("api-0000")["state"] == "done"
            rows = client.results("api-0000", limit=5)
            assert rows and len(rows) <= 5
            assert {"target", "responder", "kind"} <= set(rows[0])
            summary = client.service_status()
            assert summary["states"] == {"done": 1}
            listing = client.list_campaigns(tenant="alice")
            assert [c["campaign_id"] for c in listing] == ["api-0000"]
        finally:
            server.stop()

    def test_admission_maps_to_429_and_drain_to_503(self, tmp_path):
        service = ScanService(
            str(tmp_path / "svc"), scope="api2",
            default_policy=TenantPolicy(max_queued=1),
        )
        server = ServiceServer(service).start()
        try:
            client = ServiceClient(server.address)
            client.submit(spec("alice", "a0").to_dict())
            with pytest.raises(ApiError) as full:
                client.submit(spec("alice", "a1").to_dict())
            assert full.value.status == 429
            service.request_drain()
            with pytest.raises(ApiError) as draining:
                client.submit(spec("bob", "b0").to_dict())
            assert draining.value.status == 503
        finally:
            server.stop()


def _run_killtest(root, *flags, check=True):
    proc = subprocess.run(
        [sys.executable, "-m", "repro.service.killtest", "--root",
         str(root), *flags],
        capture_output=True, text=True, env=ENV,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )
    if check and proc.returncode != 0:
        raise AssertionError(
            f"service killtest failed ({proc.returncode}):\n{proc.stderr}"
        )
    return proc


class TestServiceKillAnywhere:
    """Real SIGKILLs between lease transitions; queue state must recover
    with no lost or duplicated campaigns and digest-identical stores."""

    def test_sigkill_at_seeded_ops_recovers_identical_state(self, tmp_path):
        baseline = json.loads(
            _run_killtest(tmp_path / "base", "--count-ops").stdout
        )
        total_ops = baseline["ops"]
        assert total_ops > 50
        assert set(baseline["states"].values()) == {"done"}
        rng = random.Random(20260807)
        points = sorted(
            rng.sample(range(2, total_ops), SERVICE_KILL_POINTS)
        )
        for point in points:
            root = tmp_path / f"kill-{point}"
            proc = _run_killtest(
                root, "--kill-after-ops", str(point), check=False
            )
            assert proc.returncode != 0, (
                f"op {point}: expected a SIGKILL death"
            )
            out = json.loads(_run_killtest(root, "--resume").stdout)
            assert out["states"] == baseline["states"], f"op {point}"
            for tenant, expect in baseline["tenants"].items():
                got = out["tenants"][tenant]
                assert got["digest"] == expect["digest"], (
                    f"op {point}: tenant {tenant} store diverged"
                )
                assert got["rows"] == got["unique_rows"], (
                    f"op {point}: duplicated rows for {tenant}"
                )
