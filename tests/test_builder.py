"""The population builder: ground truth matches the profile parameters."""

import pytest

from repro.discovery.iid import IidClass
from repro.isp.builder import build_deployment
from repro.isp.profiles import PAPER_PROFILES, profile_by_key
from repro.isp.vendors import DEFAULT_CATALOG


class TestDeploymentShape:
    def test_all_fifteen_blocks(self, mini_deployment):
        assert len(mini_deployment.isps) == 15
        assert set(mini_deployment.isps) == {p.key for p in PAPER_PROFILES}

    def test_device_counts_scale(self, mini_deployment):
        for key, isp in mini_deployment.isps.items():
            expected = max(30, round(isp.profile.paper_last_hops / 100_000))
            assert isp.n_devices == expected
            assert len(isp.truths) == isp.n_devices

    def test_scan_windows_inside_blocks(self, mini_deployment):
        for isp in mini_deployment.isps.values():
            assert isp.profile.block_prefix.contains_prefix(isp.scan_base)
            assert isp.scan_base.length == (
                isp.profile.subprefix_len - isp.window_bits
            )

    def test_delegations_inside_scan_window(self, mini_deployment):
        for isp in mini_deployment.isps.values():
            for truth in isp.truths:
                assert isp.scan_base.contains_prefix(truth.delegated)
                assert truth.delegated.length == isp.profile.subprefix_len

    def test_no_duplicate_delegations(self, mini_deployment):
        for isp in mini_deployment.isps.values():
            networks = [t.delegated.network for t in isp.truths]
            assert len(networks) == len(set(networks))

    def test_same_archetype_fraction(self, cn_mobile_deployment):
        isp = cn_mobile_deployment.isps["cn-mobile-broadband"]
        same = sum(1 for t in isp.truths if t.archetype == "same")
        assert same == round(isp.n_devices * isp.profile.same_frac)

    def test_eui64_fraction(self, cn_mobile_deployment):
        isp = cn_mobile_deployment.isps["cn-mobile-broadband"]
        eui = sum(1 for t in isp.truths if t.iid_class is IidClass.EUI64)
        expected = isp.n_devices * isp.profile.eui64_frac
        assert abs(eui - expected) <= 2

    def test_loop_counts(self, cn_mobile_deployment):
        isp = cn_mobile_deployment.isps["cn-mobile-broadband"]
        loops = sum(1 for t in isp.truths if t.loop_vulnerable)
        expected = round(isp.n_devices * isp.profile.loop_frac)
        assert abs(loops - expected) <= 1
        for truth in isp.truths:
            if truth.loop_vulnerable:
                assert truth.loop_prefix in ("wan", "lan")
            else:
                assert truth.loop_prefix == ""

    def test_last_hop_addresses_registered(self, cn_mobile_deployment):
        net = cn_mobile_deployment.network
        for truth in cn_mobile_deployment.all_truths():
            device = net.device_at(truth.last_hop)
            assert device is not None
            assert device.name == truth.name

    def test_diff_devices_wan_outside_window(self, cn_mobile_deployment):
        isp = cn_mobile_deployment.isps["cn-mobile-broadband"]
        for truth in isp.truths:
            if truth.archetype == "diff":
                assert not isp.scan_base.contains(truth.last_hop)
                assert isp.profile.block_prefix.contains(truth.last_hop)
            else:
                assert truth.delegated.contains(truth.last_hop)

    def test_eui64_truth_has_mac(self, cn_mobile_deployment):
        for truth in cn_mobile_deployment.all_truths():
            if truth.iid_class is IidClass.EUI64:
                assert truth.mac is not None
                assert truth.last_hop.embedded_mac() == truth.mac
            else:
                assert truth.mac is None

    def test_vendors_from_profile_mix(self, cn_mobile_deployment):
        isp = cn_mobile_deployment.isps["cn-mobile-broadband"]
        allowed = {name for name, _w in isp.profile.vendor_mix}
        assert {t.vendor for t in isp.truths} <= allowed

    def test_services_bound_to_devices(self, cn_mobile_deployment):
        net = cn_mobile_deployment.network
        for truth in cn_mobile_deployment.all_truths():
            device = net.devices[truth.name]
            for key in truth.services:
                port = int(key.split("/")[1])
                assert port in device.udp_services or port in device.tcp_services

    def test_deterministic_in_seed(self):
        profiles = [profile_by_key("us-comcast-broadband")]
        a = build_deployment(profiles=profiles, scale=5_000, seed=3)
        b = build_deployment(profiles=profiles, scale=5_000, seed=3)
        ta = a.isps["us-comcast-broadband"].truths
        tb = b.isps["us-comcast-broadband"].truths
        assert [t.last_hop for t in ta] == [t.last_hop for t in tb]
        assert [t.vendor for t in ta] == [t.vendor for t in tb]

    def test_different_seed_differs(self):
        profiles = [profile_by_key("us-comcast-broadband")]
        a = build_deployment(profiles=profiles, scale=5_000, seed=3)
        b = build_deployment(profiles=profiles, scale=5_000, seed=4)
        ta = a.isps["us-comcast-broadband"].truths
        tb = b.isps["us-comcast-broadband"].truths
        assert [t.last_hop for t in ta] != [t.last_hop for t in tb]

    def test_comcast_wan_concentration(self):
        """Table II: Comcast last hops concentrate into few /64s (6.5%)."""
        dep = build_deployment(
            profiles=[profile_by_key("us-comcast-broadband")],
            scale=1_000, seed=5,
        )
        isp = dep.isps["us-comcast-broadband"]
        unique64 = {t.last_hop.slash64 for t in isp.truths}
        ratio = len(unique64) / len(isp.truths)
        assert ratio == pytest.approx(0.065, abs=0.02)

    def test_catalog_vendor_kinds(self):
        for profile in PAPER_PROFILES:
            for name, _weight in profile.vendor_mix:
                assert name in DEFAULT_CATALOG, name
