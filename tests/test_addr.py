"""Address/prefix arithmetic, cross-validated against the stdlib."""

import ipaddress

import pytest
from hypothesis import given, strategies as st

from repro.net.addr import (
    AddressError,
    IPv6Addr,
    IPv6Prefix,
    MacAddress,
    format_ipv6,
    is_eui64_iid,
    parse_ipv6,
)

addr_values = st.integers(min_value=0, max_value=(1 << 128) - 1)
mac_values = st.integers(min_value=0, max_value=(1 << 48) - 1)


class TestParseFormat:
    def test_parse_full_form(self):
        value = parse_ipv6("2001:0db8:0000:0000:0000:0000:0000:0001")
        assert value == 0x20010DB8000000000000000000000001

    def test_parse_compressed(self):
        assert parse_ipv6("2001:db8::1") == 0x20010DB8000000000000000000000001

    def test_parse_all_zero(self):
        assert parse_ipv6("::") == 0

    def test_parse_leading_compression(self):
        assert parse_ipv6("::1") == 1

    def test_parse_trailing_compression(self):
        assert parse_ipv6("2001:db8::") == 0x20010DB8 << 96

    def test_parse_embedded_ipv4(self):
        assert parse_ipv6("::ffff:192.0.2.1") == 0xFFFF_C0000201

    def test_parse_rejects_double_compression(self):
        with pytest.raises(AddressError):
            parse_ipv6("2001::db8::1")

    def test_parse_rejects_too_many_groups(self):
        with pytest.raises(AddressError):
            parse_ipv6("1:2:3:4:5:6:7:8:9")

    def test_parse_rejects_bad_hex(self):
        with pytest.raises(AddressError):
            parse_ipv6("2001:xyz::1")

    def test_parse_rejects_empty(self):
        with pytest.raises(AddressError):
            parse_ipv6("")

    def test_parse_rejects_bad_ipv4_octet(self):
        with pytest.raises(AddressError):
            parse_ipv6("::ffff:300.0.0.1")

    def test_format_canonical_compression(self):
        assert format_ipv6(0x20010DB8000000000000000000000001) == "2001:db8::1"

    def test_format_no_single_group_compression(self):
        # RFC 5952: a lone zero group is not compressed.
        value = parse_ipv6("2001:db8:0:1:1:1:1:1")
        assert format_ipv6(value) == "2001:db8:0:1:1:1:1:1"

    def test_format_leftmost_longest_run(self):
        value = parse_ipv6("2001:0:0:1:0:0:0:1")
        assert format_ipv6(value) == "2001:0:0:1::1"

    @given(addr_values)
    def test_roundtrip_matches_stdlib(self, value):
        ours = format_ipv6(value)
        stdlib = str(ipaddress.IPv6Address(value))
        assert ours == stdlib
        assert parse_ipv6(ours) == value

    @given(addr_values)
    def test_parse_stdlib_output(self, value):
        assert parse_ipv6(str(ipaddress.IPv6Address(value))) == value


class TestMacAddress:
    def test_from_string(self):
        mac = MacAddress.from_string("00:1a:2b:3c:4d:5e")
        assert mac.value == 0x001A2B3C4D5E
        assert str(mac) == "00:1a:2b:3c:4d:5e"

    def test_from_string_dashes(self):
        assert MacAddress.from_string("00-1A-2B-3C-4D-5E").value == 0x001A2B3C4D5E

    def test_oui(self):
        assert MacAddress(0x001A2B3C4D5E).oui == 0x001A2B

    def test_rejects_malformed(self):
        with pytest.raises(AddressError):
            MacAddress.from_string("00:11:22:33:44")

    def test_rejects_out_of_range(self):
        with pytest.raises(AddressError):
            MacAddress(1 << 48)

    def test_eui64_known_vector(self):
        # RFC 4291 App. A example: 34-56-78-9A-BC-DE -> 3656:78ff:fe9a:bcde
        mac = MacAddress.from_string("34:56:78:9a:bc:de")
        assert mac.to_eui64_iid() == 0x365678FFFE9ABCDE

    @given(mac_values)
    def test_eui64_roundtrip(self, value):
        mac = MacAddress(value)
        iid = mac.to_eui64_iid()
        assert is_eui64_iid(iid)
        assert MacAddress.from_eui64_iid(iid) == mac

    def test_from_eui64_rejects_non_eui(self):
        with pytest.raises(AddressError):
            MacAddress.from_eui64_iid(0x1234)


class TestIPv6Addr:
    def test_bytes_roundtrip(self):
        addr = IPv6Addr.from_string("2001:db8::42")
        assert IPv6Addr.from_bytes(addr.to_bytes()) == addr

    def test_from_bytes_rejects_wrong_length(self):
        with pytest.raises(AddressError):
            IPv6Addr.from_bytes(b"\x00" * 15)

    def test_iid_extraction(self):
        addr = IPv6Addr.from_string("2001:db8::dead:beef")
        assert addr.iid == 0xDEADBEEF

    def test_slash64(self):
        addr = IPv6Addr.from_string("2001:db8:1:2:3:4:5:6")
        assert str(addr.slash64) == "2001:db8:1:2::/64"

    def test_embedded_mac(self):
        mac = MacAddress.from_string("34:56:78:9a:bc:de")
        prefix = IPv6Prefix.from_string("2001:db8::/64")
        addr = IPv6Addr.from_eui64(prefix, mac)
        assert addr.embedded_mac() == mac

    def test_embedded_mac_absent(self):
        assert IPv6Addr.from_string("2001:db8::1").embedded_mac() is None

    def test_from_parts_rejects_oversize_iid(self):
        prefix = IPv6Prefix.from_string("2001:db8::/96")
        with pytest.raises(AddressError):
            IPv6Addr.from_parts(prefix, 1 << 40)

    def test_eui64_requires_slash64(self):
        with pytest.raises(AddressError):
            IPv6Addr.from_eui64(
                IPv6Prefix.from_string("2001:db8::/60"), MacAddress(1)
            )

    def test_ordering(self):
        a = IPv6Addr.from_string("2001:db8::1")
        b = IPv6Addr.from_string("2001:db8::2")
        assert a < b


class TestIPv6Prefix:
    def test_parse(self):
        prefix = IPv6Prefix.from_string("2001:db8::/32")
        assert prefix.length == 32
        assert str(prefix) == "2001:db8::/32"

    def test_rejects_host_bits(self):
        with pytest.raises(AddressError):
            IPv6Prefix.from_string("2001:db8::1/32")

    def test_rejects_missing_length(self):
        with pytest.raises(AddressError):
            IPv6Prefix.from_string("2001:db8::")

    def test_contains(self):
        prefix = IPv6Prefix.from_string("2001:db8::/32")
        assert prefix.contains(IPv6Addr.from_string("2001:db8:ffff::1"))
        assert not prefix.contains(IPv6Addr.from_string("2001:db9::1"))

    def test_contains_prefix(self):
        outer = IPv6Prefix.from_string("2001:db8::/32")
        inner = IPv6Prefix.from_string("2001:db8:1::/48")
        assert outer.contains_prefix(inner)
        assert not inner.contains_prefix(outer)

    def test_subprefix(self):
        block = IPv6Prefix.from_string("2001:db8::/32")
        assert str(block.subprefix(5, 64)) == "2001:db8:0:5::/64"

    def test_subprefix_index_inverse(self):
        block = IPv6Prefix.from_string("2001:db8::/32")
        sub = block.subprefix(12345, 64)
        assert block.subprefix_index(sub.network, 64) == 12345

    def test_subprefix_out_of_range(self):
        block = IPv6Prefix.from_string("2001:db8::/32")
        with pytest.raises(AddressError):
            block.subprefix(1 << 32, 64)

    def test_subprefixes_enumeration(self):
        block = IPv6Prefix.from_string("2001:db8::/32")
        subs = list(block.subprefixes(36))
        assert len(subs) == 16
        assert subs[0].network == block.network
        assert all(block.contains_prefix(s) for s in subs)

    def test_first_last(self):
        prefix = IPv6Prefix.from_string("2001:db8::/64")
        assert str(prefix.first) == "2001:db8::"
        assert str(prefix.last) == "2001:db8::ffff:ffff:ffff:ffff"

    def test_num_addresses(self):
        assert IPv6Prefix.from_string("2001:db8::/120").num_addresses == 256

    @given(addr_values, st.integers(min_value=0, max_value=128))
    def test_prefix_of_address_contains_it(self, value, length):
        addr = IPv6Addr(value)
        prefix = addr.prefix(length)
        assert prefix.contains(addr)
        # Cross-check the mask against the stdlib network computation.
        stdlib = ipaddress.IPv6Network((value, length), strict=False)
        assert prefix.network == int(stdlib.network_address)
