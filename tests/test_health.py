"""Health rules, the chaos ground-truth alignment, and the flight recorder.

Two load-bearing properties:

* **Journal alignment** — on a chaos run whose fault windows are aligned
  to the sampling grid, the ``hit-rate-collapse`` windows the engine
  reports equal the injector's journalled windows bucket for bucket, and
  a fault-free run yields zero windows (no false positives).
* **Post-mortem** — a watchdog-killed shard trips the flight recorder,
  and the resulting bundle is a readable artifact ``repro-xmap health``
  summarises.
"""

import json
import signal
import time

import pytest

from repro.core.scanner import ScanConfig
from repro.core.target import ScanRange
from repro.engine import Campaign, ProbeSpec, ThreadPoolBackend
from repro.faults import (
    LOSS_BURST,
    ROUTER_CRASH,
    FaultEvent,
    FaultSchedule,
)
from repro.net.spec import TopologySpec
from repro.telemetry import (
    EventLog,
    FlightRecorder,
    HealthEngine,
    HealthReport,
    HealthRule,
    SeriesSet,
    default_rules,
    hardening_rules,
    load_bundle,
)
from repro.telemetry.recorder import TRIGGER_EVENTS

SPEC = "2001:db8:1:50::/60-64"  # 16 targets behind cpe-ok, all answer
RATE = 2000.0
INTERVAL = 0.001  # 2 probes per bucket; fault windows are bucket-aligned

#: Both windows start and end on bucket boundaries, and the loss burst
#: drops everything (rate=1.0), so the collapse verdicts can be asserted
#: *equal* to the journal — not merely overlapping.
ALIGNED_SCHEDULE = FaultSchedule(
    seed=9,
    events=(
        FaultEvent(kind=LOSS_BURST, start=0.002, end=0.004, rate=1.0),
        FaultEvent(kind=ROUTER_CRASH, start=0.006, end=0.008,
                   device="cpe-ok"),
    ),
)


def _series(points) -> SeriesSet:
    """A synthetic one-counter series: {bucket: (sent, validated)}."""
    series = SeriesSet(INTERVAL)
    for bucket, (sent, validated) in points.items():
        if sent:
            series.record("scanner_probes_sent", (), bucket, sent)
        if validated:
            series.record("scanner_replies_validated", (), bucket, validated)
    return series


def _run(schedule=None, **campaign_kwargs):
    config = ScanConfig(scan_range=ScanRange.parse(SPEC), seed=1,
                        rate_pps=RATE, timeseries_interval=INTERVAL,
                        fault_schedule=schedule)
    campaign = Campaign(
        TopologySpec.mini(seed=1),
        {"chaos": config},
        probe=ProbeSpec.for_seed(1),
        shards=1,
        health=True,
        **campaign_kwargs,
    )
    return campaign, campaign.run()


class TestHealthRule:
    def test_rejects_unknown_kind_and_op(self):
        with pytest.raises(ValueError, match="kind"):
            HealthRule("r", signal="sent", kind="wiggle")
        with pytest.raises(ValueError, match="op"):
            HealthRule("r", signal="sent", op="!=")
        with pytest.raises(ValueError, match="min_buckets"):
            HealthRule("r", signal="sent", min_buckets=0)

    def test_round_trips_through_dict(self):
        rule = HealthRule("r", signal="loss", kind="spike", threshold=2.5,
                          min_value=1.0, severity="critical")
        assert HealthRule.from_dict(rule.to_dict()) == rule

    def test_default_rules_cover_the_issue_slos(self):
        names = {rule.name for rule in default_rules()}
        assert names == {"hit-rate-collapse", "probe-loss-spike",
                         "pacer-starvation", "shard-stall"}


class TestRuleKinds:
    def test_threshold_fires_and_coalesces(self):
        series = _series({0: (2, 2), 1: (2, 0), 2: (2, 0), 3: (2, 2)})
        rule = HealthRule("collapse", signal="hit_rate", op="<",
                          threshold=0.5)
        (window,) = HealthEngine([rule]).evaluate(series).windows
        assert window.buckets == (1, 3)
        assert window.t_start == pytest.approx(0.001)
        assert window.t_end == pytest.approx(0.003)
        assert window.value == 0.0  # worst (lowest) hit rate in the window

    def test_ratio_signals_skip_empty_buckets(self):
        # Bucket 1 sent nothing: hit_rate is undefined there, not zero.
        series = _series({0: (2, 2), 2: (2, 2)})
        rule = HealthRule("collapse", signal="hit_rate", op="<",
                          threshold=0.5)
        assert not HealthEngine([rule]).evaluate(series).windows

    def test_min_buckets_suppresses_short_windows(self):
        series = _series({0: (2, 2), 1: (2, 0), 2: (2, 2)})
        rule = HealthRule("collapse", signal="hit_rate", op="<",
                          threshold=0.5, min_buckets=2)
        assert not HealthEngine([rule]).evaluate(series).windows

    def test_spike_needs_min_value_floor(self):
        quiet = _series({b: (2, 2) for b in range(4)})
        spike = HealthRule("loss-spike", signal="loss", kind="spike",
                           threshold=3.0, min_value=1.0)
        assert not HealthEngine([spike]).evaluate(quiet).windows
        noisy = _series({0: (2, 2), 1: (2, 2), 2: (2, 0), 3: (2, 2)})
        (window,) = HealthEngine([spike]).evaluate(noisy).windows
        assert window.buckets == (2, 3)
        assert window.value == 2.0  # worst (highest) loss in the window

    def test_drop_exempts_final_partial_bucket(self):
        rule = HealthRule("starved", signal="sent", kind="drop",
                          threshold=0.5)
        trailing = _series({0: (4, 4), 1: (4, 4), 2: (1, 1)})
        assert not HealthEngine([rule]).evaluate(trailing).windows
        interior = _series({0: (4, 4), 1: (1, 1), 2: (4, 4)})
        (window,) = HealthEngine([rule]).evaluate(interior).windows
        assert window.buckets == (1, 2)

    def test_stall_only_inside_active_span(self):
        rule = HealthRule("stall", signal="sent", kind="stall")
        # Bucket 2 is silent between active buckets: a stall.  The sparse
        # leading/trailing buckets outside the span are not.
        series = _series({1: (2, 2), 3: (2, 2)})
        (window,) = HealthEngine([rule]).evaluate(series).windows
        assert window.buckets == (2, 3)

    def test_raw_counter_fallback_signal(self):
        series = SeriesSet(INTERVAL)
        series.record("scanner_probes_sent", (), 0, 2)
        series.record("pacer_stalls", (), 0, 7)
        rule = HealthRule("stalls", signal="pacer_stalls", op=">=",
                          threshold=5.0)
        (window,) = HealthEngine([rule]).evaluate(series).windows
        assert window.value == 7.0


class TestHealthReport:
    def test_emit_journals_degraded_then_recovered(self):
        series = _series({0: (2, 2), 1: (2, 0), 2: (2, 2)})
        report = HealthEngine().evaluate(series)
        log = EventLog()
        report.emit(log)
        degraded = log.of_type("health_degraded")
        recovered = log.of_type("health_recovered")
        assert len(degraded) == len(report.windows)
        assert len(recovered) == len(report.windows)
        assert degraded[0]["rule"] in {r.name for r in default_rules()}

    def test_summary_and_round_trip(self):
        series = _series({0: (2, 2), 1: (2, 0), 2: (2, 2)})
        report = HealthEngine().evaluate(series)
        assert report.degraded
        assert "degraded" in report.summary()
        back = HealthReport.from_dict(
            json.loads(json.dumps(report.to_dict()))
        )
        assert back.to_dict() == report.to_dict()
        healthy = HealthEngine().evaluate(_series({0: (2, 2)}))
        assert not healthy.degraded
        assert "healthy" in healthy.summary()


class TestChaosAlignment:
    """Verdicts vs the injector journal: the labelled-dataset check."""

    def test_fault_free_run_is_clean(self):
        _, result = _run()
        assert result.health is not None
        assert result.health.windows == []
        assert not result.events.of_type("health_degraded")

    def test_collapse_windows_equal_the_journal(self):
        _, result = _run(schedule=ALIGNED_SCHEDULE)
        applied = result.events.of_type("fault_applied")
        journal = [tuple(e["window"]) for e in applied]
        assert journal == [(0.002, 0.004), (0.006, 0.008)]

        report = result.health
        collapses = report.windows_for("hit-rate-collapse")
        flagged = [
            (round(w.t_start / INTERVAL), round(w.t_end / INTERVAL))
            for w in collapses
        ]
        expected = [
            (round(start / INTERVAL), round(end / INTERVAL))
            for start, end in journal
        ]
        assert flagged == expected
        # Every other verdict (the loss spike) sits inside a journal
        # window too — nothing fired outside the injected chaos.
        for window in report.windows:
            assert any(
                window.t_start < end and window.t_end > start
                for start, end in journal
            ), window
        assert len(result.events.of_type("health_degraded")) == (
            len(report.windows)
        )


class TestFlightRecorder:
    def _recorder(self, tmp_path, **kwargs):
        return FlightRecorder(str(tmp_path), campaign_id="t1", **kwargs)

    def test_trigger_event_dumps_bundle(self, tmp_path):
        recorder = self._recorder(tmp_path)
        log = EventLog(campaign_id="t1")
        recorder.attach(log)
        log.emit("shard_finished", job_id="j0")
        assert not recorder.bundles
        log.emit("watchdog_timeout", job_id="j1")
        (path,) = recorder.bundles
        bundle = load_bundle(path)
        assert bundle["reason"] == "watchdog_timeout"
        assert [e["type"] for e in bundle["events"]] == [
            "shard_finished", "watchdog_timeout",
        ]

    def test_all_trigger_types_dump(self, tmp_path):
        for trigger in sorted(TRIGGER_EVENTS):
            recorder = self._recorder(tmp_path / trigger)
            log = EventLog()
            recorder.attach(log)
            log.emit(trigger)
            assert len(recorder.bundles) == 1, trigger

    def test_bundle_carries_metrics_and_series(self, tmp_path):
        recorder = self._recorder(tmp_path)
        series = SeriesSet(INTERVAL)
        series.record("scanner_probes_sent", (), 0, 4)
        recorder.series = series
        path = recorder.dump("manual")
        bundle = load_bundle(path)
        assert bundle["timeseries"]["interval"] == INTERVAL
        assert bundle["format"] == "repro-flight-recorder"

    def test_max_bundles_evicts_oldest(self, tmp_path):
        import pathlib

        recorder = self._recorder(tmp_path, max_bundles=2)
        paths = [recorder.dump(f"r{i}") for i in range(3)]
        assert recorder.bundles == paths[1:]
        assert not pathlib.Path(paths[0]).exists()
        assert all(pathlib.Path(p).exists() for p in paths[1:])

    def test_load_bundle_rejects_other_documents(self, tmp_path):
        path = tmp_path / "not-a-bundle.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError, match="not a repro-flight-recorder"):
            load_bundle(str(path))

    def test_sigterm_scope_dumps_and_chains(self, tmp_path):
        recorder = self._recorder(tmp_path)
        chained = []
        previous = signal.signal(
            signal.SIGTERM, lambda signum, frame: chained.append(signum)
        )
        try:
            with recorder.sigterm_scope():
                handler = signal.getsignal(signal.SIGTERM)
                handler(signal.SIGTERM, None)
            # Scope exited: the chained handler is restored verbatim.
            assert signal.getsignal(signal.SIGTERM) is not handler
            assert chained == [signal.SIGTERM]
            assert len(recorder.bundles) == 1
            assert load_bundle(recorder.bundles[0])["reason"] == "sigterm"
        finally:
            signal.signal(signal.SIGTERM, previous)


class TestWatchdogPostMortem:
    """A watchdog-killed shard leaves a bundle ``health`` can read."""

    def test_killed_shard_produces_readable_bundle(self, tmp_path, capsys):
        hung = {"chaos.s01of02": 1}

        def hook(job):
            if hung.get(job.job_id, 0) > 0:
                hung[job.job_id] -= 1
                time.sleep(1.5)  # well past the shard deadline

        config = ScanConfig(scan_range=ScanRange.parse(SPEC), seed=1,
                            rate_pps=RATE, timeseries_interval=INTERVAL)
        campaign = Campaign(
            TopologySpec.mini(seed=1),
            {"chaos": config},
            probe=ProbeSpec.for_seed(1),
            shards=2,
            executor=ThreadPoolBackend(workers=2, fault_hook=hook,
                                       shard_timeout=0.25),
            max_retries=2,
            backoff_base=0.0,
            health=True,
            flight_dir=str(tmp_path / "flight"),
        )
        result = campaign.run()
        assert result.metrics.value("campaign_watchdog_kills") == 1
        # The timeout tripped an automatic dump mid-campaign.
        assert result.flight_bundles
        bundle = load_bundle(result.flight_bundles[0])
        assert bundle["reason"] == "watchdog_timeout"
        assert any(
            e["type"] == "watchdog_timeout" for e in bundle["events"]
        )

        from repro.cli import main
        assert main(["health", result.flight_bundles[0]]) == 0
        out = capsys.readouterr().out
        assert "watchdog_timeout" in out
        assert "flight recorder" in out

    def test_health_cli_rejects_unreadable_artifact(self, tmp_path, capsys):
        from repro.cli import main
        missing = str(tmp_path / "nope.json")
        assert main(["health", missing]) == 1
        assert "nope.json" in capsys.readouterr().err


class TestHardeningRules:
    """Detectors over the host-fault / supervision counter families."""

    def test_hardening_rules_name_the_chaos_counters(self):
        rules = {rule.name: rule for rule in hardening_rules()}
        assert set(rules) == {"host-fault-pressure", "shard-degradation",
                              "store-fsync-failure", "recorder-degraded"}
        assert rules["shard-degradation"].severity == "critical"

    def test_host_fault_buckets_localised(self):
        series = SeriesSet(INTERVAL)
        series.record("scanner_probes_sent", (), 0, 2)
        series.record("scanner_probes_sent", (), 5, 2)
        # Two labelled variants of the family, summed by named().
        series.record("host_faults_injected",
                      (("kind", "fs-error"), ("op", "write")), 2, 1)
        series.record("host_faults_injected",
                      (("kind", "fs-crash"), ("op", "rename")), 3, 2)
        report = HealthEngine(hardening_rules()).evaluate(series)
        (window,) = report.windows
        assert window.rule == "host-fault-pressure"
        assert window.buckets == (2, 4)
        assert window.value == 2.0

    def test_degraded_shard_is_critical(self):
        series = SeriesSet(INTERVAL)
        series.record("scanner_probes_sent", (), 0, 2)
        series.record("supervisor_shards_degraded",
                      (("reason", "breaker-open"),), 1, 1)
        report = HealthEngine(hardening_rules()).evaluate(series)
        (window,) = report.windows
        assert window.rule == "shard-degradation"
        assert window.severity == "critical"

    def test_clean_series_never_fires(self):
        series = _series({0: (2, 2), 1: (2, 2)})
        rules = default_rules() + hardening_rules()
        assert HealthEngine(rules).evaluate(series).windows == []


class TestRecorderDegradation:
    """Dumps never raise on storage failure: the recorder runs on the
    campaign's failure paths, where the disk may be the broken part."""

    def test_failed_dump_flags_degraded_not_raises(self, tmp_path):
        blocker = tmp_path / "flight"
        blocker.write_text("a file where the bundle dir should be")
        recorder = FlightRecorder(str(blocker), campaign_id="t1")
        from repro.telemetry import MetricsRegistry

        recorder.metrics = MetricsRegistry()
        assert recorder.dump("manual") == ""
        assert recorder.degraded
        assert recorder.bundles == []
        (record,) = [e for e in recorder.events
                     if e["type"] == "recorder_dump_failed"]
        assert record["reason"] == "manual"
        assert recorder.metrics.counter("recorder_dump_failures").value == 1

    def test_trigger_on_dead_disk_does_not_kill_the_campaign(self, tmp_path):
        blocker = tmp_path / "flight"
        blocker.write_text("still a file")
        recorder = FlightRecorder(str(blocker))
        log = EventLog()
        recorder.attach(log)
        log.emit("watchdog_timeout", job_id="j1")  # must not raise
        assert recorder.degraded and recorder.bundles == []
        # The recorder keeps collecting after the failed dump.
        log.emit("shard_finished", job_id="j2")
        assert [e["type"] for e in recorder.events][-1] == "shard_finished"

    def test_successful_dump_after_failure_clears_nothing_but_lands(
        self, tmp_path
    ):
        blocker = tmp_path / "flight"
        blocker.write_text("file")
        recorder = FlightRecorder(str(blocker))
        assert recorder.dump("first") == ""
        blocker.unlink()  # the disk comes back
        path = recorder.dump("second")
        assert path and load_bundle(path)["reason"] == "second"
        assert recorder.degraded  # sticky: the trail has a hole
