"""Failure injection: loss, filtering ISPs, and rate-limited devices."""

from repro.core.probes.icmp import IcmpEchoProbe
from repro.core.scanner import ScanConfig, Scanner
from repro.core.target import ScanRange
from repro.core.validate import Validator
from repro.discovery.periphery import discover
from repro.discovery.subnet import infer_subprefix_length
from repro.isp.builder import build_deployment
from repro.isp.profiles import profile_by_key
from repro.net.device import ErrorRateLimiter

from tests.topo import build_mini


class TestPacketLoss:
    def test_discovery_degrades_gracefully_under_loss(self):
        dep = build_deployment(
            profiles=[profile_by_key("in-jio-broadband")],
            scale=20_000, seed=9, loss_rate=0.2,
        )
        isp = dep.isps["in-jio-broadband"]
        census = discover(dep.network, dep.vantage, isp.scan_spec, seed=1)
        # 6 hops round trip at 20% loss -> ~26% delivery; the scan still
        # finds a meaningful subset and never invents devices.
        assert 0 < census.n_unique < isp.n_devices
        truth = {t.last_hop.value for t in isp.truths}
        assert {r.last_hop.value for r in census.records} <= truth

    def test_probes_per_target_raises_recall(self):
        """ZMap's --probes N: retransmission beats loss."""
        from repro.core.probes.icmp import IcmpEchoProbe
        from repro.core.validate import Validator
        from repro.core.scanner import ScanConfig, Scanner
        from repro.core.target import ScanRange
        from repro.discovery.periphery import census_from_scan

        def run(probes_per_target, seed):
            dep = build_deployment(
                profiles=[profile_by_key("in-jio-broadband")],
                scale=20_000, seed=9, loss_rate=0.25,
            )
            isp = dep.isps["in-jio-broadband"]
            probe = IcmpEchoProbe(Validator(bytes(range(16))), hop_limit=255)
            config = ScanConfig(
                scan_range=ScanRange.parse(isp.scan_spec),
                seed=seed,
                probes_per_target=probes_per_target,
            )
            result = Scanner(dep.network, dep.vantage, probe, config).run()
            return census_from_scan(result).n_unique, isp.n_devices

        single, total = run(1, seed=2)
        triple, _ = run(4, seed=2)
        # Per-probe delivery over 6 lossy hops each way is ~18%; four copies
        # should roughly triple the recall of one.
        assert triple > 2 * single
        assert triple > 0.35 * total

    def test_merged_rescans_recover_lost_devices(self):
        dep = build_deployment(
            profiles=[profile_by_key("in-jio-broadband")],
            scale=20_000, seed=9, loss_rate=0.15,
        )
        isp = dep.isps["in-jio-broadband"]
        merged = discover(dep.network, dep.vantage, isp.scan_spec, seed=1)
        for seed in range(2, 6):
            merged = merged.merged_with(
                discover(dep.network, dep.vantage, isp.scan_spec, seed=seed)
            )
        single = discover(dep.network, dep.vantage, isp.scan_spec, seed=99)
        assert merged.n_unique >= single.n_unique


class TestFilteringIsp:
    def test_error_dropping_isp_hides_its_customers(self):
        profile = profile_by_key("in-bsnl-broadband")
        filtered_profile = type(profile)(
            **{**profile.__dict__, "key": "bsnl-filtered",
               "drop_external_errors": True}
        )
        dep = build_deployment(profiles=[filtered_profile], scale=20_000,
                               seed=3)
        isp = dep.isps["bsnl-filtered"]
        census = discover(dep.network, dep.vantage, isp.scan_spec, seed=1)
        # §IV-C: upstream ICMPv6 filtering hides everything downstream —
        # here the ISP router also filters the CPEs' own errors in transit?
        # No: errors originate at CPEs and transit the ISP unfiltered, so
        # only ISP-originated errors vanish.  Echo replies still work.
        truth = {t.last_hop.value for t in isp.truths}
        assert {r.last_hop.value for r in census.records} <= truth


class TestIcmpRateLimiting:
    def test_rate_limited_cpe_answers_once_per_burst(self):
        topo = build_mini()
        topo.cpe_ok.error_limiter = ErrorRateLimiter(
            rate_per_second=0.0001, burst=1
        )
        probe = IcmpEchoProbe(Validator(bytes(range(16))))
        config = ScanConfig(
            scan_range=ScanRange.parse("2001:db8:1:50::/60-64"),
            rate_pps=1e6,  # virtually no time between probes
            seed=1,
        )
        result = Scanner(topo.network, topo.vantage, probe, config).run()
        # 16 probes into the /60 but the limiter allows a single error.
        assert result.stats.sent == 16
        assert result.stats.validated == 1
        assert topo.cpe_ok.errors_suppressed >= 10

    def test_slow_scan_is_not_limited(self):
        topo = build_mini()
        topo.cpe_ok.error_limiter = ErrorRateLimiter(
            rate_per_second=5, burst=1
        )
        probe = IcmpEchoProbe(Validator(bytes(range(16))))
        config = ScanConfig(
            scan_range=ScanRange.parse("2001:db8:1:50::/60-64"),
            rate_pps=2.0,  # slower than the device's error budget
            seed=1,
        )
        result = Scanner(topo.network, topo.vantage, probe, config).run()
        assert result.stats.validated == 16


class TestInferenceRobustness:
    def test_empty_block_yields_no_boundary(self):
        dep = build_deployment(
            profiles=[profile_by_key("in-jio-broadband")],
            scale=20_000, seed=5,
        )
        from repro.net.addr import IPv6Prefix

        empty = IPv6Prefix.from_string("2405:200:8000::/50")  # unpopulated
        result = infer_subprefix_length(
            dep.network, dep.vantage, empty, seed=1, max_preliminary=64
        )
        assert result.boundary_length is None
        assert not result.confident

    def test_inference_survives_loss(self):
        dep = build_deployment(
            profiles=[profile_by_key("cn-unicom-broadband")],
            scale=20_000, seed=5, loss_rate=0.05,
        )
        isp = dep.isps["cn-unicom-broadband"]
        result = infer_subprefix_length(
            dep.network, dep.vantage, isp.scan_base, seed=1, witnesses=5
        )
        # With several witnesses the majority vote absorbs lost probes.
        assert result.boundary_length in (60, 61)
