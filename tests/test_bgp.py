"""The global BGP substrate and the Table IX pipeline."""

import pytest

from repro.loop.bgp import (
    GENERAL_IID_MIX,
    LOOP_IID_MIX,
    TOP_LOOP_ASES,
    BgpPrefixInfo,
    BgpTable,
    build_global_internet,
)
from repro.loop.detector import find_loops
from repro.net.addr import IPv6Addr, IPv6Prefix


class TestBgpTable:
    def test_lookup(self):
        table = BgpTable()
        table.add(BgpPrefixInfo(IPv6Prefix.from_string("2a00::/32"), 64512, "BR"))
        info = table.lookup(IPv6Addr.from_string("2a00::1"))
        assert info.asn == 64512
        assert info.country == "BR"

    def test_longest_match(self):
        table = BgpTable()
        table.add(BgpPrefixInfo(IPv6Prefix.from_string("2a00::/16"), 1, "US"))
        table.add(BgpPrefixInfo(IPv6Prefix.from_string("2a00:1::/32"), 2, "DE"))
        assert table.lookup(IPv6Addr.from_string("2a00:1::5")).asn == 2
        assert table.lookup(IPv6Addr.from_string("2a00:2::5")).asn == 1

    def test_miss(self):
        assert BgpTable().lookup(IPv6Addr.from_string("2400::1")) is None


@pytest.fixture(scope="module")
def world():
    return build_global_internet(seed=3, scale=2_000, n_tail_ases=40)


class TestGlobalInternet:
    def test_as_count(self, world):
        assert len(world.ases) == len(TOP_LOOP_ASES) + 40
        assert len(world.table) == len(world.ases)

    def test_blocks_are_disjoint(self, world):
        networks = [a.block.network for a in world.ases]
        assert len(networks) == len(set(networks))

    def test_loops_exist_in_top_ases(self, world):
        top = {asn for asn, _c, _n in TOP_LOOP_ASES}
        for as_truth in world.ases:
            if as_truth.asn in top:
                assert as_truth.n_loops >= 2

    def test_devices_inside_as_blocks(self, world):
        for as_truth in world.ases:
            assert as_truth.n_devices >= as_truth.n_loops

    def test_iid_mixes_sum_to_one(self):
        assert sum(s for _c, s in GENERAL_IID_MIX) == pytest.approx(1.0)
        assert sum(s for _c, s in LOOP_IID_MIX) == pytest.approx(1.0, abs=0.01)

    def test_loop_detection_per_as(self, world):
        """Sweep a loop-dense AS and a couple of tail ASes: the detector's
        findings match each AS's ground truth."""
        for as_truth in world.ases[:3]:
            survey = find_loops(
                world.network, world.vantage, as_truth.scan_spec, seed=9
            )
            assert survey.n_unique == as_truth.n_loops

    def test_bgp_attribution_of_findings(self, world):
        as_truth = world.ases[0]
        survey = find_loops(
            world.network, world.vantage, as_truth.scan_spec, seed=9
        )
        for record in survey.records:
            info = world.table.lookup(record.last_hop)
            assert info is not None
            assert info.asn == as_truth.asn
