"""repro.faults: deterministic chaos — schedules, injection, adaptation."""

import pickle

import pytest

from repro.core.probes.icmp import IcmpEchoProbe
from repro.core.scanner import ScanConfig, Scanner
from repro.core.target import ScanRange
from repro.core.validate import Validator
from repro.faults import (
    BLACKHOLE,
    LOSS_BURST,
    RATE_LIMIT,
    ROUTE_FLAP,
    ROUTER_CRASH,
    FaultError,
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    ScheduleError,
)
from repro.net.device import ErrorRateLimiter
from repro.telemetry.metrics import MetricsRegistry

from tests.topo import build_mini

LAN_OK = "2001:db8:1:50::/60-64"  # 16 targets behind cpe-ok, all answer
BOTH_LANS = "2001:db8:1::/56-64"  # 256 targets; 32 answer (both CPE LANs)


def stats_key(stats):
    """Every ScanStats field except wall-clock time (not deterministic)."""
    data = vars(stats).copy()
    data.pop("wall_seconds", None)
    return data


def scan(range_text=LAN_OK, schedule=None, rate_pps=2000.0, batched=False,
         seed=1, **knobs):
    topo = build_mini()
    probe = IcmpEchoProbe(Validator(bytes(range(16))))
    config = ScanConfig(
        scan_range=ScanRange.parse(range_text),
        rate_pps=rate_pps,
        seed=seed,
        fault_schedule=schedule,
        **knobs,
    )
    registry = MetricsRegistry()
    scanner = Scanner(topo.network, topo.vantage, probe, config,
                      metrics=registry)
    result = scanner.run_batched() if batched else scanner.run()
    return topo, scanner, result, registry


class TestScheduleValidation:
    def test_json_round_trip(self):
        schedule = FaultSchedule(
            seed=7,
            events=(
                FaultEvent(kind=LOSS_BURST, start=0.001, end=0.002, rate=0.5,
                           link=("isp", "cpe-ok")),
                FaultEvent(kind=ROUTER_CRASH, start=0.003, end=0.004,
                           device="cpe-ok"),
                FaultEvent(kind=RATE_LIMIT, start=0.005, end=0.006,
                           device="cpe-ok", rate=10.0, burst=2.0),
                FaultEvent(kind=BLACKHOLE, start=0.007, end=0.008,
                           device="isp", prefix="2001:db8:1:50::/60"),
            ),
        )
        assert FaultSchedule.from_json(schedule.to_json()) == schedule

    def test_from_file(self, tmp_path):
        path = tmp_path / "sched.json"
        schedule = FaultSchedule(
            seed=3,
            events=(FaultEvent(kind=LOSS_BURST, start=0.0, end=1.0,
                               rate=0.1),),
        )
        path.write_text(schedule.to_json())
        assert FaultSchedule.from_file(path) == schedule

    def test_unknown_kind_rejected(self):
        with pytest.raises(ScheduleError, match="unknown fault kind"):
            FaultEvent(kind="meteor-strike", start=0.0, end=1.0).validate()

    def test_bad_window_rejected(self):
        with pytest.raises(ScheduleError, match="window"):
            FaultEvent(kind=LOSS_BURST, start=0.5, end=0.5,
                       rate=0.1).validate()

    def test_loss_rate_bounds(self):
        with pytest.raises(ScheduleError, match="rate"):
            FaultEvent(kind=LOSS_BURST, start=0.0, end=1.0,
                       rate=1.5).validate()
        with pytest.raises(ScheduleError, match="rate"):
            FaultEvent(kind=LOSS_BURST, start=0.0, end=1.0).validate()

    def test_device_required(self):
        with pytest.raises(ScheduleError, match="device is required"):
            FaultEvent(kind=ROUTER_CRASH, start=0.0, end=1.0).validate()

    def test_prefix_required(self):
        with pytest.raises(ScheduleError, match="prefix is required"):
            FaultEvent(kind=BLACKHOLE, start=0.0, end=1.0,
                       device="isp").validate()

    def test_unknown_field_rejected(self):
        with pytest.raises(ScheduleError, match="unknown fault event field"):
            FaultEvent.from_dict(
                {"kind": LOSS_BURST, "start": 0, "end": 1, "rate": 0.5,
                 "severity": "extreme"}
            )

    def test_malformed_json_rejected(self):
        with pytest.raises(ScheduleError, match="not valid JSON"):
            FaultSchedule.from_json("{truncated")
        with pytest.raises(ScheduleError, match="JSON object"):
            FaultSchedule.from_json("[1, 2]")
        with pytest.raises(ScheduleError, match="seed"):
            FaultSchedule.from_json('{"seed": "lots", "events": []}')

    def test_overlap_same_resource_rejected(self):
        with pytest.raises(ScheduleError, match="overlapping"):
            FaultSchedule(events=(
                FaultEvent(kind=BLACKHOLE, start=0.0, end=2.0, device="isp",
                           prefix="2001:db8:1:50::/60"),
                FaultEvent(kind=ROUTE_FLAP, start=1.0, end=3.0, device="isp",
                           prefix="2001:db8:1:50::/60"),
            ))

    def test_disjoint_windows_and_distinct_resources_allowed(self):
        FaultSchedule(events=(
            # Same resource, back-to-back windows: fine.
            FaultEvent(kind=BLACKHOLE, start=0.0, end=1.0, device="isp",
                       prefix="2001:db8:1:50::/60"),
            FaultEvent(kind=ROUTE_FLAP, start=1.0, end=2.0, device="isp",
                       prefix="2001:db8:1:50::/60"),
            # Overlapping windows on different devices: fine.
            FaultEvent(kind=ROUTER_CRASH, start=0.5, end=1.5,
                       device="cpe-ok"),
            FaultEvent(kind=ROUTER_CRASH, start=0.5, end=1.5,
                       device="cpe-vuln"),
        ))

    def test_config_with_schedule_pickles(self):
        schedule = FaultSchedule(
            seed=5,
            events=(FaultEvent(kind=LOSS_BURST, start=0.0, end=0.01,
                               rate=0.3),),
        )
        config = ScanConfig(scan_range=ScanRange.parse(LAN_OK),
                            fault_schedule=schedule)
        clone = pickle.loads(pickle.dumps(config))
        assert clone.fault_schedule == schedule


class TestArming:
    def test_unknown_device_rejected_at_arm(self):
        topo = build_mini()
        schedule = FaultSchedule(events=(
            FaultEvent(kind=ROUTER_CRASH, start=0.0, end=1.0,
                       device="no-such-router"),
        ))
        with pytest.raises(FaultError, match="unknown device"):
            FaultInjector(topo.network, schedule).arm()

    def test_vantage_crash_rejected(self):
        topo = build_mini()
        schedule = FaultSchedule(events=(
            FaultEvent(kind=ROUTER_CRASH, start=0.0, end=1.0,
                       device=topo.vantage.name),
        ))
        injector = FaultInjector(topo.network, schedule,
                                 protected=(topo.vantage.name,))
        with pytest.raises(FaultError, match="protected"):
            injector.arm()

    def test_double_arming_rejected(self):
        topo = build_mini()
        schedule = FaultSchedule(events=(
            FaultEvent(kind=LOSS_BURST, start=0.0, end=1.0, rate=0.5),
        ))
        FaultInjector(topo.network, schedule).arm()
        with pytest.raises(FaultError, match="already armed"):
            FaultInjector(topo.network, schedule).arm()

    def test_flap_without_route_fails_fast(self):
        schedule = FaultSchedule(events=(
            FaultEvent(kind=ROUTE_FLAP, start=0.0, end=0.004, device="isp",
                       prefix="2001:db8:ffff::/48"),
        ))
        with pytest.raises(FaultError, match="no route"):
            scan(schedule=schedule)


class TestFaultEffects:
    def test_loss_burst_drops_probes(self):
        schedule = FaultSchedule(seed=9, events=(
            FaultEvent(kind=LOSS_BURST, start=0.0, end=1.0, rate=1.0),
        ))
        topo, _, result, registry = scan(schedule=schedule)
        assert result.stats.validated == 0
        assert registry.value("fault_packets_lost") > 0
        # restore() leaves the network pristine.
        assert topo.network.faults is None
        assert topo.network.link_loss == {}

    def test_loss_burst_on_one_link_spares_others(self):
        # Kill the isp -> cpe-ok link only: cpe-vuln's LAN still answers.
        schedule = FaultSchedule(seed=9, events=(
            FaultEvent(kind=LOSS_BURST, start=0.0, end=1.0, rate=1.0,
                       link=("isp", "cpe-ok")),
        ))
        _, _, result, _ = scan(range_text=BOTH_LANS, schedule=schedule)
        responders = {str(r.responder) for r in result.results}
        assert result.stats.validated == 16
        assert "2001:db8:0:5::dead:beef" not in responders  # cpe-ok: dark
        assert "2001:db8:0:6::1234" in responders  # cpe-vuln: untouched

    def test_router_crash_window_goes_dark_then_reboots(self):
        # Crash cpe-ok for the middle of the scan: targets probed during
        # the window vanish, targets after the reboot answer again.
        schedule = FaultSchedule(events=(
            FaultEvent(kind=ROUTER_CRASH, start=0.002, end=0.004,
                       device="cpe-ok"),
        ))
        topo, _, result, _ = scan(schedule=schedule)
        assert 0 < result.stats.validated < 16
        # Rebooted: back in the topology, cold neighbor cache.
        assert topo.network.devices["cpe-ok"] is topo.cpe_ok

    def test_rate_limit_window_suppresses_errors(self):
        schedule = FaultSchedule(events=(
            FaultEvent(kind=RATE_LIMIT, start=0.0, end=1.0, device="cpe-ok",
                       rate=0.0001, burst=1.0),
        ))
        topo, _, result, _ = scan(schedule=schedule)
        original = topo.cpe_ok.error_limiter
        assert result.stats.validated == 1  # one error per burst
        # The original limiter object is restored at scan end.
        assert topo.cpe_ok.error_limiter is original

    def test_blackhole_window_restores_route(self):
        schedule = FaultSchedule(events=(
            FaultEvent(kind=BLACKHOLE, start=0.002, end=0.004, device="isp",
                       prefix="2001:db8:1:50::/60"),
        ))
        topo, _, result, _ = scan(schedule=schedule)
        assert 0 < result.stats.validated < 16
        # The delegated route came back: a fresh fault-free scan is whole.
        _, _, clean, _ = scan()
        assert clean.stats.validated == 16

    def test_route_flap_reconverges(self):
        schedule = FaultSchedule(events=(
            FaultEvent(kind=ROUTE_FLAP, start=0.002, end=0.004, device="isp",
                       prefix="2001:db8:1:50::/60"),
        ))
        topo, _, result, _ = scan(schedule=schedule)
        assert 0 < result.stats.validated < 16
        routes = [
            r for r in topo.isp.table.routes()
            if str(r.prefix) == "2001:db8:1:50::/60"
        ]
        assert len(routes) == 1  # re-announced exactly once

    def test_fault_records_journal_applies_and_reverts(self):
        schedule = FaultSchedule(events=(
            FaultEvent(kind=ROUTER_CRASH, start=0.002, end=0.004,
                       device="cpe-ok"),
            FaultEvent(kind=LOSS_BURST, start=0.005, end=0.006, rate=0.5),
        ))
        _, scanner, _, registry = scan(schedule=schedule)
        records = scanner.fault_injector.records
        assert [r["type"] for r in records] == [
            "fault_applied", "fault_reverted",
            "fault_applied", "fault_reverted",
        ]
        assert records[0]["device"] == "cpe-ok"
        assert all("t_virtual" in r for r in records)
        assert registry.value("fault_events", kind=ROUTER_CRASH,
                              phase="applied") == 1

    def test_mid_window_restore_reverts_on_scan_end(self):
        # The window outlives the scan; restore() must revert it anyway.
        schedule = FaultSchedule(events=(
            FaultEvent(kind=ROUTER_CRASH, start=0.002, end=999.0,
                       device="cpe-ok"),
        ))
        topo, scanner, _, _ = scan(schedule=schedule)
        assert "cpe-ok" in topo.network.devices
        assert topo.network.faults is None
        revert = scanner.fault_injector.records[-1]
        assert revert["type"] == "fault_reverted"
        assert revert["reason"] == "scan-end"


class TestDeterminism:
    SCHEDULE = FaultSchedule(seed=42, events=(
        FaultEvent(kind=LOSS_BURST, start=0.0005, end=0.0015, rate=0.6),
        FaultEvent(kind=ROUTER_CRASH, start=0.002, end=0.003,
                   device="cpe-ok"),
        FaultEvent(kind=RATE_LIMIT, start=0.0035, end=0.0045,
                   device="cpe-ok", rate=200.0, burst=1.0),
        FaultEvent(kind=BLACKHOLE, start=0.005, end=0.006, device="isp",
                   prefix="2001:db8:1:50::/60"),
        FaultEvent(kind=ROUTE_FLAP, start=0.0065, end=0.007, device="isp",
                   prefix="2001:db8:1:50::/60"),
    ))

    # At 25 kpps the 256-target scan spans ~0.01 virtual seconds, so the
    # schedule's windows (0.0005-0.007) land mid-stream and bite.
    RATE = 25_000.0

    def test_same_seed_same_schedule_bit_identical(self):
        runs = [scan(range_text=BOTH_LANS, schedule=self.SCHEDULE,
                     rate_pps=self.RATE)
                for _ in range(2)]
        digests = [r.dedup_digest() for _, _, r, _ in runs]
        assert digests[0] == digests[1]
        assert stats_key(runs[0][2].stats) == stats_key(runs[1][2].stats)
        assert (runs[0][1].fault_injector.records
                == runs[1][1].fault_injector.records)

    def test_different_chaos_seed_differs(self):
        # Only the loss draws consume the chaos RNG, so give the whole scan
        # a lossy window over all-responding targets: a different fault
        # seed must lose a different subset.
        def lossy(seed):
            return FaultSchedule(seed=seed, events=(
                FaultEvent(kind=LOSS_BURST, start=0.0, end=1.0, rate=0.2),
            ))

        _, _, a, _ = scan(schedule=lossy(42))
        _, _, b, _ = scan(schedule=lossy(43))
        assert a.dedup_digest() != b.dedup_digest()

    def test_serial_and_batched_identical_under_faults(self):
        _, _, serial, _ = scan(range_text=BOTH_LANS, schedule=self.SCHEDULE,
                               rate_pps=self.RATE)
        _, _, batched, _ = scan(range_text=BOTH_LANS, schedule=self.SCHEDULE,
                                rate_pps=self.RATE, batched=True)
        assert serial.dedup_digest() == batched.dedup_digest()
        assert stats_key(serial.stats) == stats_key(batched.stats)

    def test_serial_and_batched_identical_hardened_under_faults(self):
        knobs = dict(retransmit=2, retransmit_backoff=0.0002,
                     adaptive_rate=True, adaptive_window=4,
                     rate_pps=self.RATE)
        s_topo, _, serial, s_reg = scan(
            range_text=BOTH_LANS, schedule=self.SCHEDULE, **knobs
        )
        b_topo, _, batched, b_reg = scan(
            range_text=BOTH_LANS, schedule=self.SCHEDULE, batched=True,
            **knobs
        )
        assert serial.dedup_digest() == batched.dedup_digest()
        assert stats_key(serial.stats) == stats_key(batched.stats)
        for name in ("scanner_retransmits", "scanner_retransmit_recoveries"):
            assert s_reg.value(name) == b_reg.value(name)

    def test_armed_idle_schedule_is_bit_identical_to_disabled(self):
        # A schedule whose only window never arrives must not perturb the
        # scan in any observable way (results, stats, scan counters).
        idle = FaultSchedule(seed=1, events=(
            FaultEvent(kind=ROUTER_CRASH, start=1e9, end=2e9,
                       device="cpe-ok"),
        ))
        _, _, plain, plain_reg = scan(range_text=BOTH_LANS)
        _, _, armed, armed_reg = scan(range_text=BOTH_LANS, schedule=idle)
        assert plain.dedup_digest() == armed.dedup_digest()
        assert stats_key(plain.stats) == stats_key(armed.stats)
        assert (plain_reg.counters_named("scanner_probes_sent")
                == armed_reg.counters_named("scanner_probes_sent"))


class TestScannerHardening:
    def test_retransmit_recovers_lossy_targets(self):
        # 20% per-link loss over ~6 legs loses most targets outright.
        schedule = FaultSchedule(seed=2, events=(
            FaultEvent(kind=LOSS_BURST, start=0.0, end=1.0, rate=0.2),
        ))
        _, _, naive, _ = scan(schedule=schedule)
        _, _, hardened, registry = scan(schedule=schedule, retransmit=3,
                                        retransmit_backoff=0.0002)
        assert hardened.stats.validated > naive.stats.validated
        assert registry.value("scanner_retransmits") > 0
        assert registry.value("scanner_retransmit_recoveries") > 0

    def test_retransmit_composes_with_probes_per_target(self):
        schedule = FaultSchedule(seed=2, events=(
            FaultEvent(kind=LOSS_BURST, start=0.0, end=1.0, rate=0.7),
        ))
        _, _, result, registry = scan(
            schedule=schedule, retransmit=2, retransmit_backoff=0.0002,
            probes_per_target=2,
        )
        # Copies go out first; retransmits only fire for targets where every
        # copy went unanswered.
        assert result.stats.sent >= 32
        assert registry.value("scanner_retransmits") >= 0

    def test_adaptive_rate_backs_off_under_clampdown(self):
        # Tighten both CPE limiters mid-scan: the validated-reply rate
        # collapses against the established baseline and AIMD halves the
        # pacer rate; healthy windows afterwards creep back up.
        schedule = FaultSchedule(events=(
            FaultEvent(kind=RATE_LIMIT, start=0.004, end=0.009,
                       device="cpe-ok", rate=0.0001, burst=1.0),
            FaultEvent(kind=RATE_LIMIT, start=0.004, end=0.009,
                       device="cpe-vuln", rate=0.0001, burst=1.0),
        ))
        _, scanner, _, registry = scan(
            range_text=BOTH_LANS, schedule=schedule, rate_pps=25_000.0,
            adaptive_rate=True, adaptive_window=16,
        )
        assert registry.value("scanner_rate_adjustments", direction="down") > 0
        assert scanner.pacer.rate < 25_000.0

    def test_adaptive_rate_holds_budget_when_healthy(self):
        # Every target answers, so every window is at-baseline: no downs.
        _, scanner, result, registry = scan(
            range_text=LAN_OK, adaptive_rate=True, adaptive_window=4,
        )
        assert registry.value("scanner_rate_adjustments",
                              direction="down") == 0
        assert scanner.pacer.rate == 2000.0
        assert result.stats.validated == 16
