"""Prefix rotation / churn between measurement campaigns."""

import pytest

from repro.discovery.periphery import discover
from repro.isp.builder import build_deployment
from repro.isp.profiles import profile_by_key
from repro.isp.rotation import rotate_delegations
from repro.loop.detector import find_loops


@pytest.fixture
def world():
    dep = build_deployment(
        profiles=[profile_by_key("cn-unicom-broadband")], scale=20_000, seed=4
    )
    return dep, dep.isps["cn-unicom-broadband"]


class TestRotation:
    def test_rejects_bad_fraction(self, world):
        dep, isp = world
        with pytest.raises(ValueError):
            rotate_delegations(dep, isp, 1.5)

    def test_population_size_preserved(self, world):
        dep, isp = world
        before = discover(dep.network, dep.vantage, isp.scan_spec, seed=1)
        report = rotate_delegations(dep, isp, 0.5, seed=2)
        after = discover(dep.network, dep.vantage, isp.scan_spec, seed=1)
        assert report.fraction == pytest.approx(0.5, abs=0.05)
        assert after.n_unique == before.n_unique == isp.n_devices

    def test_same_devices_change_address(self, world):
        """Rotated same-model customers appear under new last hops."""
        dep, isp = world
        same_before = {
            t.name: t.last_hop for t in isp.truths if t.archetype == "same"
        }
        rotate_delegations(dep, isp, 1.0, seed=2)
        changed = sum(
            1 for t in isp.truths
            if t.archetype == "same" and same_before[t.name] != t.last_hop
        )
        assert changed >= 0.8 * len(same_before)

    def test_diff_devices_keep_wan_address(self, world):
        """A PD rebind changes the delegation, not the WAN tenancy."""
        dep, isp = world
        wan_before = {
            t.name: t.last_hop for t in isp.truths if t.archetype == "diff"
        }
        rotate_delegations(dep, isp, 1.0, seed=2)
        for truth in isp.truths:
            if truth.archetype == "diff":
                assert truth.last_hop == wan_before[truth.name]

    def test_delegations_actually_move(self, world):
        dep, isp = world
        before = {t.name: t.delegated for t in isp.truths}
        report = rotate_delegations(dep, isp, 0.6, seed=3)
        moved = sum(
            1 for t in isp.truths if before[t.name] != t.delegated
        )
        assert moved == report.rotated > 0

    def test_released_prefixes_go_dark(self, world):
        dep, isp = world
        report = rotate_delegations(dep, isp, 0.4, seed=5)
        assert report.released_prefixes
        from repro.net.packet import echo_request

        for prefix in report.released_prefixes[:5]:
            # A prefix no longer delegated to anyone: probes are blackholed
            # by the ISP aggregate (route removed during rotation).
            probe = echo_request(
                dep.vantage.primary_address, prefix.address(0x1234), 1, 1,
                hop_limit=255,
            )
            inbox, _trace = dep.network.inject(probe, dep.vantage)
            assert inbox == []

    def test_loop_behaviour_survives_rotation(self, world):
        dep, isp = world
        before = find_loops(dep.network, dep.vantage, isp.scan_spec, seed=6)
        rotate_delegations(dep, isp, 0.8, seed=7)
        after = find_loops(dep.network, dep.vantage, isp.scan_spec, seed=8)
        # Vulnerability travels with the firmware, not the prefix.
        assert after.n_unique == pytest.approx(before.n_unique, abs=6)

    def test_services_survive_rotation(self, world):
        from repro.services.zgrab import AppScanner

        dep, isp = world
        census_before = discover(dep.network, dep.vantage, isp.scan_spec, seed=1)
        app_before = AppScanner(dep.network, dep.vantage).scan(
            census_before.last_hop_addresses()
        )
        rotate_delegations(dep, isp, 0.7, seed=9)
        census_after = discover(dep.network, dep.vantage, isp.scan_spec, seed=1)
        app_after = AppScanner(dep.network, dep.vantage).scan(
            census_after.last_hop_addresses()
        )
        assert len(app_after.alive_targets()) == pytest.approx(
            len(app_before.alive_targets()), abs=4
        )
