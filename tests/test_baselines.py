"""Baseline discovery techniques vs XMap on the mini topology."""

from repro.baselines.endhost import scan_end_hosts
from repro.baselines.traceroute_discovery import discover_by_traceroute
from repro.discovery.periphery import discover

from tests.topo import build_mini


class TestTracerouteDiscovery:
    def test_finds_the_periphery(self):
        topo = build_mini()
        result = discover_by_traceroute(
            topo.network, topo.vantage, "2001:db8:1:50::/60-64", seed=1
        )
        assert topo.cpe_ok.wan_address in result.last_hops

    def test_costs_more_probes_than_xmap(self):
        topo = build_mini()
        spec = "2001:db8:1:50::/60-64"
        tracer = discover_by_traceroute(topo.network, topo.vantage, spec, seed=1)
        xmap = discover(topo.network, topo.vantage, spec, seed=1)
        assert {r.last_hop for r in xmap.records} == tracer.last_hops
        assert tracer.probes_sent > 2 * xmap.stats.sent

    def test_skips_transit_infrastructure(self):
        topo = build_mini()
        result = discover_by_traceroute(
            topo.network, topo.vantage, "2001:db8:1:50::/60-64", seed=1
        )
        assert topo.core.primary_address not in result.last_hops
        assert topo.isp.primary_address not in result.last_hops

    def test_max_targets_caps_walks(self):
        topo = build_mini()
        result = discover_by_traceroute(
            topo.network, topo.vantage, "2001:db8:1:50::/60-64",
            max_targets=3, seed=1,
        )
        assert result.targets_walked == 3

    def test_empty_space_yields_nothing(self):
        topo = build_mini()
        result = discover_by_traceroute(
            topo.network, topo.vantage, "2001:db8:77::/56-64",
            max_targets=8, seed=1,
        )
        assert result.last_hops == set()


class TestEndHostScanning:
    def test_no_live_hosts_at_64_host_bits(self):
        topo = build_mini()
        report = scan_end_hosts(
            topo.network, topo.vantage, "2001:db8:2::/48-64", seed=1
        )
        assert report.live_hosts == 0
        assert report.last_hops >= 1  # the UE answered as a last hop
        assert report.live_host_hit_rate == 0.0
        assert report.last_hop_hit_rate > 0.0

    def test_finds_host_when_probe_lands_exactly(self):
        """Probing the device's actual /128 — the needle — does echo."""
        topo = build_mini()
        spec = f"{topo.ue.ue_address}/128-128"
        report = scan_end_hosts(topo.network, topo.vantage, spec, seed=1)
        assert report.probes == 1
        assert report.live_hosts == 1
