"""The forwarding engine: delivery, traces, loss, loop accounting."""

import pytest

from repro.net.addr import IPv6Addr
from repro.net.device import Host
from repro.net.network import Network, NetworkError
from repro.net.packet import Icmpv6Message, Icmpv6Type, echo_request

from tests.topo import MiniTopology, build_mini


def _addr(text):
    return IPv6Addr.from_string(text)


class TestRegistry:
    def test_duplicate_name_rejected(self):
        net = Network()
        net.register(Host("a", _addr("2001:db8::1")))
        with pytest.raises(NetworkError):
            net.register(Host("a", _addr("2001:db8::2")))

    def test_duplicate_address_rejected(self):
        net = Network()
        net.register(Host("a", _addr("2001:db8::1")))
        with pytest.raises(NetworkError):
            net.register(Host("b", _addr("2001:db8::1")))

    def test_rebind_same_device_ok(self):
        net = Network()
        host = net.register(Host("a", _addr("2001:db8::1")))
        net.bind(_addr("2001:db8::1"), host)

    def test_device_at(self):
        net = Network()
        host = net.register(Host("a", _addr("2001:db8::1")))
        assert net.device_at(_addr("2001:db8::1")) is host
        assert net.device_at(_addr("2001:db8::2")) is None

    def test_unregister_releases_addresses(self):
        net = Network()
        host = net.register(Host("a", _addr("2001:db8::1")))
        net.bind(_addr("2001:db8::2"), host)
        net.unregister(host)
        assert net.device_at(_addr("2001:db8::1")) is None
        assert net.device_at(_addr("2001:db8::2")) is None
        # The name and addresses are free for reuse.
        net.register(Host("a", _addr("2001:db8::1")))

    def test_unregister_unknown_device_rejected(self):
        net = Network()
        stranger = Host("ghost", _addr("2001:db8::9"))
        with pytest.raises(NetworkError):
            net.unregister(stranger)

    def test_unregister_requires_identity_not_just_name(self):
        net = Network()
        net.register(Host("a", _addr("2001:db8::1")))
        impostor = Host("a", _addr("2001:db8::2"))
        with pytest.raises(NetworkError):
            net.unregister(impostor)


class TestForwardingEngine:
    def test_unreachable_reply_returns_to_vantage(self):
        topo = build_mini()
        probe = echo_request(
            topo.vantage.primary_address,
            MiniTopology.WAN_OK.address(0xAAAA), 1, 1,
        )
        inbox, trace = topo.network.inject(probe, topo.vantage)
        assert len(inbox) == 1
        msg = inbox[0].payload
        assert isinstance(msg, Icmpv6Message)
        assert msg.type == Icmpv6Type.DEST_UNREACHABLE
        assert inbox[0].src == topo.cpe_ok.wan_address
        assert trace.delivered == 1

    def test_echo_reply_round_trip(self):
        topo = build_mini()
        probe = echo_request(
            topo.vantage.primary_address, topo.ue.ue_address, 3, 4
        )
        inbox, _ = topo.network.inject(probe, topo.vantage)
        assert inbox[0].payload.type == Icmpv6Type.ECHO_REPLY

    def test_blackholed_space_is_silent(self):
        topo = build_mini()
        probe = echo_request(
            topo.vantage.primary_address, _addr("2001:db8:55::1"), 1, 1
        )
        inbox, trace = topo.network.inject(probe, topo.vantage)
        assert inbox == []
        assert trace.hops == 2  # vantage->core, core->isp

    def test_loop_bounded_by_hop_limit(self):
        topo = build_mini(record_links=True)
        target = MiniTopology.LAN_VULN.subprefix(15, 64).address(0x77)
        probe = echo_request(
            topo.vantage.primary_address, target, 1, 1, hop_limit=255
        )
        inbox, trace = topo.network.inject(probe, topo.vantage)
        crossings = trace.crossings("isp", "cpe-vuln")
        assert crossings >= 250  # the paper's >200x amplification
        assert len(inbox) == 1
        assert inbox[0].payload.type == Icmpv6Type.TIME_EXCEEDED

    def test_trace_records_paths_when_enabled(self):
        topo = build_mini(record_paths=True)
        probe = echo_request(
            topo.vantage.primary_address, topo.ue.ue_address, 1, 1
        )
        _, trace = topo.network.inject(probe, topo.vantage)
        assert trace.path[:3] == ["core", "isp", "ue"]

    def test_loss_drops_packets(self):
        topo = build_mini(loss_rate=1.0)
        probe = echo_request(
            topo.vantage.primary_address, topo.ue.ue_address, 1, 1
        )
        inbox, trace = topo.network.inject(probe, topo.vantage)
        assert inbox == []
        assert trace.drops == 1

    def test_partial_loss_statistics(self):
        topo = build_mini(loss_rate=0.5, seed=3)
        received = 0
        for i in range(200):
            probe = echo_request(
                topo.vantage.primary_address, topo.ue.ue_address, 1, i
            )
            inbox, _ = topo.network.inject(probe, topo.vantage)
            received += bool(inbox)
        # 6 hops each way at 50% loss -> a small but nonzero success rate.
        assert 0 < received < 100

    def test_totals_accumulate(self):
        topo = build_mini()
        before = topo.network.total_hops
        probe = echo_request(
            topo.vantage.primary_address, topo.ue.ue_address, 1, 1
        )
        topo.network.inject(probe, topo.vantage)
        assert topo.network.total_injected == 1
        assert topo.network.total_hops > before

    def test_clock_advance(self):
        net = Network()
        net.advance(2.5)
        assert net.clock == 2.5

    def test_crossings_is_bidirectional(self):
        topo = build_mini(record_links=True)
        target = MiniTopology.WAN_VULN.address(0xABCD)
        probe = echo_request(
            topo.vantage.primary_address, target, 1, 1, hop_limit=41
        )
        _, trace = topo.network.inject(probe, topo.vantage)
        a = trace.crossings("isp", "cpe-vuln")
        b = trace.crossings("cpe-vuln", "isp")
        assert a == b  # symmetric accessor
        assert a > 30
