"""The shared longest-prefix-match trie (repro.net.lpm).

One implementation now backs the forwarding tables, the scanner blocklist,
and the BGP attribution table; these tests pin its exact-match, LPM, and
mutation semantics, and cross-validate it against the hash-LPM routing
table on random route sets.
"""

import random

from repro.core.blocklist import PrefixSet
from repro.net.addr import IPv6Addr, IPv6Prefix
from repro.net.lpm import PrefixTrie
from repro.net.routing import HashRoutingTable, Route, RouteKind, RoutingTable


def P(text: str) -> IPv6Prefix:
    return IPv6Prefix.from_string(text)


def A(text: str) -> IPv6Addr:
    return IPv6Addr.from_string(text)


class TestPrefixTrie:
    def test_set_get_delete(self):
        trie = PrefixTrie()
        assert trie.set(P("2001:db8::/32"), "a")
        assert not trie.set(P("2001:db8::/32"), "b")  # replacement
        assert trie.get(P("2001:db8::/32")) == "b"
        assert len(trie) == 1
        assert trie.delete(P("2001:db8::/32"))
        assert not trie.delete(P("2001:db8::/32"))
        assert len(trie) == 0
        assert trie.get(P("2001:db8::/32")) is None

    def test_longest_match_prefers_most_specific(self):
        trie = PrefixTrie()
        trie.set(P("2a00::/16"), 16)
        trie.set(P("2a00:1::/32"), 32)
        trie.set(P("2a00:1:0:5::/64"), 64)
        assert trie.longest(A("2a00:1:0:5::9"))[1] == 64
        assert trie.longest(A("2a00:1:0:6::9"))[1] == 32
        assert trie.longest(A("2a00:2::9"))[1] == 16
        assert trie.longest(A("2400::1")) is None

    def test_longest_returns_prefix_and_value(self):
        trie = PrefixTrie()
        trie.set(P("2001:db8::/32"), "x")
        prefix, value = trie.longest(A("2001:db8::1"))
        assert prefix == P("2001:db8::/32")
        assert value == "x"

    def test_default_prefix(self):
        trie = PrefixTrie()
        trie.set(P("::/0"), "default")
        trie.set(P("2001:db8::/32"), "specific")
        assert trie.longest(A("2001:db8::1"))[1] == "specific"
        assert trie.longest(A("9999::1"))[1] == "default"

    def test_contains_and_items(self):
        trie = PrefixTrie()
        prefixes = [P("2001:db8::/32"), P("2a00::/16"), P("::/0")]
        for i, prefix in enumerate(prefixes):
            trie.set(prefix, i)
        assert all(prefix in trie for prefix in prefixes)
        assert P("fd00::/8") not in trie
        assert sorted(dict(trie.items()).values()) == [0, 1, 2]

    def test_accepts_int_addresses(self):
        trie = PrefixTrie()
        trie.set(P("2001:db8::/32"), "v")
        assert trie.longest(A("2001:db8::7").value)[1] == "v"


class TestSharedBackends:
    """The wrappers (RoutingTable, PrefixSet) agree with the trie and with
    the independent hash implementation on random inputs."""

    def test_routing_table_matches_hash_table(self):
        rng = random.Random(42)
        trie_table, hash_table = RoutingTable(), HashRoutingTable()
        prefixes = []
        for _ in range(200):
            length = rng.choice((0, 16, 32, 48, 56, 64, 96, 128))
            network = rng.getrandbits(128) & IPv6Prefix(0, 0).mask if length == 0 \
                else (rng.getrandbits(128) >> (128 - length)) << (128 - length)
            prefix = IPv6Prefix(network, length)
            route = Route(prefix, RouteKind.UNREACHABLE)
            prefixes.append(prefix)
            trie_table.add(route)
            hash_table.add(route)
        for _ in range(100):
            prefix = rng.choice(prefixes)
            if rng.random() < 0.5:
                assert trie_table.remove(prefix) == hash_table.remove(prefix)
        for _ in range(500):
            addr = rng.getrandbits(128)
            assert trie_table.lookup(addr) == hash_table.lookup(addr)
        assert len(trie_table) == len(hash_table)

    def test_routing_table_version_bumps(self):
        table = RoutingTable()
        v0 = table.version
        table.add_unreachable(P("2001:db8::/32"))
        assert table.version > v0
        v1 = table.version
        assert table.remove(P("2001:db8::/32"))
        assert table.version > v1
        v2 = table.version
        assert not table.remove(P("2001:db8::/32"))  # miss: no bump
        assert table.version == v2

    def test_prefix_set_covering(self):
        pset = PrefixSet(["2001:db8::/32", "2001:db8:1::/48"])
        assert pset.covering(A("2001:db8:1::1")) == P("2001:db8:1::/48")
        assert pset.covering(A("2001:db8:2::1")) == P("2001:db8::/32")
        assert pset.covering(A("2400::1")) is None
        assert A("2001:db8::1") in pset
        assert len(pset) == 2
        assert set(pset) == {P("2001:db8::/32"), P("2001:db8:1::/48")}
