"""CVE database and version-family bucketing."""

import pytest

from repro.services.cve import DEFAULT_CVE_DB, CveDatabase, family_of


class TestFamilyOf:
    @pytest.mark.parametrize("software,version,family", [
        ("dnsmasq", "2.45", "2.4x"),
        ("dnsmasq", "2.52", "2.5x"),
        ("dnsmasq", "2.75", "2.7x"),
        ("dropbear", "0.46", "0.4x"),
        ("dropbear", "2012.55", "2012.5x"),
        ("dropbear", "2017.75", "2017.7x"),
        ("openssh", "3.5", "3.5"),
        ("openssh", "5.8", "5.x"),
        ("openssh", "8.2", "8.x"),
        ("GNU Inetutils", "1.4.1", "1.4x"),
        ("FreeBSD", "6.00ls", "6.00ls"),
        ("vsftpd", "2.2.2", "2.2x"),
        ("Jetty", "6.1.26", "6.1x"),
        ("MiniWeb HTTP Server", "0.8.19", "0.8x"),
        ("micro_httpd", "1.0", "1.0x"),
        ("GoAhead Embedded", "2.5.0", "2.5x"),
        ("Fritz!Box", "7.2.1", "7.2x"),
    ])
    def test_buckets(self, software, version, family):
        assert family_of(software, version) == family


class TestDefaultDatabase:
    def test_paper_cve_totals(self):
        """Table VIII's per-software CVE counts."""
        db = DEFAULT_CVE_DB
        assert db.cve_count_for_software("dnsmasq") == 16
        assert db.cve_count_for_software("dropbear") == 10
        assert db.cve_count_for_software("openssh") == 74
        assert db.cve_count_for_software("FreeBSD") == 1
        assert db.cve_count_for_software("vsftpd") == 2
        assert db.cve_count_for_software("GNU Inetutils") == 0
        # HTTP row: 24 CVEs across the four embedded web servers.
        http_total = sum(
            db.cve_count_for_software(s)
            for s in ("Jetty", "MiniWeb HTTP Server", "micro_httpd",
                      "GoAhead Embedded")
        )
        assert http_total == 24

    def test_info_for_version(self):
        info = DEFAULT_CVE_DB.info_for_version("dnsmasq", "2.45")
        assert info is not None
        assert info.family == "2.4x"
        assert info.cve_count == 7

    def test_release_lag(self):
        """dnsmasq 2.4x: 'released ~8 years ago' relative to the 2020 scan."""
        info = DEFAULT_CVE_DB.info_for_version("dnsmasq", "2.45")
        assert info.lag_years(2020) == 8
        dropbear = DEFAULT_CVE_DB.info_for_version("dropbear", "0.46")
        assert dropbear.release_year <= 2006
        openssh = DEFAULT_CVE_DB.info_for_version("openssh", "3.5")
        assert openssh.release_year == 2002

    def test_every_catalog_software_resolves(self):
        """Every software the vendor catalogue ships must be in the CVE DB
        (else Table VIII silently drops rows)."""
        from repro.isp.vendors import DEFAULT_CATALOG

        missing = []
        for vendor in DEFAULT_CATALOG:
            for service, mix in vendor.software.items():
                for software, _weight in mix:
                    if software.name == "NTP":
                        continue  # visibility-only service, no CVE rows
                    if DEFAULT_CVE_DB.info_for_version(
                        software.name, software.version
                    ) is None:
                        missing.append((vendor.name, software.banner))
        assert not missing, missing

    def test_unknown_returns_none_and_zero(self):
        db = CveDatabase()
        assert db.info("x", "1.x") is None
        assert db.cve_count("x", "1.x") == 0
        assert db.families_of("x") == []
