"""Analysis layer: report formatting and table/figure regeneration."""

import pytest

from repro.analysis.report import ComparisonTable, fmt_count, fmt_pct
from repro.analysis import figures, tables
from repro.discovery.periphery import discover
from repro.discovery.vendor_id import VendorIdentifier
from repro.loop.casestudy import CASE_STUDY_ROUTERS, run_case_study
from repro.loop.detector import find_loops
from repro.services.zgrab import AppScanner


class TestReportFormatting:
    def test_fmt_count(self):
        assert fmt_count(52_478_703) == "52.5M"
        assert fmt_count(741_027) == "741.0k"
        assert fmt_count(994) == "994"

    def test_fmt_pct(self):
        assert fmt_pct(77.2) == "77.2%"
        assert fmt_pct(0.123, digits=2) == "0.12%"

    def test_comparison_table_renders(self):
        table = ComparisonTable("T", ("a", "bb"))
        table.add(1, "x")
        table.note("footnote")
        text = table.render()
        assert "T" in text and "bb" in text and "footnote" in text

    def test_rejects_ragged_rows(self):
        table = ComparisonTable("T", ("a", "b"))
        with pytest.raises(ValueError):
            table.add(1)


@pytest.fixture(scope="module")
def pipeline(cn_mobile_deployment):
    """Census + app scan + loops for one block, shared across table tests."""
    dep = cn_mobile_deployment
    isp = dep.isps["cn-mobile-broadband"]
    census = discover(dep.network, dep.vantage, isp.scan_spec, seed=3)
    app = AppScanner(dep.network, dep.vantage).scan(census.last_hop_addresses())
    loops = find_loops(dep.network, dep.vantage, isp.scan_spec, seed=5)
    identified = VendorIdentifier(dep.catalog).identify(
        census.records, app.observations
    )
    return dep, isp, census, app, loops, identified


class TestTables:
    def test_table2(self, pipeline):
        _dep, isp, census, *_ = pipeline
        table = tables.table2_periphery({isp.profile.key: census}, 20_000)
        text = table.render()
        assert "Mobile" in text
        assert "Total" in text

    def test_table3(self, pipeline):
        *_, census, _app, _loops, _id = pipeline[1:]
        table = tables.table3_iid([r.last_hop for r in census.records])
        text = table.render()
        assert "EUI-64" in text and "Randomized" in text

    def test_table4(self, pipeline):
        *_, identified = pipeline
        table = tables.table4_vendors(identified, 20_000)
        text = table.render()
        assert "China Mobile" in text

    def test_table5(self, pipeline):
        _dep, _isp, _census, app, _loops, _id = pipeline
        table = tables.table5_service_iid(sorted(app.alive_targets()))
        assert "Table V" in table.render()

    def test_table7(self, pipeline):
        _dep, isp, census, app, _loops, _id = pipeline
        table = tables.table7_services(
            {isp.profile.key: app}, {isp.profile.key: census.n_unique}, 20_000
        )
        assert "DNS" in table.render()

    def test_table8(self, pipeline):
        _dep, _isp, _census, app, _loops, _id = pipeline
        table = tables.table8_software([app], 20_000)
        text = table.render()
        assert "dnsmasq" in text
        assert "Jetty" in text

    def test_table10_11(self, pipeline):
        _dep, isp, _census, _app, loops, _id = pipeline
        t10 = tables.table10_loop_iid([r.last_hop for r in loops.records])
        assert "Low-byte" in t10.render()
        t11 = tables.table11_loops({isp.profile.key: loops}, 20_000)
        assert "Total" in t11.render()

    def test_table12(self):
        results = run_case_study(CASE_STUDY_ROUTERS[:12])
        table = tables.table12_case_study(results)
        text = table.render()
        assert "GT-AC5300" in text
        assert "WS5100" in text

    def test_iid_table_percentages_sum(self, pipeline):
        *_, census, _app, _loops, _id = pipeline[1:]
        counts_table = tables.table3_iid([r.last_hop for r in census.records])
        # last row is the total at 100%
        assert counts_table.rows[-1][2] == "100.0%"


class TestFigures:
    def test_vendor_service_matrix_and_fig2(self, pipeline):
        _dep, _isp, _census, app, _loops, identified = pipeline
        matrix = figures.vendor_service_matrix(identified, app.observations)
        assert matrix, "matrix should not be empty"
        fig2 = figures.figure2_top_vendors(matrix)
        text = fig2.render()
        assert "China Mobile" in text

    def test_fig3(self, pipeline):
        _dep, _isp, _census, app, _loops, identified = pipeline
        matrix = figures.vendor_service_matrix(identified, app.observations)
        fig3 = figures.figure3_service_vendors(matrix)
        assert "HTTP/8080" in fig3.render()

    def test_fig5_with_synthetic_bgp(self):
        from repro.loop.bgp import BgpPrefixInfo, BgpTable
        from repro.net.addr import IPv6Addr, IPv6Prefix

        table = BgpTable()
        table.add(BgpPrefixInfo(IPv6Prefix.from_string("2a00::/32"), 100, "BR"))
        table.add(BgpPrefixInfo(IPv6Prefix.from_string("2a01::/32"), 200, "CN"))
        addrs = (
            [IPv6Addr.from_string("2a00::1")] * 3
            + [IPv6Addr.from_string("2a01::1")] * 1
            + [IPv6Addr.from_string("2400::1")]  # not in the table: skipped
        )
        asn_table, country_table = figures.figure5_loop_asn_country(addrs, table)
        asn_text = asn_table.render()
        assert "AS100" in asn_text
        assert asn_table.rows[0][1] == "AS100"  # ranked first
        assert country_table.rows[0][1] == "BR"

    def test_empty_iid_table(self):
        table = tables.table3_iid([])
        assert "Total" in table.render()

    def test_empty_vendor_matrix_fig2(self):
        fig = figures.figure2_top_vendors({})
        assert "Figure 2" in fig.render()

    def test_fig6(self, pipeline):
        _dep, isp, _census, _app, loops, identified = pipeline
        vendor_of = {d.last_hop.value: d.vendor for d in identified}
        per_isp = {"AS9808": {}}
        for record in loops.records:
            vendor = vendor_of.get(record.last_hop.value)
            if vendor:
                per_isp["AS9808"][vendor] = per_isp["AS9808"].get(vendor, 0) + 1
        fig6 = figures.figure6_loop_vendors(per_isp)
        assert "loop devices" in fig6.render()
