"""SipHash-2-4 against the reference vectors from the SipHash paper."""

import pytest
from hypothesis import given, strategies as st

from repro.core.siphash import keyed_uint, siphash24

#: Key 000102...0f, messages of increasing length 0..7, from the reference
#: implementation's vectors (first 8 of the 64 published).
REFERENCE_KEY = bytes(range(16))
REFERENCE_VECTORS = [
    0x726FDB47DD0E0E31,
    0x74F839C593DC67FD,
    0x0D6C8009D9A94F5A,
    0x85676696D7FB7E2D,
    0xCF2794E0277187B7,
    0x18765564CD99A68D,
    0xCBC9466E58FEE3CE,
    0xAB0200F58B01D137,
]


class TestReferenceVectors:
    @pytest.mark.parametrize("length,expected", enumerate(REFERENCE_VECTORS))
    def test_vector(self, length, expected):
        message = bytes(range(length))
        assert siphash24(REFERENCE_KEY, message) == expected

    def test_long_message(self):
        # 64-byte messages exercise multiple body blocks deterministically.
        a = siphash24(REFERENCE_KEY, bytes(64))
        b = siphash24(REFERENCE_KEY, bytes(64))
        assert a == b
        assert a != siphash24(REFERENCE_KEY, bytes(63))


class TestProperties:
    def test_rejects_bad_key(self):
        with pytest.raises(ValueError):
            siphash24(b"short", b"")

    @given(st.binary(max_size=64), st.binary(max_size=64))
    def test_distinct_messages_distinct_hashes(self, a, b):
        if a == b:
            return
        assert siphash24(REFERENCE_KEY, a) != siphash24(REFERENCE_KEY, b)

    @given(st.binary(min_size=16, max_size=16), st.binary(max_size=32))
    def test_output_is_64_bit(self, key, message):
        assert 0 <= siphash24(key, message) < (1 << 64)

    def test_key_matters(self):
        other = bytes(range(1, 17))
        assert siphash24(REFERENCE_KEY, b"msg") != siphash24(other, b"msg")

    def test_keyed_uint_parts(self):
        assert keyed_uint(REFERENCE_KEY, 1, 2) != keyed_uint(REFERENCE_KEY, 2, 1)
        assert keyed_uint(REFERENCE_KEY, 1) == keyed_uint(REFERENCE_KEY, 1)

    def test_keyed_uint_wide_values(self):
        wide = (1 << 127) | 5
        assert 0 <= keyed_uint(REFERENCE_KEY, wide) < (1 << 64)
