"""Wire formats: checksums, encode/decode inverses, error semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.net.addr import IPv6Addr
from repro.net.packet import (
    Icmpv6Message,
    Icmpv6Type,
    NextHeader,
    Packet,
    PacketError,
    TcpFlags,
    TcpSegment,
    UdpDatagram,
    UnreachableCode,
    echo_request,
    icmpv6_error,
    internet_checksum,
    pseudo_header,
)

SRC = IPv6Addr.from_string("2001:db8::1")
DST = IPv6Addr.from_string("2001:db8::2")

payloads = st.binary(max_size=256)
ports = st.integers(min_value=1, max_value=65535)


class TestChecksum:
    def test_rfc1071_example(self):
        # RFC 1071 example bytes: 00 01 f2 03 f4 f5 f6 f7 -> sum ddf2 -> ~ = 220d
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert internet_checksum(data) == 0x220D

    def test_odd_length_padding(self):
        assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")

    def test_pseudo_header_length(self):
        assert len(pseudo_header(SRC, DST, 8, 58)) == 40


class TestIcmpv6:
    def test_echo_roundtrip(self):
        msg = Icmpv6Message(
            int(Icmpv6Type.ECHO_REQUEST), ident=0x1234, seq=7, payload=b"hi"
        )
        wire = msg.encode(SRC, DST)
        back = Icmpv6Message.decode(wire, SRC, DST)
        assert back.ident == 0x1234
        assert back.seq == 7
        assert back.payload == b"hi"

    def test_checksum_rejected_on_corruption(self):
        wire = bytearray(
            Icmpv6Message(int(Icmpv6Type.ECHO_REQUEST), ident=1).encode(SRC, DST)
        )
        wire[-1] ^= 0xFF
        with pytest.raises(PacketError):
            Icmpv6Message.decode(bytes(wire), SRC, DST)

    def test_checksum_binds_addresses(self):
        # The pseudo-header makes the checksum address-dependent.
        wire = Icmpv6Message(int(Icmpv6Type.ECHO_REQUEST), ident=1).encode(SRC, DST)
        other = IPv6Addr.from_string("2001:db8::3")
        with pytest.raises(PacketError):
            Icmpv6Message.decode(wire, SRC, other)

    def test_error_carries_invoking(self):
        probe = echo_request(SRC, DST, 1, 2, b"x")
        error = icmpv6_error(
            DST, SRC, Icmpv6Type.DEST_UNREACHABLE,
            int(UnreachableCode.NO_ROUTE), probe,
        )
        assert isinstance(error.payload, Icmpv6Message)
        inner = Packet.decode(error.payload.invoking)
        assert inner.dst == DST
        assert isinstance(inner.payload, Icmpv6Message)
        assert inner.payload.ident == 1

    def test_error_truncates_to_min_mtu(self):
        big = Packet(src=SRC, dst=DST, payload=b"\x00" * 2000)
        error = icmpv6_error(DST, SRC, Icmpv6Type.TIME_EXCEEDED, 0, big)
        assert len(error.encode()) <= 1280

    def test_is_error_classification(self):
        assert Icmpv6Message(int(Icmpv6Type.DEST_UNREACHABLE)).is_error
        assert not Icmpv6Message(int(Icmpv6Type.ECHO_REPLY)).is_error

    def test_short_message_rejected(self):
        with pytest.raises(PacketError):
            Icmpv6Message.decode(b"\x80\x00\x00", SRC, DST)


class TestUdp:
    @given(ports, ports, payloads)
    def test_roundtrip(self, sport, dport, payload):
        datagram = UdpDatagram(sport, dport, payload)
        back = UdpDatagram.decode(datagram.encode(SRC, DST), SRC, DST)
        assert back == datagram

    def test_corrupt_checksum_rejected(self):
        wire = bytearray(UdpDatagram(1, 2, b"abc").encode(SRC, DST))
        wire[-1] ^= 0x55
        with pytest.raises(PacketError):
            UdpDatagram.decode(bytes(wire), SRC, DST)

    def test_length_mismatch_rejected(self):
        wire = UdpDatagram(1, 2, b"abc").encode(SRC, DST) + b"zz"
        with pytest.raises(PacketError):
            UdpDatagram.decode(wire, SRC, DST)


class TestTcp:
    @given(ports, ports, st.integers(min_value=0, max_value=0xFFFFFFFF), payloads)
    def test_roundtrip(self, sport, dport, seq, payload):
        segment = TcpSegment(
            sport, dport, seq=seq, flags=int(TcpFlags.SYN), payload=payload
        )
        back = TcpSegment.decode(segment.encode(SRC, DST), SRC, DST)
        assert back.sport == sport
        assert back.dport == dport
        assert back.seq == seq
        assert back.payload == payload
        assert back.has_flag(TcpFlags.SYN)

    def test_flags(self):
        segment = TcpSegment(1, 2, flags=int(TcpFlags.SYN) | int(TcpFlags.ACK))
        assert segment.has_flag(TcpFlags.SYN)
        assert segment.has_flag(TcpFlags.ACK)
        assert not segment.has_flag(TcpFlags.RST)

    def test_corrupt_checksum_rejected(self):
        wire = bytearray(TcpSegment(1, 2, payload=b"xyz").encode(SRC, DST))
        wire[-2] ^= 0x10
        with pytest.raises(PacketError):
            TcpSegment.decode(bytes(wire), SRC, DST)


class TestPacket:
    def test_echo_request_roundtrip(self):
        packet = echo_request(SRC, DST, 7, 9, b"payload", hop_limit=77)
        back = Packet.decode(packet.encode())
        assert back.src == SRC
        assert back.dst == DST
        assert back.hop_limit == 77
        assert isinstance(back.payload, Icmpv6Message)
        assert back.payload.ident == 7

    @given(payloads)
    def test_opaque_payload_roundtrip(self, payload):
        packet = Packet(src=SRC, dst=DST, payload=payload)
        back = Packet.decode(packet.encode())
        assert back.payload == payload
        assert back.next_header == 59

    def test_next_header_mapping(self):
        assert Packet(src=SRC, dst=DST, payload=UdpDatagram(1, 2)).next_header == int(NextHeader.UDP)
        assert Packet(src=SRC, dst=DST, payload=TcpSegment(1, 2)).next_header == int(NextHeader.TCP)

    def test_traffic_class_flow_label_roundtrip(self):
        packet = Packet(
            src=SRC, dst=DST, payload=b"", traffic_class=0xAB, flow_label=0xCDEF5
        )
        back = Packet.decode(packet.encode())
        assert back.traffic_class == 0xAB
        assert back.flow_label == 0xCDEF5

    def test_with_hop_limit(self):
        packet = echo_request(SRC, DST, 1, 1)
        assert packet.with_hop_limit(3).hop_limit == 3

    def test_rejects_non_v6(self):
        with pytest.raises(PacketError):
            Packet.decode(b"\x45" + b"\x00" * 60)

    def test_rejects_truncated(self):
        with pytest.raises(PacketError):
            Packet.decode(b"\x60" + b"\x00" * 10)

    def test_rejects_length_mismatch(self):
        wire = bytearray(Packet(src=SRC, dst=DST, payload=b"abc").encode())
        wire[5] = 99  # payload length field
        with pytest.raises(PacketError):
            Packet.decode(bytes(wire))
