"""Port-openness scanning via the XMap engine (Table VI's first stage)."""

import pytest

from repro.core.probes import ReplyKind, TcpSynProbe, UdpProbe
from repro.core.scanner import ScanConfig, Scanner
from repro.core.target import IidStrategy, ScanRange
from repro.core.validate import Validator
from repro.services.base import Software
from repro.services.dns import DnsForwarder, make_query, QTYPE_A
from repro.services.http import HttpServer

from tests.topo import build_mini

SECRET = bytes(range(16))


@pytest.fixture
def topo_with_services():
    topo = build_mini()
    topo.ue.bind_service(HttpServer(Software("GoAhead Embedded", "2.5.0")))
    topo.ue.bind_service(DnsForwarder(Software("dnsmasq", "2.75")))
    return topo


def _scan(topo, probe, spec, **kwargs):
    config = ScanConfig(scan_range=ScanRange.parse(spec), seed=5, **kwargs)
    return Scanner(topo.network, topo.vantage, probe, config).run()


class TestTcpSynScanning:
    def test_open_port_yields_synack(self, topo_with_services):
        topo = topo_with_services
        # Target the UE's exact address (FIXED IID = the UE's own IID).
        probe = TcpSynProbe(Validator(SECRET), 80)
        result = _scan(
            topo, probe, "2001:db8:2:7::/64-64",
            iid_strategy=IidStrategy.FIXED, fixed_iid=0x42,
        )
        kinds = result.by_kind()
        assert kinds.get(ReplyKind.TCP_SYNACK) == 1

    def test_closed_port_yields_rst(self, topo_with_services):
        topo = topo_with_services
        probe = TcpSynProbe(Validator(SECRET), 22)  # no SSH bound
        result = _scan(
            topo, probe, "2001:db8:2:7::/64-64",
            iid_strategy=IidStrategy.FIXED, fixed_iid=0x42,
        )
        assert result.by_kind().get(ReplyKind.TCP_RST) == 1

    def test_nonexistent_host_yields_unreachable(self, topo_with_services):
        topo = topo_with_services
        probe = TcpSynProbe(Validator(SECRET), 80)
        result = _scan(
            topo, probe, "2001:db8:2:7::/64-64",
            iid_strategy=IidStrategy.FIXED, fixed_iid=0x4343,
        )
        assert result.by_kind().get(ReplyKind.DEST_UNREACHABLE) == 1
        # The error still identifies the periphery: TCP probes discover too.
        assert result.last_hops()[0].responder == topo.ue.ue_address


class TestUdpScanning:
    def test_dns_probe_yields_udp_reply(self, topo_with_services):
        topo = topo_with_services
        probe = UdpProbe(
            Validator(SECRET), 53, payload=make_query(7, "example.com", QTYPE_A)
        )
        result = _scan(
            topo, probe, "2001:db8:2:7::/64-64",
            iid_strategy=IidStrategy.FIXED, fixed_iid=0x42,
        )
        assert result.by_kind().get(ReplyKind.UDP_REPLY) == 1

    def test_closed_udp_port_yields_port_unreachable(self, topo_with_services):
        topo = topo_with_services
        probe = UdpProbe(Validator(SECRET), 123)  # no NTP bound
        result = _scan(
            topo, probe, "2001:db8:2:7::/64-64",
            iid_strategy=IidStrategy.FIXED, fixed_iid=0x42,
        )
        assert result.by_kind().get(ReplyKind.PORT_UNREACHABLE) == 1

    def test_udp_probe_discovers_peripheries_like_icmp(self, topo_with_services):
        """Any probe type elicits the RFC 4443 unreachable from NX space —
        the discovery technique is transport-agnostic."""
        topo = topo_with_services
        probe = UdpProbe(Validator(SECRET), 53)
        result = _scan(topo, probe, "2001:db8:1:50::/60-64")
        responders = {r.responder for r in result.last_hops()}
        assert topo.cpe_ok.wan_address in responders

    def test_wire_mode_tcp(self, topo_with_services):
        topo = topo_with_services
        probe = TcpSynProbe(Validator(SECRET), 80)
        result = _scan(
            topo, probe, "2001:db8:2:7::/64-64",
            iid_strategy=IidStrategy.FIXED, fixed_iid=0x42, wire_mode=True,
        )
        assert result.by_kind().get(ReplyKind.TCP_SYNACK) == 1
