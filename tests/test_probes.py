"""Probe modules: build/classify round trips and validation rejection."""

import pytest

from repro.core.probes import IcmpEchoProbe, ReplyKind, TcpSynProbe, UdpProbe
from repro.core.validate import Validator
from repro.net.addr import IPv6Addr
from repro.net.packet import (
    Icmpv6Message,
    Icmpv6Type,
    Packet,
    TcpFlags,
    TcpSegment,
    UdpDatagram,
    echo_request,
    icmpv6_error,
)

SECRET = bytes(range(16))
SRC = IPv6Addr.from_string("2001:4860::100")
DST = IPv6Addr.from_string("2001:db8::5")
ROUTER = IPv6Addr.from_string("2001:db8:ffff::1")  # different /64 than DST


@pytest.fixture
def validator():
    return Validator(SECRET)


class TestIcmpEchoProbe:
    def test_build_uses_derived_fields(self, validator):
        probe = IcmpEchoProbe(validator, hop_limit=99)
        packet = probe.build(SRC, DST)
        fields = validator.fields(DST)
        assert packet.payload.ident == fields.ident
        assert packet.payload.seq == fields.seq
        assert packet.hop_limit == 99

    def test_classify_echo_reply(self, validator):
        probe = IcmpEchoProbe(validator)
        fields = validator.fields(DST)
        reply = Packet(
            src=DST, dst=SRC,
            payload=Icmpv6Message(
                int(Icmpv6Type.ECHO_REPLY), ident=fields.ident, seq=fields.seq
            ),
        )
        result = probe.classify(reply)
        assert result is not None
        assert result.kind is ReplyKind.ECHO_REPLY
        assert result.responder == DST
        assert result.target == DST

    def test_classify_rejects_forged_reply(self, validator):
        probe = IcmpEchoProbe(validator)
        reply = Packet(
            src=DST, dst=SRC,
            payload=Icmpv6Message(int(Icmpv6Type.ECHO_REPLY), ident=1, seq=2),
        )
        assert probe.classify(reply) is None

    def test_classify_unreachable_error(self, validator):
        probe = IcmpEchoProbe(validator)
        original = probe.build(SRC, DST)
        error = icmpv6_error(ROUTER, SRC, Icmpv6Type.DEST_UNREACHABLE, 0, original)
        result = probe.classify(error)
        assert result is not None
        assert result.kind is ReplyKind.DEST_UNREACHABLE
        assert result.responder == ROUTER
        assert result.target == DST
        assert not result.same_slash64

    def test_classify_time_exceeded(self, validator):
        probe = IcmpEchoProbe(validator)
        original = probe.build(SRC, DST)
        error = icmpv6_error(ROUTER, SRC, Icmpv6Type.TIME_EXCEEDED, 0, original)
        assert probe.classify(error).kind is ReplyKind.TIME_EXCEEDED

    def test_classify_rejects_error_quoting_foreign_probe(self, validator):
        probe = IcmpEchoProbe(validator)
        foreign = echo_request(SRC, DST, 111, 222)  # not validator-derived
        error = icmpv6_error(ROUTER, SRC, Icmpv6Type.DEST_UNREACHABLE, 0, foreign)
        assert probe.classify(error) is None

    def test_same_slash64_detection(self, validator):
        probe = IcmpEchoProbe(validator)
        original = probe.build(SRC, DST)
        same64_router = IPv6Addr.from_string("2001:db8::ff")
        error = icmpv6_error(
            same64_router, SRC, Icmpv6Type.DEST_UNREACHABLE, 3, original
        )
        assert probe.classify(error).same_slash64

    def test_wire_roundtrip(self, validator):
        probe = IcmpEchoProbe(validator)
        packet = Packet.decode(probe.build(SRC, DST).encode())
        original = probe.build(SRC, DST)
        assert packet == original


class TestTcpSynProbe:
    def test_build(self, validator):
        probe = TcpSynProbe(validator, 80)
        packet = probe.build(SRC, DST)
        fields = validator.fields(DST)
        assert packet.payload.dport == 80
        assert packet.payload.sport == fields.sport
        assert packet.payload.seq == fields.tcp_seq

    def test_rejects_bad_port(self, validator):
        with pytest.raises(ValueError):
            TcpSynProbe(validator, 0)

    def test_classify_synack(self, validator):
        probe = TcpSynProbe(validator, 80)
        fields = validator.fields(DST)
        synack = Packet(
            src=DST, dst=SRC,
            payload=TcpSegment(
                80, fields.sport, seq=5,
                ack=(fields.tcp_seq + 1) & 0xFFFFFFFF,
                flags=int(TcpFlags.SYN) | int(TcpFlags.ACK),
            ),
        )
        assert probe.classify(synack).kind is ReplyKind.TCP_SYNACK

    def test_classify_rst(self, validator):
        probe = TcpSynProbe(validator, 80)
        fields = validator.fields(DST)
        rst = Packet(
            src=DST, dst=SRC,
            payload=TcpSegment(
                80, fields.sport, ack=(fields.tcp_seq + 1) & 0xFFFFFFFF,
                flags=int(TcpFlags.RST) | int(TcpFlags.ACK),
            ),
        )
        assert probe.classify(rst).kind is ReplyKind.TCP_RST

    def test_classify_rejects_wrong_ack(self, validator):
        probe = TcpSynProbe(validator, 80)
        fields = validator.fields(DST)
        bad = Packet(
            src=DST, dst=SRC,
            payload=TcpSegment(
                80, fields.sport, ack=fields.tcp_seq + 2,
                flags=int(TcpFlags.SYN) | int(TcpFlags.ACK),
            ),
        )
        assert probe.classify(bad) is None

    def test_classify_error_on_tcp_probe(self, validator):
        probe = TcpSynProbe(validator, 80)
        original = probe.build(SRC, DST)
        error = icmpv6_error(ROUTER, SRC, Icmpv6Type.DEST_UNREACHABLE, 0, original)
        result = probe.classify(error)
        assert result.kind is ReplyKind.DEST_UNREACHABLE
        assert result.target == DST


class TestUdpProbe:
    def test_build_with_payload(self, validator):
        probe = UdpProbe(validator, 53, payload=b"\x12\x34")
        packet = probe.build(SRC, DST)
        assert packet.payload.dport == 53
        assert packet.payload.payload == b"\x12\x34"

    def test_classify_udp_reply(self, validator):
        probe = UdpProbe(validator, 53)
        fields = validator.fields(DST)
        reply = Packet(
            src=DST, dst=SRC, payload=UdpDatagram(53, fields.sport, b"resp")
        )
        assert probe.classify(reply).kind is ReplyKind.UDP_REPLY

    def test_classify_rejects_wrong_sport(self, validator):
        probe = UdpProbe(validator, 53)
        reply = Packet(src=DST, dst=SRC, payload=UdpDatagram(53, 9999, b"r"))
        assert probe.classify(reply) is None

    def test_classify_port_unreachable(self, validator):
        probe = UdpProbe(validator, 53)
        original = probe.build(SRC, DST)
        error = icmpv6_error(DST, SRC, Icmpv6Type.DEST_UNREACHABLE, 4, original)
        assert probe.classify(error).kind is ReplyKind.PORT_UNREACHABLE
