"""Telemetry: metrics registry, probe tracing, structured event log.

The load-bearing property is merge equality: the metrics of a sharded
campaign, folded across shard workers exactly as ``ScanStats.merge`` folds
stats, must reproduce the single-shot scan's probe/reply/veto counters
bit-for-bit — on every executor backend.
"""

import json

import pytest

from repro.core.blocklist import Blocklist
from repro.core.scanner import ScanConfig, Scanner
from repro.core.target import ScanRange
from repro.engine import Campaign, ProbeSpec, ProgressMonitor
from repro.net.spec import TopologySpec
from repro.telemetry import (
    EventLog,
    MetricsRegistry,
    NULL_REGISTRY,
    ProbeTracer,
    TraceSpecError,
    WorkerEventBuffer,
)

from tests.topo import build_mini

SPEC = "2001:db8:1::/56-64"  # 256 sub-prefixes over both CPEs' space

#: Counter families that must merge bit-for-bit across shards.  Pacer
#: counters are deliberately excluded: each shard's token bucket starts
#: with its own burst credit, so ``pacer_stalls`` differs from the
#: single-shot scan by exactly shards-1 — a property of pacing, not a
#: telemetry bug.
SCANNER_COUNTERS = (
    "scanner_probes_sent",
    "scanner_replies_received",
    "scanner_replies_validated",
    "scanner_replies",
    "scanner_replies_discarded",
    "scanner_blocklist_vetoes",
)


def _config(**kwargs) -> ScanConfig:
    return ScanConfig(scan_range=ScanRange.parse(SPEC), seed=5, **kwargs)


def _single_shot(**config_kwargs) -> MetricsRegistry:
    topo = build_mini()
    probe = ProbeSpec.for_seed(5).build()
    scanner = Scanner(topo.network, topo.vantage, probe, _config(**config_kwargs))
    scanner.run()
    return scanner.metrics


class TestMetricsPrimitives:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("sent").inc()
        registry.counter("sent").inc(4)
        registry.gauge("position").set(17)
        hist = registry.histogram("hops", bounds=(1.0, 4.0, 16.0))
        for value in (0.5, 1.0, 3.0, 100.0):
            hist.observe(value)
        assert registry.value("sent") == 5
        assert registry.value("position") == 17
        assert hist.counts == [2, 1, 0, 1]  # <=1, <=4, <=16, overflow
        assert hist.count == 4
        assert hist.mean == pytest.approx(104.5 / 4)

    def test_labels_distinguish_metrics(self):
        registry = MetricsRegistry()
        registry.counter("replies", kind="echo").inc(2)
        registry.counter("replies", kind="unreach").inc(3)
        assert registry.value("replies", kind="echo") == 2
        assert registry.value("replies", kind="unreach") == 3
        assert registry.value("replies") == 0
        assert len(registry.counters_named("replies")) == 2

    def test_merge_semantics(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("sent").inc(10)
        b.counter("sent").inc(5)
        b.counter("only_b").inc(1)
        a.gauge("position").set(100)
        b.gauge("position").set(250)
        a.histogram("hops", bounds=(1.0, 2.0)).observe(1)
        b.histogram("hops", bounds=(1.0, 2.0)).observe(5)
        a.merge(b)
        assert a.value("sent") == 15  # counters sum
        assert a.value("only_b") == 1
        assert a.value("position") == 250  # gauges take the max
        hist = a.histogram("hops", bounds=(1.0, 2.0))
        assert hist.counts == [1, 0, 1] and hist.count == 2

    def test_merge_rejects_mismatched_bounds(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("hops", bounds=(1.0, 2.0)).observe(1)
        b.histogram("hops", bounds=(1.0, 4.0)).observe(1)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_export_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("sent", shard="0").inc(7)
        registry.gauge("clock").set(1.5)
        registry.histogram("hops", bounds=(1.0, 8.0)).observe(3)
        clone = MetricsRegistry.from_dict(registry.to_dict())
        assert clone.to_dict() == registry.to_dict()
        for line in registry.ndjson_lines():
            assert json.loads(line)["kind"] in ("counter", "gauge", "histogram")

    def test_merge_dict_accepts_none(self):
        registry = MetricsRegistry()
        registry.merge_dict(None)
        assert len(registry) == 0

    def test_null_registry_is_inert(self):
        NULL_REGISTRY.counter("x", a=1).inc()
        NULL_REGISTRY.gauge("y").set(9)
        NULL_REGISTRY.histogram("z").observe(1)
        assert NULL_REGISTRY.value("x", a=1) == 0
        assert len(NULL_REGISTRY) == 0
        assert list(NULL_REGISTRY.ndjson_lines()) == []
        assert not NULL_REGISTRY.enabled
        assert NULL_REGISTRY.histogram("z").quantile(0.5) == 0.0


class TestHistogramQuantile:
    def _uniform(self):
        # One observation per integer 1..10 over unit-wide buckets: every
        # rank interpolates exactly, so quantiles are textbook.
        registry = MetricsRegistry()
        hist = registry.histogram(
            "lat", bounds=tuple(float(b) for b in range(1, 11))
        )
        for value in range(1, 11):
            hist.observe(float(value))
        return hist

    def test_known_distribution(self):
        hist = self._uniform()
        assert hist.quantile(0.0) == 0.0
        assert hist.quantile(0.5) == pytest.approx(5.0)
        assert hist.quantile(0.9) == pytest.approx(9.0)
        assert hist.quantile(1.0) == pytest.approx(10.0)

    def test_empty_histogram_and_domain(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", bounds=(1.0, 2.0))
        assert hist.quantile(0.5) == 0.0
        for bad in (-0.1, 1.1):
            with pytest.raises(ValueError):
                hist.quantile(bad)

    def test_overflow_clamps_to_last_finite_bound(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", bounds=(1.0, 2.0))
        hist.observe(100.0)  # overflow bucket
        assert hist.quantile(0.99) == 2.0

    def test_bucket_resolution_caveat(self):
        # Ten identical observations smear uniformly across their bucket:
        # the estimate is bucket-resolution, not value-resolution.
        registry = MetricsRegistry()
        hist = registry.histogram("lat", bounds=(4.0, 8.0))
        for _ in range(10):
            hist.observe(5.0)
        assert hist.quantile(0.5) == pytest.approx(6.0)  # mid-bucket
        assert 4.0 < hist.quantile(0.1) < hist.quantile(0.9) <= 8.0


class TestScannerMetrics:
    def test_counters_match_stats(self):
        topo = build_mini()
        probe = ProbeSpec.for_seed(5).build()
        scanner = Scanner(topo.network, topo.vantage, probe, _config())
        result = scanner.run()
        metrics = scanner.metrics
        assert metrics.value("scanner_probes_sent") == result.stats.sent
        assert metrics.value("scanner_replies_received") == result.stats.received
        assert metrics.value("scanner_replies_validated") == result.stats.validated
        assert sum(
            metrics.counters_named("scanner_replies").values()
        ) == result.stats.validated
        hist = metrics.histogram("probe_hops")
        assert hist.count == result.stats.sent

    def test_blocklist_vetoes_are_counted_by_rule(self):
        blocklist = Blocklist(blocked=["2001:db8:1:80::/57"])
        topo = build_mini()
        probe = ProbeSpec.for_seed(5).build()
        scanner = Scanner(
            topo.network, topo.vantage, probe, _config(blocklist=blocklist)
        )
        result = scanner.run()
        vetoes = scanner.metrics.counters_named("scanner_blocklist_vetoes")
        assert sum(vetoes.values()) == result.stats.blocked == 128
        (labels,) = vetoes
        assert dict(labels)["reason"] == "blocked"
        assert dict(labels)["rule"] == "2001:db8:1:80::/57"

    def test_collect_metrics_off_uses_null_registry(self):
        topo = build_mini()
        probe = ProbeSpec.for_seed(5).build()
        scanner = Scanner(
            topo.network, topo.vantage, probe,
            _config(collect_metrics=False, max_probes=4),
        )
        scanner.run()
        assert scanner.metrics is NULL_REGISTRY

    def test_progress_stride_throttles_the_hook(self):
        topo = build_mini()
        probe = ProbeSpec.for_seed(5).build()
        calls = []
        scanner = Scanner(
            topo.network, topo.vantage, probe, _config(progress_every=8)
        )
        scanner.on_progress = lambda s: calls.append(s.result.stats.sent)
        scanner.run()
        assert len(calls) == 256 // 8
        assert calls[0] == 8


class TestMergeEquality:
    """Sharded campaign metrics == single-shot metrics, on every backend."""

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_sharded_counters_match_single_shot(self, executor, tmp_path):
        single = _single_shot(blocklist=Blocklist(blocked=["2001:db8:1:80::/57"]))
        campaign = Campaign(
            TopologySpec.mini(),
            {SPEC: _config(blocklist=Blocklist(blocked=["2001:db8:1:80::/57"]))},
            probe=ProbeSpec.for_seed(5),
            shards=4,
            executor=executor,
            workers=2,
            checkpoint_dir=str(tmp_path / "state"),
        )
        merged = campaign.run().metrics
        for name in SCANNER_COUNTERS:
            assert merged.counters_named(name) == single.counters_named(name), name
        # histograms merge bucket-wise to the single-shot distribution
        assert merged.histogram("probe_hops").counts == (
            single.histogram("probe_hops").counts
        )

    def test_checkpoint_restored_shards_do_not_double_count(self, tmp_path):
        state = str(tmp_path / "state")

        def run_campaign(resume):
            return Campaign(
                TopologySpec.mini(),
                {SPEC: _config()},
                probe=ProbeSpec.for_seed(5),
                shards=2,
                checkpoint_dir=state,
                resume=resume,
            ).run()

        first = run_campaign(resume=False)
        second = run_campaign(resume=True)
        assert second.shards_from_checkpoint == 2
        # restored shards ship no metrics: the resumed campaign's registry
        # only counts what this invocation actually did (nothing)
        assert second.metrics.value("scanner_probes_sent") == 0
        assert first.metrics.value("scanner_probes_sent") == first.stats.sent


class TestProbeTracing:
    def test_spec_parsing(self):
        assert ProbeTracer.from_spec("off").enabled is False
        assert ProbeTracer.from_spec("all").mode == "all"
        assert ProbeTracer.from_spec("sample:4").every == 4
        for bad in ("sample:", "sample:0", "sample:x", "nope"):
            with pytest.raises(TraceSpecError):
                ProbeTracer.from_spec(bad)

    def test_sampling_selects_every_nth(self):
        tracer = ProbeTracer.from_spec("sample:3")
        opened = [tracer.begin(f"t{i}") is not None for i in range(9)]
        assert opened == [True, False, False] * 3

    def test_predicate_sampling(self):
        tracer = ProbeTracer(predicate=lambda target: "5" in str(target))
        assert tracer.enabled
        assert tracer.begin("addr-5") is not None
        assert tracer.begin("addr-6") is None

    def test_trace_reconstructs_hop_by_hop_path(self):
        topo = build_mini()
        probe = ProbeSpec.for_seed(5).build()
        scanner = Scanner(
            topo.network, topo.vantage, probe, _config(trace="sample:16")
        )
        result = scanner.run()
        traces = list(scanner.tracer.traces)
        assert len(traces) == 256 // 16
        validated = [t for t in traces if t.verdict() == "validated"]
        assert validated, "sampling 16 of 256 probes must catch a hit"
        trace = validated[0]
        names = [e["event"] for e in trace.events]
        assert names[0] == "generated"
        assert "paced_send" in names
        # the full forwarding story: LPM decisions, hop-limit decrements,
        # the ICMPv6 error that became the validated reply, delivery home
        assert trace.path(), "hop events must reconstruct the probe's path"
        assert any(e["event"] == "route_lookup" for e in trace.events)
        assert any(e["event"] == "hop_limit_decrement" for e in trace.events)
        assert any(e["event"] == "icmpv6_error" for e in trace.events)
        assert any(e["event"] == "delivered" for e in trace.events)
        # outbound leg only: the ICMPv6 error reply travels home with a
        # fresh hop limit, so cut the event stream at error generation
        error_at = next(
            i for i, e in enumerate(trace.events)
            if e["event"] == "icmpv6_error"
        )
        outbound = [
            e["hop_limit"]
            for e in trace.events[:error_at]
            if e["event"] == "hop"
        ]
        assert outbound == sorted(outbound, reverse=True)
        assert len(set(outbound)) == len(outbound)  # strictly decreasing
        assert result.stats.sent == 256

    def test_traces_survive_the_process_pool(self, tmp_path):
        campaign = Campaign(
            TopologySpec.mini(),
            {SPEC: _config(trace="sample:32")},
            probe=ProbeSpec.for_seed(5),
            shards=2,
            executor="process",
            workers=2,
        )
        result = campaign.run()
        assert len(result.traces) == 256 // 32
        rehydrated = ProbeTracer.from_dicts(result.traces)
        assert any(t.path() for t in rehydrated)

    def test_network_untraced_path_unchanged(self):
        topo = build_mini()
        assert topo.network.active_trace is None
        topo.network.trace_event("hop", device="nobody")  # must be a no-op


class TestEventLog:
    def test_emit_stamps_seq_time_campaign(self):
        log = EventLog(campaign_id="abc")
        first = log.emit("started", shards=2)
        second = log.emit("finished")
        assert (first["seq"], second["seq"]) == (0, 1)
        assert first["campaign"] == "abc"
        assert second["t"] >= first["t"] >= 0
        assert log.of_type("started") == [first]

    def test_subscribers_and_sink_see_every_event(self):
        seen, lines = [], []
        log = EventLog(sink=lines.append)
        log.subscribe(seen.append)
        log.emit("ping", n=1)
        assert seen[0]["type"] == "ping"
        assert json.loads(lines[0])["n"] == 1

    def test_retention_is_bounded(self):
        log = EventLog(max_events=3)
        for i in range(10):
            log.emit("tick", i=i)
        assert len(log) == 3
        assert [e["i"] for e in log.events] == [7, 8, 9]

    def test_ingest_preserves_worker_clock(self):
        buffer = WorkerEventBuffer()
        buffer.emit("checkpoint_written", job_id="j0")
        log = EventLog(campaign_id="abc")
        log.ingest(buffer.records)
        (event,) = log.of_type("checkpoint_written")
        assert event["campaign"] == "abc"
        assert event["job_id"] == "j0"
        assert "worker_t" in event

    def test_ingest_preserves_worker_sequence(self):
        # Outcomes arrive batched, so the campaign log's own ordering
        # cannot reconstruct the worker's: the per-buffer sequence number
        # must survive ingestion as ``worker_seq``.
        buffer = WorkerEventBuffer()
        for i in range(3):
            buffer.emit("tick", i=i)
        log = EventLog()
        log.ingest(reversed(buffer.records))  # arrival order scrambled
        ticks = log.of_type("tick")
        assert [e["worker_seq"] for e in ticks] == [2, 1, 0]
        assert [e["i"] for e in ticks] == [2, 1, 0]
        # The campaign log re-stamps its own seq in arrival order.
        assert [e["seq"] for e in ticks] == sorted(
            e["seq"] for e in ticks
        )

    def test_write_ndjson(self, tmp_path):
        log = EventLog()
        log.emit("one")
        log.emit("two")
        path = tmp_path / "events.ndjson"
        log.write(str(path))
        parsed = [json.loads(line) for line in path.read_text().splitlines()]
        assert [p["type"] for p in parsed] == ["one", "two"]


class TestCampaignEvents:
    def test_campaign_journals_its_lifecycle(self, tmp_path):
        campaign = Campaign(
            TopologySpec.mini(),
            {SPEC: _config()},
            probe=ProbeSpec.for_seed(5),
            shards=2,
            checkpoint_dir=str(tmp_path / "state"),
        )
        result = campaign.run()
        log = result.events
        assert log is campaign.events
        types = [e["type"] for e in log.events]
        assert "manifest_written" in types
        assert "campaign_started" in types
        assert types[-1] == "campaign_finished"
        finished = log.of_type("shard_finished")
        assert [(e["shard"], e["shards"]) for e in finished] == [(0, 2), (1, 2)]
        assert log.of_type("checkpoint_written")  # ingested from workers
        assert all(e["campaign"] == log.campaign_id for e in log.events)

    def test_monitor_renders_from_events(self):
        lines = []
        monitor = ProgressMonitor(sink=lines.append)
        Campaign(
            TopologySpec.mini(),
            {SPEC: _config()},
            probe=ProbeSpec.for_seed(5),
            shards=2,
            monitor=monitor,
        ).run()
        assert lines[0] == "campaign: 1 range(s) in 2 shard(s)"
        assert lines[-1].startswith("done: 2/2 shards")

    def test_monitor_lines_are_bounded(self):
        monitor = ProgressMonitor(sink=lambda _line: None, max_lines=3)
        for i in range(10):
            monitor.handle_event({"type": "shard_retry", "job_id": f"j{i}",
                                  "attempt": 1, "error": "boom"})
        assert len(monitor.lines) == 3
        assert "j9" in monitor.lines[-1]

    def test_monitor_json_mode_forwards_raw_events(self):
        lines = []
        monitor = ProgressMonitor(sink=lines.append, json_mode=True)
        monitor.handle_event({"type": "custom_event", "n": 3})
        assert json.loads(lines[0]) == {"type": "custom_event", "n": 3}


class TestCliTelemetryFlags:
    def test_scan_rejects_bad_trace_spec(self, capsys):
        from repro.cli import main

        assert main(["scan", "--trace", "sample:zero"]) == 2
        assert "invalid --trace" in capsys.readouterr().err

    def test_scan_writes_metrics_ndjson(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "metrics.ndjson"
        assert main([
            "scan", "--isp", "in-jio-broadband", "--scale", "50000",
            "--shards", "2", "--trace", "sample:64",
            "--metrics-out", str(out),
        ]) == 0
        capsys.readouterr()
        records = [json.loads(line) for line in out.read_text().splitlines()]
        kinds = {r["kind"] for r in records}
        assert {"counter", "gauge", "histogram", "trace"} <= kinds
        sent = [r for r in records
                if r["kind"] == "counter" and r["name"] == "scanner_probes_sent"]
        assert sent and sent[0]["value"] > 0
