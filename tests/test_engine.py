"""The scan orchestration engine: planning, executors, checkpoint/resume."""

import json

import pytest

from repro.core.probes.base import ReplyKind
from repro.core.scanner import ProbeResult, ScanConfig, ScanResult, Scanner
from repro.core.stats import ScanStats
from repro.core.target import ScanRange
from repro.core.validate import Validator, seed_secret
from repro.engine import (
    Campaign,
    CampaignError,
    CheckpointStore,
    CoverageError,
    ProbeSpec,
    ProgressMonitor,
    ShardPlanner,
    WorkerInterrupted,
    execute_job,
    make_executor,
)
from repro.engine.checkpoint import DONE, PARTIAL
from repro.net.addr import IPv6Addr
from repro.net.spec import BuiltTopology, TopologySpec, register_topology

from tests.topo import build_mini

SPEC = "2001:db8:1::/56-64"  # 256 sub-prefixes over both CPEs' space
UE_SPEC = "2001:db8:2::/56-64"


def _config(spec=SPEC, **kwargs) -> ScanConfig:
    return ScanConfig(scan_range=ScanRange.parse(spec), seed=5, **kwargs)


def _reply_set(result: ScanResult):
    return {(r.responder.value, r.target.value, r.kind) for r in result.results}


class TestShardCoverage:
    """Union of per-shard streams == unsharded stream, no duplicates."""

    @pytest.mark.parametrize("count_bits", [0, 1, 3, 6, 8])
    @pytest.mark.parametrize("seed", [0, 7])
    @pytest.mark.parametrize("shards", [1, 2, 3, 5])
    def test_planner_proves_partition(self, count_bits, seed, shards):
        config = ScanConfig(
            scan_range=ScanRange.parse(f"2001:db8::/{64 - count_bits}-64"),
            seed=seed,
        )
        assert ShardPlanner(shards).verify_coverage(config) == 1 << count_bits

    @pytest.mark.parametrize("shards", [2, 4, 7])
    def test_sharded_target_streams_partition_addresses(self, shards):
        topo = build_mini()
        probe_mod = ProbeSpec.for_seed(5).build()
        full = [
            a.value
            for a in Scanner(topo.network, topo.vantage, probe_mod, _config()).targets()
        ]
        assert len(full) == len(set(full)) == 256
        sharded = []
        for shard in range(shards):
            scanner = Scanner(
                topo.network, topo.vantage, probe_mod,
                _config(shard=shard, shards=shards),
            )
            sharded.extend(a.value for a in scanner.targets())
        assert len(sharded) == len(set(sharded))
        assert set(sharded) == set(full)

    def test_verify_coverage_rejects_huge_spaces(self):
        config = ScanConfig(scan_range=ScanRange.parse("2001:db8::/32-64"))
        with pytest.raises(CoverageError):
            ShardPlanner(2).verify_coverage(config)

    def test_skip_fast_forwards_the_stream(self):
        topo = build_mini()
        probe_mod = ProbeSpec.for_seed(5).build()
        full = list(
            Scanner(topo.network, topo.vantage, probe_mod, _config()).targets()
        )
        resumed = list(
            Scanner(
                topo.network, topo.vantage, probe_mod, _config(skip=100)
            ).targets()
        )
        assert resumed == full[100:]


class TestMergeHooks:
    def test_stats_merge_sums_and_widens(self):
        a = ScanStats(sent=10, blocked=1, received=4, validated=3,
                      virtual_start=5.0, virtual_end=9.0, wall_seconds=1.0)
        b = ScanStats(sent=20, blocked=2, received=6, validated=5,
                      virtual_start=2.0, virtual_end=7.0, wall_seconds=0.5)
        a.merge(b)
        assert (a.sent, a.blocked, a.received, a.validated) == (30, 3, 10, 8)
        assert (a.virtual_start, a.virtual_end) == (2.0, 9.0)
        assert a.wall_seconds == 1.5

    def test_stats_merge_ignores_empty_window(self):
        a = ScanStats(sent=10, virtual_start=5.0, virtual_end=9.0)
        a.merge(ScanStats())  # fresh stats must not clamp the window to 0
        assert (a.virtual_start, a.virtual_end) == (5.0, 9.0)
        empty = ScanStats()
        empty.merge(a)
        assert (empty.virtual_start, empty.virtual_end) == (5.0, 9.0)

    def _result(self, *keys) -> ScanResult:
        result = ScanResult(range=ScanRange.parse(SPEC))
        for i in keys:
            result.results.append(
                ProbeResult(
                    target=IPv6Addr(i), responder=IPv6Addr(i + 1),
                    kind=ReplyKind.DEST_UNREACHABLE, icmp_type=1, icmp_code=3,
                )
            )
        return result

    def test_result_merge_dedups_cross_shard(self):
        left, right = self._result(1, 2), self._result(2, 3)
        left.merge(right)
        assert len(left.results) == 3
        assert left.dedup_digest() == self._result(1, 2, 3).dedup_digest()

    def test_result_merge_rejects_range_mismatch(self):
        with pytest.raises(ValueError):
            self._result(1).merge(ScanResult(range=ScanRange.parse(UE_SPEC)))

    def test_by_kind_counts(self):
        result = self._result(1, 2, 3)
        assert result.by_kind() == {ReplyKind.DEST_UNREACHABLE: 3}

    def test_result_round_trips_through_json(self):
        topo = build_mini()
        scanner = Scanner(
            topo.network, topo.vantage, ProbeSpec.for_seed(5).build(), _config()
        )
        result = scanner.run()
        assert result.stats.validated > 0
        restored = ScanResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert _reply_set(restored) == _reply_set(result)
        assert restored.stats == result.stats
        assert restored.dedup_digest() == result.dedup_digest()


class TestProbeSpec:
    def test_for_seed_matches_discover_secret(self):
        assert ProbeSpec.for_seed(9).secret == seed_secret(9)
        assert Validator(seed_secret(9)).secret == seed_secret(9)

    @pytest.mark.parametrize("kind", ["icmp", "tcp", "udp"])
    def test_builds_each_probe_kind(self, kind):
        probe = ProbeSpec(kind=kind, secret=bytes(16), port=80).build()
        assert probe.validator.secret == bytes(16)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ProbeSpec(kind="quic").build()


class TestTopologySpec:
    def test_mini_round_trip(self):
        built = TopologySpec.mini().build()
        assert built.vantage.name == "vantage"
        assert "cpe-vuln" in built.network.devices

    def test_deployment_block_identical_alone_or_among_many(self):
        solo = TopologySpec.deployment(
            profiles=("in-jio-broadband",), scale=20_000, seed=7
        ).build()
        duo = TopologySpec.deployment(
            profiles=("in-jio-broadband", "cn-mobile-broadband"),
            scale=20_000, seed=7,
        ).build()
        solo_isp = solo.handle.isps["in-jio-broadband"]
        duo_isp = duo.handle.isps["in-jio-broadband"]
        assert solo_isp.scan_spec == duo_isp.scan_spec
        assert [t.last_hop for t in solo_isp.truths] == [
            t.last_hop for t in duo_isp.truths
        ]

    def test_custom_registration(self):
        def _builder(**params):
            topo = build_mini(**params)
            return BuiltTopology(topo.network, topo.vantage, topo)

        register_topology("test-mini", _builder)
        built = TopologySpec("test-mini", (("seed", 3),)).build()
        assert built.network.rng is not None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            TopologySpec("does-not-exist").build()


class TestCampaignEquivalence:
    """4-shard campaigns return byte-identical responder sets to 1 shard."""

    def _run(self, shards, executor, workers=None):
        campaign = Campaign(
            TopologySpec.mini(),
            {"wide": _config(), "ue": _config(UE_SPEC)},
            probe=ProbeSpec.for_seed(5),
            shards=shards,
            executor=executor,
            workers=workers,
        )
        return campaign.run()

    @pytest.fixture(scope="class")
    def baseline(self):
        return self._run(1, "serial")

    @pytest.mark.parametrize("executor,workers", [
        ("serial", None), ("thread", 4), ("process", 4),
    ])
    def test_four_shards_match_one(self, baseline, executor, workers):
        result = self._run(4, executor, workers)
        for label in ("wide", "ue"):
            assert _reply_set(result.results[label]) == _reply_set(
                baseline.results[label]
            )
            assert result.results[label].stats.sent == (
                baseline.results[label].stats.sent
            )
        assert result.stats.sent == baseline.stats.sent

    def test_monitor_reports_progress(self):
        lines = []
        campaign = Campaign(
            TopologySpec.mini(),
            {"ue": _config(UE_SPEC)},
            probe=ProbeSpec.for_seed(5),
            shards=2,
            monitor=ProgressMonitor(sink=lines.append),
        )
        campaign.run()
        assert any("campaign: 1 range(s) in 2 shard(s)" in l for l in lines)
        assert any(l.startswith("done: 2/2 shards") for l in lines)
        assert any("send:" in l and "hits:" in l for l in lines)


class TestRetryWithBackoff:
    def test_transient_worker_failure_is_retried(self):
        boom = {"wide.s01of02": 1}  # first attempt of shard 1 dies

        def fault(job):
            if boom.get(job.job_id, 0) > 0:
                boom[job.job_id] -= 1
                raise OSError("worker lost")

        campaign = Campaign(
            TopologySpec.mini(),
            {"wide": _config()},
            probe=ProbeSpec.for_seed(5),
            shards=2,
            executor=make_executor("serial", fault_hook=fault),
            max_retries=2,
            backoff_base=0.0,
        )
        result = campaign.run()
        attempts = {o.job.job_id: o.attempts for o in result.outcomes}
        assert attempts["wide.s01of02"] == 2
        assert attempts["wide.s00of02"] == 1
        assert result.stats.sent == 256

    def test_persistent_failure_raises_campaign_error(self):
        def fault(job):
            raise OSError("worker always lost")

        campaign = Campaign(
            TopologySpec.mini(),
            {"wide": _config()},
            probe=ProbeSpec.for_seed(5),
            shards=2,
            executor=make_executor("serial", fault_hook=fault),
            max_retries=1,
            backoff_base=0.0,
        )
        with pytest.raises(CampaignError) as excinfo:
            campaign.run()
        assert "wide.s00of02" in str(excinfo.value)
        assert excinfo.value.failures


class TestCheckpointResume:
    def _campaign(self, ckdir, **kwargs):
        return Campaign(
            TopologySpec.mini(),
            {"wide": _config()},
            probe=ProbeSpec.for_seed(5),
            shards=4,
            checkpoint_dir=str(ckdir),
            checkpoint_every=16,
            **kwargs,
        )

    def test_kill_and_resume_scans_every_index_exactly_once(self, tmp_path):
        baseline = Campaign(
            TopologySpec.mini(), {"wide": _config()},
            probe=ProbeSpec.for_seed(5), shards=4,
        ).run()

        interrupted = self._campaign(tmp_path / "state")
        jobs = interrupted.plan()
        jobs[2].interrupt_after = 37  # die mid-shard, past a checkpoint write
        with pytest.raises(WorkerInterrupted):
            interrupted.run(jobs=jobs)

        store = CheckpointStore(tmp_path / "state")
        states = {s.job_id: s for s in store.iter_states()}
        assert states["wide.s00of04"].status == DONE
        assert states["wide.s01of04"].status == DONE
        assert states["wide.s02of04"].status == PARTIAL
        assert states["wide.s02of04"].position == 37
        run1_sent = sum(s.result.stats.sent for s in states.values())

        resumed = self._campaign(tmp_path / "state", resume=True).run()
        # Completed shards re-send zero probes.
        by_id = {o.job.job_id: o for o in resumed.outcomes}
        for done_id in ("wide.s00of04", "wide.s01of04"):
            assert by_id[done_id].from_checkpoint
            assert by_id[done_id].sent_this_run == 0
        # The partial shard fast-forwarded to its checkpointed position.
        assert by_id["wide.s02of04"].resumed_at == 37
        # No probe index scanned twice: the two runs' sends sum exactly to
        # the uninterrupted campaign's (every index costs one probe).
        assert run1_sent + resumed.sent_this_run == baseline.stats.sent
        assert resumed.stats.sent == baseline.stats.sent
        # And the merged reply set is byte-identical.
        assert _reply_set(resumed.results["wide"]) == _reply_set(
            baseline.results["wide"]
        )

    def test_resume_refuses_mismatched_campaign(self, tmp_path):
        self._campaign(tmp_path / "state").run()
        other = Campaign(
            TopologySpec.mini(),
            {"wide": _config()},
            probe=ProbeSpec.for_seed(5),
            shards=8,  # different shard split
            checkpoint_dir=str(tmp_path / "state"),
            resume=True,
        )
        with pytest.raises(CampaignError):
            other.run()

    def test_fresh_campaign_clears_stale_state(self, tmp_path):
        first = self._campaign(tmp_path / "state").run()
        assert first.shards_from_checkpoint == 0
        again = self._campaign(tmp_path / "state").run()  # no resume flag
        assert again.shards_from_checkpoint == 0
        assert again.sent_this_run == first.sent_this_run

    def test_resume_skips_everything_after_clean_finish(self, tmp_path):
        first = self._campaign(tmp_path / "state").run()
        second = self._campaign(tmp_path / "state", resume=True).run()
        assert second.sent_this_run == 0
        assert second.shards_from_checkpoint == 4
        assert _reply_set(second.results["wide"]) == _reply_set(
            first.results["wide"]
        )

    def test_corrupt_state_is_discarded(self, tmp_path):
        store = CheckpointStore(tmp_path / "state")
        job = self._campaign(tmp_path / "state").plan()[0]
        outcome = execute_job(job)
        state = store.load_shard(job.job_id)
        assert state is not None and state.status == DONE
        # Tamper with the persisted replies: the digest no longer matches.
        path = store.shard_path(job.job_id)
        data = json.loads(path.read_text())
        if data["result"]["results"]:
            data["result"]["results"] = data["result"]["results"][:-1]
        else:
            data["result"]["stats"]["sent"] += 1
            data["result"]["results"] = [{
                "target": "2001:db8::1", "responder": "2001:db8::2",
                "kind": "dest-unreachable", "icmp_type": 1, "icmp_code": 3,
            }]
        path.write_text(json.dumps(data))
        assert store.load_shard(job.job_id) is None
        rerun = execute_job(job)
        assert rerun.sent_this_run == outcome.sent_this_run  # fully re-scanned
