"""Aliased-prefix detection (the 'non-aliased' qualifier of Table II)."""

import pytest

from repro.discovery.alias import (
    AliasedResponder,
    aliased_prefixes,
    check_aliased,
)
from repro.net.addr import IPv6Prefix

from tests.topo import MiniTopology, build_mini


@pytest.fixture
def world_with_alias():
    topo = build_mini()
    alias_prefix = IPv6Prefix.from_string("2001:db8:3:30::/64")
    responder = AliasedResponder("cdn", alias_prefix)
    responder.gateway = topo.isp  # a host needs a first-hop for replies
    topo.network.register(responder)
    topo.isp.delegate(alias_prefix, responder.primary_address)
    return topo, alias_prefix


class TestAliasDetection:
    def test_aliased_prefix_flagged(self, world_with_alias):
        topo, alias_prefix = world_with_alias
        checks = check_aliased(
            topo.network, topo.vantage, [alias_prefix], samples=4
        )
        assert len(checks) == 1
        assert checks[0].aliased
        assert checks[0].echo_replies == 4

    def test_real_periphery_prefixes_not_flagged(self, world_with_alias):
        topo, alias_prefix = world_with_alias
        # The correct CPE's delegation: probes draw unreachables, not echoes.
        flagged = aliased_prefixes(
            topo.network, topo.vantage,
            [MiniTopology.LAN_OK, MiniTopology.UE_PREFIX, alias_prefix],
        )
        assert flagged == {alias_prefix}

    def test_empty_space_not_flagged(self, world_with_alias):
        topo, _ = world_with_alias
        empty = IPv6Prefix.from_string("2001:db8:77::/64")
        assert aliased_prefixes(topo.network, topo.vantage, [empty]) == set()

    def test_loop_prefix_not_flagged(self, world_with_alias):
        """Time Exceeded from looping space is not an echo: no alias."""
        topo, _ = world_with_alias
        assert aliased_prefixes(
            topo.network, topo.vantage, [MiniTopology.LAN_VULN]
        ) == set()

    def test_alias_responder_answers_any_address(self, world_with_alias):
        topo, alias_prefix = world_with_alias
        from repro.net.packet import Icmpv6Type, echo_request

        for iid in (0x1, 0xDEAD, 0xFFFF_FFFF):
            probe = echo_request(
                topo.vantage.primary_address, alias_prefix.address(iid), 1, 1
            )
            inbox, _trace = topo.network.inject(probe, topo.vantage)
            assert inbox and inbox[0].payload.type == Icmpv6Type.ECHO_REPLY
