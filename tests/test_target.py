"""Scan-range DSL and IID fill strategies."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.target import IidStrategy, ScanRange, TargetGenerator
from repro.net.addr import AddressError, IPv6Addr


class TestScanRange:
    def test_parse_window(self):
        sr = ScanRange.parse("2001:db8::/32-64")
        assert sr.base.length == 32
        assert sr.target_length == 64
        assert sr.window_bits == 32
        assert sr.count == 1 << 32
        assert sr.host_bits == 64

    def test_parse_bare_prefix_extends_to_128(self):
        sr = ScanRange.parse("2001:db8::/32")
        assert sr.target_length == 128
        assert sr.host_bits == 0

    def test_parse_rejects_reversed_window(self):
        with pytest.raises(AddressError):
            ScanRange.parse("2001:db8::/64-32")

    def test_parse_rejects_garbage(self):
        with pytest.raises(AddressError):
            ScanRange.parse("not-a-range")

    def test_parse_rejects_host_bits(self):
        with pytest.raises(AddressError):
            ScanRange.parse("2001:db8::1/32-64")

    def test_subprefix_and_index(self):
        sr = ScanRange.parse("2001:db8::/32-48")
        sub = sr.subprefix(0xABC)
        assert str(sub) == "2001:db8:abc::/48"
        assert sr.index_of(sub.address(5)) == 0xABC

    def test_str(self):
        assert str(ScanRange.parse("2001:db8::/32-64")) == "2001:db8::/32-64"


class TestTargetGenerator:
    def _range(self):
        return ScanRange.parse("2001:db8::/32-64")

    def test_random_iids_are_deterministic_per_seed(self):
        sr = self._range()
        a = TargetGenerator(sr, seed=1)
        b = TargetGenerator(sr, seed=1)
        c = TargetGenerator(sr, seed=2)
        assert a.address(5) == b.address(5)
        assert a.address(5) != c.address(5)

    def test_random_iids_differ_per_index(self):
        gen = TargetGenerator(self._range(), seed=1)
        iids = {gen.iid(i) for i in range(100)}
        assert len(iids) == 100

    def test_addresses_land_in_right_subprefix(self):
        sr = self._range()
        gen = TargetGenerator(sr, seed=3)
        for index in (0, 1, 12345, sr.count - 1):
            addr = gen.address(index)
            assert sr.subprefix(index).contains(addr)

    def test_low_byte_strategy(self):
        gen = TargetGenerator(self._range(), strategy=IidStrategy.LOW_BYTE)
        assert gen.iid(7) == 1
        assert str(gen.address(7)).endswith("::1")

    def test_fixed_strategy(self):
        gen = TargetGenerator(
            self._range(), strategy=IidStrategy.FIXED, fixed_iid=0xBEEF
        )
        assert gen.iid(3) == 0xBEEF

    def test_zero_host_bits(self):
        sr = ScanRange.parse("2001:db8::/120-128")
        gen = TargetGenerator(sr, seed=1)
        assert gen.iid(5) == 0
        assert gen.address(5) == IPv6Addr.from_string("2001:db8::5")

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=(1 << 20) - 1))
    def test_wide_host_bits_fit(self, index):
        # A /32-44 range leaves 84 host bits: the wide-IID path.
        sr = ScanRange.parse("2001:db8::/32-44")
        gen = TargetGenerator(sr, seed=9)
        index %= sr.count
        addr = gen.address(index)
        assert sr.base.contains(addr)
        assert sr.subprefix(index).contains(addr)
