"""IID classification and the generator/classifier inverse property."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.discovery.iid import (
    IidClass,
    IidGenerator,
    classify_iid,
    iid_breakdown,
)
from repro.net.addr import IPv6Addr, MacAddress


class TestClassifier:
    def test_eui64(self):
        mac = MacAddress.from_string("34:56:78:9a:bc:de")
        assert classify_iid(mac.to_eui64_iid()) is IidClass.EUI64

    @pytest.mark.parametrize("iid", [1, 0xFF, 0x1234, 0xFFFF])
    def test_low_byte(self, iid):
        assert classify_iid(iid) is IidClass.LOW_BYTE

    def test_zero_is_low_byte(self):
        # The subnet-router anycast address: a run of zeroes.
        assert classify_iid(0) is IidClass.LOW_BYTE

    @pytest.mark.parametrize("octets", [(192, 168, 1, 1), (10, 0, 0, 3),
                                         (203, 0, 113, 99)])
    def test_embed_ipv4(self, octets):
        a, b, c, d = octets
        iid = (a << 24) | (b << 16) | (c << 8) | d
        assert classify_iid(iid) is IidClass.EMBED_IPV4

    def test_pattern_solid(self):
        assert classify_iid(0xABCD_ABCD_ABCD_ABCD) is IidClass.BYTE_PATTERN

    def test_pattern_alternating(self):
        assert classify_iid(0x1111_0000_1111_0000) is IidClass.BYTE_PATTERN

    def test_randomized(self):
        assert classify_iid(0x3F9A_1C5E_7B2D_9E41) is IidClass.RANDOMIZED

    def test_accepts_address(self):
        addr = IPv6Addr.from_string("2001:db8::3456:78ff:fe9a:bcde")
        assert classify_iid(addr) is IidClass.EUI64

    def test_eui64_beats_pattern(self):
        # ff:fe marker wins even for patterned-looking MACs.
        mac = MacAddress.from_string("11:11:11:11:11:11")
        assert classify_iid(mac.to_eui64_iid()) is IidClass.EUI64


class TestGeneratorInverse:
    @pytest.mark.parametrize("cls", [c for c in IidClass if c is not IidClass.EUI64])
    def test_generate_classifies_back(self, cls):
        gen = IidGenerator(random.Random(7))
        for _ in range(200):
            assert classify_iid(gen.generate(cls)) is cls

    def test_eui64_needs_mac(self):
        gen = IidGenerator(random.Random(7))
        with pytest.raises(ValueError):
            gen.generate(IidClass.EUI64)
        mac = MacAddress(0x001A2B3C4D5E)
        assert classify_iid(gen.generate(IidClass.EUI64, mac=mac)) is IidClass.EUI64

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32))
    def test_deterministic_per_seed(self, seed):
        a = IidGenerator(random.Random(seed)).generate(IidClass.RANDOMIZED)
        b = IidGenerator(random.Random(seed)).generate(IidClass.RANDOMIZED)
        assert a == b


class TestBreakdown:
    def test_counts(self):
        gen = IidGenerator(random.Random(1))
        iids = (
            [gen.generate(IidClass.LOW_BYTE) for _ in range(3)]
            + [gen.generate(IidClass.RANDOMIZED) for _ in range(5)]
        )
        counts = iid_breakdown(iids)
        assert counts[IidClass.LOW_BYTE] == 3
        assert counts[IidClass.RANDOMIZED] == 5
        assert counts[IidClass.EUI64] == 0

    def test_accepts_addresses(self):
        addrs = [IPv6Addr.from_string("2001:db8::1")]
        assert iid_breakdown(addrs)[IidClass.LOW_BYTE] == 1
