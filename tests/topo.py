"""Test alias for the library's demo topology (repro.net.testbed)."""

from repro.net.testbed import MiniTopology, build_mini

__all__ = ["MiniTopology", "build_mini"]
