"""Routing tables: LPM semantics, both implementations cross-validated."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.addr import IPv6Addr, IPv6Prefix
from repro.net.routing import (
    HashRoutingTable,
    Route,
    RouteKind,
    RoutingTable,
)


def _prefix(text: str) -> IPv6Prefix:
    return IPv6Prefix.from_string(text)


def _addr(text: str) -> IPv6Addr:
    return IPv6Addr.from_string(text)


@pytest.fixture(params=[RoutingTable, HashRoutingTable])
def table(request):
    return request.param()


class TestLpmSemantics:
    def test_empty_lookup(self, table):
        assert table.lookup(_addr("2001:db8::1")) is None

    def test_exact_match(self, table):
        table.add_connected(_prefix("2001:db8::/64"))
        route = table.lookup(_addr("2001:db8::42"))
        assert route is not None
        assert route.kind is RouteKind.CONNECTED

    def test_longest_prefix_wins(self, table):
        nh_a = _addr("2001:db8:ffff::a")
        nh_b = _addr("2001:db8:ffff::b")
        table.add_next_hop(_prefix("2001:db8::/32"), nh_a)
        table.add_next_hop(_prefix("2001:db8:1::/48"), nh_b)
        assert table.lookup(_addr("2001:db8:1::5")).next_hop == nh_b
        assert table.lookup(_addr("2001:db8:2::5")).next_hop == nh_a

    def test_default_route(self, table):
        gw = _addr("fe80::1")
        table.add_default(gw)
        assert table.lookup(_addr("2400::1")).next_hop == gw

    def test_more_specific_beats_default(self, table):
        table.add_default(_addr("fe80::1"))
        table.add_unreachable(_prefix("2001:db8::/32"))
        assert table.lookup(_addr("2001:db8::1")).kind is RouteKind.UNREACHABLE

    def test_replace_same_prefix(self, table):
        table.add_unreachable(_prefix("2001:db8::/64"))
        table.add_connected(_prefix("2001:db8::/64"))
        assert table.lookup(_addr("2001:db8::1")).kind is RouteKind.CONNECTED
        assert len(table) == 1

    def test_remove(self, table):
        table.add_connected(_prefix("2001:db8::/64"))
        assert table.remove(_prefix("2001:db8::/64"))
        assert table.lookup(_addr("2001:db8::1")) is None
        assert not table.remove(_prefix("2001:db8::/64"))

    def test_remove_keeps_covering(self, table):
        table.add_unreachable(_prefix("2001:db8::/32"))
        table.add_connected(_prefix("2001:db8::/64"))
        table.remove(_prefix("2001:db8::/64"))
        assert table.lookup(_addr("2001:db8::1")).kind is RouteKind.UNREACHABLE

    def test_zero_length_prefix(self, table):
        table.add(Route(IPv6Prefix(0, 0), RouteKind.UNREACHABLE))
        assert table.lookup(_addr("::1")).kind is RouteKind.UNREACHABLE

    def test_slash128_host_route(self, table):
        host = _addr("2001:db8::5")
        table.add_connected(host.prefix(128), "lo")
        assert table.lookup(host) is not None
        assert table.lookup(_addr("2001:db8::6")) is None

    def test_routes_enumeration(self, table):
        table.add_connected(_prefix("2001:db8::/64"))
        table.add_unreachable(_prefix("2001:db8::/32"))
        assert len(list(table.routes())) == 2

    def test_next_hop_requires_address(self):
        with pytest.raises(ValueError):
            Route(_prefix("2001:db8::/32"), RouteKind.NEXT_HOP)


@st.composite
def route_sets(draw):
    count = draw(st.integers(min_value=1, max_value=40))
    routes = []
    for _ in range(count):
        length = draw(st.sampled_from([0, 16, 32, 48, 56, 60, 64, 128]))
        network = draw(st.integers(min_value=0, max_value=(1 << 128) - 1))
        network = network >> (128 - length) << (128 - length) if length else 0
        routes.append(Route(IPv6Prefix(network, length), RouteKind.UNREACHABLE))
    return routes


class TestCrossValidation:
    @settings(max_examples=60, deadline=None)
    @given(route_sets(), st.integers(min_value=0, max_value=(1 << 128) - 1))
    def test_trie_and_hash_agree(self, routes, probe):
        trie = RoutingTable()
        hashed = HashRoutingTable()
        for route in routes:
            trie.add(route)
            hashed.add(route)
        a = trie.lookup(probe)
        b = hashed.lookup(probe)
        assert (a is None) == (b is None)
        if a is not None:
            assert a.prefix == b.prefix

    def test_agree_on_route_set_neighbourhood(self):
        rng = random.Random(5)
        trie, hashed = RoutingTable(), HashRoutingTable()
        prefixes = []
        for _ in range(200):
            length = rng.choice([32, 48, 60, 64])
            network = rng.getrandbits(128) >> (128 - length) << (128 - length)
            prefix = IPv6Prefix(network, length)
            prefixes.append(prefix)
            trie.add(Route(prefix, RouteKind.UNREACHABLE))
            hashed.add(Route(prefix, RouteKind.UNREACHABLE))
        # Probe near every stored prefix (first, last, neighbours).
        for prefix in prefixes:
            for value in (
                prefix.network,
                prefix.last.value,
                prefix.network - 1 if prefix.network else 0,
                (prefix.last.value + 1) & ((1 << 128) - 1),
            ):
                a, b = trie.lookup(value), hashed.lookup(value)
                assert (a is None) == (b is None)
                if a is not None:
                    assert a.prefix == b.prefix
