"""Columnar forwarding engine equivalence and invalidation tests.

The columnar engine (:mod:`repro.net.columnar`) is a pure performance
feature: every observable output — reply bytes, ordered results, engine
stats, store rows, telemetry counters — must be bit-identical to the
scalar oracle.  These tests pin that contract at three levels (raw
``inject_block`` vs sequential ``inject``, single scans, campaigns across
executors), on three worlds (the mini testbed, the Table-IX-style BGP
internet, the route-leak demo), plus the safety properties the fast path
depends on: generation/version stamp invalidation, fault-schedule
fallback to scalar, and the no-numpy degradation path.
"""

from __future__ import annotations

import math

import pytest

from repro.core.blocklist import Blocklist
from repro.core.scanner import ScanConfig, Scanner
from repro.core.target import ScanRange
from repro.engine import Campaign, ProbeSpec
from repro.faults import ROUTE_SET, FaultEvent, FaultSchedule
from repro.net import columnar
from repro.net.addr import IPv6Addr
from repro.net.device import Host
from repro.net.spec import TopologySpec
from repro.net.testbed import MiniTopology
from tests.topo import build_mini

needs_numpy = pytest.mark.skipif(
    columnar._np is None, reason="vector phase needs numpy; the no-numpy "
    "CI leg still runs every fallback-equivalence test above"
)

SPEC = "2001:db8:1::/56-64"  # 256 sub-prefixes over both CPEs' LAN space
LOOP_SPEC = "2001:db8:1:60::/60-64"  # the vulnerable CPE's looping /60


def _config(spec: str = SPEC, **kwargs) -> ScanConfig:
    return ScanConfig(scan_range=ScanRange.parse(spec), seed=5, **kwargs)


def _scan(run_batched: bool = False, **config_kwargs):
    """One full scan on a fresh mini topology; returns (result, metrics)."""
    topo = build_mini()
    scanner = Scanner(
        topo.network, topo.vantage, ProbeSpec.for_seed(5).build(),
        _config(**config_kwargs),
    )
    result = scanner.run_batched() if run_batched else scanner.run()
    return result, scanner.metrics


def _observables(result, metrics):
    """Everything a scan run promises to keep identical across paths."""
    stats = result.stats.to_dict()
    stats.pop("wall_seconds")  # the only legitimately nondeterministic field
    return (
        result.dedup_digest(),
        [r.to_dict() for r in result.results],
        stats,
        metrics.to_dict(),
    )


def _outcome_key(outcomes):
    """Byte-level projection of inject/inject_block results."""
    return [
        (
            [p.encode() for p in inbox],
            trace.hops,
            trace.drops,
            trace.delivered,
            trace.errors_generated,
            sorted(trace.link_counts.items()),
            trace.path,
        )
        for inbox, trace in outcomes
    ]


class TestInjectBlockEquivalence:
    """Raw ``Network.inject_block`` vs a sequential ``inject`` loop."""

    def _mixed_packets(self, topo):
        probe = ProbeSpec.for_seed(5).build()
        source = topo.vantage.primary_address
        targets = [
            # Delivered: the CPEs' own WAN addresses (echo replies).
            MiniTopology.WAN_OK.address(0xDEADBEEF),
            MiniTopology.WAN_VULN.address(0x1234),
            # LAN space behind the healthy CPE (on-link NDP miss).
            MiniTopology.SUBNET_OK.address(0x1),
            # The forwarding loop: bounces isp <-> cpe-vuln until the hop
            # limit dies (time-exceeded from whichever router holds it).
            IPv6Addr.from_string("2001:db8:1:61::5"),
            IPv6Addr.from_string("2001:db8:1:62::9"),
            # The UE prefix and unrouted space outside the ISP block.
            MiniTopology.UE_PREFIX.address(0x77),
            IPv6Addr.from_string("2001:db9::1"),
            # The vantage's own address (degenerate local delivery).
            source,
        ]
        packets = []
        for hop_limit in (64, 4, 2, 1):
            packets.extend(
                probe.build(source, dst).with_hop_limit(hop_limit)
                for dst in targets
            )
        return packets

    def _compare(self, packets_for, clocks_present: bool):
        topo_a, topo_b = build_mini(), build_mini()
        packets = packets_for(self, topo_a)
        clocks = (
            [i * 0.0005 for i in range(len(packets))]
            if clocks_present else None
        )
        fast = columnar.inject_block(
            topo_a.network, packets, topo_a.vantage, clocks
        )
        slow = columnar._sequential(
            topo_b.network, packets_for(self, topo_b), topo_b.vantage, clocks
        )
        assert _outcome_key(fast) == _outcome_key(slow)
        assert topo_a.network.total_injected == topo_b.network.total_injected
        assert topo_a.network.total_hops == topo_b.network.total_hops
        assert topo_a.network.clock == topo_b.network.clock

    def test_mixed_targets_match_sequential(self):
        self._compare(TestInjectBlockEquivalence._mixed_packets, True)

    def test_without_clocks_matches_sequential(self):
        self._compare(TestInjectBlockEquivalence._mixed_packets, False)

    def test_clock_restored_after_block(self):
        topo = build_mini()
        topo.network.clock = 1.25
        packets = self._mixed_packets(topo)
        columnar.inject_block(
            topo.network, packets, topo.vantage,
            [2.0 + i for i in range(len(packets))],
        )
        assert topo.network.clock == 1.25

    def test_clock_list_must_match_packets(self):
        topo = build_mini()
        packets = self._mixed_packets(topo)
        with pytest.raises(ValueError):
            columnar.inject_block(
                topo.network, packets, topo.vantage, [0.0]
            )


class TestScanEquivalence:
    """Columnar scans reproduce scalar scans bit-for-bit on the mini net."""

    def test_columnar_matches_scalar_batched(self):
        scalar = _observables(*_scan(run_batched=True, batched=True))
        fast = _observables(*_scan(run_batched=True, batched=True,
                                   columnar=True))
        assert scalar == fast
        assert fast[1]  # the scan actually produced replies

    def test_columnar_matches_serial(self):
        serial = _observables(*_scan())
        fast = _observables(*_scan(run_batched=True, columnar=True))
        assert serial == fast

    def test_run_redirects_to_batched_when_columnar(self):
        # The engine worker dispatches run() unless config.batched; the
        # columnar flag must reach the block loop through either entry.
        serial = _observables(*_scan())
        redirected = _observables(*_scan(run_batched=False, columnar=True))
        assert serial == redirected

    def test_columnar_with_flow_cache_off(self):
        serial = _observables(*_scan(flow_cache=False))
        fast = _observables(*_scan(run_batched=True, columnar=True,
                                   flow_cache=False))
        assert serial == fast

    @pytest.mark.parametrize("batch_size", [1, 3, 256, 10_000])
    def test_batch_size_does_not_change_results(self, batch_size):
        serial = _observables(*_scan())
        fast = _observables(*_scan(run_batched=True, columnar=True,
                                   batch_size=batch_size))
        assert serial == fast

    def test_columnar_with_blocklist_skip_and_cap(self):
        blocklist = Blocklist(blocked=["2001:db8:1:60::/60"])
        kwargs = dict(blocklist=blocklist, skip=17, max_probes=100)
        serial = _observables(*_scan(**kwargs))
        fast = _observables(*_scan(run_batched=True, columnar=True,
                                   batch_size=32, **kwargs))
        assert serial == fast
        assert serial[2]["blocked"] > 0

    def test_multi_probe_loop_range_with_timeseries(self):
        # Heavy per-target amplification over the looping /60 plus an armed
        # time-series sampler: exercises the 2-cycle fast-forward and the
        # chunk-boundary horizon that keeps sampler flushes scalar-exact.
        def run(columnar_on: bool):
            topo = build_mini()
            scanner = Scanner(
                topo.network, topo.vantage, ProbeSpec.for_seed(5).build(),
                _config(spec=LOOP_SPEC, probes_per_target=5,
                        timeseries_interval=0.001, batched=True,
                        columnar=columnar_on),
            )
            result = scanner.run_batched()
            assert scanner.sampler is not None
            return (_observables(result, scanner.metrics),
                    scanner.sampler.to_dict())

        serial_obs, serial_series = run(False)
        fast_obs, fast_series = run(True)
        assert serial_obs == fast_obs
        assert serial_series == fast_series
        assert serial_series["series"]


class TestWorldEquivalence:
    """The contract holds on the compiled-BGP worlds, not just the testbed."""

    def _world_scan(self, spec, columnar_on: bool):
        built = spec.build()
        config = ScanConfig(
            scan_range=ScanRange.parse(built.handle.edges[0].scan_spec),
            seed=5,
            batch_size=64,
            columnar=columnar_on,
        )
        scanner = Scanner(
            built.network, built.vantage, ProbeSpec.for_seed(5).build(),
            config,
        )
        return _observables(scanner.run_batched(), scanner.metrics)

    def test_internet_world(self):
        spec = TopologySpec.internet(seed=3, scale=20_000, n_tail_ases=20)
        scalar = self._world_scan(spec, False)
        fast = self._world_scan(spec, True)
        assert scalar == fast
        assert scalar[1]

    def test_leak_demo_world(self):
        spec = TopologySpec.leak_demo(seed=5)
        scalar = self._world_scan(spec, False)
        fast = self._world_scan(spec, True)
        assert scalar == fast
        assert scalar[1]


class TestCampaignEquivalence:
    """Thread/process shards use the columnar engine transparently."""

    def _run(self, executor: str, workers=None, **config_kwargs):
        campaign = Campaign(
            TopologySpec.mini(),
            {"wide": _config(**config_kwargs)},
            probe=ProbeSpec.for_seed(5),
            shards=2,
            executor=executor,
            workers=workers,
        )
        outcome = campaign.run()
        merged = outcome.results["wide"]
        stats = merged.stats.to_dict()
        stats.pop("wall_seconds")
        return merged.dedup_digest(), stats

    @pytest.mark.parametrize("executor,workers", [
        ("serial", None), ("thread", 2), ("process", 2),
    ])
    def test_columnar_matches_scalar_per_executor(self, executor, workers):
        scalar = self._run(executor, workers, batched=True)
        fast = self._run(executor, workers, columnar=True)
        assert scalar == fast


class TestFaultFallback:
    """Active fault windows force scalar forwarding, bit-identically."""

    SCHEDULE = FaultSchedule(
        seed=3,
        events=(
            FaultEvent(
                kind=ROUTE_SET, start=0.002, end=0.02, device="isp",
                prefix=str(MiniTopology.LAN_OK),
                next_hop=str(MiniTopology.WAN_VULN.address(0x1234)),
            ),
        ),
    )

    def _faulted(self, columnar_on: bool, schedule):
        return _observables(*_scan(
            run_batched=True, batched=True, columnar=columnar_on,
            rate_pps=2000.0, fault_schedule=schedule,
        ))

    def test_route_set_window_matches_scalar(self):
        scalar = self._faulted(False, self.SCHEDULE)
        fast = self._faulted(True, self.SCHEDULE)
        assert scalar == fast
        # The fault actually fired: the rerouted window changes the scan.
        assert scalar != self._faulted(False, None)

    @needs_numpy
    def test_exhausted_schedule_revectorises(self):
        # While a transition is pending the vector phase must stand down;
        # once every window has fired and reverted, _usable flips back on
        # and the remaining blocks go through the vector phase again.
        from repro.faults.injector import FaultInjector

        topo = build_mini()
        injector = FaultInjector(topo.network, self.SCHEDULE,
                                 protected=(topo.vantage.name,))
        injector.arm()
        assert not columnar._usable(topo.network)
        injector.sync(1.0)  # virtual time far past the last window edge
        assert injector.next_transition == math.inf
        assert columnar._usable(topo.network)


class TestStampInvalidation:
    """Route churn invalidates the compiled columns, like the flow cache."""

    def test_fib_is_cached_per_stamp(self):
        net = build_mini().network
        fib = net.columnar_fib()
        assert net.columnar_fib() is fib

    def test_table_version_bump_recompiles(self):
        topo = build_mini()
        net = topo.network
        fib = net.columnar_fib()
        topo.isp.table.remove(MiniTopology.LAN_OK)
        assert not fib.valid(net)
        assert net.columnar_fib() is not fib

    def test_generation_bump_recompiles(self):
        topo = build_mini()
        net = topo.network
        fib = net.columnar_fib()
        net.register(Host("late", IPv6Addr.from_string("2001:db8:2:7::99")))
        assert not fib.valid(net)
        assert net.columnar_fib() is not fib

    def test_scan_after_rotation_sees_new_world(self):
        """End-to-end: a mid-campaign delegation swap must reroute the
        columnar scan exactly as it reroutes the scalar scan."""

        def run(columnar_on: bool):
            topo = build_mini()
            config = _config(max_probes=40, batched=True,
                             columnar=columnar_on)
            before = Scanner(
                topo.network, topo.vantage, ProbeSpec.for_seed(5).build(),
                config,
            ).run_batched().dedup_digest()
            topo.isp.delegate(MiniTopology.LAN_OK,
                              MiniTopology.WAN_VULN.address(0x1234))
            topo.isp.delegate(MiniTopology.LAN_VULN,
                              MiniTopology.WAN_OK.address(0xDEADBEEF))
            after = Scanner(
                topo.network, topo.vantage, ProbeSpec.for_seed(5).build(),
                config,
            ).run_batched().dedup_digest()
            return before, after

        assert run(columnar_on=True) == run(columnar_on=False)
        before, after = run(columnar_on=True)
        assert before != after  # rotation changed the answers


class TestScalarFallbacks:
    """Every precondition failure degrades to the scalar loop unchanged."""

    def test_no_numpy_scan_is_identical(self, monkeypatch):
        scalar = _observables(*_scan(run_batched=True, batched=True))
        monkeypatch.setattr(columnar, "_np", None)
        fallback = _observables(*_scan(run_batched=True, batched=True,
                                       columnar=True))
        assert scalar == fallback

    def test_no_numpy_compile_reports_not_ok(self, monkeypatch):
        monkeypatch.setattr(columnar, "_np", None)
        net = build_mini().network
        assert not columnar._usable(net)
        assert not columnar.ColumnarFib.compile(net).ok

    @needs_numpy
    def test_usable_preconditions(self):
        net = build_mini().network
        assert columnar._usable(net)
        net.loss_rate = 0.1
        assert not columnar._usable(net)
        net.loss_rate = 0.0
        net.record_paths = True
        assert not columnar._usable(net)
        net.record_paths = False
        assert columnar._usable(net)
