"""Stateless probe validation."""

import pytest
from hypothesis import given, strategies as st

from repro.core.validate import Validator
from repro.net.addr import IPv6Addr

addr_values = st.integers(min_value=0, max_value=(1 << 128) - 1)
SECRET = bytes(range(16))


class TestValidator:
    def test_rejects_bad_secret(self):
        with pytest.raises(ValueError):
            Validator(b"short")

    def test_random_secret_by_default(self):
        a, b = Validator(), Validator()
        dst = IPv6Addr.from_string("2001:db8::1")
        assert a.tag(dst) != b.tag(dst)  # astronomically unlikely to collide

    @given(addr_values)
    def test_fields_deterministic(self, value):
        v = Validator(SECRET)
        assert v.fields(value) == v.fields(IPv6Addr(value))

    @given(addr_values)
    def test_fields_in_range(self, value):
        fields = Validator(SECRET).fields(value)
        assert 0 <= fields.ident < (1 << 16)
        assert 0 <= fields.seq < (1 << 16)
        assert 0 <= fields.tcp_seq < (1 << 32)
        assert 0x8000 <= fields.sport <= 0xFFFF

    def test_check_echo(self):
        v = Validator(SECRET)
        dst = IPv6Addr.from_string("2001:db8::1")
        fields = v.fields(dst)
        assert v.check_echo(dst, fields.ident, fields.seq)
        assert not v.check_echo(dst, fields.ident ^ 1, fields.seq)
        other = IPv6Addr.from_string("2001:db8::2")
        assert not v.check_echo(other, fields.ident, fields.seq)

    def test_check_tcp(self):
        v = Validator(SECRET)
        dst = IPv6Addr.from_string("2001:db8::1")
        fields = v.fields(dst)
        good_ack = (fields.tcp_seq + 1) & 0xFFFFFFFF
        assert v.check_tcp(dst, fields.sport, good_ack)
        assert not v.check_tcp(dst, fields.sport, good_ack + 1)
        assert not v.check_tcp(dst, fields.sport ^ 1, good_ack)

    def test_check_udp(self):
        v = Validator(SECRET)
        dst = IPv6Addr.from_string("2001:db8::1")
        assert v.check_udp(dst, v.fields(dst).sport)
        assert not v.check_udp(dst, 1234)

    def test_secret_separates_scans(self):
        dst = IPv6Addr.from_string("2001:db8::1")
        a = Validator(SECRET)
        b = Validator(bytes(reversed(SECRET)))
        fields = a.fields(dst)
        assert not b.check_echo(dst, fields.ident, fields.seq)
