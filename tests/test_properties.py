"""Cross-module property and fuzz tests."""

from hypothesis import given, settings, strategies as st

from repro.core.cyclic import CyclicGroupPermutation
from repro.core.probes.icmp import IcmpEchoProbe
from repro.core.validate import Validator
from repro.discovery.iid import IidClass, classify_iid
from repro.net.addr import IPv6Addr
from repro.net.packet import Packet, PacketError


class TestDecoderRobustness:
    """Wire decoders never crash on garbage: they parse or raise PacketError."""

    @settings(max_examples=300, deadline=None)
    @given(st.binary(max_size=200))
    def test_packet_decode_total(self, data):
        try:
            Packet.decode(data)
        except PacketError:
            pass  # rejected cleanly

    @settings(max_examples=150, deadline=None)
    @given(st.binary(min_size=40, max_size=120),
           st.integers(min_value=0, max_value=119),
           st.integers(min_value=0, max_value=255))
    def test_mutated_real_packet(self, payload, position, value):
        from repro.net.packet import echo_request

        src = IPv6Addr.from_string("2001:db8::1")
        dst = IPv6Addr.from_string("2001:db8::2")
        wire = bytearray(echo_request(src, dst, 1, 2, payload[:32]).encode())
        position %= len(wire)
        wire[position] = value
        try:
            Packet.decode(bytes(wire))
        except PacketError:
            pass

    @settings(max_examples=200, deadline=None)
    @given(st.binary(max_size=120))
    def test_classifier_never_crashes(self, data):
        """The probe classifier treats arbitrary packets as data."""
        probe = IcmpEchoProbe(Validator(bytes(16)))
        try:
            packet = Packet.decode(data)
        except PacketError:
            return
        probe.classify(packet)  # must not raise


class TestIidPartition:
    @settings(max_examples=300, deadline=None)
    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_every_iid_classifies_deterministically(self, iid):
        first = classify_iid(iid)
        assert classify_iid(iid) is first
        assert first in IidClass


class TestPermutationUniformity:
    def test_first_probe_positions_spread(self):
        """Across seeds, the first probed index is roughly uniform — the
        property that spreads scan load across target sub-networks."""
        size = 1 << 12
        buckets = [0] * 8
        for seed in range(400):
            first = next(iter(CyclicGroupPermutation(size, seed)))
            buckets[first * 8 // size] += 1
        expected = 400 / 8
        for count in buckets:
            assert 0.4 * expected < count < 1.9 * expected, buckets

    def test_sequential_outputs_decorrelated(self):
        perm = CyclicGroupPermutation(1 << 12, seed=5)
        values = list(perm)
        # Adjacent outputs should not be adjacent indices.
        adjacent = sum(
            1 for a, b in zip(values, values[1:]) if abs(a - b) == 1
        )
        assert adjacent < len(values) * 0.01


class TestValidatorProperties:
    @settings(max_examples=200, deadline=None)
    @given(st.integers(min_value=0, max_value=(1 << 128) - 1),
           st.integers(min_value=0, max_value=(1 << 128) - 1))
    def test_distinct_destinations_rarely_collide(self, a, b):
        if a == b:
            return
        validator = Validator(bytes(range(16)))
        fa, fb = validator.fields(a), validator.fields(b)
        # The full 64-bit tags must differ (16-bit subfields may collide).
        assert validator.tag(a) != validator.tag(b)
