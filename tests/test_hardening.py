"""Engine hardening: watchdog, checkpoint integrity, and the kill-test."""

import dataclasses
import json
import time

import pytest

from repro.core.scanner import ScanConfig
from repro.core.target import ScanRange
from repro.engine import (
    Campaign,
    CheckpointStore,
    ProbeSpec,
    ThreadPoolBackend,
    WatchdogTimeout,
    execute_job,
    make_executor,
)
from repro.engine.checkpoint import DONE, PARTIAL, ShardState
from repro.faults import FaultEvent, FaultSchedule, LOSS_BURST, ROUTER_CRASH
from repro.net.spec import TopologySpec

SPEC = "2001:db8:1::/56-64"  # 256 sub-prefixes over both CPEs' space


def _config(spec=SPEC, **kwargs) -> ScanConfig:
    return ScanConfig(scan_range=ScanRange.parse(spec), seed=5, **kwargs)


def _reply_set(result):
    return {(r.responder.value, r.target.value, r.kind) for r in result.results}


def _campaign(configs, **kwargs) -> Campaign:
    defaults = dict(probe=ProbeSpec.for_seed(5), backoff_base=0.0)
    defaults.update(kwargs)
    return Campaign(TopologySpec.mini(), configs, **defaults)


def _noop_hook(job):
    """Module-level (hence picklable) fault hook for the process backend."""


@dataclasses.dataclass(frozen=True)
class SleepOnce:
    """Picklable fault hook: the first attempt of ``job_id`` hangs.

    A marker file records the first attempt, so the retry (in a fresh pool
    worker that shares no memory with the killed one) sails through.
    """

    job_id: str
    seconds: float
    marker_dir: str

    def __call__(self, job) -> None:
        if job.job_id != self.job_id:
            return
        import pathlib

        marker = pathlib.Path(self.marker_dir) / f"{job.job_id}.hung"
        if not marker.exists():
            marker.write_text("hanging")
            time.sleep(self.seconds)


class TestWatchdog:
    def test_thread_watchdog_abandons_hung_shard_and_retries(self):
        baseline = _campaign({"wide": _config()}, shards=2).run()
        hung = {"wide.s01of02": 1}

        def hook(job):
            if hung.get(job.job_id, 0) > 0:
                hung[job.job_id] -= 1
                time.sleep(1.5)  # well past the shard deadline

        campaign = _campaign(
            {"wide": _config()},
            shards=2,
            executor=ThreadPoolBackend(workers=2, fault_hook=hook,
                                       shard_timeout=0.25),
            max_retries=2,
        )
        result = campaign.run()
        attempts = {o.job.job_id: o.attempts for o in result.outcomes}
        assert attempts["wide.s01of02"] == 2  # watchdog kill + clean retry
        assert attempts["wide.s00of02"] == 1
        assert result.metrics.value("campaign_watchdog_kills") == 1
        timeouts = result.events.of_type("watchdog_timeout")
        assert [e["job_id"] for e in timeouts] == ["wide.s01of02"]
        assert "deadline" in timeouts[0]["error"]
        assert _reply_set(result.results["wide"]) == _reply_set(
            baseline.results["wide"]
        )

    def test_process_watchdog_kills_hung_worker(self, tmp_path):
        hook = SleepOnce(job_id="wide.s00of02", seconds=30.0,
                         marker_dir=str(tmp_path))
        campaign = _campaign(
            {"wide": _config()},
            shards=2,
            executor=make_executor("process", workers=1, fault_hook=hook,
                                   shard_timeout=1.0),
            max_retries=2,
        )
        started = time.monotonic()
        result = campaign.run()
        # The hung worker was killed, not waited for.
        assert time.monotonic() - started < 15.0
        assert result.metrics.value("campaign_watchdog_kills") >= 1
        assert result.stats.sent == 256

    def test_hung_shard_exhausting_retries_fails_campaign(self):
        from repro.engine import CampaignError

        campaign = _campaign(
            {"wide": _config()},
            shards=1,
            executor=ThreadPoolBackend(
                workers=1,
                fault_hook=lambda job: time.sleep(0.8),
                shard_timeout=0.1,
            ),
            max_retries=1,
        )
        with pytest.raises(CampaignError) as excinfo:
            campaign.run()
        assert isinstance(
            next(iter(excinfo.value.failures.values())), WatchdogTimeout
        )

    def test_serial_backend_refuses_watchdog(self):
        with pytest.raises(ValueError, match="cannot watchdog itself"):
            make_executor("serial", shard_timeout=1.0)


class TestProcessFaultHooks:
    def test_unpicklable_hook_rejected_up_front(self):
        with pytest.raises(ValueError, match="does not pickle"):
            make_executor("process", fault_hook=lambda job: None)

    def test_picklable_hook_ships_to_pool_workers(self):
        campaign = _campaign(
            {"wide": _config()},
            shards=2,
            executor=make_executor("process", workers=2,
                                   fault_hook=_noop_hook),
        )
        result = campaign.run()
        assert result.stats.sent == 256


class TestKillTest:
    def test_sigkilled_worker_resumes_with_zero_duplicate_probes(
        self, tmp_path
    ):
        baseline = _campaign({"wide": _config()}, shards=2).run()

        campaign = _campaign(
            {"wide": _config()},
            shards=2,
            executor="process",
            workers=1,
            checkpoint_dir=str(tmp_path / "state"),
            checkpoint_every=16,
            max_retries=2,
        )
        jobs = campaign.plan()
        # A real SIGKILL mid-shard: the worker writes one last partial
        # checkpoint and dies without cleanup (BrokenProcessPool upstream).
        jobs[1].kill_after = 37
        result = campaign.run(jobs=jobs)

        by_id = {o.job.job_id: o for o in result.outcomes}
        killed = by_id["wide.s01of02"]
        assert killed.attempts == 2  # died once, resumed once
        assert killed.resumed_at == 37  # fast-forwarded past the checkpoint
        retries = result.events.of_type("shard_retry")
        assert any("wide.s01of02" == e["job_id"] for e in retries)
        assert result.events.of_type("shard_resumed")
        # Zero duplicate probes: the kill+resume campaign sends exactly the
        # uninterrupted campaign's probe count, and the census is identical.
        assert result.stats.sent == baseline.stats.sent
        assert _reply_set(result.results["wide"]) == _reply_set(
            baseline.results["wide"]
        )

    def test_kill_test_under_chaos_is_reproducible(self, tmp_path):
        # Faults + SIGKILL + resume.  The resumed attempt restarts the
        # virtual clock, so the fault window deterministically replays over
        # the *remaining* stream — two identical kill campaigns must agree
        # probe for probe, and nothing is sent twice.
        schedule = FaultSchedule(seed=11, events=(
            FaultEvent(kind=ROUTER_CRASH, start=0.002, end=0.003,
                       device="cpe-ok"),
        ))

        def run(ckdir):
            campaign = _campaign(
                {"wide": _config(fault_schedule=schedule)},
                shards=2,
                executor="process",
                workers=1,
                checkpoint_dir=str(ckdir),
                checkpoint_every=16,
                max_retries=2,
            )
            jobs = campaign.plan()
            jobs[0].kill_after = 37
            return campaign.run(jobs=jobs)

        first = run(tmp_path / "a")
        second = run(tmp_path / "b")
        assert first.stats.sent == 256  # 37 before the kill + the rest, once
        assert first.stats.sent == second.stats.sent
        assert first.stats.validated == second.stats.validated
        assert _reply_set(first.results["wide"]) == _reply_set(
            second.results["wide"]
        )


class TestCheckpointIntegrity:
    def _store(self, tmp_path):
        events = []
        return CheckpointStore(tmp_path / "state", on_event=events.append), \
            events

    def _write_state(self, store, job_id="wide.s00of02"):
        from repro.core.scanner import ScanResult

        state = ShardState(
            job_id=job_id, status=DONE, shard=0, shards=2, position=128,
            result=ScanResult(range=ScanRange.parse(SPEC)),
        )
        store.write_shard(state)
        return state

    def test_truncated_shard_file_quarantined(self, tmp_path):
        store, events = self._store(tmp_path)
        self._write_state(store)
        path = store.shard_path("wide.s00of02")
        path.write_text(path.read_text()[:40])  # torn write

        assert store.load_shard("wide.s00of02") is None
        assert not path.exists()
        assert path.with_name(path.name + ".corrupt").exists()
        corrupt = [e for e in events if e["type"] == "checkpoint_corrupt"]
        assert corrupt and corrupt[0]["reason"] == "truncated-or-invalid-json"

    def test_checksum_mismatch_quarantined(self, tmp_path):
        store, events = self._store(tmp_path)
        self._write_state(store)
        path = store.shard_path("wide.s00of02")
        data = json.loads(path.read_text())
        data["position"] = 999  # edit without refreshing the checksum
        path.write_text(json.dumps(data))

        assert store.load_shard("wide.s00of02") is None
        assert path.with_name(path.name + ".corrupt").exists()
        corrupt = [e for e in events if e["type"] == "checkpoint_corrupt"]
        assert corrupt and corrupt[0]["reason"] == "checksum-mismatch"

    def test_legacy_state_without_checksum_accepted(self, tmp_path):
        store, _ = self._store(tmp_path)
        state = self._write_state(store)
        path = store.shard_path(state.job_id)
        data = json.loads(path.read_text())
        del data["checksum"]  # a pre-integrity writer's file
        path.write_text(json.dumps(data))

        loaded = store.load_shard(state.job_id)
        assert loaded is not None and loaded.position == 128

    def test_iter_states_skips_corrupt_files(self, tmp_path):
        store, events = self._store(tmp_path)
        self._write_state(store, "wide.s00of02")
        self._write_state(store, "wide.s01of02")
        bad = store.shard_path("wide.s00of02")
        bad.write_text("{not json")

        survivors = [s.job_id for s in store.iter_states()]
        assert survivors == ["wide.s01of02"]
        assert bad.with_name(bad.name + ".corrupt").exists()
        assert any(e["type"] == "checkpoint_corrupt" for e in events)

    def test_corrupt_manifest_treated_as_missing(self, tmp_path):
        store, events = self._store(tmp_path)
        store.write_manifest({"ranges": ["wide"], "shards": 2, "seeds": [5]})
        path = store.directory / store.MANIFEST
        path.write_text(path.read_text()[:25])

        assert store.load_manifest() is None
        assert (store.directory / (store.MANIFEST + ".corrupt")).exists()
        assert any(e["type"] == "checkpoint_corrupt" for e in events)

    def test_clear_removes_quarantined_files(self, tmp_path):
        store, _ = self._store(tmp_path)
        self._write_state(store)
        path = store.shard_path("wide.s00of02")
        path.write_text("garbage")
        assert store.load_shard("wide.s00of02") is None  # quarantines
        store.clear()
        assert not list(store.directory.glob("shard-*"))

    def test_resume_rescans_shard_with_corrupt_checkpoint(self, tmp_path):
        ckdir = tmp_path / "state"
        campaign_kwargs = dict(
            shards=2, checkpoint_dir=str(ckdir), checkpoint_every=16,
        )
        first = _campaign({"wide": _config()}, **campaign_kwargs).run()
        store = CheckpointStore(ckdir)
        victim = store.shard_path("wide.s01of02")
        victim.write_text(victim.read_text()[:60])  # torn write mid-flush

        resumed = _campaign({"wide": _config()}, resume=True,
                            **campaign_kwargs).run()
        by_id = {o.job.job_id: o for o in resumed.outcomes}
        assert by_id["wide.s00of02"].sent_this_run == 0  # intact: restored
        assert by_id["wide.s01of02"].sent_this_run > 0  # corrupt: re-scanned
        assert resumed.events.of_type("checkpoint_corrupt")
        assert _reply_set(resumed.results["wide"]) == _reply_set(
            first.results["wide"]
        )


class TestCrossBackendDeterminism:
    """Same seed + schedule -> bit-identical campaigns on every backend."""

    SCHEDULE = FaultSchedule(seed=42, events=(
        FaultEvent(kind=LOSS_BURST, start=0.0005, end=0.0015, rate=0.4),
        FaultEvent(kind=ROUTER_CRASH, start=0.002, end=0.003,
                   device="cpe-ok"),
    ))

    def _run(self, executor, workers=None, batched=False):
        config = _config(
            fault_schedule=self.SCHEDULE,
            batched=batched,
            retransmit=2,
            retransmit_backoff=0.0002,
            adaptive_rate=True,
            adaptive_window=32,
        )
        return _campaign(
            {"wide": config}, shards=2, executor=executor, workers=workers
        ).run()

    @pytest.fixture(scope="class")
    def reference(self):
        return self._run("serial")

    @pytest.mark.parametrize("executor,workers", [
        ("thread", 2), ("process", 2),
    ])
    def test_backends_reproduce_identical_chaos(self, reference, executor,
                                                workers):
        result = self._run(executor, workers)
        assert _reply_set(result.results["wide"]) == _reply_set(
            reference.results["wide"]
        )
        assert result.stats.sent == reference.stats.sent
        assert result.stats.validated == reference.stats.validated
        for name in ("scanner_retransmits", "fault_packets_lost"):
            assert result.metrics.value(name) == reference.metrics.value(name)
        # The chaos timeline itself is identical, shard for shard.
        faults = sorted(
            (e["kind"], e["t_virtual"])
            for e in result.events.of_type("fault_applied")
        )
        ref_faults = sorted(
            (e["kind"], e["t_virtual"])
            for e in reference.events.of_type("fault_applied")
        )
        assert faults == ref_faults

    def test_batched_loop_reproduces_identical_chaos(self, reference):
        result = self._run("serial", batched=True)
        assert _reply_set(result.results["wide"]) == _reply_set(
            reference.results["wide"]
        )
        assert result.stats.sent == reference.stats.sent
