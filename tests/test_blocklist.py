"""Block/allow list semantics and the radix prefix set."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.blocklist import DEFAULT_BLOCKED, Blocklist, PrefixSet
from repro.net.addr import IPv6Addr, IPv6Prefix


def _addr(text):
    return IPv6Addr.from_string(text)


class TestPrefixSet:
    def test_empty(self):
        assert _addr("::1") not in PrefixSet()

    def test_covering_most_specific(self):
        ps = PrefixSet(["2001:db8::/32", "2001:db8:1::/48"])
        assert ps.covering(_addr("2001:db8:1::5")).length == 48
        assert ps.covering(_addr("2001:db8:2::5")).length == 32
        assert ps.covering(_addr("2400::1")) is None

    def test_accepts_prefix_objects(self):
        ps = PrefixSet([IPv6Prefix.from_string("2001:db8::/32")])
        assert _addr("2001:db8::1") in ps

    def test_iteration_and_len(self):
        ps = PrefixSet(["2001:db8::/32", "2400::/16"])
        assert len(ps) == 2
        assert {str(p) for p in ps} == {"2001:db8::/32", "2400::/16"}

    def test_duplicate_add_idempotent(self):
        ps = PrefixSet()
        ps.add("2001:db8::/32")
        ps.add("2001:db8::/32")
        assert len(ps) == 1

    @settings(max_examples=40, deadline=None)
    @given(st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=(1 << 128) - 1),
            st.sampled_from([16, 32, 48, 64, 96, 128]),
        ),
        min_size=1, max_size=30,
    ), st.integers(min_value=0, max_value=(1 << 128) - 1))
    def test_matches_linear_scan(self, entries, probe):
        prefixes = [
            IPv6Prefix(net >> (128 - ln) << (128 - ln), ln)
            for net, ln in entries
        ]
        ps = PrefixSet(prefixes)
        naive = [p for p in prefixes if p.contains(probe)]
        expected = max(naive, key=lambda p: p.length) if naive else None
        got = ps.covering(probe)
        if expected is None:
            assert got is None
        else:
            assert got is not None and got.length == expected.length


class TestBlocklist:
    def test_default_blocks_special_space(self):
        bl = Blocklist()
        assert not bl.is_allowed(_addr("::1"))
        assert not bl.is_allowed(_addr("fe80::1"))
        assert not bl.is_allowed(_addr("ff02::1"))
        assert not bl.is_allowed(_addr("fc00::42"))
        assert bl.is_allowed(_addr("2001:db8::1"))

    def test_allowlist_restricts(self):
        bl = Blocklist(blocked=(), allowed=["2001:db8::/32"])
        assert bl.is_allowed(_addr("2001:db8::1"))
        assert not bl.is_allowed(_addr("2400::1"))

    def test_more_specific_allow_overrides_block(self):
        bl = Blocklist(
            blocked=["2001:db8::/32"], allowed=["2001:db8:1::/48"]
        )
        assert bl.is_allowed(_addr("2001:db8:1::5"))
        assert not bl.is_allowed(_addr("2001:db8:2::5"))

    def test_more_specific_block_overrides_allow(self):
        bl = Blocklist(
            blocked=["2001:db8:1::/48"], allowed=["2001:db8::/32"]
        )
        assert not bl.is_allowed(_addr("2001:db8:1::5"))
        assert bl.is_allowed(_addr("2001:db8:2::5"))

    def test_tie_blocks(self):
        bl = Blocklist(blocked=["2001:db8::/32"], allowed=["2001:db8::/32"])
        assert not bl.is_allowed(_addr("2001:db8::1"))

    def test_default_blocked_constant(self):
        assert "fe80::/10" in DEFAULT_BLOCKED


class TestConfParsing:
    def test_parse_conf(self):
        from repro.core.blocklist import parse_conf

        text = """
        # reserved space
        2001:db8::/32   # documentation
        2400:cb00::/32

        fe80::1         # bare address -> /128
        """
        prefixes = parse_conf(text)
        assert [str(p) for p in prefixes] == [
            "2001:db8::/32", "2400:cb00::/32", "fe80::1/128",
        ]

    def test_parse_conf_reports_line_numbers(self):
        from repro.core.blocklist import parse_conf

        with pytest.raises(ValueError, match="line 2"):
            parse_conf("2001:db8::/32\nnot-a-prefix\n")

    def test_from_files(self, tmp_path):
        blocked = tmp_path / "blocked.conf"
        blocked.write_text("2400::/16  # an operator opt-out\n")
        allowed = tmp_path / "allowed.conf"
        allowed.write_text("2400:1::/32\n")
        bl = Blocklist.from_files(str(blocked), str(allowed))
        assert bl.is_allowed(_addr("2400:1::5"))  # allow is more specific
        assert not bl.is_allowed(_addr("2400:2::5"))  # blocked /16
        assert not bl.is_allowed(_addr("2001:db8::1"))  # outside allowlist

    def test_from_files_defaults(self, tmp_path):
        bl = Blocklist.from_files(include_defaults=True)
        assert not bl.is_allowed(_addr("ff02::1"))
        bl2 = Blocklist.from_files(include_defaults=False)
        assert bl2.is_allowed(_addr("ff02::1"))
