"""The repro.store subsystem: segments, manifest, queries, diff, sinks."""

import csv
import io
import json

import pytest

from repro.core.output import (
    render_csv,
    write_scan_csv,
    write_scan_jsonl,
    write_services_csv,
)
from repro.core.probes.base import ReplyKind
from repro.core.probes.icmp import IcmpEchoProbe
from repro.core.scanner import ProbeResult, ScanConfig, Scanner, ScanResult
from repro.core.target import ScanRange
from repro.core.validate import Validator
from repro.net.addr import IPv6Addr, IPv6Prefix
from repro.store import (
    CsvSink,
    JsonlSink,
    ListSink,
    ResultStore,
    SegmentCorrupt,
    SegmentReader,
    SegmentSink,
    SegmentWriter,
    StoreCorruption,
    StoreError,
    diff,
    query,
)
from repro.telemetry.metrics import MetricsRegistry

from tests.topo import build_mini

LAN_OK = "2001:db8:1:50::/60-64"


def _scan(topo, spec=LAN_OK, sink=None):
    probe = IcmpEchoProbe(Validator(bytes(range(16))), hop_limit=255)
    config = ScanConfig(scan_range=ScanRange.parse(spec), seed=5)
    return Scanner(topo.network, topo.vantage, probe, config, sink=sink).run()


def _row(target: int, responder: int, kind=ReplyKind.DEST_UNREACHABLE):
    return ProbeResult(
        target=IPv6Addr(target),
        responder=IPv6Addr(responder),
        kind=kind,
        icmp_type=1,
        icmp_code=3,
    )


def _rows(n, base=0x2001_0DB8 << 96, kind=ReplyKind.DEST_UNREACHABLE):
    return [
        _row(base + (i << 64) + 0xBAD, base + (i << 64) + 1, kind)
        for i in range(n)
    ]


class TestSegment:
    def test_round_trip_mmap_and_scalar(self, tmp_path):
        rows = _rows(1000)
        writer = SegmentWriter(tmp_path / "a.seg", block_rows=64)
        writer.append_many(rows)
        meta = writer.seal()
        assert meta["rows"] == 1000
        assert meta["blocks"] == (1000 + 63) // 64
        for use_mmap in (True, False):
            reader = SegmentReader(tmp_path / "a.seg", meta,
                                   use_mmap=use_mmap)
            assert list(reader.iter_rows()) == rows
            reader.verify()

    def test_block_restriction(self, tmp_path):
        rows = _rows(100)
        writer = SegmentWriter(tmp_path / "a.seg", block_rows=10)
        writer.append_many(rows)
        meta = writer.seal()
        reader = SegmentReader(tmp_path / "a.seg", meta)
        assert list(reader.iter_rows(blocks=[3])) == rows[30:40]

    def test_unsealed_leaves_only_tmp(self, tmp_path):
        writer = SegmentWriter(tmp_path / "a.seg")
        writer.append_many(_rows(5))
        assert not (tmp_path / "a.seg").exists()
        writer.abort()
        assert list(tmp_path.glob("*")) == []

    def test_truncation_detected(self, tmp_path):
        writer = SegmentWriter(tmp_path / "a.seg", block_rows=16)
        writer.append_many(_rows(64))
        meta = writer.seal()
        data = (tmp_path / "a.seg").read_bytes()
        (tmp_path / "a.seg").write_bytes(data[:-10])
        reader = SegmentReader(tmp_path / "a.seg", meta)
        with pytest.raises(SegmentCorrupt, match="truncated"):
            list(reader.iter_rows())

    def test_bitflip_detected_by_block_crc(self, tmp_path):
        writer = SegmentWriter(tmp_path / "a.seg", block_rows=16)
        writer.append_many(_rows(64))
        meta = writer.seal()
        data = bytearray((tmp_path / "a.seg").read_bytes())
        data[100] ^= 0xFF  # a row byte inside block 0
        (tmp_path / "a.seg").write_bytes(bytes(data))
        reader = SegmentReader(tmp_path / "a.seg", meta)
        with pytest.raises(SegmentCorrupt, match="CRC"):
            list(reader.iter_rows())

    def test_kind_codes_round_trip_every_kind(self, tmp_path):
        rows = [_row(i << 64, (i << 64) + 1, kind)
                for i, kind in enumerate(ReplyKind)]
        writer = SegmentWriter(tmp_path / "a.seg")
        writer.append_many(rows)
        meta = writer.seal()
        back = list(SegmentReader(tmp_path / "a.seg", meta).iter_rows())
        assert [r.kind for r in back] == [r.kind for r in rows]


class TestSinks:
    def test_csv_sink_matches_one_shot_writer(self):
        topo = build_mini()
        result = _scan(topo)
        buffer = io.StringIO()
        sink = CsvSink(buffer)
        sink.emit_many(result.results)
        sink.close()
        assert buffer.getvalue() == render_csv(write_scan_csv, result)

    def test_jsonl_sink_matches_one_shot_writer(self):
        topo = build_mini()
        result = _scan(topo)
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        sink.emit_many(result.results)
        sink.close()
        assert buffer.getvalue() == render_csv(write_scan_jsonl, result)

    def test_empty_scan_is_a_wellformed_csv(self):
        empty = ScanResult(range=ScanRange.parse(LAN_OK))
        buffer = io.StringIO()
        sink = CsvSink(buffer)
        sink.close()
        assert buffer.getvalue() == render_csv(write_scan_csv, empty)
        assert buffer.getvalue().startswith("target,responder,kind")
        assert render_csv(write_scan_jsonl, empty) == ""

    def test_scanner_streams_to_sink_instead_of_buffering(self):
        topo = build_mini()
        baseline = _scan(build_mini())
        sink = ListSink()
        result = _scan(topo, sink=sink)
        assert result.results == []  # nothing buffered on the result
        assert result.stats.validated == baseline.stats.validated
        assert sink.results == baseline.results

    def test_segment_sink_bounds_resident_rows(self, tmp_path):
        block_rows = 4
        writer = SegmentWriter(tmp_path / "a.seg", block_rows=block_rows)
        sink = SegmentSink(writer)
        peak = 0
        original = SegmentWriter.append

        def tracking(self, row):
            nonlocal peak
            original(self, row)
            peak = max(peak, self.buffered_rows)

        SegmentWriter.append = tracking
        try:
            result = _scan(build_mini(), sink=sink)
        finally:
            SegmentWriter.append = original
        sink.close()
        assert result.results == []
        assert sink.meta["rows"] == result.stats.validated > 0
        assert peak <= block_rows


class TestServicesCsv:
    def _legacy(self, results):
        """The hand-rolled writer `repro-xmap services --csv` used to
        inline; kept here as the parity oracle."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(["target", "service", "alive", "software",
                         "banner", "vendor_hint"])
        for result in results:
            for obs in result.observations:
                writer.writerow([
                    str(obs.target), obs.service, obs.alive,
                    obs.software.banner if obs.software else "",
                    obs.banner, obs.vendor_hint,
                ])
        return buffer.getvalue()

    def test_matches_legacy_inline_writer(self):
        from repro.services.zgrab import AppScanner

        topo = build_mini()
        scan = _scan(topo)
        scanner = AppScanner(topo.network, topo.vantage)
        app = scanner.scan(sorted(
            {r.responder for r in scan.results}, key=lambda a: a.value
        ))
        buffer = io.StringIO()
        write_services_csv([app], buffer)
        assert buffer.getvalue() == self._legacy([app])

    def test_unicode_banner_survives(self):
        class Obs:
            target = IPv6Addr(0x2001 << 112)
            service = "telnet"
            alive = True
            software = None
            banner = "中国电信 CPE ∆ログイン\r\n"
            vendor_hint = "中兴通讯"

        class Result:
            observations = [Obs()]

        buffer = io.StringIO()
        write_services_csv([Result()], buffer)
        text = buffer.getvalue()
        assert text == self._legacy([Result()])
        back = list(csv.DictReader(io.StringIO(text)))
        assert back[0]["banner"] == Obs.banner
        assert back[0]["vendor_hint"] == Obs.vendor_hint

    def test_empty_results_still_write_header(self):
        buffer = io.StringIO()
        assert write_services_csv([], buffer) == 0
        assert buffer.getvalue() == self._legacy([])


class TestResultStore:
    def _store_with(self, tmp_path, groups, snapshot=None):
        store = ResultStore(tmp_path / "store")
        metas = []
        for name, rows in groups.items():
            writer = store.writer(name, block_rows=8)
            writer.append_many(rows)
            metas.append(writer.seal())
        store.commit(metas, snapshot=snapshot)
        return store

    def test_commit_reopen_round_trip(self, tmp_path):
        rows = _rows(100)
        self._store_with(tmp_path, {"a": rows[:60], "b": rows[60:]},
                         snapshot="round-1")
        store = ResultStore(tmp_path / "store")
        assert store.total_rows == 100
        assert list(store.iter_rows()) == rows
        assert store.snapshot("round-1").rows == 100

    def test_store_query_csv_matches_scan_csv(self, tmp_path):
        """Format parity: rows exported from the store are row-for-row what
        the one-shot writer produces from the live result."""
        topo = build_mini()
        result = _scan(topo)
        store = ResultStore(tmp_path / "store")
        writer = store.writer("scan")
        writer.append_many(result.results)
        store.commit([writer.seal()])
        for sink_cls, oracle in ((CsvSink, write_scan_csv),
                                 (JsonlSink, write_scan_jsonl)):
            buffer = io.StringIO()
            sink = sink_cls(buffer)
            sink.emit_many(query(store))
            sink.close()
            assert buffer.getvalue() == render_csv(oracle, result)

    def test_duplicate_and_unsealed_commits_rejected(self, tmp_path):
        store = self._store_with(tmp_path, {"a": _rows(4)})
        writer = store.writer("a")
        writer.append_many(_rows(4))
        meta = writer.seal()
        with pytest.raises(StoreError, match="already committed"):
            store.commit([meta])
        with pytest.raises(StoreError, match="never sealed"):
            store.commit([{"name": "ghost.seg", "rows": 0}])

    def test_unknown_snapshot_lists_available(self, tmp_path):
        store = self._store_with(tmp_path, {"a": _rows(4)}, snapshot="r1")
        with pytest.raises(StoreError, match="r1"):
            store.snapshot("r9")

    def test_torn_manifest_quarantined_never_guessed(self, tmp_path):
        self._store_with(tmp_path, {"a": _rows(10)})
        manifest = tmp_path / "store" / "manifest.json"
        text = manifest.read_text()
        manifest.write_text(text[: len(text) // 2])  # torn mid-write
        with pytest.raises(StoreCorruption, match="quarantined"):
            ResultStore(tmp_path / "store")
        assert (tmp_path / "store" / "manifest.json.corrupt").exists()
        # Re-open proceeds (empty — the corrupt manifest was set aside).
        store = ResultStore(tmp_path / "store")
        assert store.total_rows == 0

    def test_tampered_manifest_fails_checksum(self, tmp_path):
        self._store_with(tmp_path, {"a": _rows(10)})
        manifest = tmp_path / "store" / "manifest.json"
        data = json.loads(manifest.read_text())
        data["segments"][0]["rows"] = 9_999  # hand-edit
        manifest.write_text(json.dumps(data))
        with pytest.raises(StoreCorruption, match="checksum"):
            ResultStore(tmp_path / "store")

    def test_resized_segment_quarantined_on_open(self, tmp_path):
        store = self._store_with(
            tmp_path, {"a": _rows(10), "b": _rows(10, base=0xDEAD << 112)},
            snapshot="r1",
        )
        path = store.segment_path("a.seg")
        path.write_bytes(path.read_bytes()[:-4])
        with pytest.raises(StoreCorruption, match="a.seg"):
            ResultStore(tmp_path / "store")
        # Re-open continues with the survivors; the snapshot is flagged.
        store = ResultStore(tmp_path / "store")
        assert list(store.segments) == ["b.seg"]
        assert store.quarantined == ["a.seg"]
        snap = store.snapshot("r1")
        assert snap.segments == ("b.seg",)
        assert snap.meta["incomplete"]
        assert store.segment_path("a.seg.corrupt").exists()

    def test_midread_corruption_quarantines_and_raises(self, tmp_path):
        """A CRC failure discovered while iterating costs an exception and
        a quarantine — never a silently wrong row set."""
        store = self._store_with(tmp_path, {"a": _rows(64)})
        path = store.segment_path("a.seg")
        data = bytearray(path.read_bytes())
        data[50] ^= 0x01  # flip a row bit without changing the size
        path.write_bytes(bytes(data))
        store = ResultStore(tmp_path / "store")  # size check passes
        with pytest.raises(StoreCorruption, match="quarantined"):
            list(store.iter_rows())
        store = ResultStore(tmp_path / "store")
        assert store.total_rows == 0
        assert store.quarantined == ["a.seg"]

    def test_orphans_reported_and_swept_by_compaction(self, tmp_path):
        store = self._store_with(tmp_path, {"a": _rows(8)})
        writer = store.writer("orphan")
        writer.append_many(_rows(3))
        writer.seal()  # sealed but never committed (crash window)
        assert store.orphans() == ["orphan.seg"]
        store.compact()
        assert store.orphans() == []
        assert store.total_rows == 8

    def test_stale_tmp_swept_on_open(self, tmp_path):
        import os as _os
        import time as _time

        store = self._store_with(tmp_path, {"a": _rows(8)})
        junk = store.segment_dir / "dead.seg.123-456.tmp"
        junk.write_bytes(b"partial")
        # A *fresh* tmp belongs to a live writer (multi-writer store) and
        # must survive an open; only stale ones are dead-writer litter.
        store = ResultStore(tmp_path / "store")
        assert junk.exists()
        stale = _time.time() - ResultStore.TMP_SWEEP_GRACE - 60
        _os.utime(junk, (stale, stale))
        store = ResultStore(tmp_path / "store")
        assert not junk.exists()
        assert store.total_rows == 8

    def test_metrics_counters(self, tmp_path):
        registry = MetricsRegistry()
        store = ResultStore(tmp_path / "store", metrics=registry)
        writer = store.writer("a")
        writer.append_many(_rows(12))
        store.commit([writer.seal()], snapshot="r1")
        exported = {
            m["name"]: m["value"] for m in registry.metric_dicts()
        }
        assert exported["store_segments_committed"] == 1
        assert exported["store_rows_ingested"] == 12
        assert exported["store_total_rows"] == 12


class TestCompaction:
    def test_dedup_within_snapshot_preserves_logical_rows(self, tmp_path):
        rows = _rows(50)
        store = ResultStore(tmp_path / "store")
        metas = []
        for name, chunk in (("s0", rows[:30]), ("s1", rows[20:])):
            writer = store.writer(name, block_rows=8)
            writer.append_many(chunk)
            metas.append(writer.seal())
        store.commit(metas, snapshot="r1")
        report = store.compact()
        assert report["duplicates_dropped"] == 10
        assert report["segments_after"] == 1
        store = ResultStore(tmp_path / "store")
        assert sorted(r.target.value for r in store.iter_rows()) == sorted(
            r.target.value for r in rows
        )
        assert store.snapshot("r1").rows == 50

    def test_distinct_snapshots_never_merge_together(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        for snap, base in (("r1", 0x2001 << 112), ("r2", 0x2002 << 112)):
            metas = []
            for shard in range(2):
                writer = store.writer(f"{snap}-{shard}")
                writer.append_many(_rows(10, base=base + (shard << 80)))
                metas.append(writer.seal())
            store.commit(metas, snapshot=snap)
        before = {
            snap: sorted(r.target.value for r in query(store, snapshot=snap))
            for snap in ("r1", "r2")
        }
        report = store.compact()
        assert report["segments_after"] == 2  # one per snapshot, not one
        store = ResultStore(tmp_path / "store")
        after = {
            snap: sorted(r.target.value for r in query(store, snapshot=snap))
            for snap in ("r1", "r2")
        }
        assert after == before


class TestQuery:
    BASE_A = 0x2001_0DB8 << 96  # 2001:db8::/32
    BASE_B = 0x2001_0DEA << 96  # 2001:dea::/32

    def _two_block_store(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        metas = []
        for name, base in (("a", self.BASE_A), ("b", self.BASE_B)):
            writer = store.writer(name, block_rows=4)
            writer.append_many(_rows(32, base=base))
            metas.append(writer.seal())
        store.commit(metas)
        return store

    def test_filters_match_brute_force(self, tmp_path):
        store = self._two_block_store(tmp_path)
        everything = list(store.iter_rows())
        prefix = IPv6Prefix.from_string("2001:db8::/32")
        got = list(query(store, prefix=prefix))
        assert got == [r for r in everything if prefix.contains(r.target)]
        kind = ReplyKind.DEST_UNREACHABLE
        assert list(query(store, kind=kind)) == [
            r for r in everything if r.kind == kind
        ]
        target64 = everything[3].responder.slash64
        assert list(query(store, responder64=target64)) == [
            r for r in everything if r.responder.slash64 == target64
        ]

    def test_prefix_query_skips_unrelated_segments(self, tmp_path):
        """The per-segment index proves segment b holds nothing under
        2001:db8::/32, so its rows are never decoded."""
        store = self._two_block_store(tmp_path)
        read: list = []
        original = SegmentReader.iter_rows

        def tracking(self, blocks=None):
            read.append(self.path.name)
            return original(self, blocks)

        SegmentReader.iter_rows = tracking
        try:
            rows = list(query(store, prefix="2001:db8::/32"))
        finally:
            SegmentReader.iter_rows = original
        assert len(rows) == 32
        assert read == ["a.seg"]

    def test_prefix_query_prunes_blocks_within_a_segment(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        writer = store.writer("mixed", block_rows=4)
        writer.append_many(_rows(16, base=self.BASE_A))  # blocks 0-3
        writer.append_many(_rows(16, base=self.BASE_B))  # blocks 4-7
        store.commit([writer.seal()])
        reader = store.reader("mixed.seg")
        blocks = reader.index.blocks_for_prefix(
            IPv6Prefix.from_string("2001:dea::/32")
        )
        assert blocks == [4, 5, 6, 7]
        rows = list(query(store, prefix="2001:dea::/32"))
        assert len(rows) == 16

    def test_responder64_requires_a_slash64(self, tmp_path):
        store = self._two_block_store(tmp_path)
        with pytest.raises(ValueError, match="/64"):
            list(query(store, responder64="2001:db8::/32"))


class TestDiff:
    def test_churn_report_exact(self, tmp_path):
        eui = (0x2001_0DB8 << 96) + (7 << 64) + 0x0221_86FF_FE00_0001
        round1 = _rows(4) + [_row((5 << 64), eui)]
        round2 = _rows(4)[1:] + [_row((6 << 64), (9 << 64) + 2)]
        store = ResultStore(tmp_path / "store")
        for snap, rows in (("r1", round1), ("r2", round2)):
            writer = store.writer(snap)
            writer.append_many(rows)
            store.commit([writer.seal()], snapshot=snap)
        report = diff(store, "r1", "r2")
        r1 = {r.responder.value for r in round1}
        r2 = {r.responder.value for r in round2}
        assert report.stable == r1 & r2
        assert report.lost == r1 - r2
        assert report.new == r2 - r1
        assert report.rows_a == 5 and report.rows_b == 4
        assert report.eui64_share_a == pytest.approx(1 / 5)
        assert report.eui64_share_b == 0.0
        assert report.eui64_drift == pytest.approx(-1 / 5)
        assert 0.0 < report.churn_rate < 1.0
        assert "churn" in report.render()
        assert report.to_dict()["stable"] == len(r1 & r2)

    def test_identical_rounds_zero_churn(self, tmp_path):
        rows = _rows(10)
        store = ResultStore(tmp_path / "store")
        for snap in ("r1", "r2"):
            writer = store.writer(snap)
            writer.append_many(rows)
            store.commit([writer.seal()], snapshot=snap)
        report = diff(store, "r1", "r2")
        assert report.churn_rate == 0.0
        assert not report.new and not report.lost


class TestMergeSinglePass:
    def test_merge_is_linear_not_quadratic(self):
        counter = {"n": 0}
        original = ProbeResult.dedup_key.fget

        def counting(self):
            counter["n"] += 1
            return original(self)

        shards = 40
        per_shard = 10
        merged = ScanResult(range=ScanRange.parse(LAN_OK))
        parts = [
            ScanResult(
                range=ScanRange.parse(LAN_OK),
                results=_rows(per_shard, base=(0x2001 << 112) + (i << 80)),
            )
            for i in range(shards)
        ]
        ProbeResult.dedup_key = property(counting)
        try:
            for part in parts:
                merged.merge(part)
        finally:
            ProbeResult.dedup_key = property(original)
        total = shards * per_shard
        assert len(merged.results) == total
        # Single-pass: ~2 accesses per incoming row (check + add).  The old
        # behaviour rebuilt the seen-set per call — Σ len(results) ≈ 7800
        # extra accesses at this shape.
        assert counter["n"] <= 2 * total + per_shard

    def test_out_of_band_append_still_dedups(self):
        rows = _rows(5)
        merged = ScanResult(range=ScanRange.parse(LAN_OK))
        merged.merge(ScanResult(range=ScanRange.parse(LAN_OK),
                                results=rows[:3]))
        merged.results.append(rows[3])  # behind the cache's back
        merged.merge(ScanResult(range=ScanRange.parse(LAN_OK),
                                results=rows[2:]))
        assert len(merged.results) == 5  # rows[2] and rows[3] not doubled


class TestEngineIntegration:
    def _configs(self):
        return {
            "lan": ScanConfig(scan_range=ScanRange.parse(LAN_OK), seed=7)
        }

    def _campaign(self, tmp_path, **kwargs):
        from repro.engine import Campaign
        from repro.net.spec import TopologySpec

        return Campaign(TopologySpec.mini(), self._configs(), shards=2,
                        executor="serial", **kwargs)

    def test_campaign_streams_bounded_and_equivalent(self, tmp_path):
        """Store mode holds zero rows on results/outcomes and lands exactly
        the storeless campaign's deduplicated reply set in the store."""
        peak = {"rows": 0}
        original = SegmentWriter.append

        def tracking(self, row):
            original(self, row)
            peak["rows"] = max(peak["rows"], self.buffered_rows)

        SegmentWriter.append = tracking
        try:
            stored = self._campaign(
                tmp_path, store_dir=str(tmp_path / "store"), snapshot="r1"
            ).run()
        finally:
            SegmentWriter.append = original

        assert stored.snapshot == "r1"
        assert all(o.result.results == [] for o in stored.outcomes)
        assert all(not r.results for r in stored.results.values())
        from repro.store.segment import DEFAULT_BLOCK_ROWS

        assert peak["rows"] <= DEFAULT_BLOCK_ROWS

        baseline = self._campaign(tmp_path).run()
        base_keys = {
            row.dedup_key
            for result in baseline.results.values()
            for row in result.results
        }
        store = ResultStore(tmp_path / "store")
        assert {row.dedup_key for row in store.iter_rows()} == base_keys
        assert stored.stats.validated == baseline.stats.validated
        assert stored.store_info["rows"] == len(base_keys)

    def test_checkpointed_campaign_still_lands_segments(self, tmp_path):
        run = self._campaign(
            tmp_path,
            store_dir=str(tmp_path / "store"),
            snapshot="r1",
            checkpoint_dir=str(tmp_path / "ck"),
        ).run()
        store = ResultStore(tmp_path / "store")
        assert store.snapshot("r1").rows == run.stats.validated

        # Resume: every shard restores from checkpoint (zero probes sent),
        # yet the new round still commits a complete snapshot.
        resumed = self._campaign(
            tmp_path,
            store_dir=str(tmp_path / "store"),
            snapshot="r2",
            checkpoint_dir=str(tmp_path / "ck"),
            resume=True,
        ).run()
        assert resumed.sent_this_run == 0
        assert resumed.shards_from_checkpoint == 2
        store = ResultStore(tmp_path / "store")
        assert store.snapshot("r2").rows == store.snapshot("r1").rows > 0

    def test_snapshot_collision_fails_before_scanning(self, tmp_path):
        from repro.engine import CampaignError

        self._campaign(tmp_path, store_dir=str(tmp_path / "store"),
                       snapshot="r1").run()
        with pytest.raises(CampaignError, match="already exists"):
            self._campaign(tmp_path, store_dir=str(tmp_path / "store"),
                           snapshot="r1").run()

    def test_snapshot_meta_maps_labels_to_segments(self, tmp_path):
        self._campaign(tmp_path, store_dir=str(tmp_path / "store"),
                       snapshot="r1").run()
        store = ResultStore(tmp_path / "store")
        snap = store.snapshot("r1")
        assert set(snap.meta["labels"]) == {"lan"}
        assert sorted(snap.meta["labels"]["lan"]) == sorted(snap.segments)
        assert len(snap.segments) == 2  # one per shard


class TestCli:
    def _seed_store(self, tmp_path):
        rows = _rows(20)
        store = ResultStore(tmp_path / "store")
        for snap, chunk in (("r1", rows), ("r2", rows[5:])):
            writer = store.writer(snap)
            writer.append_many(chunk)
            store.commit([writer.seal()], snapshot=snap)
        return str(tmp_path / "store"), rows

    def test_store_info_query_diff_compact(self, tmp_path, capsys):
        from repro.cli import main

        directory, rows = self._seed_store(tmp_path)
        assert main(["store", "info", directory]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["rows"] == 35 and info["segments"] == 2

        out = tmp_path / "q.csv"
        assert main(["store", "query", directory, "--snapshot", "r1",
                     "--out", str(out)]) == 0
        assert len(list(csv.DictReader(out.open()))) == 20

        assert main(["store", "diff", directory, "r1", "r2", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["lost"] == 5 and report["new"] == 0

        assert main(["store", "compact", directory]) == 0
        assert "duplicate(s) dropped" in capsys.readouterr().out

    def test_query_errors_are_graceful(self, tmp_path, capsys):
        from repro.cli import main

        directory, _ = self._seed_store(tmp_path)
        assert main(["store", "query", directory,
                     "--snapshot", "missing"]) == 1
        assert "missing" in capsys.readouterr().err
        assert main(["store", "diff", directory, "r1", "nope"]) == 1
