"""Forwarding fast-path equivalence and invalidation tests.

The flow cache and the batched scan loop are pure performance features:
every observable output — reply sets, ordered results, engine stats,
telemetry counters — must be bit-identical with them on or off.  These
tests pin that contract, plus the cache-correctness properties the fast
path depends on: generation/version invalidation under prefix rotation
and churn, the more-specific-route guard, and the vectorised building
blocks (block SipHash, block address derivation, validator priming,
block target iteration).
"""

from __future__ import annotations

import pytest

from repro.core.blocklist import Blocklist
from repro.core.scanner import ScanConfig, Scanner
from repro.core.siphash import SipKey, siphash24
from repro.core.target import IidStrategy, ScanRange, TargetGenerator
from repro.core.validate import Validator
from repro.engine import Campaign, ProbeSpec
from repro.net.addr import IPv6Addr, IPv6Prefix
from repro.net.device import (
    FLOW_BLACKHOLE,
    FLOW_CACHE_MAX,
    FLOW_CONNECTED,
    FLOW_FORWARD,
    Host,
    Router,
)
from repro.net.network import Network
from repro.net.spec import TopologySpec
from tests.topo import build_mini

SPEC = "2001:db8:1::/56-64"  # 256 sub-prefixes over both CPEs' LAN space


def _config(spec: str = SPEC, **kwargs) -> ScanConfig:
    return ScanConfig(scan_range=ScanRange.parse(spec), seed=5, **kwargs)


def _scan(run_batched: bool = False, **config_kwargs):
    """One full scan on a fresh mini topology; returns (result, metrics).

    A fresh network per run matters: the virtual clock advances during a
    scan, so reusing one network would shift ``virtual_start`` between
    otherwise-identical runs.
    """
    topo = build_mini()
    scanner = Scanner(
        topo.network, topo.vantage, ProbeSpec.for_seed(5).build(),
        _config(**config_kwargs),
    )
    result = scanner.run_batched() if run_batched else scanner.run()
    return result, scanner.metrics


def _observables(result, metrics):
    """Everything a scan run promises to keep identical across paths."""
    stats = result.stats.to_dict()
    stats.pop("wall_seconds")  # the only legitimately nondeterministic field
    return (
        result.dedup_digest(),
        [r.to_dict() for r in result.results],
        stats,
        metrics.to_dict(),
    )


class TestScanEquivalence:
    """Flow cache on/off and batched/serial produce identical scans."""

    def test_flow_cache_off_is_identical(self):
        on = _observables(*_scan(flow_cache=True))
        off = _observables(*_scan(flow_cache=False))
        assert on == off
        assert on[1]  # the scan actually produced replies

    def test_batched_matches_serial(self):
        serial = _observables(*_scan())
        batched = _observables(*_scan(run_batched=True))
        assert serial == batched

    def test_batched_flow_cache_off_matches_serial(self):
        serial = _observables(*_scan())
        batched = _observables(*_scan(run_batched=True, flow_cache=False))
        assert serial == batched

    @pytest.mark.parametrize("batch_size", [1, 3, 256, 10_000])
    def test_batch_size_does_not_change_results(self, batch_size):
        serial = _observables(*_scan())
        batched = _observables(*_scan(run_batched=True,
                                      batch_size=batch_size))
        assert serial == batched

    def test_batched_with_blocklist_skip_and_cap(self):
        blocklist = Blocklist(blocked=["2001:db8:1:60::/60"])
        kwargs = dict(blocklist=blocklist, skip=17, max_probes=100)
        serial = _observables(*_scan(**kwargs))
        batched = _observables(*_scan(run_batched=True, batch_size=32,
                                      **kwargs))
        assert serial == batched
        assert serial[2]["blocked"] > 0

    def test_batched_config_flag_routes_through_run(self):
        topo = build_mini()
        scanner = Scanner(
            topo.network, topo.vantage, ProbeSpec.for_seed(5).build(),
            _config(batched=True),
        )
        # The engine worker dispatches on config.batched; the scanner-level
        # entry points must agree with each other.
        batched = scanner.run_batched()
        serial = _observables(*_scan())
        stats = batched.stats.to_dict()
        stats.pop("wall_seconds")
        assert serial[0] == batched.dedup_digest()
        assert serial[2] == stats

    def test_run_batched_rejects_nonpositive_block(self):
        topo = build_mini()
        scanner = Scanner(
            topo.network, topo.vantage, ProbeSpec.for_seed(5).build(),
            _config(batch_size=0),
        )
        with pytest.raises(ValueError):
            scanner.run_batched()


class TestCampaignEquivalence:
    """The same contract holds through the orchestration engine."""

    def _run(self, executor: str, workers=None, **config_kwargs):
        campaign = Campaign(
            TopologySpec.mini(),
            {"wide": _config(**config_kwargs)},
            probe=ProbeSpec.for_seed(5),
            shards=2,
            executor=executor,
            workers=workers,
        )
        outcome = campaign.run()
        merged = outcome.results["wide"]
        stats = merged.stats.to_dict()
        stats.pop("wall_seconds")
        return merged.dedup_digest(), stats

    @pytest.mark.parametrize("executor,workers", [
        ("serial", None), ("thread", 2), ("process", 2),
    ])
    def test_batched_matches_serial_per_executor(self, executor, workers):
        plain = self._run(executor, workers)
        batched = self._run(executor, workers, batched=True)
        cacheless = self._run(executor, workers, batched=True,
                              flow_cache=False)
        assert plain == batched == cacheless


class TestFlowCacheInvalidation:
    """Topology churn must never serve a stale forwarding decision."""

    def _first_lan_target(self, topo):
        # A LAN-side /64 behind cpe-ok, resolved through the ISP.
        return IPv6Prefix.from_string("2001:db8:1:51::/64").address(0xAB)

    def test_prefix_rotation_mid_scan_takes_effect(self):
        """Rotating a delegation between probes must reroute immediately.

        This is the paper's churn scenario: an ISP re-delegates customer
        prefixes (§IV-D); a cached next-hop for the old CPE would misroute
        every later probe of that /64.
        """
        topo = build_mini()
        net, isp = topo.network, topo.isp
        target = self._first_lan_target(topo)

        # Warm the ISP's cache: the /64 currently forwards to cpe-ok.
        net.inject(_echo(topo.vantage.primary_address, target), topo.vantage)
        entry = isp.flow_entry(target.value, net)
        assert entry.action == FLOW_FORWARD
        assert entry.next_device is topo.cpe_ok

        # Rotate: the vulnerable CPE takes over cpe-ok's LAN delegation.
        isp.delegate(topo.LAN_OK, topo.cpe_vuln.wan_address)
        entry = isp.flow_entry(target.value, net)
        assert entry.next_device is topo.cpe_vuln, "stale next-hop served"

    def test_unregister_invalidates_via_generation(self):
        topo = build_mini()
        net, isp = topo.network, topo.isp
        target = self._first_lan_target(topo)
        entry = isp.flow_entry(target.value, net)
        assert entry.action == FLOW_FORWARD

        # Removing the CPE bumps network.generation; the cached resolved
        # device must not survive even though the route is unchanged.
        net.unregister(topo.cpe_ok)
        entry = isp.flow_entry(target.value, net)
        assert entry.next_device is not topo.cpe_ok

    def test_route_removal_invalidates_via_table_version(self):
        topo = build_mini()
        net, isp = topo.network, topo.isp
        target = self._first_lan_target(topo)
        assert isp.flow_entry(target.value, net).action == FLOW_FORWARD
        isp.table.remove(topo.LAN_OK)
        # The delegation is gone; the ISP's unassigned-space blackhole for
        # its whole /32 block now covers the target.
        assert isp.flow_entry(target.value, net).action == FLOW_BLACKHOLE

    def test_scan_after_rotation_sees_new_world(self):
        """End-to-end: scans before and after rotation differ, and the
        post-rotation scan equals a cacheless post-rotation scan."""

        def run(flow_cache: bool):
            topo = build_mini(flow_cache=flow_cache)
            scanner = Scanner(
                topo.network, topo.vantage, ProbeSpec.for_seed(5).build(),
                _config(max_probes=40),
            )
            before = scanner.run().dedup_digest()
            # Swap both CPEs' LAN delegations mid-campaign.
            topo.isp.delegate(topo.LAN_OK, topo.cpe_vuln.wan_address)
            topo.isp.delegate(topo.LAN_VULN, topo.cpe_ok.wan_address)
            after = Scanner(
                topo.network, topo.vantage, ProbeSpec.for_seed(5).build(),
                _config(max_probes=40),
            ).run().dedup_digest()
            return before, after

        cached_before, cached_after = run(flow_cache=True)
        plain_before, plain_after = run(flow_cache=False)
        assert cached_before == plain_before
        assert cached_after == plain_after
        assert cached_before != cached_after  # rotation changed the answers


class TestFlowCacheGuards:
    """Cacheability guards: more-specific routes and the size cap."""

    def _router_net(self):
        net = Network(seed=1)
        router = Router("r", IPv6Addr.from_string("2001:db8::1"))
        net.register(router)
        return net, router

    def test_specific_route_inside_slash64_is_not_cached(self):
        """A /128 host route inside a /64 must defeat /64-granular caching.

        This is exactly the vulnerable-CPE WAN shape: a host route for the
        CPE's own WAN address inside an otherwise-delegated /64.
        """
        net, router = self._router_net()
        slash64 = IPv6Prefix.from_string("2001:db8:0:5::/64")
        gateway = IPv6Addr.from_string("2001:db8:ffff::1")
        host = slash64.address(0x42)
        net.register(Host("gw", gateway))
        router.table.add_next_hop(slash64, gateway)
        router.table.add_connected(host.prefix(128))

        # The host route and the covering /64 route resolve differently...
        assert router.flow_entry(host.value, net).action == FLOW_CONNECTED
        assert (
            router.flow_entry(slash64.address(0x43).value, net).action
            == FLOW_FORWARD
        )
        # ...so neither decision may have been cached under the /64 key.
        assert slash64.network >> 64 not in router._flow_cache

    def test_cacheable_slash64_is_cached_and_hit(self):
        net, router = self._router_net()
        slash64 = IPv6Prefix.from_string("2001:db8:0:5::/64")
        gateway = IPv6Addr.from_string("2001:db8:ffff::1")
        net.register(Host("gw", gateway))
        router.table.add_next_hop(slash64, gateway)
        router.flow_entry(slash64.address(1).value, net)
        misses = net.flow_misses
        # Any other address of the /64 is a pure dict hit.
        router.flow_entry(slash64.address(2).value, net)
        assert net.flow_misses == misses
        assert net.flow_hits >= 1

    def test_cache_cap_clears_instead_of_growing(self):
        net, router = self._router_net()
        router.table.add_blackhole(IPv6Prefix.from_string("2001:db8::/32"))
        router._flow_cache = {
            key: router.flow_entry(0x20010DB8 << 96, net)
            for key in range(FLOW_CACHE_MAX)
        }
        router.flow_entry((0x20010DB8 << 96) | (0xFFFF << 64), net)
        assert len(router._flow_cache) == 1  # cleared, then one insert

    def test_network_flow_cache_flag_disables_fast_path(self):
        topo = build_mini(flow_cache=False)
        net = topo.network
        net.inject(
            _echo(topo.vantage.primary_address,
                  self_target := topo.SUBNET_OK.address(0x99)),
            topo.vantage,
        )
        assert net.flow_hits == 0 and net.flow_misses == 0
        assert self_target  # quiet lints


class TestVectorisedBuildingBlocks:
    """The block-at-a-time helpers are bit-identical to their scalar forms."""

    KEY = bytes(range(16))

    def test_hash_uints_block_matches_scalar_and_reference(self):
        key = SipKey(self.KEY)
        values = [0, 1, 0xFFFF, (1 << 128) - 1, 0x20010DB8 << 96,
                  *(v * 0x9E3779B97F4A7C15 for v in range(100))]
        block = key.hash_uints_block(values)
        for value, hashed in zip(values, block):
            assert hashed == key.hash_uints(value)
            assert hashed == siphash24(
                self.KEY, (value & ((1 << 128) - 1)).to_bytes(16, "little")
            )

    def test_hash_uints_block_small_blocks_use_scalar_path(self):
        key = SipKey(self.KEY)
        values = [5, 6, 7]  # below _VECTOR_MIN
        assert key.hash_uints_block(values) == [
            key.hash_uints(v) for v in values
        ]

    def test_addresses_block_matches_scalar_all_strategies(self):
        rng = ScanRange.parse("2001:db8::/48-64")
        for strategy in IidStrategy:
            gen = TargetGenerator(rng, strategy=strategy, seed=9)
            indices = list(range(64))
            assert gen.addresses_block(indices) == [
                gen.address(i) for i in indices
            ]

    def test_addresses_block_wide_host_bits_fall_back(self):
        # >64 host bits takes the scalar path (two hashes per IID).
        rng = ScanRange.parse("2001:db8::/32-48")
        gen = TargetGenerator(rng, seed=9)
        indices = list(range(32))
        assert gen.addresses_block(indices) == [
            gen.address(i) for i in indices
        ]

    def test_validator_prime_matches_unprimed_tags(self):
        values = [(0x20010DB8 << 96) | i for i in range(50)]
        primed = Validator(self.KEY)
        primed.prime(values)
        fresh = Validator(self.KEY)
        for value in values:
            assert primed.tag(value) == fresh.tag(value)
        # Unprimed destinations still compute correctly after priming.
        other = (0x20010DB9 << 96) | 7
        assert primed.tag(other) == fresh.tag(other)

    def test_target_blocks_match_targets_bookkeeping(self):
        blocklist = Blocklist(blocked=["2001:db8:1:60::/60"])
        kwargs = dict(blocklist=blocklist, skip=10, max_probes=150)

        def fresh_scanner():
            topo = build_mini()
            return Scanner(
                topo.network, topo.vantage, ProbeSpec.for_seed(5).build(),
                _config(**kwargs),
            )

        serial = fresh_scanner()
        serial_targets = list(serial.targets())
        for size in (1, 7, 64):
            batched = fresh_scanner()
            blocks = list(batched._target_blocks(size))
            assert [a for block in blocks for a in block] == serial_targets
            assert batched.position == serial.position
            assert batched.blocked_count == serial.blocked_count
            assert all(len(block) <= size for block in blocks)


def _echo(src: IPv6Addr, dst: IPv6Addr):
    from repro.net.packet import echo_request

    return echo_request(src, dst, 1, 1, b"x" * 8)
