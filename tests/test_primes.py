"""Number theory behind the cyclic-group permutation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.primes import factorize, is_prime, next_prime, primitive_root


KNOWN_PRIMES = [2, 3, 5, 7, 97, 7919, 104729, 2**31 - 1, 2**61 - 1]
KNOWN_COMPOSITES = [1, 4, 100, 561, 41041, 2**32 + 1, 3215031751]


class TestIsPrime:
    @pytest.mark.parametrize("p", KNOWN_PRIMES)
    def test_known_primes(self, p):
        assert is_prime(p)

    @pytest.mark.parametrize("n", KNOWN_COMPOSITES)
    def test_known_composites(self, n):
        # 561 and 41041 are Carmichael numbers; 3215031751 is a strong
        # pseudoprime to bases 2,3,5,7.
        assert not is_prime(n)

    def test_negative_and_zero(self):
        assert not is_prime(0)
        assert not is_prime(-7)

    def test_agrees_with_sieve(self):
        limit = 2000
        sieve = [True] * limit
        sieve[0] = sieve[1] = False
        for i in range(2, int(limit**0.5) + 1):
            if sieve[i]:
                for j in range(i * i, limit, i):
                    sieve[j] = False
        for n in range(limit):
            assert is_prime(n) == sieve[n], n


class TestNextPrime:
    def test_small(self):
        assert next_prime(0) == 2
        assert next_prime(2) == 2
        assert next_prime(3) == 3
        assert next_prime(4) == 5
        assert next_prime(90) == 97

    @given(st.integers(min_value=2, max_value=10**12))
    @settings(max_examples=40, deadline=None)
    def test_result_is_prime_and_minimal_gap(self, n):
        p = next_prime(n)
        assert p >= n
        assert is_prime(p)
        assert p - n < 2000  # prime gaps at this size are far smaller


class TestFactorize:
    @given(st.integers(min_value=1, max_value=10**12))
    @settings(max_examples=60, deadline=None)
    def test_product_reconstructs(self, n):
        factors = factorize(n)
        product = 1
        for prime, exponent in factors.items():
            assert is_prime(prime)
            product *= prime**exponent
        assert product == n

    def test_semiprime(self):
        p, q = 1_000_003, 1_000_033
        assert factorize(p * q) == {p: 1, q: 1}

    def test_prime_power(self):
        assert factorize(2**20) == {2: 20}

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            factorize(0)


class TestPrimitiveRoot:
    @pytest.mark.parametrize("p", [3, 5, 7, 11, 101, 7919, 104729])
    def test_generates_full_group(self, p):
        g = primitive_root(p)
        if p <= 7919:
            seen = set()
            x = 1
            for _ in range(p - 1):
                x = x * g % p
                seen.add(x)
            assert len(seen) == p - 1
        else:
            factors = factorize(p - 1)
            assert all(pow(g, (p - 1) // q, p) != 1 for q in factors)

    def test_rejects_composite(self):
        with pytest.raises(ValueError):
            primitive_root(10)

    def test_p_equals_two(self):
        assert primitive_root(2) == 1
