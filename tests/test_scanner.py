"""The XMap engine end-to-end on the hand-built mini topology."""

import pytest

from repro.core.blocklist import Blocklist
from repro.core.probes import IcmpEchoProbe, ReplyKind
from repro.core.scanner import ScanConfig, Scanner
from repro.core.target import IidStrategy, ScanRange
from repro.core.validate import Validator

from tests.topo import build_mini

SECRET = bytes(range(16))

#: Every /64 of the two customer aggregates: covers both CPEs' WAN + LAN
#: space, the UE prefix, and plenty of empty space.
SPEC = "2001:db8::/32-48"


def _scanner(topo, spec=SPEC, **kwargs) -> Scanner:
    probe = IcmpEchoProbe(Validator(SECRET), hop_limit=kwargs.pop("hop_limit", 255))
    config = ScanConfig(scan_range=ScanRange.parse(spec), seed=5, **kwargs)
    return Scanner(topo.network, topo.vantage, probe, config)


class TestScannerEndToEnd:
    def test_narrow_window_finds_every_device(self):
        topo = build_mini()
        # Scan all /64s under 2001:db8:0::/48 .. the WAN aggregates:
        result = _scanner(topo, "2001:db8:0::/48-64").run()
        responders = {str(a) for a in result.unique_responders()}
        assert str(topo.cpe_ok.wan_address) in responders

    def test_finds_cpe_ue_and_loop_devices(self):
        topo = build_mini()
        _scanner(topo, "2001:db8:0:0::/46-64", max_probes=None).run()
        # /46-64: 256k probes is too many; use the per-aggregate windows:
        # (covered by the dedicated tests below)

    def test_ue_discovered_same_64(self):
        topo = build_mini()
        result = _scanner(topo, "2001:db8:2::/48-64").run()
        by_kind = result.by_kind()
        assert by_kind.get(ReplyKind.DEST_UNREACHABLE, 0) >= 1
        hit = [r for r in result.results if r.responder == topo.ue.ue_address]
        assert hit and hit[0].same_slash64

    def test_lan_scan_reports_diff_64(self):
        topo = build_mini()
        result = _scanner(topo, "2001:db8:1:50::/60-64").run()
        hits = [r for r in result.results if r.responder == topo.cpe_ok.wan_address]
        assert hits
        assert not hits[0].same_slash64

    def test_loop_device_yields_time_exceeded(self):
        topo = build_mini()
        result = _scanner(topo, "2001:db8:1:60::/60-64").run()
        kinds = result.by_kind()
        assert kinds.get(ReplyKind.TIME_EXCEEDED, 0) >= 1

    def test_stats_accounting(self):
        topo = build_mini()
        result = _scanner(topo, "2001:db8:2::/48-64").run()
        assert result.stats.sent == 1 << 16
        assert result.stats.validated >= 1
        assert 0 < result.stats.hit_rate < 1
        assert result.stats.virtual_seconds > 0

    def test_rate_limiting_paces_virtual_clock(self):
        topo = build_mini()
        scanner = _scanner(topo, "2001:db8:2::/56-64", rate_pps=100.0)
        result = scanner.run()
        assert result.stats.sent == 256
        assert result.stats.virtual_pps == pytest.approx(100.0, rel=0.05)

    def test_max_probes_caps(self):
        topo = build_mini()
        result = _scanner(topo, SPEC, max_probes=100).run()
        assert result.stats.sent == 100

    def test_blocklist_excludes(self):
        topo = build_mini()
        blocklist = Blocklist(blocked=["2001:db8::/32"])
        result = _scanner(topo, "2001:db8:2::/56-64", blocklist=blocklist).run()
        assert result.stats.sent == 0
        assert result.stats.blocked == 256

    def test_shards_union_equals_full_scan(self):
        topo = build_mini()
        full = _scanner(topo, "2001:db8:2::/56-64").targets()
        full_set = {a.value for a in full}
        sharded = set()
        for shard in range(3):
            scanner = _scanner(topo, "2001:db8:2::/56-64", shard=shard, shards=3)
            sharded.update(a.value for a in scanner.targets())
        assert sharded == full_set

    def test_wire_mode_equivalent(self):
        topo = build_mini()
        fast = _scanner(topo, "2001:db8:2::/56-64").run()
        topo2 = build_mini()
        wired = _scanner(topo2, "2001:db8:2::/56-64", wire_mode=True).run()
        assert {r.responder for r in fast.results} == {
            r.responder for r in wired.results
        }

    def test_dedup_replies(self):
        topo = build_mini()
        result = _scanner(topo, "2001:db8:1:50::/60-64").run()
        keys = [(r.responder.value, r.target.value, r.kind) for r in result.results]
        assert len(keys) == len(set(keys))

    def test_low_byte_strategy_hits_fewer_nonexistent(self):
        # Ablation sanity: with IID ::1 probes, probes either miss devices
        # whose address isn't ::1 or hit live ones; random IIDs are the sound
        # choice for unreachable-elicitation.
        topo = build_mini()
        random_run = _scanner(topo, "2001:db8:2::/56-64").run()
        topo2 = build_mini()
        lowbyte = _scanner(
            topo2, "2001:db8:2::/56-64", iid_strategy=IidStrategy.LOW_BYTE
        ).run()
        assert random_run.stats.validated >= lowbyte.stats.validated

    def test_with_defaults_constructor(self):
        topo = build_mini()
        scanner = Scanner.with_defaults(
            topo.network, topo.vantage, "2001:db8:2::/56-64"
        )
        result = scanner.run()
        assert result.stats.sent == 256

    def test_metadata_summary(self):
        topo = build_mini()
        result = _scanner(topo, "2001:db8:2::/56-64").run()
        meta = result.metadata()
        assert meta["sent"] == 256
        assert meta["range"] == "2001:db8:2::/56-64"
        assert meta["unique_responders"] >= 1
        assert 0 < meta["hit_rate"] < 1

    def test_probes_per_target_counts_all_sends(self):
        topo = build_mini()
        result = _scanner(topo, "2001:db8:2::/56-64",
                          probes_per_target=3).run()
        assert result.stats.sent == 256 * 3
        # Duplicate replies collapse via dedup.
        assert result.stats.validated == 1

    def test_last_hops_excludes_echo_replies(self):
        topo = build_mini()
        # Probe the UE's actual address /128 window -> echo reply only.
        spec = f"{topo.ue.ue_address}/128-128"
        result = _scanner(topo, spec).run()
        assert result.by_kind().get(ReplyKind.ECHO_REPLY) == 1
        assert result.last_hops() == []
