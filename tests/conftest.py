"""Shared fixtures: small deterministic deployments reused across tests."""

from __future__ import annotations

import pytest

from repro.isp.builder import build_deployment
from repro.isp.profiles import profile_by_key


@pytest.fixture(scope="session")
def mini_deployment():
    """A heavily scaled-down full deployment (all fifteen blocks)."""
    return build_deployment(scale=100_000, seed=42, min_devices=30)


@pytest.fixture(scope="session")
def cn_mobile_deployment():
    """One /60-delegation block with loops and services, moderately sized."""
    return build_deployment(
        profiles=[profile_by_key("cn-mobile-broadband")],
        scale=20_000,
        seed=7,
    )


@pytest.fixture(scope="session")
def jio_deployment():
    """One /64-delegation, same-dominant block."""
    return build_deployment(
        profiles=[profile_by_key("in-jio-broadband")],
        scale=20_000,
        seed=7,
    )
