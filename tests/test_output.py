"""Output writers and mitigation behaviour."""

import csv
import io
import json

from repro.core.output import (
    render_csv,
    write_census_csv,
    write_loops_csv,
    write_scan_csv,
    write_scan_jsonl,
)
from repro.core.probes.icmp import IcmpEchoProbe
from repro.core.scanner import ScanConfig, Scanner
from repro.core.target import ScanRange
from repro.core.validate import Validator
from repro.discovery.periphery import census_from_scan
from repro.loop.detector import find_loops
from repro.net.packet import MAX_HOP_LIMIT, Icmpv6Type, echo_request

from tests.topo import MiniTopology, build_mini


def _scan(topo, spec="2001:db8:1:50::/60-64"):
    probe = IcmpEchoProbe(Validator(bytes(range(16))), hop_limit=255)
    config = ScanConfig(scan_range=ScanRange.parse(spec), seed=5)
    return Scanner(topo.network, topo.vantage, probe, config).run()


class TestOutputWriters:
    def test_scan_csv_round_trips(self):
        topo = build_mini()
        result = _scan(topo)
        text = render_csv(write_scan_csv, result)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == len(result.results)
        assert rows[0]["responder"] == str(result.results[0].responder)
        assert rows[0]["kind"] == result.results[0].kind.value

    def test_scan_jsonl(self):
        topo = build_mini()
        result = _scan(topo)
        text = render_csv(write_scan_jsonl, result)
        lines = [json.loads(line) for line in text.splitlines()]
        assert len(lines) == len(result.results)
        assert {"target", "responder", "kind"} <= set(lines[0])

    def test_census_csv(self):
        topo = build_mini()
        census = census_from_scan(_scan(topo))
        text = render_csv(write_census_csv, census)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == census.n_unique
        assert rows[0]["iid_class"]

    def test_loops_csv(self):
        topo = build_mini()
        survey = find_loops(
            topo.network, topo.vantage, "2001:db8:1:60::/60-64", seed=1
        )
        text = render_csv(write_loops_csv, survey)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == survey.n_unique == 1


class TestMitigation:
    def test_rfc7084_fix_stops_the_loop(self):
        """§VII: adding the discard route converts the loop into a clean
        Destination Unreachable."""
        topo = build_mini(record_links=True)
        target = MiniTopology.LAN_VULN.subprefix(9, 64).address(0xBAD)
        probe = echo_request(
            topo.vantage.primary_address, target, 1, 1,
            hop_limit=MAX_HOP_LIMIT,
        )
        _inbox, before = topo.network.inject(probe, topo.vantage)
        assert before.crossings("isp", "cpe-vuln") > 200

        topo.cpe_vuln.apply_rfc7084_fix()
        topo.network.advance(1.0)
        inbox, after = topo.network.inject(probe, topo.vantage)
        assert after.crossings("isp", "cpe-vuln") <= 2
        assert inbox
        assert inbox[0].payload.type == Icmpv6Type.DEST_UNREACHABLE

    def test_fix_also_covers_wan(self):
        topo = build_mini(record_links=True)
        target = MiniTopology.WAN_VULN.address(0xDEAD)
        topo.cpe_vuln.apply_rfc7084_fix()
        probe = echo_request(
            topo.vantage.primary_address, target, 1, 1, hop_limit=255
        )
        inbox, trace = topo.network.inject(probe, topo.vantage)
        assert trace.crossings("isp", "cpe-vuln") <= 2
        assert inbox[0].payload.type == Icmpv6Type.DEST_UNREACHABLE
