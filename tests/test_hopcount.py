"""Traceroute and hop-distance estimation (the Yarrp6 substitute)."""

from repro.core.probes.base import ReplyKind
from repro.loop.hopcount import (
    hop_distance,
    suggest_probe_hop_limit,
    traceroute,
)

from tests.topo import MiniTopology, build_mini


class TestTraceroute:
    def test_path_to_ue(self):
        topo = build_mini()
        result = traceroute(topo.network, topo.vantage, topo.ue.ue_address)
        assert result.reached
        # core -> isp -> ue: three reporting devices.
        assert result.path[0] == topo.core.primary_address
        assert result.path[1] == topo.isp.primary_address
        assert result.hops[-1].kind is ReplyKind.ECHO_REPLY
        assert len(result.hops) == 3

    def test_path_to_nx_address_ends_in_unreachable(self):
        topo = build_mini()
        target = MiniTopology.LAN_OK.subprefix(3, 64).address(0x99)
        result = traceroute(topo.network, topo.vantage, target)
        assert result.reached
        assert result.hops[-1].kind is ReplyKind.DEST_UNREACHABLE
        assert result.hops[-1].responder == topo.cpe_ok.wan_address

    def test_blackholed_path_never_terminates(self):
        topo = build_mini()
        from repro.net.addr import IPv6Addr

        result = traceroute(
            topo.network, topo.vantage,
            IPv6Addr.from_string("2001:db8:55::1"), max_hops=6,
        )
        assert not result.reached
        # First two hops still report Time Exceeded before the blackhole.
        assert result.hops[0].kind is ReplyKind.TIME_EXCEEDED


class TestHopDistance:
    def test_distance_to_ue(self):
        topo = build_mini()
        assert hop_distance(topo.network, topo.vantage, topo.ue.ue_address) == 3

    def test_distance_to_cpe_lan_space(self):
        topo = build_mini()
        target = MiniTopology.LAN_OK.subprefix(3, 64).address(0x99)
        assert hop_distance(topo.network, topo.vantage, target) == 3

    def test_looping_path_has_no_distance(self):
        topo = build_mini()
        target = MiniTopology.LAN_VULN.subprefix(3, 64).address(0x99)
        assert hop_distance(topo.network, topo.vantage, target) is None

    def test_silent_path_has_no_distance(self):
        topo = build_mini()
        from repro.net.addr import IPv6Addr

        assert hop_distance(
            topo.network, topo.vantage, IPv6Addr.from_string("2001:db8:55::1")
        ) is None


class TestSuggestedHopLimit:
    def test_is_odd_and_covers_distance(self):
        topo = build_mini()
        samples = [
            topo.ue.ue_address,
            MiniTopology.LAN_OK.subprefix(2, 64).address(0x7),
        ]
        h = suggest_probe_hop_limit(topo.network, topo.vantage, samples)
        assert h % 2 == 1
        assert h >= 33

    def test_detector_accepts_suggestion(self):
        from repro.loop.detector import find_loops

        topo = build_mini()
        h = suggest_probe_hop_limit(
            topo.network, topo.vantage, [topo.ue.ue_address]
        )
        survey = find_loops(
            topo.network, topo.vantage, "2001:db8:1:60::/60-64",
            hop_limit=h, seed=1,
        )
        assert survey.n_unique == 1
