"""The host fault domain: scheduled storage failures under the scanner.

Unit level: the three host fault kinds (schema, JSON round-trip, overlap
rejection) and the :class:`FaultyOs` shim's op semantics on a hand-driven
virtual clock.  Integration level: host-fault schedules riding a campaign
— fatal errors park shards (supervisor) or fail the run (stock), simulated
crashes at the seal/commit boundary recover via resume, and the fault
journal rides the worker event stream home.
"""

import errno
import json

import pytest

from repro.core.scanner import ScanConfig
from repro.core.target import ScanRange
from repro.engine import Campaign, CampaignError, SupervisorPolicy
from repro.faults import (
    FS_CRASH,
    FS_ERROR,
    FS_TORN_WRITE,
    FaultEvent,
    FaultSchedule,
    FaultyOs,
    HostFaultInjector,
    ScheduleError,
    SimulatedCrash,
)
from repro.net.spec import TopologySpec
from repro.store import ResultStore

SPEC = "2001:db8:1::/56-64"


def _event(kind, start=0.0, end=1e9, **kw):
    return FaultEvent(kind=kind, start=start, end=end, **kw)


def _injector(*events, clock=None):
    clock = clock if clock is not None else [0.0]
    schedule = FaultSchedule(events=tuple(events))
    injector = HostFaultInjector(schedule, clock=lambda: clock[0])
    return injector, injector.os_layer(), clock


class TestSchema:
    def test_fs_error_requires_valid_op_and_err(self):
        _event(FS_ERROR, op="write", err="EIO").validate()
        with pytest.raises(ScheduleError):
            _event(FS_ERROR, op="stat", err="EIO").validate()
        with pytest.raises(ScheduleError):
            _event(FS_ERROR, op="write", err="EPERM").validate()

    def test_fs_torn_write_requires_offset(self):
        _event(FS_TORN_WRITE, offset=0).validate()
        with pytest.raises(ScheduleError):
            _event(FS_TORN_WRITE).validate()
        with pytest.raises(ScheduleError):
            _event(FS_TORN_WRITE, offset=-1).validate()

    def test_fs_crash_requires_rename_phase(self):
        _event(FS_CRASH, op="before-rename").validate()
        _event(FS_CRASH, op="after-rename").validate()
        with pytest.raises(ScheduleError):
            _event(FS_CRASH, op="write").validate()

    def test_json_round_trip_preserves_host_fields(self):
        schedule = FaultSchedule(events=(
            _event(FS_ERROR, 1.0, 2.0, op="fsync", err="ENOSPC",
                   path="manifest"),
            _event(FS_TORN_WRITE, 3.0, 4.0, offset=512, path=".seg"),
            _event(FS_CRASH, 5.0, 6.0, op="after-rename"),
        ), seed=9)
        clone = FaultSchedule.from_json(schedule.to_json())
        assert clone == schedule
        payload = json.loads(schedule.to_json())
        assert payload["events"][0]["err"] == "ENOSPC"
        assert payload["events"][1]["offset"] == 512

    def test_overlapping_host_windows_on_one_resource_rejected(self):
        with pytest.raises(ScheduleError, match="overlapping"):
            FaultSchedule(events=(
                _event(FS_ERROR, 0.0, 5.0, op="write", err="EIO"),
                _event(FS_TORN_WRITE, 3.0, 8.0, offset=4),
            ))

    def test_domain_split(self):
        schedule = FaultSchedule(events=(
            _event("loss-burst", rate=0.5),
            _event(FS_ERROR, op="write", err="EIO"),
        ))
        assert [e.kind for e in schedule.host_events()] == [FS_ERROR]
        assert [e.kind for e in schedule.network_events()] == ["loss-burst"]
        assert schedule.events[1].host_domain
        assert not schedule.events[0].host_domain


class TestFaultyOs:
    def test_fs_error_fires_only_inside_window(self, tmp_path):
        injector, shim, clock = _injector(
            _event(FS_ERROR, 1.0, 2.0, op="write", err="ENOSPC")
        )
        with open(tmp_path / "f", "wb") as handle:
            shim.write(handle, b"before")
            clock[0] = 1.5
            with pytest.raises(OSError) as excinfo:
                shim.write(handle, b"inside")
            assert excinfo.value.errno == errno.ENOSPC
            clock[0] = 2.0
            shim.write(handle, b"after")
        assert (tmp_path / "f").read_bytes() == b"beforeafter"

    def test_path_filter_scopes_the_fault(self, tmp_path):
        injector, shim, clock = _injector(
            _event(FS_ERROR, 0.0, 10.0, op="write", err="EIO",
                   path="victim")
        )
        clock[0] = 5.0
        with open(tmp_path / "bystander", "wb") as handle:
            shim.write(handle, b"fine")
        with open(tmp_path / "victim.seg", "wb") as handle:
            with pytest.raises(OSError):
                shim.write(handle, b"doomed")

    def test_fsync_and_rename_errors(self, tmp_path):
        injector, shim, clock = _injector(
            _event(FS_ERROR, 0.0, 10.0, op="fsync", err="EIO"),
        )
        clock[0] = 1.0
        with open(tmp_path / "f", "wb") as handle:
            shim.write(handle, b"x")
            with pytest.raises(OSError):
                shim.fsync(handle)
        injector, shim, clock = _injector(
            _event(FS_ERROR, 0.0, 10.0, op="rename", err="EIO"),
        )
        clock[0] = 1.0
        src = tmp_path / "a"
        src.write_bytes(b"x")
        with pytest.raises(OSError):
            shim.replace(src, tmp_path / "b")
        assert src.exists() and not (tmp_path / "b").exists()

    def test_torn_write_tears_at_cumulative_offset(self, tmp_path):
        injector, shim, clock = _injector(
            _event(FS_TORN_WRITE, 0.0, 10.0, offset=5)
        )
        clock[0] = 1.0
        with open(tmp_path / "f", "wb") as handle:
            shim.write(handle, b"abc")  # 3 bytes: below the tear point
            with pytest.raises(OSError) as excinfo:
                shim.write(handle, b"defgh")  # crosses at 5: "de" lands
            assert excinfo.value.errno == errno.EIO
            with pytest.raises(OSError):
                shim.write(handle, b"later")  # past the tear: nothing lands
        assert (tmp_path / "f").read_bytes() == b"abcde"

    def test_crash_before_rename_leaves_tmp_only(self, tmp_path):
        injector, shim, clock = _injector(
            _event(FS_CRASH, 0.0, 10.0, op="before-rename")
        )
        clock[0] = 1.0
        src = tmp_path / "data.tmp"
        src.write_bytes(b"sealed")
        with pytest.raises(SimulatedCrash):
            shim.replace(src, tmp_path / "data.seg")
        assert src.exists() and not (tmp_path / "data.seg").exists()

    def test_crash_after_rename_leaves_rename_durable(self, tmp_path):
        injector, shim, clock = _injector(
            _event(FS_CRASH, 0.0, 10.0, op="after-rename")
        )
        clock[0] = 1.0
        src = tmp_path / "data.tmp"
        src.write_bytes(b"sealed")
        with pytest.raises(SimulatedCrash):
            shim.replace(src, tmp_path / "data.seg")
        assert not src.exists()
        assert (tmp_path / "data.seg").read_bytes() == b"sealed"

    def test_simulated_crash_is_not_an_ordinary_exception(self):
        assert issubclass(SimulatedCrash, BaseException)
        assert not issubclass(SimulatedCrash, Exception)

    def test_journal_and_restore(self, tmp_path):
        injector, shim, clock = _injector(
            _event(FS_ERROR, 1.0, 2.0, op="write", err="EIO"),
            _event(FS_ERROR, 0.0, 50.0, op="fsync", err="EIO",
                   path="elsewhere"),
        )
        clock[0] = 1.5
        with open(tmp_path / "f", "wb") as handle:
            with pytest.raises(OSError):
                shim.write(handle, b"x")
            clock[0] = 3.0
            shim.write(handle, b"x")
        types = [r["type"] for r in injector.records]
        assert types.count("fault_applied") == 2
        assert "host_fault_injected" in types
        assert types.count("fault_reverted") == 1  # write window ended
        injector.restore()  # the fsync window is still open at scan end
        reverts = [r for r in injector.records
                   if r["type"] == "fault_reverted"]
        assert [r["reason"] for r in reverts] == ["window-end", "scan-end"]
        # Post-restore the shim is transparent.
        clock[0] = 10.0
        with open(tmp_path / "g", "wb") as handle:
            shim.write(handle, b"clean")


def _campaign(tmp_path, schedule, name, resume=False, supervisor=None,
              max_retries=2):
    config = ScanConfig(scan_range=ScanRange.parse(SPEC), seed=5,
                        fault_schedule=schedule)
    return Campaign(
        TopologySpec.mini(),
        {"hostchaos": config},
        shards=2,
        checkpoint_dir=str(tmp_path / name / "ckpt"),
        checkpoint_every=64,
        resume=resume,
        store_dir=str(tmp_path / name / "store"),
        snapshot="round",
        backoff_base=0.0,
        max_retries=max_retries,
        supervisor=supervisor,
    )


def _rows(store_dir):
    store = ResultStore(str(store_dir))
    snap = store.snapshot("round")
    return sorted(
        (r.target.value, r.responder.value, r.kind.value)
        for r in store.iter_rows(snap.segments)
    )


class TestCampaignIntegration:
    def test_persistent_fs_error_fails_the_stock_campaign(self, tmp_path):
        # EIO on every checkpoint write of shard 0, forever: deterministic
        # faults fail identically on every retry, so the stock loop gives
        # up with CampaignError after max_retries.
        schedule = FaultSchedule(events=(
            _event(FS_ERROR, op="write", err="EIO", path="s00of02"),
        ))
        campaign = _campaign(tmp_path, schedule, "stock")
        with pytest.raises(CampaignError) as excinfo:
            campaign.run()
        assert "s00of02" in str(excinfo.value)

    def test_supervisor_parks_the_broken_shard_and_commits_the_rest(
        self, tmp_path
    ):
        schedule = FaultSchedule(events=(
            _event(FS_ERROR, op="write", err="EIO", path="s00of02"),
        ))
        policy = SupervisorPolicy(enabled=True)
        campaign = _campaign(tmp_path, schedule, "sup", supervisor=policy)
        result = campaign.run()
        assert [d["job_id"] for d in result.degraded] == \
            ["hostchaos.s00of02of02".replace("of02of02", "of02")]
        parked = result.degraded[0]
        assert parked["reason"] == "retries-exhausted"
        assert parked["signatures"] == ["OSError:EIO"]
        assert len(result.outcomes) == 1  # shard 1 completed
        # The partial commit landed and says so.
        store = ResultStore(str(tmp_path / "sup" / "store"))
        snap = store.snapshot("round")
        assert snap.meta["degraded"] == ["hostchaos.s00of02"]
        assert snap.rows > 0
        assert result.events.of_type("shard_degraded")
        assert result.events.of_type("campaign_degraded")

    def test_seal_crash_recovers_via_resume(self, tmp_path):
        baseline = _campaign(tmp_path, None, "base").run()
        want = _rows(tmp_path / "base" / "store")
        # Shard 0 "dies" at its segment seal — after its DONE checkpoint,
        # before the rename lands.
        schedule = FaultSchedule(events=(
            _event(FS_CRASH, op="before-rename", path="s00of02.seg"),
        ))
        campaign = _campaign(tmp_path, schedule, "crash")
        with pytest.raises(SimulatedCrash):
            campaign.run()
        store_dir = tmp_path / "crash" / "store"
        assert "round" not in ResultStore(str(store_dir)).snapshots
        # Resume: the DONE shard restores from its checkpoint (the restore
        # path never re-arms host faults — its crash already "happened")
        # and the round commits exactly the baseline rows.
        resumed = _campaign(tmp_path, schedule, "crash", resume=True).run()
        assert resumed.snapshot == "round"
        assert _rows(store_dir) == want
        assert ResultStore(str(store_dir)).orphans() == []
        assert baseline.stats.validated == resumed.stats.validated

    def test_fault_journal_rides_home_on_the_event_log(self, tmp_path):
        # A window that opens and shuts without ever matching a file: the
        # apply/revert journal still ships back on the worker outcome.
        schedule = FaultSchedule(events=(
            _event(FS_ERROR, 0.0, 1e-6, op="write", err="EIO",
                   path="no-such-file"),
        ))
        result = _campaign(tmp_path, schedule, "journal").run()
        applied = [e for e in result.events.of_type("fault_applied")
                   if e["kind"] == FS_ERROR]
        reverted = [e for e in result.events.of_type("fault_reverted")
                    if e["kind"] == FS_ERROR]
        assert applied and reverted

    def test_torn_checkpoint_write_is_quarantined_on_resume(self, tmp_path):
        # Tear shard 0's very first checkpoint write a few bytes in: the
        # shard fails (EIO), the half-written tmp never renames into place,
        # and the campaign retries cleanly — the integrity layer never even
        # sees a torn file because the rename protocol withheld it.
        schedule = FaultSchedule(events=(
            _event(FS_TORN_WRITE, 0.0, 0.5, offset=7, path="s00of02"),
        ))
        policy = SupervisorPolicy(enabled=True)
        campaign = _campaign(tmp_path, schedule, "torn", supervisor=policy)
        result = campaign.run()
        injected = [e for e in result.events.of_type("host_fault_injected")]
        if result.degraded:
            # The window outlived every retry: shard parked, round partial.
            assert result.degraded[0]["signatures"] == ["OSError:EIO"]
        else:
            # A retry landed after the window closed; full round.
            assert len(result.outcomes) == 2
        assert result.snapshot == "round"
