"""The CI perf-regression gate must catch slowdowns and skip honestly."""

from __future__ import annotations

import json

import pytest

from benchmarks.check_regression import (
    GATES,
    UnknownGateError,
    check_metric,
    load_fresh,
    main,
    parallel_metric,
    per_worker_efficiency,
    resolve_gates,
    run_gate,
)


def _record(**overrides) -> dict:
    base = {"bench": "perf_scanner", "scale": 20000.0, "seed": 7,
            "wall_pps": 10_000.0}
    base.update(overrides)
    return base


class TestCheckMetric:
    def test_within_tolerance_passes(self):
        verdict = check_metric(
            "perf_scanner", "wall_pps", True,
            _record(), _record(wall_pps=9_000.0),
        )
        assert verdict.failure is None

    def test_injected_slowdown_fails(self):
        verdict = check_metric(
            "perf_scanner", "wall_pps", True,
            _record(), _record(wall_pps=6_000.0),  # 40% drop
        )
        assert verdict.failure is not None
        assert "wall_pps" in verdict.failure

    def test_improvement_never_fails(self):
        verdict = check_metric(
            "perf_scanner", "wall_pps", True,
            _record(), _record(wall_pps=30_000.0),
        )
        assert verdict.failure is None

    def test_lower_is_better_direction(self):
        base = _record(bench="perf_parallel", parallel_wall_seconds=1.0)
        slow = _record(bench="perf_parallel", parallel_wall_seconds=1.5)
        verdict = check_metric(
            "perf_parallel", "parallel_wall_seconds", False, base, slow,
        )
        assert verdict.failure is not None

    def test_scale_mismatch_skips(self):
        verdict = check_metric(
            "perf_scanner", "wall_pps", True,
            _record(scale=1000.0), _record(wall_pps=1.0),
        )
        assert verdict.failure is None
        assert "skipped" in (verdict.note or "")

    def test_missing_metric_skips(self):
        verdict = check_metric(
            "perf_scanner", "wall_pps", True,
            _record(), {"scale": 20000.0, "seed": 7},
        )
        assert verdict.failure is None
        assert verdict.note is not None


class TestParallelGate:
    def test_full_host_compares_wall_seconds(self):
        full = {"workers": 4, "cores": 8}
        assert parallel_metric(full, full) == ("parallel_wall_seconds", False)

    def test_starved_runner_compares_efficiency(self):
        baseline = {"workers": 4, "cores": 8}
        starved = {"workers": 4, "cores": 1}
        assert parallel_metric(baseline, starved) == (
            "per_worker_efficiency", True,
        )
        assert parallel_metric(starved, baseline) == (
            "per_worker_efficiency", True,
        )

    def test_efficiency_fallback_for_old_baselines(self):
        # The pre-gate baseline records speedup/workers/cores but not the
        # derived efficiency; the gate must reconstruct it.
        old = {"speedup": 0.84, "workers": 4, "cores": 1}
        assert per_worker_efficiency(old) == 0.84
        new = {"per_worker_efficiency": 0.5}
        assert per_worker_efficiency(new) == 0.5
        assert per_worker_efficiency({"workers": 4}) is None


class TestRunGate:
    def _write(self, tmp_path, name, record):
        (tmp_path / f"BENCH_{name}.json").write_text(json.dumps(record))

    def test_end_to_end_failure_on_injected_slowdown(self, tmp_path):
        baselines = {
            "perf_scanner": _record(wall_pps=27_000.0),
            "perf_flowcache": _record(bench="perf_flowcache",
                                      cached_wall_pps=50_000.0),
            "perf_parallel": _record(bench="perf_parallel", workers=4,
                                     cores=8, parallel_wall_seconds=1.0),
        }
        self._write(tmp_path, "perf_scanner", _record(wall_pps=13_000.0))
        self._write(tmp_path, "perf_flowcache",
                    _record(bench="perf_flowcache",
                            cached_wall_pps=49_000.0))
        self._write(tmp_path, "perf_parallel",
                    _record(bench="perf_parallel", workers=4, cores=8,
                            parallel_wall_seconds=1.05))
        verdicts = run_gate(results_dir=tmp_path,
                            baseline_loader=baselines.get)
        failures = [v for v in verdicts if v.failure]
        assert len(failures) == 1
        assert failures[0].bench == "perf_scanner"

    def test_end_to_end_clean_pass(self, tmp_path):
        record = _record(wall_pps=27_000.0)
        self._write(tmp_path, "perf_scanner", record)
        verdicts = run_gate(results_dir=tmp_path,
                            baseline_loader={"perf_scanner": record}.get)
        assert not [v for v in verdicts if v.failure]
        # Benches without fresh records are skipped, not failed.
        assert any("no fresh record" in (v.note or "") for v in verdicts)

    def test_faults_overhead_gate_catches_throughput_drop(self, tmp_path):
        baseline = _record(bench="faults_overhead", disabled_pps=20_000.0)
        self._write(tmp_path, "faults_overhead",
                    _record(bench="faults_overhead", disabled_pps=12_000.0))
        verdicts = run_gate(
            results_dir=tmp_path,
            baseline_loader={"faults_overhead": baseline}.get,
        )
        failures = [v for v in verdicts if v.failure]
        assert len(failures) == 1
        assert failures[0].bench == "faults_overhead"
        assert "disabled_pps" in failures[0].failure

    def test_missing_baseline_is_a_hard_failure(self, tmp_path):
        # A fresh record for a gated bench whose baseline was never
        # committed must fail loudly, not vanish into a skip line.
        self._write(tmp_path, "perf_scanner", _record())
        verdicts = run_gate(results_dir=tmp_path,
                            baseline_loader=lambda name: None)
        failures = [v for v in verdicts if v.failure]
        assert len(failures) == 1
        assert failures[0].bench == "perf_scanner"
        assert "baseline" in failures[0].failure

    def test_load_fresh_absent(self, tmp_path):
        assert load_fresh("perf_scanner", tmp_path) is None

    def test_cli_exit_codes(self, tmp_path, capsys):
        # No fresh records at all: everything skips, gate passes.
        assert main(["--results-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "perf gate clean" in out


class TestGateSelection:
    def _write(self, tmp_path, name, record):
        (tmp_path / f"BENCH_{name}.json").write_text(json.dumps(record))

    def test_registry_covers_forwarding(self):
        rows = {gate: bench for gate, bench, _ in GATES}
        assert rows["forwarding"] == "perf_forwarding"

    def test_unknown_gate_name_raises(self):
        with pytest.raises(UnknownGateError, match="meteor"):
            resolve_gates(["meteor"])

    def test_unknown_gate_name_is_cli_error(self, tmp_path, capsys):
        assert main(["--results-dir", str(tmp_path),
                     "--gates", "perf_scanner,meteor"]) == 2
        assert "meteor" in capsys.readouterr().err

    def test_selected_gate_without_fresh_record_fails(self, tmp_path):
        verdicts = run_gate(results_dir=tmp_path,
                            baseline_loader=lambda name: None,
                            gates=["forwarding"])
        assert len(verdicts) == 1
        assert verdicts[0].failure is not None
        assert "fresh" in verdicts[0].failure

    def test_selected_gate_passes_and_ignores_others(self, tmp_path):
        record = _record(bench="perf_forwarding", columnar_pps=50_000.0)
        self._write(tmp_path, "perf_forwarding", record)
        verdicts = run_gate(results_dir=tmp_path,
                            baseline_loader={"perf_forwarding": record}.get,
                            gates=["forwarding"])
        assert len(verdicts) == 1
        assert verdicts[0].failure is None and verdicts[0].note is None

    def test_forwarding_gate_catches_columnar_slowdown(self, tmp_path):
        baseline = _record(bench="perf_forwarding", columnar_pps=50_000.0)
        self._write(tmp_path, "perf_forwarding",
                    _record(bench="perf_forwarding", columnar_pps=30_000.0))
        verdicts = run_gate(results_dir=tmp_path,
                            baseline_loader={"perf_forwarding": baseline}.get,
                            gates=["forwarding"])
        assert len(verdicts) == 1
        assert "columnar_pps" in (verdicts[0].failure or "")
