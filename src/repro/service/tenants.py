"""Per-tenant result-store namespaces with quota and retention.

Every tenant owns one :class:`~repro.store.store.ResultStore` under the
service root (``tenants/<tenant>/store``); each campaign commits its
rows as one snapshot named after its daemon-scoped campaign id, so the
rounds sort in submission order and a tenant's history reads like a
ledger.  Campaign checkpoints live beside it
(``tenants/<tenant>/ckpt/<campaign_id>``) so a resumed lease finds its
shard state where the previous attempt left it.

Retention runs **between** campaigns, never during: the enforcement hook
is only called when the tenant has zero in-flight leases, because
dropping snapshots rewrites the manifest the in-flight campaign is about
to commit into (the store's commit lock makes racing merely *safe*, not
sensible).  Policy is two dials on :class:`~repro.service.spec.
TenantPolicy`:

* ``retain_snapshots`` — keep the newest N rounds, drop the rest (their
  unshared segments are deleted by :meth:`~repro.store.store.ResultStore.
  drop_snapshot`);
* ``store_quota_rows`` — drop oldest rounds until committed rows fit the
  quota, then compact so the disk actually shrinks.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional

from repro.service.spec import TenantPolicy
from repro.store.store import ResultStore
from repro.telemetry.events import EventLog
from repro.telemetry.metrics import MetricsRegistry, NULL_REGISTRY


class TenantStores:
    """Directory layout + retention policy for per-tenant stores."""

    def __init__(
        self,
        root: str,
        metrics: Optional[MetricsRegistry] = None,
        events: Optional[EventLog] = None,
    ) -> None:
        self.root = Path(root)
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.events = events

    # -- layout ------------------------------------------------------------

    def tenant_dir(self, tenant: str) -> Path:
        return self.root / "tenants" / tenant

    def store_dir(self, tenant: str) -> str:
        return str(self.tenant_dir(tenant) / "store")

    def checkpoint_dir(self, tenant: str, campaign_id: str) -> str:
        return str(self.tenant_dir(tenant) / "ckpt" / campaign_id)

    def open(self, tenant: str) -> ResultStore:
        return ResultStore(self.store_dir(tenant), metrics=self.metrics)

    def tenants(self) -> List[str]:
        base = self.root / "tenants"
        if not base.is_dir():
            return []
        return sorted(p.name for p in base.iterdir() if p.is_dir())

    # -- retention ---------------------------------------------------------

    def enforce(self, tenant: str, policy: TenantPolicy) -> Dict[str, object]:
        """Apply retention/quota to one idle tenant; returns a summary.

        Caller contract: the tenant has no in-flight leases.  Oldest
        rounds go first — snapshot names embed the monotonic campaign id,
        so lexicographic order within a daemon scope *is* submission
        order.
        """
        summary: Dict[str, object] = {
            "tenant": tenant, "dropped": [], "compacted": False,
        }
        if (
            policy.retain_snapshots is None
            and policy.store_quota_rows is None
        ):
            return summary
        store_path = Path(self.store_dir(tenant))
        if not store_path.is_dir():
            return summary
        store = self.open(tenant)
        dropped: List[str] = []
        names = sorted(store.snapshots)
        if policy.retain_snapshots is not None:
            while len(names) > policy.retain_snapshots:
                victim = names.pop(0)
                store.drop_snapshot(victim)
                dropped.append(victim)
        if policy.store_quota_rows is not None:
            while names and store.total_rows > policy.store_quota_rows:
                victim = names.pop(0)
                store.drop_snapshot(victim)
                dropped.append(victim)
        if dropped:
            store.compact()
            summary["compacted"] = True
            self.metrics.counter(
                "service_retention_drops", tenant=tenant
            ).inc(len(dropped))
            if self.events is not None:
                self.events.emit(
                    "service_retention",
                    tenant=tenant,
                    dropped=dropped,
                    rows=store.total_rows,
                )
        summary["dropped"] = dropped
        summary["rows"] = store.total_rows
        return summary
