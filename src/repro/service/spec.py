"""Campaign submissions: the JSON-serialisable unit of tenant work.

A :class:`CampaignSpec` is what crosses the service boundary — an HTTP
body, a CLI ``--submit`` payload, a queue-state record.  It captures
everything needed to rebuild the *same* :class:`~repro.engine.campaign.
Campaign` on any daemon: the scan window, the topology recipe (builder
kind + params, the same pair :class:`~repro.net.spec.TopologySpec`
pickles for pool workers), sharding, and the tenant/priority envelope
the scheduler consumes.  Round-tripping through :meth:`to_dict` /
:meth:`from_dict` is exact, so the persisted queue survives daemon
restarts without losing a parameter.

The determinism this leans on is the engine's: a spec names a seeded
topology and a seeded scan, so running it through the daemon or through
a standalone ``Campaign`` produces bit-identical stores — the acceptance
property the service tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.core.scanner import ScanConfig
from repro.core.target import ScanRange

#: Priority classes and their scheduling factors.  The factor *divides*
#: a campaign's deficit cost: interactive work drains a tenant's deficit
#: 4x slower than its probe budget suggests (so it leases sooner), batch
#: work 4x faster (so it yields).  Weights stay per-tenant; priorities
#: order work *within* the fair share.
PRIORITY_FACTORS: Dict[str, float] = {
    "interactive": 4.0,
    "normal": 1.0,
    "batch": 0.25,
}


class SpecError(ValueError):
    """A submission that can never run: malformed range, bad priority."""


@dataclass(frozen=True)
class CampaignSpec:
    """One tenant-submitted campaign, JSON-round-trippable."""

    tenant: str
    name: str
    scan_range: str
    topology: str = "mini"
    topology_params: Tuple[Tuple[str, object], ...] = ()
    seed: int = 0
    shards: int = 2
    executor: str = "serial"
    priority: str = "normal"
    rate_pps: float = 25_000.0
    max_probes: Optional[int] = None
    checkpoint_every: int = 64

    def __post_init__(self) -> None:
        if not self.tenant or "/" in self.tenant or "." in self.tenant:
            raise SpecError(f"bad tenant name {self.tenant!r}")
        if self.priority not in PRIORITY_FACTORS:
            raise SpecError(
                f"unknown priority {self.priority!r}; "
                f"pick one of {sorted(PRIORITY_FACTORS)}"
            )
        if self.shards < 1:
            raise SpecError("shards must be >= 1")
        # Fail-fast on the range before the campaign is queued.
        self.parsed_range()

    def parsed_range(self) -> ScanRange:
        try:
            return ScanRange.parse(self.scan_range)
        except Exception as exc:
            raise SpecError(f"bad scan range {self.scan_range!r}: {exc}") from exc

    @property
    def probe_budget(self) -> int:
        """Worst-case probes this campaign may send (admission currency)."""
        count = self.parsed_range().count
        if self.max_probes is not None:
            count = min(count, self.max_probes)
        return count

    @property
    def priority_factor(self) -> float:
        return PRIORITY_FACTORS[self.priority]

    @property
    def effective_cost(self) -> float:
        """Deficit charge for leasing this campaign: budget ÷ priority."""
        return self.probe_budget / self.priority_factor

    def topology_spec(self):
        from repro.net.spec import TopologySpec

        return TopologySpec(
            self.topology,
            tuple(sorted(dict(self.topology_params).items())),
        )

    def scan_config(self) -> ScanConfig:
        return ScanConfig(
            scan_range=self.parsed_range(),
            rate_pps=self.rate_pps,
            seed=self.seed,
            max_probes=self.max_probes,
        )

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "tenant": self.tenant,
            "name": self.name,
            "scan_range": self.scan_range,
            "topology": self.topology,
            "topology_params": dict(self.topology_params),
            "seed": self.seed,
            "shards": self.shards,
            "executor": self.executor,
            "priority": self.priority,
            "rate_pps": self.rate_pps,
            "max_probes": self.max_probes,
            "checkpoint_every": self.checkpoint_every,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CampaignSpec":
        try:
            tenant = str(data["tenant"])
            name = str(data["name"])
            scan_range = str(data["scan_range"])
        except KeyError as exc:
            raise SpecError(f"submission missing field {exc}") from exc
        params = data.get("topology_params") or {}
        if not isinstance(params, Mapping):
            raise SpecError("topology_params must be an object")
        max_probes = data.get("max_probes")
        return cls(
            tenant=tenant,
            name=name,
            scan_range=scan_range,
            topology=str(data.get("topology", "mini")),
            topology_params=tuple(sorted(params.items())),
            seed=int(data.get("seed", 0)),  # type: ignore[arg-type]
            shards=int(data.get("shards", 2)),  # type: ignore[arg-type]
            executor=str(data.get("executor", "serial")),
            priority=str(data.get("priority", "normal")),
            rate_pps=float(data.get("rate_pps", 25_000.0)),  # type: ignore[arg-type]
            max_probes=None if max_probes is None else int(max_probes),  # type: ignore[arg-type]
            checkpoint_every=int(data.get("checkpoint_every", 64)),  # type: ignore[arg-type]
        )


@dataclass
class TenantPolicy:
    """Admission + fair-share envelope for one tenant.

    ``weight`` scales deficit accrual (fair-share bandwidth); a tenant
    with weight 2 leases twice the probe volume of a weight-1 tenant
    under contention.  ``max_in_flight`` bounds concurrent leases;
    ``max_queued`` bounds the backlog; ``probe_budget`` caps the probes
    outstanding (queued + leased) at once — the service-level analogue
    of the paper's good-citizen rate budget.  ``retain_snapshots`` /
    ``store_quota_rows`` drive the tenant store's retention/compaction
    (see :mod:`repro.service.tenants`).
    """

    weight: float = 1.0
    max_in_flight: int = 2
    max_queued: int = 64
    probe_budget: Optional[int] = None
    retain_snapshots: Optional[int] = None
    store_quota_rows: Optional[int] = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise SpecError("tenant weight must be > 0 (starvation)")
        if self.max_in_flight < 1 or self.max_queued < 1:
            raise SpecError("max_in_flight/max_queued must be >= 1")

    def to_dict(self) -> Dict[str, object]:
        return {
            "weight": self.weight,
            "max_in_flight": self.max_in_flight,
            "max_queued": self.max_queued,
            "probe_budget": self.probe_budget,
            "retain_snapshots": self.retain_snapshots,
            "store_quota_rows": self.store_quota_rows,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "TenantPolicy":
        kwargs: Dict[str, object] = {}
        for key in (
            "weight", "max_in_flight", "max_queued", "probe_budget",
            "retain_snapshots", "store_quota_rows",
        ):
            if key in data:
                kwargs[key] = data[key]
        return cls(**kwargs)  # type: ignore[arg-type]


__all__ = [
    "PRIORITY_FACTORS",
    "CampaignSpec",
    "SpecError",
    "TenantPolicy",
]
