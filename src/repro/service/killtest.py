"""Kill-anywhere harness for the daemon's persisted queue state.

The engine's harness (:mod:`repro.engine.killtest`) proves one campaign
survives SIGKILL at any durability op.  This module lifts the property a
level: a **daemon** driving a fixed multi-tenant workload is SIGKILLed
at durability op N — which may land inside a campaign's checkpoint or
segment write, inside a store commit, or inside one of the *queue's own
state saves* between lease transitions — and a restarted daemon must
finish the workload with **no lost and no duplicated campaigns**: every
submitted (tenant, name) pair ends ``done`` exactly once, and each
tenant's store holds exactly the rows of an uninterrupted run.

Run as a module so tests/CI can drive real process deaths::

    python -m repro.service.killtest --root R --count-ops     # baseline
    python -m repro.service.killtest --root R --kill-after-ops 40  # dies
    python -m repro.service.killtest --root R --resume        # recovers

Determinism: the queue scope and seed are fixed, the fleet is one
worker, and every spec is a seeded serial scan — so campaign ids, lease
order, and row content are reproducible, and the summary's per-tenant
row digests compare bit-for-bit across baseline and recovered runs.

The workload intentionally submits *before* running, one durable save
per submission: kills landing mid-submission are recovered by the
``--resume`` invocation re-submitting only the missing pairs (the
allocator watermark persisted with each record keeps ids aligned with
the baseline).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from typing import Dict, List

from repro.engine.killtest import KillSwitchOs
from repro.service.daemon import ScanService
from repro.service.spec import CampaignSpec, TenantPolicy
from repro.store.oslayer import set_default_os

SCOPE = "kill"
SEED = 7

#: The fixed workload: three tenants, two campaigns each, over windows
#: the mini topology answers (its responsive /64s sit under
#: ``2001:db8:0-2``), so every store ends up with real rows to digest.
WORKLOAD: List[Dict[str, object]] = [
    {"tenant": "alice", "name": "a0",
     "scan_range": "2001:db8:1:40::/58-64", "seed": 3,
     "priority": "interactive"},
    {"tenant": "bob", "name": "b0", "scan_range": "2001:db8:0::/61-64",
     "seed": 4},
    {"tenant": "carol", "name": "c0",
     "scan_range": "2001:db8:1:50::/60-64", "seed": 5,
     "priority": "batch"},
    {"tenant": "alice", "name": "a1",
     "scan_range": "2001:db8:1:60::/60-64", "seed": 6},
    {"tenant": "bob", "name": "b1", "scan_range": "2001:db8:2::/61-64",
     "seed": 7, "priority": "batch"},
    {"tenant": "carol", "name": "c1", "scan_range": "2001:db8:1::/59-64",
     "seed": 8},
]


def build_service(root: str) -> ScanService:
    return ScanService(
        root,
        default_policy=TenantPolicy(max_in_flight=1),
        max_workers=1,
        seed=SEED,
        scope=SCOPE,
    )


def submit_missing(service: ScanService) -> int:
    """Submit workload entries not yet in the queue (idempotent resume)."""
    present = {
        (r.tenant, r.spec.name)
        for r in service.queue.records.values()
    }
    submitted = 0
    for entry in WORKLOAD:
        key = (str(entry["tenant"]), str(entry["name"]))
        if key in present:
            continue
        spec = CampaignSpec.from_dict({"shards": 2, **entry})
        service.submit(spec)
        submitted += 1
    return submitted


def summarise(service: ScanService) -> Dict[str, object]:
    states: Dict[str, str] = {}
    for record in service.queue.records.values():
        states[f"{record.tenant}/{record.spec.name}"] = record.state
    tenants: Dict[str, object] = {}
    for tenant in service.stores.tenants():
        store = service.stores.open(tenant)
        rows = sorted(
            (str(r.target), str(r.responder), r.kind.value)
            for r in store.iter_rows()
        )
        tenants[tenant] = {
            "rows": len(rows),
            "unique_rows": len(set(rows)),
            "digest": hashlib.blake2b(
                json.dumps(rows).encode(), digest_size=16
            ).hexdigest(),
            "snapshots": sorted(store.snapshots),
        }
    return {"states": dict(sorted(states.items())), "tenants": tenants}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="SIGKILL-the-daemon-anywhere crash-recovery harness"
    )
    parser.add_argument("--root", required=True,
                        help="service root (queue.json + tenants/ created)")
    parser.add_argument("--kill-after-ops", type=int, default=None,
                        help="SIGKILL this process at durability op N")
    parser.add_argument("--resume", action="store_true",
                        help="recover an interrupted run (skip re-submits "
                             "of already-queued work)")
    parser.add_argument("--count-ops", action="store_true",
                        help="report the total durability-op count")
    args = parser.parse_args(argv)

    from pathlib import Path

    if not args.resume and (Path(args.root) / "queue.json").exists():
        parser.error(f"{args.root} already holds a run; pass --resume")

    switch = KillSwitchOs(kill_after=args.kill_after_ops)
    set_default_os(switch)
    try:
        service = build_service(args.root)
        submit_missing(service)
        service.run_until_idle()
    finally:
        set_default_os(None)

    summary = summarise(service)
    summary["ops"] = switch.ops if args.count_ops else None
    summary["recovered"] = service.queue.recovered_leases
    print(json.dumps(summary))
    return 0


if __name__ == "__main__":
    sys.exit(main())
