"""The scan-service daemon: scheduler loop + worker fleet + drain.

``ScanService`` composes the queue (:mod:`repro.service.queue`), the
tenant store layout (:mod:`repro.service.tenants`), and the engine's
:class:`~repro.engine.campaign.Campaign` into one long-running process:

* an **asyncio scheduler** (:meth:`ScanService.run`) leases campaigns
  from the WDRR queue whenever fleet slots are free and hands each lease
  to a bounded ``ThreadPoolExecutor`` — ``Campaign.run`` is synchronous,
  so the fleet is threads, and every campaign gets
  :class:`~repro.engine.campaign.NullSignals` so no lease ever touches
  the process signal table;
* one **service-level SIGTERM handler** (:meth:`sigterm_scope`)
  multiplexes drain across every in-flight lease: draining stops
  admission and leasing, each campaign's injected ``abort_check`` trips
  at its next shard boundary, the lease raises
  :class:`~repro.engine.campaign.CampaignAborted` *without committing*,
  and the queue requeues it with ``resume=True`` — so a drained daemon's
  state file describes exactly the work a successor must finish;
* **crash safety for free**: the queue persists through the store's
  oslayer at every transition, and a SIGKILLed daemon's leases reload as
  queued-with-resume; the engine's checkpoint/resume then converges each
  re-run to a store bit-identical to an uninterrupted one.

Every campaign runs with its own :class:`~repro.telemetry.events.
EventLog` labelled ``{"tenant": ...}`` — worker records ingested into it
carry the tenant on every line — while the service keeps its own log for
queue/lease lifecycle.  Service metrics (queue depth, accepted/leased/
done counters, per-tenant time-to-first-result histograms) flow through
one :class:`~repro.telemetry.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Tuple, Union

from repro.engine.campaign import Campaign, CampaignAborted, NullSignals
from repro.service.queue import DEFAULT_QUANTUM, CampaignQueue, CampaignRecord
from repro.service.spec import CampaignSpec, TenantPolicy
from repro.service.tenants import TenantStores
from repro.telemetry.events import EventLog
from repro.telemetry.metrics import Histogram, MetricsRegistry

#: Time-to-first-result histogram bounds (seconds): sub-second buckets
#: for demo topologies, a long tail for real sweeps.
TTFR_BUCKETS = (0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0)


class ServiceDraining(RuntimeError):
    """Submission refused: the daemon is draining for shutdown/upgrade."""


def histogram_quantile(hist: Histogram, q: float) -> float:
    """Conservative bucket-boundary quantile (the p99 the status API
    reports).  Observations past the last bound report that bound."""
    if hist.count == 0:
        return 0.0
    target = q * hist.count
    cumulative = 0
    for bound, count in zip(hist.bounds, hist.counts):
        cumulative += count
        if cumulative >= target:
            return bound
    return hist.bounds[-1]


@dataclass
class ActiveLease:
    """Scheduler-side view of one running campaign."""

    record: CampaignRecord
    started: float
    #: Set by the worker thread once the Campaign object exists, so
    #: ``cancel``/drain can ask it to abort mid-run.
    campaign: Optional[Campaign] = None
    events_path: str = ""
    first_result_at: Optional[float] = None
    extra: Dict[str, object] = field(default_factory=dict)


class ScanService:
    """The multi-tenant campaign daemon.  Thread-safe public API."""

    def __init__(
        self,
        root: str,
        policies: Optional[Mapping[str, TenantPolicy]] = None,
        default_policy: Optional[TenantPolicy] = None,
        max_workers: int = 2,
        seed: int = 0,
        scope: Optional[str] = None,
        quantum: float = DEFAULT_QUANTUM,
        poll_interval: float = 0.02,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_workers = max_workers
        self.poll_interval = poll_interval
        self.metrics = MetricsRegistry()
        #: The service's own journal (lease lifecycle, drain, recovery).
        self.events = EventLog(campaign_id="service")
        self.queue = CampaignQueue(
            str(self.root / "queue.json"),
            policies=policies,
            default_policy=default_policy,
            seed=seed,
            scope=scope,
            quantum=quantum,
            metrics=self.metrics,
            events=self.events,
        )
        self.stores = TenantStores(
            str(self.root), metrics=self.metrics, events=self.events
        )
        (self.root / "logs").mkdir(exist_ok=True)
        self._lock = threading.RLock()
        self._draining = threading.Event()
        self._in_flight: Dict[str, ActiveLease] = {}
        self._submitted_at: Dict[str, float] = {}

    # -- tenant-facing API (callable from HTTP handler threads) ------------

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def submit(
        self, spec: Union[CampaignSpec, Mapping[str, object]]
    ) -> Dict[str, object]:
        """Admit a campaign; returns its queue record as a dict."""
        if self._draining.is_set():
            self.metrics.counter(
                "service_admission_rejected", reason="draining"
            ).inc()
            raise ServiceDraining("service is draining; resubmit later")
        if not isinstance(spec, CampaignSpec):
            spec = CampaignSpec.from_dict(spec)
        record = self.queue.submit(spec)
        with self._lock:
            self._submitted_at[record.campaign_id] = time.monotonic()
        return record.to_dict()

    def status(self, campaign_id: str) -> Dict[str, object]:
        return self.queue.get(campaign_id).to_dict()

    def cancel(self, campaign_id: str) -> Dict[str, object]:
        record = self.queue.cancel(campaign_id)
        with self._lock:
            lease = self._in_flight.get(campaign_id)
        if lease is not None and lease.campaign is not None:
            lease.campaign.request_abort()
        return record.to_dict()

    def list_campaigns(
        self, tenant: Optional[str] = None
    ) -> List[Dict[str, object]]:
        records = self.queue.in_state(*("queued", "leased", "done",
                                        "failed", "cancelled"))
        if tenant is not None:
            records = [r for r in records if r.tenant == tenant]
        return [r.to_dict() for r in records]

    def results(
        self, campaign_id: str, limit: Optional[int] = None
    ) -> List[Dict[str, object]]:
        """Committed rows of one finished campaign's store round."""
        record = self.queue.get(campaign_id)
        if record.state != "done":
            from repro.service.queue import QueueError

            raise QueueError(
                f"campaign {campaign_id} is {record.state}; "
                "results exist only once done"
            )
        return self._snapshot_rows(record, limit)

    def _snapshot_rows(
        self, record: CampaignRecord, limit: Optional[int]
    ) -> List[Dict[str, object]]:
        store = self.stores.open(record.tenant)
        snap = store.snapshot(record.snapshot)
        rows: List[Dict[str, object]] = []
        for row in store.iter_rows(segments=list(snap.segments)):
            rows.append(row.to_dict())
            if limit is not None and len(rows) >= limit:
                break
        return rows

    def service_status(self) -> Dict[str, object]:
        """The /v1/status document: queue + fleet + latency summary."""
        with self._lock:
            in_flight = {
                cid: lease.record.tenant
                for cid, lease in self._in_flight.items()
            }
        states: Dict[str, int] = {}
        for record in self.queue.in_state(
            "queued", "leased", "done", "failed", "cancelled"
        ):
            states[record.state] = states.get(record.state, 0) + 1
        ttfr = {
            tenant: {
                "p50": histogram_quantile(hist, 0.50),
                "p99": histogram_quantile(hist, 0.99),
                "count": hist.count,
            }
            for tenant, hist in self._ttfr_histograms().items()
        }
        return {
            "draining": self.draining,
            "queue_depth": self.queue.depth,
            "in_flight": in_flight,
            "states": states,
            "tenants": self.stores.tenants(),
            "scope": self.queue.allocator.scope,
            "ttfr_seconds": ttfr,
        }

    def _ttfr_histograms(self) -> Dict[str, Histogram]:
        return {
            str(dict(labels).get("tenant", "")): hist
            for labels, hist in self.metrics.histograms_named(
                "service_ttfr_seconds"
            ).items()
        }

    # -- drain -------------------------------------------------------------

    def request_drain(self) -> None:
        """Stop admitting and leasing; abort in-flight leases at their
        next shard boundary (they requeue with ``resume=True``)."""
        if self._draining.is_set():
            return
        self._draining.set()
        self.metrics.counter("service_drains").inc()
        self.events.emit("service_drain_requested")
        with self._lock:
            leases = list(self._in_flight.values())
        for lease in leases:
            if lease.campaign is not None:
                lease.campaign.request_abort()

    @contextlib.contextmanager
    def sigterm_scope(self) -> Iterator[None]:
        """One process-level SIGTERM handler multiplexed over all leases.

        First SIGTERM requests a drain; a second restores the previous
        handler and re-delivers (operator escalation), matching the
        supervisor's discipline.  Main-thread only; elsewhere a no-op.
        """
        if threading.current_thread() is not threading.main_thread():
            yield
            return
        previous = signal.getsignal(signal.SIGTERM)

        def handler(signum, frame):
            if self._draining.is_set():
                signal.signal(signal.SIGTERM, previous)
                if callable(previous):
                    previous(signum, frame)
                else:  # pragma: no cover - SIG_DFL/SIG_IGN re-raise path
                    signal.raise_signal(signal.SIGTERM)
                return
            self.request_drain()

        signal.signal(signal.SIGTERM, handler)
        try:
            yield
        finally:
            signal.signal(signal.SIGTERM, previous)

    # -- scheduler ---------------------------------------------------------

    def _tenant_counts(self) -> Dict[str, int]:
        with self._lock:
            counts: Dict[str, int] = {}
            for lease in self._in_flight.values():
                tenant = lease.record.tenant
                counts[tenant] = counts.get(tenant, 0) + 1
            return counts

    async def run(self, until_idle: bool = False) -> None:
        """The scheduler loop.  ``until_idle=True`` returns once the
        queue is empty and the fleet is idle (tests, batch mode); the
        default runs until a drain empties the fleet."""
        loop = asyncio.get_running_loop()
        pool = ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="lease"
        )
        pending: Dict[asyncio.Future, str] = {}
        self.events.emit(
            "service_started",
            workers=self.max_workers,
            recovered=self.queue.recovered_leases,
            depth=self.queue.depth,
        )
        try:
            while True:
                if not self._draining.is_set():
                    while len(pending) < self.max_workers:
                        record = self.queue.next_lease(self._tenant_counts())
                        if record is None:
                            break
                        lease = ActiveLease(
                            record=record, started=time.monotonic()
                        )
                        with self._lock:
                            self._in_flight[record.campaign_id] = lease
                        future = loop.run_in_executor(
                            pool, self._run_lease, lease
                        )
                        pending[future] = record.campaign_id
                if not pending:
                    if self._draining.is_set():
                        break
                    if until_idle and self.queue.depth == 0:
                        break
                    await asyncio.sleep(self.poll_interval)
                    continue
                done, _ = await asyncio.wait(
                    set(pending),
                    timeout=self.poll_interval,
                    return_when=asyncio.FIRST_COMPLETED,
                )
                for future in done:
                    campaign_id = pending.pop(future)
                    self._finish(campaign_id, future.result())
        finally:
            pool.shutdown(wait=True)
            self.queue.save()
            self.events.emit(
                "service_stopped",
                drained=self.draining,
                depth=self.queue.depth,
            )
            self.events.write(str(self.root / "logs" / "service.ndjson"))

    def run_until_idle(self) -> None:
        """Synchronous convenience wrapper (tests, ``--once`` CLI mode)."""
        asyncio.run(self.run(until_idle=True))

    # -- lease execution (worker threads) ----------------------------------

    def _run_lease(self, lease: ActiveLease) -> Tuple[str, object]:
        record = lease.record
        spec = record.spec
        log = EventLog(
            campaign_id=record.campaign_id,
            labels={"tenant": record.tenant},
        )
        submitted = self._submitted_at.get(record.campaign_id, lease.started)

        def watch_first_result(event: Dict[str, object]) -> None:
            if (
                lease.first_result_at is None
                and event.get("type") == "shard_finished"
            ):
                lease.first_result_at = time.monotonic()
                self.metrics.histogram(
                    "service_ttfr_seconds", TTFR_BUCKETS,
                    tenant=record.tenant,
                ).observe(lease.first_result_at - submitted)

        log.subscribe(watch_first_result)
        campaign = Campaign(
            spec.topology_spec(),
            {spec.name: spec.scan_config()},
            shards=spec.shards,
            executor=spec.executor,
            checkpoint_dir=self.stores.checkpoint_dir(
                record.tenant, record.campaign_id
            ),
            checkpoint_every=spec.checkpoint_every,
            resume=record.resume,
            store_dir=self.stores.store_dir(record.tenant),
            snapshot=record.snapshot,
            backoff_base=0.0,
            events=log,
            signals=NullSignals(),
            abort_check=lambda: (
                self._draining.is_set() or record.cancel_requested
            ),
        )
        with self._lock:
            lease.campaign = campaign
        lease.events_path = str(
            self.root / "logs" / f"{record.campaign_id}.ndjson"
        )
        try:
            result = campaign.run()
        except CampaignAborted:
            log.write(lease.events_path)
            return ("aborted", None)
        except Exception as exc:
            log.write(lease.events_path)
            return ("failed", f"{type(exc).__name__}: {exc}")
        log.write(lease.events_path)
        return ("done", result.metadata())

    # -- lease completion (scheduler thread) -------------------------------

    def _finish(self, campaign_id: str, outcome: Tuple[str, object]) -> None:
        kind, payload = outcome
        with self._lock:
            lease = self._in_flight.pop(campaign_id)
        record = lease.record
        if kind == "done":
            self.queue.complete(campaign_id, payload or {})
            self._submitted_at.pop(campaign_id, None)
            self.events.emit(
                "service_lease_done",
                id=campaign_id,
                tenant=record.tenant,
                wall_seconds=time.monotonic() - lease.started,
            )
            if self._tenant_counts().get(record.tenant, 0) == 0:
                self.stores.enforce(
                    record.tenant, self.queue.policy(record.tenant)
                )
        elif kind == "aborted":
            requeued = self.queue.requeue(campaign_id)
            if requeued.state == "cancelled":
                self._submitted_at.pop(campaign_id, None)
        else:
            self.queue.fail(campaign_id, str(payload))
            self._submitted_at.pop(campaign_id, None)
