"""Scan-as-a-service: the multi-tenant campaign daemon.

The ROADMAP's "millions of users, heavy traffic" framing made concrete:
a persistent daemon that accepts campaign submissions from many tenants
and drives them through the existing engine.  The pieces:

* :class:`CampaignSpec` / :class:`TenantPolicy` (:mod:`~repro.service.
  spec`) — the JSON submission unit and the per-tenant admission/
  fair-share envelope;
* :class:`CampaignQueue` (:mod:`~repro.service.queue`) — durable
  admission-controlled queue with weighted-deficit-round-robin leasing,
  seeded so scheduler decisions replay deterministically;
* :class:`TenantStores` (:mod:`~repro.service.tenants`) — per-tenant
  :class:`~repro.store.store.ResultStore` namespaces with snapshot
  retention and row quotas;
* :class:`ScanService` (:mod:`~repro.service.daemon`) — the asyncio
  scheduler + bounded worker fleet, SIGTERM drain multiplexed across
  leases, SIGKILL-anywhere recovery via the persisted queue;
* :class:`ServiceServer` / :class:`ServiceClient` (:mod:`~repro.service.
  api`) — the stdlib HTTP JSON API and its CLI-facing client;
* :mod:`repro.service.killtest` — the daemon-level kill-anywhere
  harness (``python -m repro.service.killtest``).
"""

from repro.service.api import ApiError, ServiceClient, ServiceServer
from repro.service.daemon import (
    TTFR_BUCKETS,
    ActiveLease,
    ScanService,
    ServiceDraining,
    histogram_quantile,
)
from repro.service.queue import (
    DEFAULT_QUANTUM,
    AdmissionError,
    CampaignQueue,
    CampaignRecord,
    QueueError,
)
from repro.service.spec import (
    PRIORITY_FACTORS,
    CampaignSpec,
    SpecError,
    TenantPolicy,
)
from repro.service.tenants import TenantStores

__all__ = [
    "ActiveLease",
    "AdmissionError",
    "ApiError",
    "CampaignQueue",
    "CampaignRecord",
    "CampaignSpec",
    "DEFAULT_QUANTUM",
    "PRIORITY_FACTORS",
    "QueueError",
    "ScanService",
    "ServiceClient",
    "ServiceDraining",
    "ServiceServer",
    "SpecError",
    "TTFR_BUCKETS",
    "TenantPolicy",
    "TenantStores",
    "histogram_quantile",
]
