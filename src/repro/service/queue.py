"""The campaign queue: admission control, fair-share leasing, durability.

Three properties the daemon stands on, all decided *here* so they are
testable without a daemon:

**Admission** (:meth:`CampaignQueue.submit`) — a tenant's backlog and its
outstanding probe volume are bounded by its :class:`~repro.service.spec.
TenantPolicy`; over-budget submissions are rejected synchronously with
:class:`AdmissionError`, never silently dropped from the queue.

**Fair-share leasing** (:meth:`CampaignQueue.next_lease`) — weighted
deficit round-robin across tenants.  Each tenant carries a deficit
counter; every accrual round adds ``quantum × weight``, and leasing a
campaign charges its :attr:`~repro.service.spec.CampaignSpec.
effective_cost` (probe budget ÷ priority factor).  Within a tenant,
campaigns lease in submission order.  The per-round visit order is a
seeded blake2b shuffle of the eligible tenants keyed by (seed, round,
tenant) — deterministic, so the same submission trace replays to the
identical lease order in tests, but unbiased, so no tenant name wins
ties forever.  Starvation-freedom follows from accrual: any tenant with
queued work, lease capacity, and weight > 0 gains deficit every round
and eventually affords its head-of-line campaign, no matter how much
higher-priority traffic other tenants pour in.

**Durability** (:meth:`CampaignQueue.save` / :meth:`CampaignQueue.load`)
— the whole queue (records, deficits, counters, the id-allocator
watermark) is one JSON document written atomically through the store's
:mod:`~repro.store.oslayer` (tmp + fsync + rename + dir-fsync), so the
kill-anywhere harness counts every queue write as a crash point.  A
daemon that died holding leases reloads them as ``queued`` with
``resume=True`` and ``attempts+1``: the engine's checkpoint/resume
machinery makes re-running them converge to bit-identical stores, which
is what "no lost or duplicated campaigns" means operationally.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional

from repro.service.spec import CampaignSpec, TenantPolicy
from repro.store.oslayer import get_default_os
from repro.telemetry.events import CampaignIdAllocator, EventLog
from repro.telemetry.metrics import MetricsRegistry, NULL_REGISTRY

QUEUE_STATE_VERSION = 1

#: Probes of deficit accrued per round per unit weight.  Small enough
#: that priority factors matter (a 4096-probe interactive campaign costs
#: 1024), large enough that the accrual loop converges in a handful of
#: rounds for demo-sized windows.
DEFAULT_QUANTUM = 4096.0

#: Record lifecycle.  ``queued`` and ``leased`` are live; the rest are
#: terminal.  A leased record found in a *loaded* state file means the
#: previous daemon died mid-lease: it requeues with ``resume=True``.
STATES = ("queued", "leased", "done", "failed", "cancelled")


class AdmissionError(RuntimeError):
    """Submission rejected by tenant policy (backlog or probe budget)."""


class QueueError(RuntimeError):
    """Unknown campaign id, illegal state transition, corrupt state file."""


@dataclass
class CampaignRecord:
    """One campaign's trip through the queue."""

    campaign_id: str
    spec: CampaignSpec
    submit_seq: int
    state: str = "queued"
    attempts: int = 0
    #: True when a re-run must resume from checkpoints (daemon death or
    #: drain requeued an in-flight lease).
    resume: bool = False
    #: Set by :meth:`CampaignQueue.cancel` on a leased record; the daemon
    #: polls it via the campaign's ``abort_check``.
    cancel_requested: bool = False
    #: Global lease ordinal (the scheduler-determinism witness).
    lease_seq: Optional[int] = None
    error: str = ""
    #: ``CampaignResult.metadata()`` once done.
    result: Dict[str, object] = field(default_factory=dict)

    @property
    def tenant(self) -> str:
        return self.spec.tenant

    @property
    def snapshot(self) -> str:
        """The store round this campaign commits under (stable across
        resumes: keyed by the daemon-scoped campaign id)."""
        return f"round-{self.campaign_id}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "campaign_id": self.campaign_id,
            "spec": self.spec.to_dict(),
            "submit_seq": self.submit_seq,
            "state": self.state,
            "attempts": self.attempts,
            "resume": self.resume,
            "cancel_requested": self.cancel_requested,
            "lease_seq": self.lease_seq,
            "error": self.error,
            "result": dict(self.result),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CampaignRecord":
        state = str(data.get("state", "queued"))
        if state not in STATES:
            raise QueueError(f"corrupt queue record: state {state!r}")
        lease_seq = data.get("lease_seq")
        return cls(
            campaign_id=str(data["campaign_id"]),
            spec=CampaignSpec.from_dict(data["spec"]),  # type: ignore[arg-type]
            submit_seq=int(data["submit_seq"]),  # type: ignore[arg-type]
            state=state,
            attempts=int(data.get("attempts", 0)),  # type: ignore[arg-type]
            resume=bool(data.get("resume", False)),
            cancel_requested=bool(data.get("cancel_requested", False)),
            lease_seq=None if lease_seq is None else int(lease_seq),  # type: ignore[arg-type]
            error=str(data.get("error", "")),
            result=dict(data.get("result") or {}),  # type: ignore[arg-type]
        )


def _visit_key(seed: int, round_no: int, tenant: str) -> str:
    """Seeded, replayable per-round tenant shuffle key."""
    return hashlib.blake2b(
        f"{seed}:{round_no}:{tenant}".encode(), digest_size=8
    ).hexdigest()


class CampaignQueue:
    """Durable multi-tenant campaign queue with WDRR fair-share leasing.

    Thread-safe: every public method takes the internal lock, so HTTP
    handler threads and the scheduler loop share one instance directly.
    """

    def __init__(
        self,
        state_path: str,
        policies: Optional[Mapping[str, TenantPolicy]] = None,
        default_policy: Optional[TenantPolicy] = None,
        seed: int = 0,
        scope: Optional[str] = None,
        quantum: float = DEFAULT_QUANTUM,
        metrics: Optional[MetricsRegistry] = None,
        events: Optional[EventLog] = None,
    ) -> None:
        self.state_path = Path(state_path)
        self.policies: Dict[str, TenantPolicy] = dict(policies or {})
        self.default_policy = default_policy or TenantPolicy()
        self.seed = seed
        self.quantum = float(quantum)
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.events = events
        #: Captured at construction like the store's writers, so a
        #: fault-injection or kill-switch layer installed beforehand sees
        #: every queue-state write.
        self.os = get_default_os()
        self._lock = threading.RLock()
        self.records: Dict[str, CampaignRecord] = {}
        self.allocator = CampaignIdAllocator(scope=scope)
        self._submit_seq = 0
        self._lease_seq = 0
        self._round = 0
        self._deficit: Dict[str, float] = {}
        self._recovered: List[str] = []
        if self.state_path.exists():
            self._load()

    # -- policy ------------------------------------------------------------

    def policy(self, tenant: str) -> TenantPolicy:
        return self.policies.get(tenant, self.default_policy)

    # -- views -------------------------------------------------------------

    def in_state(self, *states: str) -> List[CampaignRecord]:
        with self._lock:
            return sorted(
                (r for r in self.records.values() if r.state in states),
                key=lambda r: r.submit_seq,
            )

    def tenant_records(self, tenant: str, *states: str) -> List[CampaignRecord]:
        return [r for r in self.in_state(*states) if r.tenant == tenant]

    @property
    def depth(self) -> int:
        return len(self.in_state("queued"))

    @property
    def recovered_leases(self) -> List[str]:
        """Campaign ids requeued at load time (previous daemon died)."""
        return list(self._recovered)

    def get(self, campaign_id: str) -> CampaignRecord:
        with self._lock:
            record = self.records.get(campaign_id)
            if record is None:
                raise QueueError(f"unknown campaign {campaign_id!r}")
            return record

    def outstanding_probes(self, tenant: str) -> int:
        with self._lock:
            return sum(
                r.spec.probe_budget
                for r in self.records.values()
                if r.tenant == tenant and r.state in ("queued", "leased")
            )

    # -- admission ---------------------------------------------------------

    def submit(self, spec: CampaignSpec) -> CampaignRecord:
        """Admit a campaign or raise :class:`AdmissionError`; durable on
        return."""
        with self._lock:
            policy = self.policy(spec.tenant)
            queued = [
                r for r in self.records.values()
                if r.tenant == spec.tenant and r.state == "queued"
            ]
            if len(queued) >= policy.max_queued:
                self.metrics.counter(
                    "service_admission_rejected", reason="backlog"
                ).inc()
                raise AdmissionError(
                    f"tenant {spec.tenant!r} backlog full "
                    f"({len(queued)}/{policy.max_queued} queued)"
                )
            if policy.probe_budget is not None:
                outstanding = self.outstanding_probes(spec.tenant)
                if outstanding + spec.probe_budget > policy.probe_budget:
                    self.metrics.counter(
                        "service_admission_rejected", reason="probe_budget"
                    ).inc()
                    raise AdmissionError(
                        f"tenant {spec.tenant!r} probe budget exhausted "
                        f"({outstanding} outstanding + {spec.probe_budget} "
                        f"requested > {policy.probe_budget})"
                    )
            record = CampaignRecord(
                campaign_id=self.allocator.next(),
                spec=spec,
                submit_seq=self._submit_seq,
            )
            self._submit_seq += 1
            self.records[record.campaign_id] = record
            self.save()
            self.metrics.counter(
                "service_campaigns_submitted", tenant=spec.tenant
            ).inc()
            self.metrics.gauge("service_queue_depth").set(self.depth)
            if self.events is not None:
                self.events.emit(
                    "service_submitted",
                    id=record.campaign_id,
                    tenant=spec.tenant,
                    name=spec.name,
                    priority=spec.priority,
                    budget=spec.probe_budget,
                )
            return record

    def cancel(self, campaign_id: str) -> CampaignRecord:
        """Cancel a queued campaign now, or flag a leased one for abort.

        Terminal states raise — cancelling finished work is a caller bug
        worth surfacing, not an idempotent no-op.
        """
        with self._lock:
            record = self.get(campaign_id)
            if record.state == "queued":
                record.state = "cancelled"
                self.save()
                self._note_terminal(record)
            elif record.state == "leased":
                record.cancel_requested = True
                self.save()
            else:
                raise QueueError(
                    f"campaign {campaign_id} is {record.state}; "
                    "nothing to cancel"
                )
            if self.events is not None:
                self.events.emit(
                    "service_cancel",
                    id=campaign_id,
                    tenant=record.tenant,
                    state=record.state,
                )
            return record

    # -- fair-share leasing ------------------------------------------------

    def _eligible(self, in_flight: Mapping[str, int]) -> Dict[str, List[CampaignRecord]]:
        """Tenants with queued work and spare lease capacity, with their
        queued records in submission order."""
        backlog: Dict[str, List[CampaignRecord]] = {}
        for record in self.in_state("queued"):
            backlog.setdefault(record.tenant, []).append(record)
        return {
            tenant: records
            for tenant, records in backlog.items()
            if in_flight.get(tenant, 0) < self.policy(tenant).max_in_flight
        }

    def next_lease(
        self, in_flight: Optional[Mapping[str, int]] = None
    ) -> Optional[CampaignRecord]:
        """Lease the next campaign under WDRR, or None if nothing is
        eligible.  Durable before return: a daemon SIGKILLed right after
        this call finds the record ``leased`` and requeues it on restart.
        """
        with self._lock:
            in_flight = dict(in_flight or {})
            eligible = self._eligible(in_flight)
            if not eligible:
                return None
            # Deficits of tenants with no queued work decay to zero so an
            # idle tenant cannot bank unbounded credit.
            for tenant in list(self._deficit):
                if tenant not in eligible:
                    del self._deficit[tenant]
            while True:
                order = sorted(
                    eligible,
                    key=lambda t: (_visit_key(self.seed, self._round, t), t),
                )
                for tenant in order:
                    head = eligible[tenant][0]
                    if self._deficit.get(tenant, 0.0) >= head.spec.effective_cost:
                        self._deficit[tenant] -= head.spec.effective_cost
                        return self._lease(head)
                # Accrual round: nobody could afford their head-of-line.
                self._round += 1
                for tenant in eligible:
                    weight = self.policy(tenant).weight
                    self._deficit[tenant] = (
                        self._deficit.get(tenant, 0.0) + self.quantum * weight
                    )

    def _lease(self, record: CampaignRecord) -> CampaignRecord:
        record.state = "leased"
        record.lease_seq = self._lease_seq
        self._lease_seq += 1
        record.attempts += 1
        self.save()
        self.metrics.counter(
            "service_campaigns_leased", tenant=record.tenant
        ).inc()
        self.metrics.gauge("service_queue_depth").set(self.depth)
        if self.events is not None:
            self.events.emit(
                "service_leased",
                id=record.campaign_id,
                tenant=record.tenant,
                lease_seq=record.lease_seq,
                attempt=record.attempts,
                resume=record.resume,
            )
        return record

    # -- lease outcomes ----------------------------------------------------

    def _require_leased(self, campaign_id: str) -> CampaignRecord:
        record = self.get(campaign_id)
        if record.state != "leased":
            raise QueueError(
                f"campaign {campaign_id} is {record.state}, not leased"
            )
        return record

    def complete(
        self, campaign_id: str, result: Mapping[str, object]
    ) -> CampaignRecord:
        with self._lock:
            record = self._require_leased(campaign_id)
            record.state = "done"
            record.result = dict(result)
            self.save()
            self._note_terminal(record)
            return record

    def fail(self, campaign_id: str, error: str) -> CampaignRecord:
        with self._lock:
            record = self._require_leased(campaign_id)
            record.state = "failed"
            record.error = error
            self.save()
            self._note_terminal(record)
            return record

    def requeue(self, campaign_id: str) -> CampaignRecord:
        """A lease aborted at a boundary (drain/preemption): back to the
        queue, resuming from checkpoints on the next lease."""
        with self._lock:
            record = self._require_leased(campaign_id)
            if record.cancel_requested:
                record.state = "cancelled"
                self.save()
                self._note_terminal(record)
                return record
            record.state = "queued"
            record.resume = True
            record.lease_seq = None
            self.save()
            self.metrics.counter(
                "service_campaigns_requeued", tenant=record.tenant
            ).inc()
            if self.events is not None:
                self.events.emit(
                    "service_requeued",
                    id=record.campaign_id,
                    tenant=record.tenant,
                    attempts=record.attempts,
                )
            return record

    def _note_terminal(self, record: CampaignRecord) -> None:
        self.metrics.counter(
            f"service_campaigns_{record.state}", tenant=record.tenant
        ).inc()
        self.metrics.gauge("service_queue_depth").set(self.depth)
        if self.events is not None:
            self.events.emit(
                "service_terminal",
                id=record.campaign_id,
                tenant=record.tenant,
                state=record.state,
                attempts=record.attempts,
            )

    # -- durability --------------------------------------------------------

    def _payload(self) -> Dict[str, object]:
        return {
            "version": QUEUE_STATE_VERSION,
            "scope": self.allocator.scope,
            "allocated": self.allocator.allocated,
            "submit_seq": self._submit_seq,
            "lease_seq": self._lease_seq,
            "round": self._round,
            "seed": self.seed,
            "quantum": self.quantum,
            "deficit": dict(self._deficit),
            "records": [
                r.to_dict()
                for r in sorted(
                    self.records.values(), key=lambda r: r.submit_seq
                )
            ],
        }

    def save(self) -> None:
        """Atomically persist the queue through the oslayer (crash point)."""
        with self._lock:
            payload = json.dumps(self._payload(), sort_keys=True)
            tmp = self.state_path.with_name(
                f"{self.state_path.name}.{os.getpid()}.tmp"
            )
            self.state_path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "wb") as handle:
                self.os.write(handle, payload.encode())
                handle.flush()
                self.os.fsync(handle)
            self.os.replace(tmp, self.state_path)
            try:
                self.os.fsync_dir(self.state_path.parent)
            except OSError:
                self.metrics.counter("service_queue_fsync_failures").inc()

    def _load(self) -> None:
        try:
            data = json.loads(self.state_path.read_text())
        except (OSError, ValueError) as exc:
            raise QueueError(
                f"corrupt queue state {self.state_path}: {exc}"
            ) from exc
        if data.get("version") != QUEUE_STATE_VERSION:
            raise QueueError(
                f"queue state version {data.get('version')!r} unsupported"
            )
        self.allocator = CampaignIdAllocator(scope=str(data["scope"]))
        self.allocator.reserve(int(data.get("allocated", 0)))
        self._submit_seq = int(data.get("submit_seq", 0))
        self._lease_seq = int(data.get("lease_seq", 0))
        self._round = int(data.get("round", 0))
        self.seed = int(data.get("seed", self.seed))
        self.quantum = float(data.get("quantum", self.quantum))
        self._deficit = {
            str(t): float(d) for t, d in (data.get("deficit") or {}).items()
        }
        self.records = {}
        self._recovered = []
        changed = False
        for raw in data.get("records", []):
            record = CampaignRecord.from_dict(raw)
            if record.state == "leased":
                changed = True
                if record.cancel_requested:
                    # The abort never landed before the daemon died; honour
                    # the cancellation instead of resurrecting the lease.
                    record.state = "cancelled"
                    record.lease_seq = None
                else:
                    # The daemon that held this lease is gone.  Requeue for
                    # a checkpoint resume — the engine makes the re-run
                    # converge to the identical store, so nothing is lost
                    # or doubled.
                    record.state = "queued"
                    record.resume = True
                    record.lease_seq = None
                    self._recovered.append(record.campaign_id)
            self.records[record.campaign_id] = record
        if changed:
            self.save()
        if self._recovered:
            self.metrics.counter("service_leases_recovered").inc(
                len(self._recovered)
            )
            if self.events is not None:
                self.events.emit(
                    "service_leases_recovered", ids=list(self._recovered)
                )
