"""The service's status/query API: stdlib HTTP server + urllib client.

The surface is deliberately small and JSON-everywhere::

    POST /v1/campaigns            submit (body = CampaignSpec dict)
    GET  /v1/campaigns            list (?tenant= filters)
    GET  /v1/campaigns/<id>       one campaign's queue record
    POST /v1/campaigns/<id>/cancel
    GET  /v1/campaigns/<id>/results   committed rows (?limit= caps)
    GET  /v1/status               service summary (queue, fleet, p99 TTFR)

Built on :class:`http.server.ThreadingHTTPServer` so no dependency is
added; handler threads call straight into the thread-safe
:class:`~repro.service.daemon.ScanService` API.  Errors map to status
codes: admission rejections are 429, draining is 503, unknown ids 404,
malformed submissions 400 — every body is a JSON object with an
``error`` field on failure.

:class:`ServiceClient` is the matching urllib client the CLI's
``submit``/``status``/``cancel`` subcommands wrap.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.parse
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

from repro.service.daemon import ScanService, ServiceDraining
from repro.service.queue import AdmissionError, QueueError
from repro.service.spec import SpecError


class ApiError(RuntimeError):
    """Client-side wrapper of a non-2xx service response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


def _make_handler(service: ScanService):
    class Handler(BaseHTTPRequestHandler):
        #: Quiet by default; the daemon's event log is the journal.
        def log_message(self, fmt: str, *args: object) -> None:
            pass

        # -- plumbing ------------------------------------------------------

        def _send(self, status: int, payload: object) -> None:
            body = json.dumps(payload).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _error(self, status: int, message: str) -> None:
            self._send(status, {"error": message})

        def _read_body(self) -> Dict[str, object]:
            length = int(self.headers.get("Content-Length", 0))
            if length <= 0:
                return {}
            data = json.loads(self.rfile.read(length))
            if not isinstance(data, dict):
                raise ValueError("body must be a JSON object")
            return data

        def _route(self) -> Tuple[str, Dict[str, str]]:
            parsed = urllib.parse.urlsplit(self.path)
            query = {
                k: v[0]
                for k, v in urllib.parse.parse_qs(parsed.query).items()
            }
            return parsed.path.rstrip("/"), query

        # -- verbs ---------------------------------------------------------

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            path, query = self._route()
            try:
                if path == "/v1/status":
                    self._send(200, service.service_status())
                elif path == "/v1/campaigns":
                    self._send(
                        200,
                        {"campaigns": service.list_campaigns(
                            tenant=query.get("tenant")
                        )},
                    )
                elif path.startswith("/v1/campaigns/"):
                    rest = path[len("/v1/campaigns/"):]
                    if rest.endswith("/results"):
                        campaign_id = rest[: -len("/results")]
                        limit = (
                            int(query["limit"]) if "limit" in query else None
                        )
                        self._send(
                            200,
                            {"rows": service.results(campaign_id, limit)},
                        )
                    else:
                        self._send(200, service.status(rest))
                else:
                    self._error(404, f"no route {path}")
            except QueueError as exc:
                self._error(404, str(exc))
            except (ValueError, SpecError) as exc:
                self._error(400, str(exc))

        def do_POST(self) -> None:  # noqa: N802 - http.server API
            path, _ = self._route()
            try:
                if path == "/v1/campaigns":
                    record = service.submit(self._read_body())
                    self._send(201, record)
                elif path.startswith("/v1/campaigns/") and path.endswith(
                    "/cancel"
                ):
                    campaign_id = path[len("/v1/campaigns/"): -len("/cancel")]
                    self._send(200, service.cancel(campaign_id))
                else:
                    self._error(404, f"no route {path}")
            except ServiceDraining as exc:
                self._error(503, str(exc))
            except AdmissionError as exc:
                self._error(429, str(exc))
            except QueueError as exc:
                self._error(404, str(exc))
            except (ValueError, SpecError) as exc:
                self._error(400, str(exc))

    return Handler


class ServiceServer:
    """The HTTP front end, runnable in-process (tests) or foreground."""

    def __init__(
        self, service: ScanService, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.service = service
        self.httpd = ThreadingHTTPServer(
            (host, port), _make_handler(service)
        )
        self.httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> str:
        host, port = self.httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "ServiceServer":
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="service-http", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)


class ServiceClient:
    """Minimal urllib client for the v1 API (what the CLI wraps)."""

    def __init__(self, base_url: str, timeout: float = 10.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        data = None if body is None else json.dumps(body).encode()
        request = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read()).get("error", str(exc))
            except Exception:
                message = str(exc)
            raise ApiError(exc.code, str(message)) from exc

    def submit(self, spec: Dict[str, object]) -> Dict[str, object]:
        return self._request("POST", "/v1/campaigns", spec)

    def status(self, campaign_id: str) -> Dict[str, object]:
        return self._request("GET", f"/v1/campaigns/{campaign_id}")

    def list_campaigns(
        self, tenant: Optional[str] = None
    ) -> List[Dict[str, object]]:
        path = "/v1/campaigns"
        if tenant is not None:
            path += "?" + urllib.parse.urlencode({"tenant": tenant})
        return self._request("GET", path)["campaigns"]  # type: ignore[return-value]

    def cancel(self, campaign_id: str) -> Dict[str, object]:
        return self._request("POST", f"/v1/campaigns/{campaign_id}/cancel")

    def results(
        self, campaign_id: str, limit: Optional[int] = None
    ) -> List[Dict[str, object]]:
        path = f"/v1/campaigns/{campaign_id}/results"
        if limit is not None:
            path += "?" + urllib.parse.urlencode({"limit": limit})
        return self._request("GET", path)["rows"]  # type: ignore[return-value]

    def service_status(self) -> Dict[str, object]:
        return self._request("GET", "/v1/status")
