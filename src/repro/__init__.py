"""repro — a reproduction of *Fast IPv6 Network Periphery Discovery and
Security Implications* (Li et al., DSN 2021).

The package implements the paper's full pipeline against a synthetic IPv6
Internet:

* :mod:`repro.core` — **XMap**, the fast IPv6 scanner (cyclic-group address
  permutation over arbitrary bit windows, stateless SipHash validation,
  radix blocklists, probe modules, rate control, sharding);
* :mod:`repro.net` — the IPv6/ICMPv6 substrate: wire formats, routing
  tables, RFC-4443-faithful device models, and the network simulator;
* :mod:`repro.isp` — the twelve-ISP / fifteen-block population models;
* :mod:`repro.services` — application services, banners, the ZGrab2-like
  scanner, and the CVE database;
* :mod:`repro.discovery` — subnet inference, periphery census, IID and
  vendor analysis;
* :mod:`repro.loop` — the routing-loop detector, amplification attack, BGP
  survey, and router case study;
* :mod:`repro.bgp` — the inter-domain control plane: AS/IX fabric,
  Gao–Rexford path-vector solver, and leak/hijack/flap/failover scenarios
  compiled into the per-device tables;
* :mod:`repro.analysis` — regeneration of every table and figure.

Quickstart::

    from repro import build_deployment, discover

    deployment = build_deployment(scale=20_000)
    isp = deployment.isps["in-jio-broadband"]
    census = discover(deployment.network, deployment.vantage, isp.scan_spec)
    print(census.n_unique, "peripheries;", census.same_pct, "% same-/64")
"""

from repro.core import (
    Blocklist,
    CyclicGroupPermutation,
    FeistelPermutation,
    IidStrategy,
    ProbeResult,
    ScanConfig,
    ScanRange,
    ScanResult,
    Scanner,
    make_permutation,
)
from repro.discovery import (
    IidClass,
    PeripheryCensus,
    VendorIdentifier,
    classify_iid,
    discover,
    infer_subprefix_length,
)
from repro.isp import (
    DEFAULT_CATALOG,
    PAPER_PROFILES,
    Deployment,
    build_deployment,
    profile_by_key,
)
from repro.loop import (
    find_loops,
    run_loop_attack,
    run_case_study,
    build_global_internet,
)
from repro.bgp import (
    BgpFabric,
    build_internet,
    build_leak_demo,
    compute_delta,
)
from repro.net import IPv6Addr, IPv6Prefix, MacAddress, Network
from repro.service import CampaignSpec, ScanService, TenantPolicy
from repro.services import AppScanner, DEFAULT_CVE_DB
from repro.store import ResultStore, diff, query
from repro.telemetry import (
    FlightRecorder,
    HealthEngine,
    HealthReport,
    HealthRule,
    SeriesSampler,
    SeriesSet,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core scanner
    "Scanner",
    "ScanConfig",
    "ScanRange",
    "ScanResult",
    "ProbeResult",
    "IidStrategy",
    "Blocklist",
    "CyclicGroupPermutation",
    "FeistelPermutation",
    "make_permutation",
    # substrate
    "Network",
    "IPv6Addr",
    "IPv6Prefix",
    "MacAddress",
    # populations
    "Deployment",
    "build_deployment",
    "PAPER_PROFILES",
    "profile_by_key",
    "DEFAULT_CATALOG",
    # pipelines
    "discover",
    "infer_subprefix_length",
    "PeripheryCensus",
    "IidClass",
    "classify_iid",
    "VendorIdentifier",
    "AppScanner",
    "DEFAULT_CVE_DB",
    "find_loops",
    "run_loop_attack",
    "run_case_study",
    "build_global_internet",
    # BGP fabric
    "BgpFabric",
    "build_internet",
    "build_leak_demo",
    "compute_delta",
    # result store
    "ResultStore",
    "query",
    "diff",
    # observability
    "SeriesSampler",
    "SeriesSet",
    "HealthEngine",
    "HealthReport",
    "HealthRule",
    "FlightRecorder",
    # scan service
    "ScanService",
    "CampaignSpec",
    "TenantPolicy",
]
