"""Hop-count estimation and traceroute (the Yarrp6 step behind h=32).

§VI-B justifies the loop-probe hop limit with Beverly et al.'s Yarrp6 fill-
mode result: Internet paths from their vantage to all BGP-advertised targets
were shorter than 32 hops.  This module reproduces that measurement
primitive against the simulator:

* :func:`traceroute` — classic increasing-hop-limit probing, returning the
  per-hop reporting routers;
* :func:`hop_distance` — the number of forwarding hops to a destination,
  found by binary search on the hop limit (log₂ probes instead of linear);
* :func:`suggest_probe_hop_limit` — samples destinations and returns the
  smallest safe loop-probe hop limit with the CPE-parity correction the
  detector needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.core.probes.base import ReplyKind
from repro.core.probes.icmp import IcmpEchoProbe
from repro.core.validate import Validator
from repro.net.addr import IPv6Addr
from repro.net.device import Device
from repro.net.network import Network
from repro.net.packet import MAX_HOP_LIMIT


@dataclass
class TracerouteHop:
    hop_limit: int
    responder: Optional[IPv6Addr]
    kind: Optional[ReplyKind]


@dataclass
class TracerouteResult:
    destination: IPv6Addr
    hops: List[TracerouteHop] = field(default_factory=list)

    @property
    def reached(self) -> bool:
        return bool(self.hops) and self.hops[-1].kind in (
            ReplyKind.ECHO_REPLY,
            ReplyKind.DEST_UNREACHABLE,
        )

    @property
    def path(self) -> List[Optional[IPv6Addr]]:
        return [hop.responder for hop in self.hops]


#: Virtual pacing for path probes: hop-limited probes make transit routers
#: generate Time Exceeded per probe, so an unpaced walk would trip their
#: RFC 4443 error rate limiters and silently truncate paths.
PROBE_RATE_PPS = 1_000.0


def _probe_once(
    network: Network,
    vantage: Device,
    probe: IcmpEchoProbe,
    dst: IPv6Addr,
    hop_limit: int,
) -> TracerouteHop:
    network.advance(1.0 / PROBE_RATE_PPS)
    packet = probe.build(vantage.primary_address, dst).with_hop_limit(hop_limit)
    inbox, _trace = network.inject(packet, vantage)
    for reply in inbox:
        classified = probe.classify(reply)
        if classified is not None:
            return TracerouteHop(hop_limit, classified.responder, classified.kind)
    return TracerouteHop(hop_limit, None, None)


def traceroute(
    network: Network,
    vantage: Device,
    destination: IPv6Addr,
    max_hops: int = 32,
    seed: int = 0,
) -> TracerouteResult:
    """Increasing-hop-limit probing toward ``destination``."""
    probe = IcmpEchoProbe(
        Validator(((seed * 0x7A77) & ((1 << 128) - 1) or 7).to_bytes(16, "little"))
    )
    result = TracerouteResult(destination=destination)
    for hop_limit in range(1, max_hops + 1):
        hop = _probe_once(network, vantage, probe, destination, hop_limit)
        result.hops.append(hop)
        if hop.kind in (ReplyKind.ECHO_REPLY, ReplyKind.DEST_UNREACHABLE):
            break
    return result


def hop_distance(
    network: Network,
    vantage: Device,
    destination: IPv6Addr,
    max_hops: int = MAX_HOP_LIMIT,
    seed: int = 0,
) -> Optional[int]:
    """Forwarding hops needed to elicit a terminal reply from the path.

    Binary search on the hop limit: the smallest limit at which the reply is
    *not* Time Exceeded.  Returns None when nothing ever answers (filtered
    or blackholed paths).
    """
    probe = IcmpEchoProbe(
        Validator(((seed * 0x3D7) & ((1 << 128) - 1) or 9).to_bytes(16, "little"))
    )
    top = _probe_once(network, vantage, probe, destination, max_hops)
    if top.kind is None:
        return None
    if top.kind is ReplyKind.TIME_EXCEEDED:
        return None  # the path never terminates (a loop)
    low, high = 1, max_hops
    while low < high:
        mid = (low + high) // 2
        hop = _probe_once(network, vantage, probe, destination, mid)
        if hop.kind is None or hop.kind is ReplyKind.TIME_EXCEEDED:
            low = mid + 1
        else:
            high = mid
    return low


def suggest_probe_hop_limit(
    network: Network,
    vantage: Device,
    sample_destinations: Iterable[IPv6Addr],
    margin: int = 30,
    seed: int = 0,
) -> int:
    """The loop-detector hop limit: max observed distance plus a margin,
    adjusted so the *CPE* (an odd number of hops past the measured terminal
    router at the access link) zeroes the hop limit.

    The paper's equivalent reasoning: all paths were <32 hops, so h=32
    bounds the loop cost while reaching every target.
    """
    distances = [
        hop_distance(network, vantage, destination, seed=seed)
        for destination in sample_destinations
    ]
    known = [d for d in distances if d is not None]
    base = max(known, default=2) + margin
    # The detector needs Time Exceeded to land on the customer device: with
    # the vantage n hops from the ISP router, that requires an odd budget
    # (see repro.loop.detector).
    return base | 1
