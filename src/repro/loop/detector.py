"""Routing-loop location (§VI-B).

The measurement method: send a crafted probe with a deliberately large hop
limit ``h``; a Time Exceeded reply means the packet died of hop-limit
exhaustion somewhere — for a last-hop CPE, almost always a forwarding loop
on its access link.  Re-send the same probe with ``h+2``: if the *same*
device reports Time Exceeded again, the packet demonstrably circled one more
round-trip before dying, confirming the loop (a linear path would have
delivered or unreached identically at both hop limits).

The paper balances ``h`` between loop-amplification cost and detection reach
and picks 32 (the CAIDA/Yarrp6 fill-mode result that Internet paths are
shorter than 32 hops).  The parity of ``h`` decides whether the CPE or the
ISP router zeroes the hop limit; in the simulator's fixed topology the
vantage sits 2 hops from every ISP router, so the default of 33 lands the
Time Exceeded on the CPE — attributing the loop to the customer device, as
the paper's per-device counts require.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.probes.base import ReplyKind
from repro.core.probes.icmp import IcmpEchoProbe
from repro.core.scanner import ScanConfig, Scanner
from repro.core.stats import ScanStats
from repro.core.target import ScanRange
from repro.core.validate import Validator
from repro.discovery.iid import IidClass, classify_iid
from repro.net.addr import IPv6Addr
from repro.net.device import Device
from repro.net.network import Network

DEFAULT_PROBE_HOP_LIMIT = 33


@dataclass
class LoopRecord:
    """One device confirmed to bounce packets in a routing loop."""

    last_hop: IPv6Addr
    probe_target: IPv6Addr
    confirmed: bool
    iid_class: IidClass = field(init=False)

    def __post_init__(self) -> None:
        self.iid_class = classify_iid(self.last_hop.iid)

    @property
    def same_slash64(self) -> bool:
        return self.last_hop.slash64 == self.probe_target.slash64


@dataclass
class LoopSurvey:
    """All loop findings for one scanned window (Table XI row)."""

    scan_range: ScanRange
    records: List[LoopRecord] = field(default_factory=list)
    stats: ScanStats = field(default_factory=ScanStats)
    candidates: int = 0  # Time Exceeded responders before confirmation

    @property
    def n_unique(self) -> int:
        return len(self.records)

    @property
    def same_pct(self) -> float:
        if not self.records:
            return 0.0
        same = sum(1 for r in self.records if r.same_slash64)
        return 100.0 * same / len(self.records)

    @property
    def diff_pct(self) -> float:
        return 100.0 - self.same_pct if self.records else 0.0

    def last_hop_addresses(self) -> List[IPv6Addr]:
        return [r.last_hop for r in self.records]


def find_loops(
    network: Network,
    vantage: Device,
    scan_spec: str | ScanRange,
    hop_limit: int = DEFAULT_PROBE_HOP_LIMIT,
    rate_pps: float = 25_000.0,
    seed: int = 0,
    max_probes: Optional[int] = None,
) -> LoopSurvey:
    """Sweep a window with hop-limit-``h`` probes and confirm loops at h+2."""
    scan_range = (
        ScanRange.parse(scan_spec) if isinstance(scan_spec, str) else scan_spec
    )
    secret = ((seed * 0x6A09E667) & ((1 << 128) - 1) or 3).to_bytes(16, "little")
    validator = Validator(secret)
    probe_h = IcmpEchoProbe(validator, hop_limit=hop_limit)
    config = ScanConfig(
        scan_range=scan_range, rate_pps=rate_pps, seed=seed, max_probes=max_probes
    )
    scanner = Scanner(network, vantage, probe_h, config)
    result = scanner.run()

    survey = LoopSurvey(scan_range=scan_range, stats=result.stats)
    # First pass: collect Time Exceeded responders (loop candidates).
    candidates: Dict[int, "object"] = {}
    for probe_result in result.results:
        if probe_result.kind is not ReplyKind.TIME_EXCEEDED:
            continue
        candidates.setdefault(probe_result.responder.value, probe_result)
    survey.candidates = len(candidates)

    # Second pass: re-probe each candidate's target at h+2; the same device
    # answering Time Exceeded again confirms the loop.
    probe_h2 = IcmpEchoProbe(validator, hop_limit=hop_limit + 2)
    seen: Set[int] = set()
    for responder_value, probe_result in candidates.items():
        if responder_value in seen:
            continue
        seen.add(responder_value)
        packet = probe_h2.build(vantage.primary_address, probe_result.target)
        survey.stats.sent += 1
        inbox, _trace = network.inject(packet, vantage)
        confirmed = False
        for reply in inbox:
            classified = probe_h2.classify(reply)
            if (
                classified is not None
                and classified.kind is ReplyKind.TIME_EXCEEDED
                and classified.responder.value == responder_value
            ):
                confirmed = True
                break
        if confirmed:
            survey.records.append(
                LoopRecord(
                    last_hop=probe_result.responder,
                    probe_target=probe_result.target,
                    confirmed=True,
                )
            )
    return survey
