"""Synthetic global BGP table + AS/country registry (§VI-B's probing).

The paper gathers every globally advertised IPv6 BGP prefix from Routeviews,
scans the successive 16-bit sub-prefix space of each, and attributes loop
findings to ASes and countries via MaxMind.  Offline, this module provides:

* :class:`BgpTable` — prefix → (ASN, country) lookups over a radix trie,
  standing in for Routeviews + MaxMind;
* :func:`build_global_internet` — a scaled population of last-hop devices
  across hundreds of ASes in dozens of countries, with per-AS routing-loop
  rates shaped like Figure 5 (Brazil, China, Ecuador, Vietnam, … dominate)
  and the distinct loop-population IID mix of Table X (manual low-byte
  router addresses are heavily over-represented among loop devices).

The resulting :class:`GlobalInternet` exposes one scan window per AS so the
Table IX bench can sweep "all advertised prefixes" exactly the way the paper
did, then join findings back through the BGP table.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.blocklist import PrefixSet
from repro.discovery.iid import IidClass, IidGenerator
from repro.net.addr import IPv6Addr, IPv6Prefix, MacAddress
from repro.net.device import CpeRouter, Host, IspRouter, Router
from repro.net.network import Network

#: IID mix of the general discovered population (Table III shape).
GENERAL_IID_MIX: Sequence[Tuple[IidClass, float]] = (
    (IidClass.EUI64, 0.076),
    (IidClass.LOW_BYTE, 0.010),
    (IidClass.EMBED_IPV4, 0.055),
    (IidClass.BYTE_PATTERN, 0.104),
    (IidClass.RANDOMIZED, 0.755),
)

#: IID mix of loop-vulnerable last hops (Table X): manually configured
#: low-byte router addresses dominate far more than in the general pool.
LOOP_IID_MIX: Sequence[Tuple[IidClass, float]] = (
    (IidClass.EUI64, 0.180),
    (IidClass.LOW_BYTE, 0.317),
    (IidClass.EMBED_IPV4, 0.024),
    (IidClass.BYTE_PATTERN, 0.007),
    (IidClass.RANDOMIZED, 0.467),
)

#: The ten loop-heaviest origin ASes (Figure 5 left), as
#: (asn, country, paper loop-device count).  The figure's bar chart tops out
#: around 35k for a Brazilian ISP and decays toward ~4k.
TOP_LOOP_ASES: Sequence[Tuple[int, str, int]] = (
    (28006, "BR", 34_000),
    (4134, "CN", 20_500),
    (27947, "EC", 15_500),
    (7552, "VN", 12_000),
    (7018, "US", 9_000),
    (9988, "MM", 7_200),
    (55836, "IN", 6_100),
    (2856, "GB", 5_200),
    (3320, "DE", 4_700),
    (6830, "CH", 4_100),
)

#: Countries for the synthetic long tail, beyond Figure 5's top ten.
TAIL_COUNTRIES = (
    "CZ", "FR", "JP", "KR", "AU", "NL", "SE", "PL", "IT", "ES", "MX", "AR",
    "CL", "CO", "ZA", "EG", "NG", "TR", "SA", "TH", "MY", "ID", "PH", "TW",
    "HK", "SG", "NZ", "RO", "HU", "GR", "PT", "FI", "NO", "DK", "AT", "BE",
    "IE", "UA", "RS", "BG",
)


@dataclass(frozen=True)
class BgpPrefixInfo:
    prefix: IPv6Prefix
    asn: int
    country: str


class BgpTable:
    """Longest-prefix lookup from address to advertising AS and country."""

    def __init__(self) -> None:
        self._set = PrefixSet()
        self._info: Dict[Tuple[int, int], BgpPrefixInfo] = {}
        self.entries: List[BgpPrefixInfo] = []

    def add(self, info: BgpPrefixInfo) -> None:
        self._set.add(info.prefix)
        self._info[(info.prefix.network, info.prefix.length)] = info
        self.entries.append(info)

    def lookup(self, addr: IPv6Addr | int) -> Optional[BgpPrefixInfo]:
        covering = self._set.covering(addr)
        if covering is None:
            return None
        return self._info[(covering.network, covering.length)]

    def __len__(self) -> int:
        return len(self.entries)


@dataclass
class AsTruth:
    """Ground truth for one synthetic AS."""

    asn: int
    country: str
    block: IPv6Prefix
    scan_spec: str
    n_devices: int
    n_loops: int


@dataclass
class GlobalInternet:
    """A scaled-down 'all advertised IPv6 prefixes' population."""

    network: Network
    vantage: Host
    core: Router
    table: BgpTable
    ases: List[AsTruth] = field(default_factory=list)

    def scan_specs(self) -> List[str]:
        return [a.scan_spec for a in self.ases]


def _pick_iid_class(rng: random.Random,
                    mix: Sequence[Tuple[IidClass, float]]) -> IidClass:
    roll = rng.random()
    for cls, share in mix:
        roll -= share
        if roll <= 0:
            return cls
    return mix[-1][0]


def build_global_internet(
    seed: int = 0,
    scale: float = 1000.0,
    n_tail_ases: int = 220,
    tail_devices_paper: int = 12_000,
    tail_loop_rate: float = 0.012,
    window_bits: int = 8,
) -> GlobalInternet:
    """Build the BGP-wide scan substrate.

    The paper found ~4M last hops across 6,911 ASes (170 countries) with
    ~128k loop devices across 3,877 ASes (132 countries).  The default
    parameters keep those *ratios* — loop share ~3.2% of last hops, loops
    present in roughly half the ASes and three quarters of the countries —
    at roughly 1/10 the AS count and 1/``scale`` the device count.
    """
    rng = random.Random(seed ^ 0xB69)
    iid_gen = IidGenerator(rng)
    network = Network(seed=seed)
    vantage = Host("vantage", IPv6Addr.from_string("2001:4860:4860::6464"))
    core = Router("core", IPv6Addr.from_string("2001:4860:4860::1"))
    network.register(core)
    network.attach_host(vantage, core)
    core.table.add_connected(vantage.primary_address.prefix(128), "vantage")

    world = GlobalInternet(
        network=network, vantage=vantage, core=core, table=BgpTable()
    )

    # Top loop ASes from Figure 5 (explicit), then a generated tail.
    as_plan: List[Tuple[int, str, int, int]] = []  # asn, cc, devices, loops
    for asn, country, paper_loops in TOP_LOOP_ASES:
        n_loops = max(2, round(paper_loops / scale))
        # Figure 5 ASes are loop-dense: loops ~ 35% of their last hops.
        n_devices = max(n_loops + 2, round(n_loops / 0.35))
        as_plan.append((asn, country, n_devices, n_loops))

    tail_asn = 60_000
    for i in range(n_tail_ases):
        country = TAIL_COUNTRIES[i % len(TAIL_COUNTRIES)]
        n_devices = max(2, round(tail_devices_paper / scale * rng.uniform(0.3, 1.7)))
        # About half the tail ASes harbour at least one loop device,
        # matching the paper's 3,877-of-6,911 AS ratio.
        n_loops = rng.choice((0, 1, 1, max(1, round(n_devices * tail_loop_rate * 8)))) \
            if rng.random() < 0.55 else 0
        n_loops = min(n_loops, n_devices)
        as_plan.append((tail_asn + i, country, n_devices, n_loops))

    for order, (asn, country, n_devices, n_loops) in enumerate(as_plan):
        _build_as(world, rng, iid_gen, order, asn, country, n_devices,
                  n_loops, window_bits)
    return world


def _build_as(
    world: GlobalInternet,
    rng: random.Random,
    iid_gen: IidGenerator,
    order: int,
    asn: int,
    country: str,
    n_devices: int,
    n_loops: int,
    window_bits: int,
) -> None:
    """One AS: a /32 block, an edge router, and a flat CPE population."""
    block = IPv6Prefix((0x2A00 + (order >> 8) << 112) | ((order & 0xFF) << 104), 32)
    # Avoid colliding with the vantage/core prefix (2001::/16 vs 2a00+::/16).
    router = IspRouter(
        f"as{asn}-edge-{order}", block.address(1), block,
        unassigned_behavior="blackhole",
    )
    router.table.add_default(world.core.primary_address)
    world.network.register(router)
    world.core.table.add_next_hop(block, router.primary_address)
    world.table.add(BgpPrefixInfo(block, asn, country))

    # The paper probes the successive 16-bit sub-prefix space (/32-48);
    # scaled, each AS exposes a window_bits-wide child at /48 granularity.
    base = block.subprefix(1, 48 - window_bits)
    scan_spec = f"{base}-48"
    indices = rng.sample(range(1 << window_bits), n_devices)
    loop_flags = [i < n_loops for i in range(n_devices)]
    rng.shuffle(loop_flags)

    for i in range(n_devices):
        delegated = base.subprefix(indices[i], 48)
        mix = LOOP_IID_MIX if loop_flags[i] else GENERAL_IID_MIX
        cls = _pick_iid_class(rng, mix)
        if cls is IidClass.EUI64:
            mac = MacAddress(rng.getrandbits(48))
            iid = iid_gen.generate(cls, mac=mac)
        else:
            iid = iid_gen.generate(cls)
        address = delegated.address(iid)
        device = CpeRouter(
            f"as{asn}-dev-{order}-{i}",
            address,
            wan_prefix=delegated,
            lan_prefix=delegated,
            subnet_prefix=None,
            isp_address=router.primary_address,
            vulnerable_wan=loop_flags[i],
        )
        world.network.register(device)
        router.delegate(delegated, address)

    world.ases.append(
        AsTruth(
            asn=asn, country=country, block=block, scan_spec=scan_spec,
            n_devices=n_devices, n_loops=n_loops,
        )
    )
