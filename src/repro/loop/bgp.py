"""Synthetic global BGP table + AS/country registry (§VI-B's probing).

Back-compat facade over :mod:`repro.bgp`.  The flat world builder that
used to live here — one vantage core with every edge AS hanging directly
off it — is subsumed by :func:`repro.bgp.build_internet`, which grows the
same Figure-5-shaped CPE-edge population (identical per-seed blocks,
device names, IID draws, and loop ground truth) under a real AS-level
fabric: tier-1 transits meshed at IXes, regionals, and Gao–Rexford
policy routing.  :func:`build_global_internet` now delegates there and
adapts the result back to the historical :class:`GlobalInternet` shape;
:class:`BgpTable` / :class:`BgpPrefixInfo` re-export from
:mod:`repro.bgp.table`.

The probe-visible behavior is unchanged: hop parity from the vantage to
any CPE is preserved (four forwarding routers instead of two — both
even), so ``find_loops`` and the Table IX pipeline see the same
responders with or without the fabric underneath.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.bgp.table import BgpPrefixInfo, BgpTable
from repro.bgp.world import (
    GENERAL_IID_MIX,
    LOOP_IID_MIX,
    TAIL_COUNTRIES,
    TOP_LOOP_ASES,
    _pick_iid_class,
    build_internet,
)
from repro.net.addr import IPv6Prefix
from repro.net.device import Host, Router
from repro.net.network import Network

__all__ = [
    "GENERAL_IID_MIX",
    "LOOP_IID_MIX",
    "TOP_LOOP_ASES",
    "TAIL_COUNTRIES",
    "BgpPrefixInfo",
    "BgpTable",
    "AsTruth",
    "GlobalInternet",
    "build_global_internet",
]


@dataclass
class AsTruth:
    """Ground truth for one synthetic AS."""

    asn: int
    country: str
    block: IPv6Prefix
    scan_spec: str
    n_devices: int
    n_loops: int


@dataclass
class GlobalInternet:
    """A scaled-down 'all advertised IPv6 prefixes' population."""

    network: Network
    vantage: Host
    core: Router
    table: BgpTable
    ases: List[AsTruth] = field(default_factory=list)

    def scan_specs(self) -> List[str]:
        return [a.scan_spec for a in self.ases]


def build_global_internet(
    seed: int = 0,
    scale: float = 1000.0,
    n_tail_ases: int = 220,
    tail_devices_paper: int = 12_000,
    tail_loop_rate: float = 0.012,
    window_bits: int = 8,
) -> GlobalInternet:
    """Build the BGP-wide scan substrate.

    The paper found ~4M last hops across 6,911 ASes (170 countries) with
    ~128k loop devices across 3,877 ASes (132 countries).  The default
    parameters keep those *ratios* — loop share ~3.2% of last hops, loops
    present in roughly half the ASes and three quarters of the countries —
    at roughly 1/10 the AS count and 1/``scale`` the device count.
    """
    from repro.bgp.fabric import AsRole

    world = build_internet(
        seed=seed, scale=scale, n_tail_ases=n_tail_ases,
        tail_devices_paper=tail_devices_paper,
        tail_loop_rate=tail_loop_rate, window_bits=window_bits,
    )
    # The historical table held exactly one entry per edge AS, in plan
    # order — derive the same view from the fabric's announcements.
    adapted = GlobalInternet(
        network=world.network, vantage=world.vantage, core=world.core,
        table=world.fabric.bgp_table(roles=(AsRole.EDGE,)),
    )
    for edge in world.edges:
        adapted.ases.append(AsTruth(
            asn=edge.asn, country=edge.country, block=edge.block,
            scan_spec=edge.scan_spec, n_devices=edge.n_devices,
            n_loops=edge.n_loops,
        ))
    return adapted
