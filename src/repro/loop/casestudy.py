"""The router firmware case study (§VI-D, Table XII).

The paper bench-tests 95 sample home routers from 20 vendors plus 4
open-source router OSes, all on up-to-date firmware: each gets a /64 WAN
assignment and a /60 LAN delegation, then receives one crafted hop-limit-255
packet into the not-used space of each prefix.  Every router looped on at
least one prefix.

This module encodes each tested firmware's routing-table construction as a
:class:`RouterModel` (WAN-vulnerable / LAN-vulnerable, plus the ~10-forward
loop cap four of the firmwares exhibit) and *measures* the loop with real
forwarding in the simulator — the benchmark regenerates Table XII rather
than restating it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.loop.attack import run_loop_attack
from repro.net.addr import IPv6Addr, IPv6Prefix
from repro.net.device import CpeRouter, Host, IspRouter, Router
from repro.net.network import Network
from repro.net.packet import MAX_HOP_LIMIT


@dataclass(frozen=True)
class RouterModel:
    """One bench-tested router/OS and its firmware behaviour."""

    brand: str
    model: str
    firmware: str
    vulnerable_wan: bool = True  # every tested device looped on ≥1 prefix
    vulnerable_lan: bool = False
    #: None → loops the full (255−n)/2 forwards; a number → the firmware's
    #: own mitigation cap ("forward such a packet >10 times", §VI-D).
    loop_forward_limit: Optional[int] = None
    is_os: bool = False  # open-source routing OS rather than hardware


def _roster() -> List[RouterModel]:
    """The 95 routers + 4 OSes of Table XII.

    The nine showcased rows carry the paper's exact model/firmware strings
    and WAN/LAN verdicts; the remainder are per-brand units at the counts
    the table's footer lists, with synthetic model numbers.
    """
    showcased = [
        RouterModel("ASUS", "GT-AC5300", "3.0.0.4.384 82037", True, False),
        RouterModel("D-Link", "COVR-3902", "1.01", True, False),
        RouterModel("Huawei", "WS5100", "10.0.2.8", True, True),
        RouterModel("Linksys", "EA8100", "2.0.1.200539", True, True),
        RouterModel("Netgear", "R6400v2", "1.0.4.102 10.0.75", True, True),
        RouterModel("Tenda", "AC23", "16.03.07.35", True, False),
        RouterModel("TP-Link", "TL-XDR3230", "1.0.8", True, True),
        RouterModel("Xiaomi", "AX5", "1.0.33", True, False, 10),
        RouterModel("OpenWrt", "19.07.4", "r11208-ce6496d796", True, False,
                    10, is_os=True),
    ]
    # Brand → total units in Table XII's footer.
    footer_counts = {
        "ASUS": 1, "China Mobile": 4, "D-Link": 2, "FAST": 1, "Fiberhome": 2,
        "H3C": 1, "Hisense": 1, "Huawei": 4, "iKuai": 3, "Linksys": 1,
        "Mercury": 8, "Mikrotik": 1, "Netgear": 2, "Skyworthdigital": 9,
        "Tenda": 1, "Totolink": 1, "TP-Link": 42, "Xiaomi": 1, "Youhua": 1,
        "ZTE": 9,
    }
    oses = ["DD-Wrt", "Gargoyle", "librecmc", "OpenWrt"]
    capped_oses = {"Gargoyle", "librecmc", "OpenWrt"}

    roster = list(showcased)
    showcased_per_brand: Dict[str, int] = {}
    for unit in showcased:
        if not unit.is_os:
            showcased_per_brand[unit.brand] = (
                showcased_per_brand.get(unit.brand, 0) + 1
            )
    for brand, total in sorted(footer_counts.items()):
        remaining = total - showcased_per_brand.get(brand, 0)
        for i in range(remaining):
            # LAN vulnerability alternates per unit: the paper found both
            # WAN-only and WAN+LAN defects across the fleet.
            roster.append(
                RouterModel(
                    brand,
                    f"{brand[:2].upper()}-{1000 + i}",
                    f"v{2020 - (i % 3)}.{i % 10}",
                    True,
                    i % 2 == 0,
                )
            )
    for os_name in oses:
        if os_name == "OpenWrt":
            continue  # showcased already
        roster.append(
            RouterModel(
                os_name,
                "VM",
                "2020-12",
                True,
                False,
                10 if os_name in capped_oses else None,
                is_os=True,
            )
        )
    return roster


#: Table XII's full roster (95 hardware units + 4 routing OSes).
CASE_STUDY_ROUTERS: List[RouterModel] = _roster()


@dataclass
class CaseStudyResult:
    """Measured loop behaviour of one router on the bench."""

    router: RouterModel
    wan_loops: bool
    lan_loops: bool
    wan_crossings: int
    lan_crossings: int
    immune_prefix_unreachable: bool

    @property
    def vulnerable(self) -> bool:
        return self.wan_loops or self.lan_loops

    @property
    def forwards_per_router(self) -> float:
        return max(self.wan_crossings, self.lan_crossings) / 2


def _bench_topology(
    unit: RouterModel, index: int
) -> Tuple[Network, Host, str, str, IPv6Addr, IPv6Addr, IPv6Addr]:
    """A broadband home network: ISP router + the unit under test.

    Matches the paper's setup: "The WAN is assigned a /64 prefix, and the
    LAN is delegated a /60 prefix."
    """
    network = Network(seed=index)
    vantage = Host("attacker", IPv6Addr.from_string("2001:4860:4860::6464"))
    core = Router("core", IPv6Addr.from_string("2001:4860:4860::1"))
    network.register(core)
    network.attach_host(vantage, core)
    core.table.add_connected(vantage.primary_address.prefix(128), "v")

    block = IPv6Prefix.from_string("2001:db8::/32")
    isp = IspRouter("isp", block.address(1), block)
    isp.table.add_default(core.primary_address)
    network.register(isp)
    core.table.add_next_hop(block, isp.primary_address)

    wan_prefix = IPv6Prefix.from_string("2001:db8:0:1::/64")
    lan_prefix = IPv6Prefix.from_string("2001:db8:1:10::/60")
    subnet = lan_prefix.subprefix(0, 64)
    wan_address = wan_prefix.address(0x1)
    cpe = CpeRouter(
        "unit-under-test",
        wan_address,
        wan_prefix=wan_prefix,
        lan_prefix=lan_prefix,
        subnet_prefix=subnet,
        isp_address=isp.primary_address,
        vulnerable_wan=unit.vulnerable_wan,
        vulnerable_lan=unit.vulnerable_lan,
        loop_forward_limit=unit.loop_forward_limit,
    )
    network.register(cpe)
    isp.delegate(wan_prefix, wan_address)
    isp.delegate(lan_prefix, wan_address)

    nx_wan = wan_prefix.address(0xDEAD_0000_0000_0001)
    nx_lan = lan_prefix.subprefix(9, 64).address(0xDEAD_0000_0000_0002)
    nx_subnet = subnet.address(0xDEAD_0000_0000_0003)
    return network, vantage, "isp", "unit-under-test", nx_wan, nx_lan, nx_subnet


def test_router(unit: RouterModel, index: int = 0) -> CaseStudyResult:
    """Send the paper's two crafted packets at one bench unit and measure."""
    network, vantage, isp_name, cpe_name, nx_wan, nx_lan, nx_subnet = (
        _bench_topology(unit, index)
    )
    wan_report = run_loop_attack(
        network, vantage, nx_wan, isp_name, cpe_name, hop_limit=MAX_HOP_LIMIT
    )
    lan_report = run_loop_attack(
        network, vantage, nx_lan, isp_name, cpe_name, hop_limit=MAX_HOP_LIMIT
    )
    # The immune prefix must answer Destination Unreachable (§VI-D): probe a
    # nonexistent host inside the advertised subnet, which is never looped.
    from repro.net.packet import Icmpv6Message, Icmpv6Type, echo_request

    probe = echo_request(vantage.primary_address, nx_subnet, 1, 1)
    inbox, _trace = network.inject(probe, vantage)
    unreachable = any(
        isinstance(p.payload, Icmpv6Message)
        and p.payload.type == Icmpv6Type.DEST_UNREACHABLE
        for p in inbox
    )
    loop_threshold = 4  # > two crossings means the packet circled
    return CaseStudyResult(
        router=unit,
        wan_loops=wan_report.link_crossings >= loop_threshold,
        lan_loops=lan_report.link_crossings >= loop_threshold,
        wan_crossings=wan_report.link_crossings,
        lan_crossings=lan_report.link_crossings,
        immune_prefix_unreachable=unreachable,
    )


def run_case_study(
    roster: Optional[List[RouterModel]] = None,
) -> List[CaseStudyResult]:
    """Bench-test the whole roster (Table XII)."""
    results = []
    for index, unit in enumerate(roster or CASE_STUDY_ROUTERS):
        results.append(test_router(unit, index))
    return results
