"""The routing-loop amplification attack (§VI-A, Figure 4).

One attacker packet addressed into a vulnerable CPE's not-used prefix
ping-pongs on the ISP↔CPE access link until its hop limit dies: with hop
limit 255 and ``n`` hops from the attacker to the ISP router, the link
carries the packet 255−n times — the paper's >200x amplification.  Spoofing
the source address into *another* not-used prefix makes the final Time
Exceeded loop as well, doubling the traffic.

The simulator counts actual link crossings, so the reported amplification is
measured, not computed from the formula; the bench asserts the two agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.addr import IPv6Addr
from repro.net.device import Device
from repro.net.network import Network
from repro.net.packet import MAX_HOP_LIMIT, echo_request


@dataclass(frozen=True)
class AttackReport:
    """Measured effect of one attack packet."""

    target: IPv6Addr
    hop_limit: int
    hops_before_isp: int  # the paper's n
    link_crossings: int  # measured ISP↔CPE traversals
    total_hops: int
    spoofed: bool

    @property
    def amplification(self) -> int:
        """Victim-link packets per attacker packet."""
        return self.link_crossings

    @property
    def theoretical(self) -> int:
        """The paper's 255−n bound for one unspoofed packet."""
        return MAX_HOP_LIMIT - self.hops_before_isp

    @property
    def per_router_forwards(self) -> float:
        """The paper's (255−n)/2: times each router forwards the packet."""
        return self.link_crossings / 2


def run_loop_attack(
    network: Network,
    vantage: Device,
    target: IPv6Addr,
    isp_name: str,
    cpe_name: str,
    hop_limit: int = MAX_HOP_LIMIT,
    hops_before_isp: int = 2,
    spoofed_source: Optional[IPv6Addr] = None,
) -> AttackReport:
    """Send one attack packet and measure the victim link's load.

    ``spoofed_source`` — an address inside another not-used prefix — models
    the source-spoofing variant: the CPE's final Time Exceeded is then routed
    back into looping space and burns a second set of crossings.
    """
    source = spoofed_source or vantage.primary_address
    packet = echo_request(
        source, target, ident=0xBEEF, seq=1, hop_limit=hop_limit
    )
    # The report *is* the link-crossing count, so force link recording on
    # for this injection even on networks tuned for scanning throughput.
    saved = network.record_links
    network.record_links = True
    try:
        _inbox, trace = network.inject(packet, vantage)
    finally:
        network.record_links = saved
    return AttackReport(
        target=target,
        hop_limit=hop_limit,
        hops_before_isp=hops_before_isp,
        link_crossings=trace.crossings(isp_name, cpe_name),
        total_hops=trace.hops,
        spoofed=spoofed_source is not None,
    )
