"""The routing-loop attack study (§VI).

* :mod:`repro.loop.detector` — the hop-limit h / h+2 loop-location method of
  §VI-B, producing Tables IX/XI;
* :mod:`repro.loop.attack` — the amplification attack of §VI-A (Figure 4),
  measuring ISP↔CPE link crossings per attacker packet;
* :mod:`repro.loop.bgp` — the synthetic global BGP table + AS/country
  registry (Routeviews/MaxMind substitutes) behind Table IX and Figure 5;
* :mod:`repro.loop.casestudy` — the 99-router firmware testbench of §VI-D
  (Table XII).
"""

from repro.loop.detector import LoopRecord, LoopSurvey, find_loops
from repro.loop.attack import AttackReport, run_loop_attack
from repro.loop.bgp import BgpTable, GlobalInternet, build_global_internet
from repro.loop.casestudy import RouterModel, CaseStudyResult, run_case_study, CASE_STUDY_ROUTERS

__all__ = [
    "LoopRecord",
    "LoopSurvey",
    "find_loops",
    "AttackReport",
    "run_loop_attack",
    "BgpTable",
    "GlobalInternet",
    "build_global_internet",
    "RouterModel",
    "CaseStudyResult",
    "run_case_study",
    "CASE_STUDY_ROUTERS",
]
