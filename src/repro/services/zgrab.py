"""The application-layer scanner (ZGrab2 equivalent, §V-A).

For each discovered periphery and each of the eight service/port pairs the
scanner issues exactly one application-specific request (Table VI) and
records whether a *valid* response came back, plus whatever software identity
and vendor hints the response carries.  Per the paper's ethics section the
probe rate defaults to 1000 pps and no follow-up/exploitation traffic is
sent.

TCP services are probed in two steps, as the paper describes: a SYN to check
port openness, then the application request on an open port.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.core.ratelimit import VirtualPacer
from repro.net.addr import IPv6Addr
from repro.net.device import Device
from repro.net.network import Network
from repro.net.packet import Packet, TcpFlags, TcpSegment, UdpDatagram
from repro.services.base import SERVICE_ORDER, SERVICE_SPECS, ServiceSpec, Software
from repro.services.dns import DnsError, DnsMessage, version_bind_query
from repro.services.http import make_client_hello, make_get_request
from repro.services.ntp import MODE_SERVER, make_client_query, parse_header

EPHEMERAL_PORT = 54321


@dataclass
class ServiceObservation:
    """One (target, service) probe outcome."""

    target: IPv6Addr
    service: str  # SERVICE_SPECS key, e.g. "DNS/53"
    alive: bool
    software: Optional[Software] = None
    banner: str = ""
    vendor_hint: str = ""
    login_page: bool = False


@dataclass
class AppScanResult:
    """All observations from one application-layer sweep."""

    observations: List[ServiceObservation] = field(default_factory=list)

    def alive(self) -> List[ServiceObservation]:
        return [o for o in self.observations if o.alive]

    def alive_targets(self) -> set:
        return {o.target for o in self.observations if o.alive}

    def by_service(self) -> Dict[str, List[ServiceObservation]]:
        out: Dict[str, List[ServiceObservation]] = {k: [] for k in SERVICE_ORDER}
        for obs in self.observations:
            if obs.alive:
                out[obs.service].append(obs)
        return out

    def software_counts(self) -> Dict[str, Dict[str, int]]:
        """service → software banner → device count (Table VIII input)."""
        out: Dict[str, Dict[str, int]] = {}
        for obs in self.observations:
            if not obs.alive or obs.software is None:
                continue
            bucket = out.setdefault(obs.service, {})
            bucket[obs.software.banner] = bucket.get(obs.software.banner, 0) + 1
        return out


class AppScanner:
    """Issues Table VI's requests against discovered peripheries."""

    def __init__(
        self,
        network: Network,
        vantage: Device,
        rate_pps: float = 1000.0,
    ) -> None:
        self.network = network
        self.vantage = vantage
        self.pacer = VirtualPacer(network, rate_pps)
        self._dns_ident = 0x1000

    # -- transport helpers -----------------------------------------------------

    def _exchange(self, packet: Packet) -> List[Packet]:
        self.pacer.pace()
        inbox, _trace = self.network.inject(packet, self.vantage)
        return inbox

    def _udp_request(self, target: IPv6Addr, port: int, payload: bytes) -> Optional[bytes]:
        request = Packet(
            src=self.vantage.primary_address,
            dst=target,
            payload=UdpDatagram(EPHEMERAL_PORT, port, payload),
        )
        for reply in self._exchange(request):
            datagram = reply.payload
            if (
                isinstance(datagram, UdpDatagram)
                and datagram.sport == port
                and datagram.dport == EPHEMERAL_PORT
                and reply.src == target
            ):
                return datagram.payload
        return None

    def _tcp_port_open(self, target: IPv6Addr, port: int) -> bool:
        syn = Packet(
            src=self.vantage.primary_address,
            dst=target,
            payload=TcpSegment(EPHEMERAL_PORT, port, seq=1, flags=int(TcpFlags.SYN)),
        )
        for reply in self._exchange(syn):
            segment = reply.payload
            if not isinstance(segment, TcpSegment) or segment.sport != port:
                continue
            if segment.has_flag(TcpFlags.SYN) and segment.has_flag(TcpFlags.ACK):
                return True
        return False

    def _tcp_request(self, target: IPv6Addr, port: int, payload: bytes) -> Optional[bytes]:
        if not self._tcp_port_open(target, port):
            return None
        data = Packet(
            src=self.vantage.primary_address,
            dst=target,
            payload=TcpSegment(
                EPHEMERAL_PORT,
                port,
                seq=2,
                flags=int(TcpFlags.PSH) | int(TcpFlags.ACK),
                payload=payload,
            ),
        )
        for reply in self._exchange(data):
            segment = reply.payload
            if (
                isinstance(segment, TcpSegment)
                and segment.sport == port
                and segment.payload
                and reply.src == target
            ):
                return segment.payload
        return None

    # -- per-service probes ---------------------------------------------------

    def probe_service(self, target: IPv6Addr, service_key: str) -> ServiceObservation:
        spec = SERVICE_SPECS[service_key]
        prober = _PROBERS[service_key]
        return prober(self, target, service_key, spec)

    def scan(
        self,
        targets: Iterable[IPv6Addr],
        services: Iterable[str] = tuple(SERVICE_ORDER),
    ) -> AppScanResult:
        result = AppScanResult()
        services = list(services)
        for target in targets:
            for service_key in services:
                result.observations.append(self.probe_service(target, service_key))
        return result


# -- response parsers -----------------------------------------------------------


def _parse_software(banner: str) -> Optional[Software]:
    match = re.match(r"^([A-Za-z][\w!. -]*?)[ _/]v?(\d[\w.\-]*)$", banner.strip())
    if not match:
        return None
    return Software(match.group(1).strip(), match.group(2))


def _probe_dns(scanner: AppScanner, target: IPv6Addr, key: str, spec: ServiceSpec) -> ServiceObservation:
    scanner._dns_ident = (scanner._dns_ident + 1) & 0xFFFF
    payload = scanner._udp_request(target, spec.port, version_bind_query(scanner._dns_ident))
    if payload is None:
        return ServiceObservation(target, key, alive=False)
    try:
        message = DnsMessage.decode(payload)
    except DnsError:
        return ServiceObservation(target, key, alive=False)
    if not message.is_response or message.ident != scanner._dns_ident:
        return ServiceObservation(target, key, alive=False)
    banner = ""
    if message.answers and message.answers[0].rdata:
        raw = message.answers[0].rdata
        banner = raw[1 : 1 + raw[0]].decode("ascii", "replace")
    return ServiceObservation(
        target, key, alive=True, banner=banner, software=_parse_software(banner)
    )


def _probe_ntp(scanner: AppScanner, target: IPv6Addr, key: str, spec: ServiceSpec) -> ServiceObservation:
    payload = scanner._udp_request(target, spec.port, make_client_query())
    if payload is None:
        return ServiceObservation(target, key, alive=False)
    try:
        _leap, version, mode = parse_header(payload)
    except ValueError:
        return ServiceObservation(target, key, alive=False)
    if mode != MODE_SERVER:
        return ServiceObservation(target, key, alive=False)
    return ServiceObservation(
        target,
        key,
        alive=True,
        banner=f"NTP version {version}",
        software=Software("NTP", str(version)),
    )


def _probe_ftp(scanner: AppScanner, target: IPv6Addr, key: str, spec: ServiceSpec) -> ServiceObservation:
    payload = scanner._tcp_request(target, spec.port, b"\r\n")
    if payload is None:
        return ServiceObservation(target, key, alive=False)
    text = payload.decode("latin-1", "replace").strip()
    if not text.startswith("220"):
        return ServiceObservation(target, key, alive=False)
    banner = text[4:].replace(" FTP server ready.", "").strip()
    return ServiceObservation(
        target, key, alive=True, banner=banner, software=_parse_software(banner)
    )


def _probe_ssh(scanner: AppScanner, target: IPv6Addr, key: str, spec: ServiceSpec) -> ServiceObservation:
    payload = scanner._tcp_request(target, spec.port, b"SSH-2.0-repro_scanner\r\n")
    if payload is None:
        return ServiceObservation(target, key, alive=False)
    text = payload.decode("latin-1", "replace").strip().splitlines()[0]
    if not text.startswith("SSH-"):
        return ServiceObservation(target, key, alive=False)
    ident = text.split("-", 2)[-1]  # e.g. "dropbear_0.46"
    software = _parse_software(ident.replace("_", " "))
    return ServiceObservation(
        target, key, alive=True, banner=text, software=software
    )


def _probe_telnet(scanner: AppScanner, target: IPv6Addr, key: str, spec: ServiceSpec) -> ServiceObservation:
    payload = scanner._tcp_request(target, spec.port, b"\r\n")
    if payload is None:
        return ServiceObservation(target, key, alive=False)
    text = payload.decode("latin-1", "replace")
    if "login" not in text.lower():
        return ServiceObservation(target, key, alive=False)
    printable = "".join(ch for ch in text if ch.isprintable()).strip()
    vendor_hint = printable.replace("login:", "").strip()
    return ServiceObservation(
        target, key, alive=True, banner=printable, vendor_hint=vendor_hint
    )


_SERVER_RE = re.compile(r"^Server:\s*(.+)$", re.IGNORECASE | re.MULTILINE)
_TITLE_RE = re.compile(r"<title>(.*?)</title>", re.IGNORECASE | re.DOTALL)


def _probe_http(scanner: AppScanner, target: IPv6Addr, key: str, spec: ServiceSpec) -> ServiceObservation:
    payload = scanner._tcp_request(target, spec.port, make_get_request())
    if payload is None:
        return ServiceObservation(target, key, alive=False)
    text = payload.decode("latin-1", "replace")
    if not text.startswith("HTTP/"):
        return ServiceObservation(target, key, alive=False)
    server_match = _SERVER_RE.search(text)
    banner = server_match.group(1).strip() if server_match else ""
    title_match = _TITLE_RE.search(text)
    vendor_hint = ""
    login_page = False
    if title_match:
        title = title_match.group(1).strip()
        lowered = text.lower()
        login_page = "password" in lowered and "login" in lowered
        vendor_hint = re.sub(r"\s*Router Login\s*$", "", title).strip()
    return ServiceObservation(
        target,
        key,
        alive=True,
        banner=banner,
        software=_parse_software(banner),
        vendor_hint=vendor_hint,
        login_page=login_page,
    )


def _probe_tls(scanner: AppScanner, target: IPv6Addr, key: str, spec: ServiceSpec) -> ServiceObservation:
    payload = scanner._tcp_request(target, spec.port, make_client_hello())
    if payload is None:
        return ServiceObservation(target, key, alive=False)
    if not payload or payload[0] != 0x16:
        return ServiceObservation(target, key, alive=False)
    text = payload[3:].decode("latin-1", "replace")
    fields = dict(
        line.split("=", 1) for line in text.splitlines() if "=" in line
    )
    banner = fields.get("server", "").strip()
    return ServiceObservation(
        target,
        key,
        alive=True,
        banner=banner,
        software=_parse_software(banner),
        vendor_hint=fields.get("cert-cn", "").strip(),
    )


_PROBERS = {
    "DNS/53": _probe_dns,
    "NTP/123": _probe_ntp,
    "FTP/21": _probe_ftp,
    "SSH/22": _probe_ssh,
    "TELNET/23": _probe_telnet,
    "HTTP/80": _probe_http,
    "TLS/443": _probe_tls,
    "HTTP/8080": _probe_http,
}
