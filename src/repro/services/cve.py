"""CVE-count database for the version-lag analysis (Table VIII).

The paper joins each observed software version family against the MITRE CVE
database and reports how many CVEs could be leveraged against devices running
it.  This module is the offline stand-in: synthetic CVE identifiers, with
per-family counts and release years taken from the paper's published numbers
("dnsmasq 2.4x released ~8 years ago", "dropbear 0.4x released before 2006",
"openssh 3.5 released in 2002").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class SoftwareFamilyInfo:
    """Vulnerability/lag facts for one software version family."""

    software: str
    family: str
    release_year: int
    cve_ids: Tuple[str, ...]

    @property
    def cve_count(self) -> int:
        return len(self.cve_ids)

    def lag_years(self, reference_year: int = 2020) -> int:
        """Version lag relative to the paper's measurement year."""
        return max(0, reference_year - self.release_year)


def family_of(software: str, version: str) -> str:
    """Bucket a concrete version into Table VIII's version family.

    The paper's buckets are software-specific: dnsmasq/dropbear wildcard the
    last digit of a two-digit minor (``2.45`` → ``2.4x``), openssh groups by
    major (``5.8`` → ``5.x``) except the named ``3.5`` family, vsftpd and the
    web servers bucket on the first two components.
    """
    name = software.lower()
    parts = version.split(".")
    if name == "openssh":
        if version.startswith("3.5"):
            return "3.5"
        return f"{parts[0]}.x"
    if name in ("dnsmasq", "dropbear"):
        if len(parts) >= 2 and len(parts[1]) >= 2:
            return f"{parts[0]}.{parts[1][:-1]}x"
        return version
    if name == "gnu inetutils":
        return "1.4x" if version.startswith("1.4") else version
    if name == "freebsd":
        return version
    if len(parts) >= 2:
        return f"{parts[0]}.{parts[1]}x"
    return version


def _cves(software: str, family: str, count: int) -> Tuple[str, ...]:
    token = f"{software}-{family}".replace(" ", "").replace(".", "")
    return tuple(f"CVE-SIM-{token}-{i:04d}" for i in range(1, count + 1))


class CveDatabase:
    """Lookup from (software, version family) to CVE info."""

    def __init__(self) -> None:
        self._families: Dict[Tuple[str, str], SoftwareFamilyInfo] = {}

    def add(self, software: str, family: str, release_year: int, cve_count: int) -> None:
        self._families[(software.lower(), family)] = SoftwareFamilyInfo(
            software, family, release_year, _cves(software, family, cve_count)
        )

    def info(self, software: str, family: str) -> Optional[SoftwareFamilyInfo]:
        return self._families.get((software.lower(), family))

    def info_for_version(self, software: str, version: str) -> Optional[SoftwareFamilyInfo]:
        """Info for a concrete version string (bucketed via family_of)."""
        return self.info(software, family_of(software, version))

    def cve_count(self, software: str, family: str) -> int:
        info = self.info(software, family)
        return info.cve_count if info else 0

    def cve_count_for_software(self, software: str) -> int:
        """Total CVEs across all families of one software (Table VIII rows)."""
        return sum(
            info.cve_count
            for (name, _family), info in self._families.items()
            if name == software.lower()
        )

    def families_of(self, software: str) -> List[SoftwareFamilyInfo]:
        return [
            info
            for (name, _family), info in self._families.items()
            if name == software.lower()
        ]


def _build_default() -> CveDatabase:
    db = CveDatabase()
    # DNS — 16 CVEs across the dnsmasq families the survey observed.
    db.add("dnsmasq", "2.4x", 2012, 7)
    db.add("dnsmasq", "2.5x", 2014, 4)
    db.add("dnsmasq", "2.6x", 2016, 3)
    db.add("dnsmasq", "2.7x", 2018, 2)
    # HTTP — 24 CVEs across the embedded web servers.
    db.add("Jetty", "6.1x", 2010, 12)
    db.add("MiniWeb HTTP Server", "0.8x", 2009, 4)
    db.add("micro_httpd", "1.0x", 2005, 3)
    db.add("GoAhead Embedded", "2.5x", 2012, 5)
    # SSH — dropbear 10, openssh 74.
    db.add("dropbear", "0.4x", 2005, 4)
    db.add("dropbear", "0.5x", 2008, 2)
    db.add("dropbear", "2012.5x", 2012, 2)
    db.add("dropbear", "2017.7x", 2017, 2)
    db.add("openssh", "3.5", 2002, 31)
    db.add("openssh", "5.x", 2009, 19)
    db.add("openssh", "6.x", 2013, 13)
    db.add("openssh", "7.x", 2016, 8)
    db.add("openssh", "8.x", 2019, 3)
    # FTP — FreeBSD 6.00ls has 1 CVE, vsftpd 2; GNU Inetutils none listed.
    db.add("GNU Inetutils", "1.4x", 2002, 0)
    db.add("Fritz!Box", "7.2x", 2020, 0)
    db.add("FreeBSD", "6.00ls", 2006, 1)
    db.add("vsftpd", "2.2x", 2010, 1)
    db.add("vsftpd", "2.3x", 2011, 1)
    db.add("vsftpd", "3.0x", 2015, 0)
    return db


#: The Table VIII database instance.
DEFAULT_CVE_DB = _build_default()
