"""HTTP (TCP/80, TCP/8080) and TLS (TCP/443) endpoints.

The web management page is the paper's strongest identification signal: the
``Server`` header names the embedded web server (Jetty, MiniWeb, micro_httpd,
GoAhead — Table VIII) and the login-page body names the vendor/model.  The
paper identified 1.1M routers by "login keywords along with manual
validation"; the simulated page carries the same keywords.

TLS is modelled as a certificate-summary exchange: a ClientHello-shaped
request (first byte 0x16, the TLS handshake content type) is answered with a
pseudo ServerHello naming the negotiated cipher suite and the certificate
subject CN.  A full TLS stack is out of scope — the measurement only needs
"certificate, cipher suite" back (Table VI), and the analysis only consumes
the subject CN and software identity.
"""

from __future__ import annotations

from typing import Optional

from repro.services.base import Service, ServiceSpec, Software, SERVICE_SPECS

#: Keywords the survey greps for to call a page a router login page.
LOGIN_KEYWORDS = ("login", "password", "router")


def make_get_request(host: str = "periphery", path: str = "/") -> bytes:
    return (
        f"GET {path} HTTP/1.1\r\nHost: {host}\r\n"
        "User-Agent: repro-zgrab/1.0\r\nAccept: */*\r\n\r\n"
    ).encode()


class HttpServer(Service):
    """An embedded web server exposing the router login page."""

    def __init__(
        self,
        software: Software,
        spec: ServiceSpec = SERVICE_SPECS["HTTP/80"],
        vendor: str = "",
        model: str = "",
        login_page: bool = True,
        requires_auth: bool = False,
    ) -> None:
        super().__init__(spec, software)
        self.vendor = vendor
        self.model = model
        self.login_page = login_page
        #: Some firmware gates the page behind HTTP Basic auth: the survey
        #: still sees a valid response (alive) but no login keywords and no
        #: vendor title — the gap between the paper's 1.3M reachable pages
        #: and 1.1M identified login pages.
        self.requires_auth = requires_auth

    def _body(self) -> str:
        title = f"{self.vendor} {self.model}".strip() or "Device"
        if self.login_page:
            return (
                f"<html><head><title>{title} Router Login</title></head>"
                "<body><form name='login'>"
                "<input name='username'/><input type='password' name='password'/>"
                f"</form><p>{title} management console</p></body></html>"
            )
        return f"<html><body><h1>{title}</h1></body></html>"

    def handle(self, request: bytes) -> Optional[bytes]:
        text = request.decode("latin-1", "replace")
        if not text.startswith(("GET ", "HEAD ", "POST ")):
            return b"HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n\r\n"
        if self.requires_auth:
            return (
                "HTTP/1.1 401 Unauthorized\r\n"
                f"Server: {self.software.banner}\r\n"
                'WWW-Authenticate: Basic realm="device"\r\n'
                "Content-Length: 0\r\n\r\n"
            ).encode()
        body = self._body()
        head = (
            "HTTP/1.1 200 OK\r\n"
            f"Server: {self.software.banner}\r\n"
            "Content-Type: text/html\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        )
        if text.startswith("HEAD "):
            return head.encode()
        return (head + body).encode()


TLS_HANDSHAKE = 0x16


def make_client_hello() -> bytes:
    """A ClientHello-shaped certificate request (content type 0x16)."""
    return bytes([TLS_HANDSHAKE, 0x03, 0x03]) + b"\x00\x2e" + b"\x01" + b"\x00" * 46


class TlsServer(Service):
    """The HTTPS management endpoint (certificate-summary model)."""

    def __init__(
        self,
        software: Software,
        spec: ServiceSpec = SERVICE_SPECS["TLS/443"],
        vendor: str = "",
        model: str = "",
        cipher: str = "TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256",
    ) -> None:
        super().__init__(spec, software)
        self.vendor = vendor
        self.model = model
        self.cipher = cipher

    @property
    def certificate_cn(self) -> str:
        return f"{self.vendor} {self.model}".strip() or "periphery.local"

    def handle(self, request: bytes) -> Optional[bytes]:
        if not request or request[0] != TLS_HANDSHAKE:
            return None
        summary = (
            f"TLSv1.2\ncipher={self.cipher}\n"
            f"cert-cn={self.certificate_cn}\n"
            f"server={self.software.banner}\n"
        )
        return bytes([TLS_HANDSHAKE, 0x03, 0x03]) + summary.encode()
