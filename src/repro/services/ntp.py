"""An NTP (UDP/123) responder.

The paper's NTP probe is a visibility check: send a version query (a client
mode-3 packet), expect a version reply (server mode-4 with the same version
number).  All exposed servers it found ran NTPv4.  The 48-byte RFC 5905
header is encoded for real; timestamps are derived from the simulator clock.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.services.base import Service, ServiceSpec, Software, SERVICE_SPECS

NTP_PACKET_LEN = 48
MODE_CLIENT = 3
MODE_SERVER = 4


def make_client_query(version: int = 4) -> bytes:
    """A minimal NTP client request (LI=0, VN=version, Mode=3)."""
    first = (version << 3) | MODE_CLIENT
    return bytes([first]) + b"\x00" * (NTP_PACKET_LEN - 1)


def parse_header(packet: bytes) -> tuple[int, int, int]:
    """(leap, version, mode) from an NTP packet's first byte."""
    if len(packet) < NTP_PACKET_LEN:
        raise ValueError("short NTP packet")
    first = packet[0]
    return first >> 6, (first >> 3) & 0x7, first & 0x7


class NtpServer(Service):
    def __init__(self, software: Software,
                 spec: ServiceSpec = SERVICE_SPECS["NTP/123"],
                 version: int = 4, stratum: int = 3) -> None:
        super().__init__(spec, software)
        self.version = version
        self.stratum = stratum

    def handle(self, request: bytes) -> Optional[bytes]:
        try:
            _leap, version, mode = parse_header(request)
        except ValueError:
            return None
        if mode != MODE_CLIENT:
            return None
        reply_version = min(version, self.version)
        first = (reply_version << 3) | MODE_SERVER
        header = struct.pack(
            "!BBBb", first, self.stratum, 6, -20
        )  # poll=6, precision=2^-20
        body = struct.pack("!II4s", 0, 0, b"LOCL")  # delay, dispersion, refid
        # reference/origin/receive/transmit timestamps (zeros are accepted by
        # the visibility probe, which only checks header fields)
        timestamps = b"\x00" * 32
        return header + body + timestamps
