"""Banner-style TCP services: FTP, SSH, and TELNET.

Real FTP/SSH/TELNET servers greet on connect.  The simulator's TCP model is
request/response, so the app-layer scanner sends a single CRLF ("request for
connecting" in Table VI) and the service answers with its greeting — the
banner that carries the software identity Table VIII buckets (dropbear 0.46,
GNU Inetutils 1.4.1, …).
"""

from __future__ import annotations

from typing import Optional

from repro.services.base import Service, ServiceSpec, Software, SERVICE_SPECS


class FtpServer(Service):
    """FTP (TCP/21): `220` greeting naming the server software."""

    def __init__(self, software: Software,
                 spec: ServiceSpec = SERVICE_SPECS["FTP/21"]) -> None:
        super().__init__(spec, software)

    def handle(self, request: bytes) -> Optional[bytes]:
        text = request.decode("latin-1", "replace").strip().upper()
        if text.startswith("USER"):
            return b"331 Password required.\r\n"
        if text.startswith("QUIT"):
            return b"221 Goodbye.\r\n"
        return f"220 {self.software.banner} FTP server ready.\r\n".encode()


class SshServer(Service):
    """SSH (TCP/22): RFC 4253 identification-string exchange."""

    def __init__(self, software: Software,
                 spec: ServiceSpec = SERVICE_SPECS["SSH/22"],
                 host_key_fingerprint: str = "") -> None:
        super().__init__(spec, software)
        self.host_key_fingerprint = host_key_fingerprint

    @property
    def identification(self) -> str:
        # dropbear banners look like "SSH-2.0-dropbear_0.46"
        name = self.software.name.replace(" ", "_")
        return f"SSH-2.0-{name}_{self.software.version}"

    def handle(self, request: bytes) -> Optional[bytes]:
        reply = self.identification
        if self.host_key_fingerprint:
            reply += f"\r\nhostkey:{self.host_key_fingerprint}"
        return (reply + "\r\n").encode()


IAC, WILL, WONT, DO, DONT = 255, 251, 252, 253, 254
OPT_ECHO, OPT_SGA = 1, 3


class TelnetServer(Service):
    """TELNET (TCP/23): IAC option negotiation plus a login prompt.

    The login banner may name the device vendor — the paper recognised 37k
    devices by "forthright vendor banners" (China Unicom, Yocto, OpenWrt).
    """

    def __init__(self, software: Software,
                 spec: ServiceSpec = SERVICE_SPECS["TELNET/23"],
                 vendor_banner: str = "") -> None:
        super().__init__(spec, software)
        self.vendor_banner = vendor_banner

    def handle(self, request: bytes) -> Optional[bytes]:
        negotiation = bytes([IAC, WILL, OPT_ECHO, IAC, WILL, OPT_SGA])
        banner = f"{self.vendor_banner}\r\n" if self.vendor_banner else ""
        return negotiation + f"{banner}login: ".encode()
