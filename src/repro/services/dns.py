"""A DNS forwarder (UDP/53) with a real wire-format codec.

CPE DNS services are dnsmasq-style forwarders.  The simulated resolver
answers:

* ``A``/``AAAA`` queries for any name — with a synthetic answer, modelling an
  *open resolver* (the paper found 741k of them);
* ``version.bind`` ``TXT``/``CH`` queries — with the software banner, which
  is how the survey attributes dnsmasq versions in Table VIII.

The codec implements the RFC 1035 header, QNAME compression-free question
section, and simple answer records; round-trips are property-tested.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.services.base import Service, ServiceSpec, Software, SERVICE_SPECS

QTYPE_A = 1
QTYPE_TXT = 16
QTYPE_AAAA = 28
QCLASS_IN = 1
QCLASS_CHAOS = 3


class DnsError(ValueError):
    """Raised for malformed DNS messages."""


def encode_name(name: str) -> bytes:
    if name in ("", "."):
        return b"\x00"
    out = bytearray()
    for label in name.rstrip(".").split("."):
        raw = label.encode("ascii")
        if not 0 < len(raw) < 64:
            raise DnsError(f"bad label {label!r}")
        out.append(len(raw))
        out += raw
    out.append(0)
    return bytes(out)


def decode_name(data: bytes, offset: int) -> Tuple[str, int]:
    labels: List[str] = []
    while True:
        if offset >= len(data):
            raise DnsError("truncated name")
        length = data[offset]
        offset += 1
        if length == 0:
            break
        if length & 0xC0:
            raise DnsError("compression pointers unsupported")
        if offset + length > len(data):
            raise DnsError("truncated label")
        labels.append(data[offset : offset + length].decode("ascii"))
        offset += length
    return ".".join(labels), offset


@dataclass(frozen=True)
class DnsQuestion:
    name: str
    qtype: int
    qclass: int = QCLASS_IN


@dataclass(frozen=True)
class DnsRecord:
    name: str
    rtype: int
    rclass: int
    ttl: int
    rdata: bytes


@dataclass
class DnsMessage:
    ident: int
    flags: int = 0
    questions: List[DnsQuestion] = field(default_factory=list)
    answers: List[DnsRecord] = field(default_factory=list)

    @property
    def is_response(self) -> bool:
        return bool(self.flags & 0x8000)

    @property
    def rcode(self) -> int:
        return self.flags & 0xF

    def encode(self) -> bytes:
        out = bytearray(
            struct.pack(
                "!HHHHHH",
                self.ident,
                self.flags,
                len(self.questions),
                len(self.answers),
                0,
                0,
            )
        )
        for q in self.questions:
            out += encode_name(q.name)
            out += struct.pack("!HH", q.qtype, q.qclass)
        for r in self.answers:
            out += encode_name(r.name)
            out += struct.pack("!HHIH", r.rtype, r.rclass, r.ttl, len(r.rdata))
            out += r.rdata
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> "DnsMessage":
        if len(data) < 12:
            raise DnsError("message shorter than header")
        ident, flags, qd, an, ns, ar = struct.unpack("!HHHHHH", data[:12])
        if ns or ar:
            raise DnsError("authority/additional sections unsupported")
        offset = 12
        questions: List[DnsQuestion] = []
        for _ in range(qd):
            name, offset = decode_name(data, offset)
            if offset + 4 > len(data):
                raise DnsError("truncated question")
            qtype, qclass = struct.unpack_from("!HH", data, offset)
            offset += 4
            questions.append(DnsQuestion(name, qtype, qclass))
        answers: List[DnsRecord] = []
        for _ in range(an):
            name, offset = decode_name(data, offset)
            if offset + 10 > len(data):
                raise DnsError("truncated record")
            rtype, rclass, ttl, rdlen = struct.unpack_from("!HHIH", data, offset)
            offset += 10
            if offset + rdlen > len(data):
                raise DnsError("truncated rdata")
            answers.append(
                DnsRecord(name, rtype, rclass, ttl, data[offset : offset + rdlen])
            )
            offset += rdlen
        return cls(ident, flags, questions, answers)


def make_query(ident: int, name: str, qtype: int, qclass: int = QCLASS_IN) -> bytes:
    """A standard recursive query (RD set)."""
    return DnsMessage(
        ident, flags=0x0100, questions=[DnsQuestion(name, qtype, qclass)]
    ).encode()


def version_bind_query(ident: int = 0x5656) -> bytes:
    return make_query(ident, "version.bind", QTYPE_TXT, QCLASS_CHAOS)


def txt_rdata(text: str) -> bytes:
    raw = text.encode("ascii")[:255]
    return bytes([len(raw)]) + raw


class DnsForwarder(Service):
    """The dnsmasq-style resolver bound to periphery UDP/53."""

    def __init__(self, software: Software,
                 spec: ServiceSpec = SERVICE_SPECS["DNS/53"]) -> None:
        super().__init__(spec, software)

    def handle(self, request: bytes) -> Optional[bytes]:
        try:
            query = DnsMessage.decode(request)
        except DnsError:
            return None
        if query.is_response or not query.questions:
            return None
        question = query.questions[0]
        reply = DnsMessage(query.ident, flags=0x8180, questions=[question])

        if (
            question.qclass == QCLASS_CHAOS
            and question.qtype == QTYPE_TXT
            and question.name.lower() == "version.bind"
        ):
            reply.answers.append(
                DnsRecord(
                    question.name,
                    QTYPE_TXT,
                    QCLASS_CHAOS,
                    0,
                    txt_rdata(self.software.banner),
                )
            )
        elif question.qclass == QCLASS_IN and question.qtype == QTYPE_A:
            # Open-resolver behaviour: answer anything (synthetic address).
            reply.answers.append(
                DnsRecord(question.name, QTYPE_A, QCLASS_IN, 300, b"\xc0\x00\x02\x01")
            )
        elif question.qclass == QCLASS_IN and question.qtype == QTYPE_AAAA:
            reply.answers.append(
                DnsRecord(
                    question.name,
                    QTYPE_AAAA,
                    QCLASS_IN,
                    300,
                    (0x20010DB8 << 96 | 1).to_bytes(16, "big"),
                )
            )
        else:
            reply.flags = 0x8184  # NOTIMP-ish: respond but refuse
        return reply.encode()
