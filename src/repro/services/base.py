"""Service framework: specs, software identities, and the handler API.

The paper probes seven distinct services on eight ports (Table VI):

====================  =========================  =======================
Service/Port          Request                    Valid response
====================  =========================  =======================
DNS (UDP/53)          "A" or version query       answers
NTP (UDP/123)         version query              version reply
FTP (TCP/21)          request for connecting     successful response
SSH (TCP/22)          version, key request       version, key
TELNET (TCP/23)       request for login          response for login
HTTP (TCP/80)         HTTP GET request           header, version, body
TLS (TCP/443)         certificate request        certificate, cipher suite
HTTP (TCP/8080)       HTTP GET request           header, version, body
====================  =========================  =======================

A :class:`Service` instance is bound to a device port by
:meth:`repro.net.device.Device.bind_service` and answers the raw request
bytes the app-layer scanner sends.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class Software:
    """A software identity: name plus version string (e.g. dnsmasq 2.45)."""

    name: str
    version: str

    @property
    def banner(self) -> str:
        return f"{self.name} {self.version}" if self.version else self.name

    def __str__(self) -> str:
        return self.banner


@dataclass(frozen=True)
class ServiceSpec:
    """A probe-able service: name, port, transports (Table VI)."""

    name: str
    port: int
    tcp: bool = True
    udp: bool = False

    @property
    def label(self) -> str:
        proto = "UDP" if self.udp and not self.tcp else "TCP"
        return f"{self.name} ({proto}/{self.port})"

    @property
    def key(self) -> str:
        return f"{self.name}/{self.port}"


#: The eight probed service/port pairs, in the paper's table order.
SERVICE_SPECS: Dict[str, ServiceSpec] = {
    "DNS/53": ServiceSpec("DNS", 53, tcp=False, udp=True),
    "NTP/123": ServiceSpec("NTP", 123, tcp=False, udp=True),
    "FTP/21": ServiceSpec("FTP", 21),
    "SSH/22": ServiceSpec("SSH", 22),
    "TELNET/23": ServiceSpec("TELNET", 23),
    "HTTP/80": ServiceSpec("HTTP", 80),
    "TLS/443": ServiceSpec("TLS", 443),
    "HTTP/8080": ServiceSpec("HTTP-ALT", 8080),
}

SERVICE_ORDER = list(SERVICE_SPECS)


class Service(ABC):
    """A simulated listener bound to one device port."""

    def __init__(self, spec: ServiceSpec, software: Software) -> None:
        self.spec = spec
        self.software = software

    def handle_udp(self, request: bytes) -> Optional[bytes]:
        """Answer a UDP request, or None to stay silent."""
        if not self.spec.udp:
            return None
        return self.handle(request)

    def handle_tcp(self, request: bytes) -> Optional[bytes]:
        """Answer TCP application data, or None to stay silent."""
        if not self.spec.tcp:
            return None
        return self.handle(request)

    @abstractmethod
    def handle(self, request: bytes) -> Optional[bytes]:
        """Protocol-specific request handling."""
