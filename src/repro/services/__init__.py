"""Application-layer substrate for the exposed-services study (§V).

Each module simulates one of the paper's probed services (Table VI) with a
request→response handler that speaks enough of the real protocol for the
scanner to extract software name and version — the signal Table VIII's CVE
analysis is built on.  :mod:`repro.services.zgrab` is the ZGrab2-equivalent
application scanner; :mod:`repro.services.cve` is the CVE-count database.
"""

from repro.services.base import Service, ServiceSpec, Software, SERVICE_SPECS
from repro.services.zgrab import AppScanner, AppScanResult, ServiceObservation
from repro.services.cve import CveDatabase, DEFAULT_CVE_DB

__all__ = [
    "Service",
    "ServiceSpec",
    "Software",
    "SERVICE_SPECS",
    "AppScanner",
    "AppScanResult",
    "ServiceObservation",
    "CveDatabase",
    "DEFAULT_CVE_DB",
]
