"""Command-line interface: drive the reproduction without writing Python.

Installed as ``repro-xmap``.  Subcommands mirror the paper's experiments:

* ``census``     — Table I/II: subnet inference + periphery discovery;
* ``scan``       — orchestrated sharded scan campaign (checkpoint/resume);
* ``services``   — Table VII/VIII: the exposed-services audit;
* ``loops``      — Table XI: loop location on the sample blocks;
* ``attack``     — §VI-A: one amplification attack, with measured crossings;
* ``casestudy``  — Table XII: the 99-router firmware bench;
* ``internet``   — compile the AS-level BGP fabric; inspect route-leak /
  hijack / flap / failover deltas;
* ``health``     — summarise flight-recorder bundles / time-series files;
* ``feasibility``— §III-B: scan-duration projections for a given bandwidth;
* ``serve``      — the multi-tenant scan-service daemon (HTTP API,
  fair-share scheduler, drain/restart-safe queue);
* ``submit`` / ``status`` / ``cancel`` — clients for a running daemon.

Examples::

    repro-xmap census --isp in-jio-broadband --scale 20000
    repro-xmap scan --isp in-jio-broadband --shards 4 --executor process
    repro-xmap scan --shards 8 --checkpoint-dir state/ --resume
    repro-xmap services --isp cn-mobile-broadband --csv out.csv
    repro-xmap loops --scale 50000
    repro-xmap attack
    repro-xmap feasibility --gbps 1
    repro-xmap scan --store results/ --snapshot round-1 --shards 4
    repro-xmap store query results/ --prefix 2001:db8::/32 --csv out.csv
    repro-xmap store diff results/ round-1 round-2
    repro-xmap scan --timeseries 0.01 --health --flight-recorder flight/
    repro-xmap health flight/flight-*.json
    repro-xmap serve --root svc/ --port 8640 --workers 4
    repro-xmap submit --url http://127.0.0.1:8640 --tenant alice \
        --range 2001:db8:1::/56-64 --priority interactive
    repro-xmap status --url http://127.0.0.1:8640
    repro-xmap cancel --url http://127.0.0.1:8640 alice-0003
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import tables
from repro.analysis.report import ComparisonTable
from repro.core.output import (
    write_census_csv,
    write_loops_csv,
    write_services_csv,
)
from repro.core.stats import FeasibilityRow
from repro.discovery.periphery import discover
from repro.discovery.subnet import infer_subprefix_length
from repro.isp.builder import build_deployment
from repro.isp.profiles import PAPER_PROFILES, profile_by_key
from repro.loop.detector import find_loops
from repro.net.packet import MAX_HOP_LIMIT
from repro.services.zgrab import AppScanner


def _write_metrics(registry, path: str, extra_lines=()) -> None:
    """Write a registry (plus any extra NDJSON lines) to ``path``."""
    with open(path, "w") as handle:
        for line in registry.ndjson_lines():
            handle.write(line + "\n")
        for line in extra_lines:
            handle.write(line + "\n")
    print(f"metrics written to {path}", file=sys.stderr)


def _telemetry_events(args):
    """An EventLog honouring ``--log-json`` (shared across subcommands).

    With ``--log-json`` every structured event is printed as one JSON line
    on stderr; without it the log stays silent (callers may still attach a
    monitor, as ``scan`` does).
    """
    from repro.telemetry import EventLog

    sink = None
    if getattr(args, "log_json", False):
        def sink(line: str) -> None:
            print(line, file=sys.stderr)
    return EventLog(sink=sink)


def _profiles(args) -> list:
    if args.isp:
        return [profile_by_key(key) for key in args.isp]
    return list(PAPER_PROFILES)


def _build(args):
    profiles = _profiles(args)
    print(f"building deployment (scale 1/{args.scale:g}, "
          f"{len(profiles)} block(s)) ...", file=sys.stderr)
    return build_deployment(profiles=profiles, scale=args.scale, seed=args.seed)


def cmd_census(args) -> int:
    deployment = _build(args)
    inferences, censuses = {}, {}
    for key, isp in deployment.isps.items():
        inferences[key] = infer_subprefix_length(
            deployment.network, deployment.vantage, isp.scan_base,
            seed=args.seed,
        )
        censuses[key] = discover(
            deployment.network, deployment.vantage, isp.scan_spec,
            seed=args.seed, rate_pps=args.rate,
        )
    print(tables.table1_subnet_inference(inferences).render())
    print()
    print(tables.table2_periphery(censuses, args.scale).render())
    print()
    addrs = [r.last_hop for c in censuses.values() for r in c.records]
    print(tables.table3_iid(addrs).render())
    if args.csv:
        with open(args.csv, "w") as handle:
            for census in censuses.values():
                write_census_csv(census, handle)
        print(f"\nwrote {args.csv}")
    return 0


def cmd_scan(args) -> int:
    """Run an orchestrated scan campaign through ``repro.engine``."""
    from repro.core.scanner import ScanConfig
    from repro.core.target import ScanRange
    from repro.engine import Campaign, CampaignError, ProgressMonitor
    from repro.net.addr import AddressError
    from repro.net.spec import TopologySpec
    from repro.telemetry import ProbeTracer, TraceSpecError

    if args.shards < 1:
        print("error: --shards must be positive", file=sys.stderr)
        return 2
    if args.resume and not args.checkpoint_dir:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    try:
        ProbeTracer.from_spec(args.trace)
    except TraceSpecError as exc:
        print(f"error: invalid --trace {args.trace!r}: {exc}", file=sys.stderr)
        return 2
    for text in args.range or ():
        try:
            ScanRange.parse(text)
        except (AddressError, ValueError) as exc:
            print(f"error: invalid --range {text!r}: {exc}", file=sys.stderr)
            return 2
    if args.shard_timeout is not None and args.executor == "serial":
        print("error: --shard-timeout needs --executor thread or process "
              "(the serial backend cannot watchdog itself)", file=sys.stderr)
        return 2
    if args.retransmit < 0:
        print("error: --retransmit must be >= 0", file=sys.stderr)
        return 2
    if args.snapshot and not args.store:
        print("error: --snapshot requires --store", file=sys.stderr)
        return 2
    if args.timeseries is not None and args.timeseries <= 0:
        print("error: --timeseries must be a positive interval in virtual "
              "seconds", file=sys.stderr)
        return 2
    if args.timeseries_out and args.timeseries is None:
        print("error: --timeseries-out requires --timeseries", file=sys.stderr)
        return 2
    if args.health and args.timeseries is None:
        print("error: --health needs --timeseries (health rules evaluate "
              "the sampled series)", file=sys.stderr)
        return 2
    if args.retry_budget is not None and args.retry_budget < 0:
        print("error: --retry-budget must be >= 0", file=sys.stderr)
        return 2
    if args.drain_timeout is not None and args.drain_timeout <= 0:
        print("error: --drain-timeout must be positive", file=sys.stderr)
        return 2
    fault_schedule = None
    if args.fault_schedule or args.host_faults:
        from repro.faults import FaultSchedule, ScheduleError

        def load_schedule(flag: str, path: str):
            try:
                return FaultSchedule.from_file(path)
            except OSError as exc:
                print(f"error: cannot read {flag} {path!r}: {exc}",
                      file=sys.stderr)
            except ScheduleError as exc:
                print(f"error: invalid {flag} {path!r}: {exc}",
                      file=sys.stderr)
            return None

        parts = []
        for flag, path in (("--fault-schedule", args.fault_schedule),
                           ("--host-faults", args.host_faults)):
            if not path:
                continue
            schedule = load_schedule(flag, path)
            if schedule is None:
                return 2
            parts.append(schedule)
        try:
            # One merged schedule: the worker splits the domains itself
            # (network events arm the topology injector, host events the
            # storage shim).  Overlap validation reruns on the union.
            fault_schedule = FaultSchedule(
                events=sum((p.events for p in parts), ()),
                seed=parts[0].seed,
            )
        except ScheduleError as exc:
            print(f"error: --fault-schedule and --host-faults conflict: "
                  f"{exc}", file=sys.stderr)
            return 2
        hosts = len(fault_schedule.host_events())
        print(f"fault schedule armed: {len(fault_schedule)} event(s) "
              f"({hosts} host, {len(fault_schedule) - hosts} network), "
              f"seed {fault_schedule.seed}", file=sys.stderr)

    supervisor_policy = None
    if args.supervise or args.retry_budget is not None \
            or args.drain_timeout is not None:
        from repro.engine import SupervisorPolicy

        supervisor_policy = SupervisorPolicy(
            enabled=True,
            retry_budget=args.retry_budget,
            drain_timeout=(args.drain_timeout
                           if args.drain_timeout is not None
                           else SupervisorPolicy.drain_timeout),
        )

    profiles = _profiles(args)
    keys = tuple(p.key for p in profiles)
    spec = TopologySpec.deployment(profiles=keys, scale=args.scale,
                                   seed=args.seed)
    print(f"building deployment (scale 1/{args.scale:g}, "
          f"{len(profiles)} block(s)) ...", file=sys.stderr)
    built = spec.build()

    def config_for(range_text: str) -> ScanConfig:
        return ScanConfig(
            scan_range=ScanRange.parse(range_text),
            rate_pps=args.rate,
            seed=args.seed,
            max_probes=args.max_probes,
            trace=args.trace,
            flow_cache=not args.no_flow_cache,
            batched=args.batched,
            columnar=args.columnar,
            fault_schedule=fault_schedule,
            adaptive_rate=args.adaptive_rate,
            retransmit=args.retransmit,
            timeseries_interval=args.timeseries or 0.0,
        )

    if args.range:
        configs = {text: config_for(text) for text in args.range}
    else:
        configs = {
            key: config_for(isp.scan_spec)
            for key, isp in built.handle.isps.items()
        }

    campaign = Campaign(
        spec,
        configs,
        shards=args.shards,
        executor=args.executor,
        workers=args.workers,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        monitor=ProgressMonitor(min_interval=0.5, json_mode=args.log_json),
        prebuilt=built if args.executor == "serial" else None,
        shard_timeout=args.shard_timeout,
        store_dir=args.store,
        snapshot=args.snapshot,
        health=args.health,
        flight_dir=args.flight_recorder,
        supervisor=supervisor_policy,
    )
    try:
        result = campaign.run()
    except CampaignError as error:
        print(f"campaign failed: {error}", file=sys.stderr)
        if campaign.recorder is not None and campaign.recorder.bundles:
            for path in campaign.recorder.bundles:
                print(f"flight-recorder bundle: {path}", file=sys.stderr)
        return 1

    if args.metrics_out:
        import json as _json

        _write_metrics(
            result.metrics, args.metrics_out,
            extra_lines=(
                _json.dumps(trace, sort_keys=True) for trace in result.traces
            ),
        )

    if args.timeseries_out and result.timeseries is not None:
        import json as _json

        with open(args.timeseries_out, "w") as handle:
            _json.dump(result.timeseries.to_dict(), handle, sort_keys=True)
            handle.write("\n")
        print(f"time series written to {args.timeseries_out}",
              file=sys.stderr)

    if args.health and result.health is not None:
        print(result.health.summary(), file=sys.stderr)

    # Supervised partial results still exit 0: the committed snapshot is
    # annotated, the parked shards are named, and the operator decides.
    if result.drained:
        print("campaign drained on SIGTERM: completed shards committed",
              file=sys.stderr)
    for parked in result.degraded:
        print(f"shard degraded: {parked['job_id']} ({parked['reason']}; "
              f"signatures {', '.join(parked['signatures']) or 'none'})",
              file=sys.stderr)

    for path in result.flight_bundles:
        print(f"flight-recorder bundle: {path}", file=sys.stderr)

    # In store mode rows streamed to disk instead of memory; responder
    # counts (and any CSV/JSONL export) come back out of the store.
    store = None
    label_segments: dict = {}
    if args.store and result.snapshot:
        from repro.store import ResultStore

        store = ResultStore(args.store)
        label_segments = dict(
            store.snapshot(result.snapshot).meta.get("labels", {})
        )

    table = ComparisonTable(
        f"Scan campaign ({args.shards} shard(s), {args.executor} executor)",
        ("Range", "sent", "validated", "hit-rate", "uniq responders"),
    )
    for label, scan_result in result.results.items():
        if store is not None:
            uniq = len({
                row.responder.value
                for row in store.iter_rows(label_segments.get(label, []))
            })
        else:
            uniq = len(scan_result.unique_responders())
        table.add(
            label,
            scan_result.stats.sent,
            scan_result.stats.validated,
            f"{scan_result.stats.hit_rate:.4%}",
            uniq,
        )
    meta = result.metadata()
    note = (
        f"campaign {meta['campaign']}: "
        f"sent this run: {meta['sent_this_run']:,} "
        f"({meta['shards_from_checkpoint']} shard(s) restored from "
        f"checkpoint); wall {meta['wall_seconds']:.2f}s"
    )
    if result.snapshot:
        note += f"; snapshot {result.snapshot} -> {args.store}"
    table.note(note)
    print(table.render())

    for path, sink_cls in ((args.csv, None), (args.jsonl, "jsonl")):
        if not path:
            continue
        from repro.store.sink import CsvSink, JsonlSink

        with open(path, "w") as handle:
            sink = CsvSink(handle) if sink_cls is None else JsonlSink(handle)
            if store is not None:
                sink.emit_many(
                    store.iter_rows(store.snapshot(result.snapshot).segments)
                )
            else:
                for scan_result in result.results.values():
                    sink.emit_many(scan_result.results)
            sink.close()
        print(f"wrote {sink.rows} row(s) to {path}", file=sys.stderr)
    return 0


def cmd_health(args) -> int:
    """Summarise flight-recorder bundles / time-series documents.

    Accepts any mix of ``repro-flight-recorder`` bundles (what a crash,
    watchdog kill, or quarantine dumps) and ``repro-timeseries`` documents
    (``scan --timeseries-out``); each gets an event summary and, when a
    series is present, a health verdict from the stock rules.  Exit code 0
    even when degraded — the verdict is the output, not an error; 1 only
    when an artifact cannot be read.
    """
    import json as _json
    from collections import Counter as _Counter

    from repro.telemetry import (
        BUNDLE_FORMAT,
        SERIES_FORMAT,
        HealthEngine,
        SeriesSet,
        load_bundle,
        sparkline,
    )

    engine = HealthEngine()
    status = 0
    for path in args.bundle:
        try:
            with open(path) as handle:
                data = _json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"{path}: unreadable ({exc})", file=sys.stderr)
            status = 1
            continue
        fmt = data.get("format") if isinstance(data, dict) else None
        if fmt == BUNDLE_FORMAT:
            try:
                bundle = load_bundle(path)
            except ValueError as exc:
                print(f"{path}: {exc}", file=sys.stderr)
                status = 1
                continue
            events = bundle.get("events", [])
            kinds = _Counter(str(e.get("type")) for e in events)
            print(f"{path}:")
            print(f"  flight recorder: reason={bundle.get('reason')} "
                  f"campaign={bundle.get('campaign')}")
            print(f"  {len(events)} event(s): "
                  + ", ".join(f"{k} x{n}" for k, n in kinds.most_common(8)))
            series_doc = bundle.get("timeseries")
        elif fmt == SERIES_FORMAT:
            print(f"{path}:")
            series_doc = data
        else:
            print(f"{path}: not a {BUNDLE_FORMAT} or {SERIES_FORMAT} "
                  "document", file=sys.stderr)
            status = 1
            continue
        if series_doc:
            series = SeriesSet.from_dict(series_doc)
            span = series.bucket_range()
            if span is not None:
                sent = series.named("scanner_probes_sent")
                bars = [sent.get(b, 0) for b in range(span[0], span[1] + 1)]
                print(f"  sent/bucket {sparkline(bars, width=60)} "
                      f"(interval {series.interval}s, "
                      f"buckets {span[0]}..{span[1]})")
            report = engine.evaluate(series)
            for line in report.summary().splitlines():
                print(f"  {line}")
        else:
            print("  no time series captured")
    return status


def cmd_services(args) -> int:
    deployment = _build(args)
    scanner = AppScanner(deployment.network, deployment.vantage)
    censuses, app_results = {}, {}
    for key, isp in deployment.isps.items():
        censuses[key] = discover(
            deployment.network, deployment.vantage, isp.scan_spec,
            seed=args.seed,
        )
        app_results[key] = scanner.scan(censuses[key].last_hop_addresses())
    sizes = {key: censuses[key].n_unique for key in censuses}
    print(tables.table7_services(app_results, sizes, args.scale).render())
    print()
    print(tables.table8_software(app_results.values(), args.scale).render())
    if args.csv:
        with open(args.csv, "w") as handle:
            write_services_csv(app_results.values(), handle)
        print(f"\nwrote {args.csv}")
    return 0


def cmd_loops(args) -> int:
    deployment = _build(args)
    surveys = {}
    for key, isp in deployment.isps.items():
        surveys[key] = find_loops(
            deployment.network, deployment.vantage, isp.scan_spec,
            seed=args.seed,
        )
    print(tables.table11_loops(surveys, args.scale).render())
    if args.csv:
        with open(args.csv, "w") as handle:
            for survey in surveys.values():
                write_loops_csv(survey, handle)
        print(f"\nwrote {args.csv}")
    return 0


def cmd_attack(args) -> int:
    from repro.loop.attack import run_loop_attack
    from repro.net.testbed import MiniTopology, build_mini

    topo = build_mini()
    target = MiniTopology.LAN_VULN.subprefix(9, 64).address(0xBAD)
    report = run_loop_attack(
        topo.network, topo.vantage, target, "isp", "cpe-vuln",
        hop_limit=args.hop_limit,
    )
    table = ComparisonTable(
        "Routing-loop amplification (one attacker packet)",
        ("Metric", "Value"),
    )
    table.add("target (not-used prefix)", str(target))
    table.add("hop limit", report.hop_limit)
    table.add("link crossings measured", report.amplification)
    table.add("paper bound (255-n)", report.theoretical)
    table.add("forwards per router", f"{report.per_router_forwards:.0f}")
    print(table.render())
    return 0


def cmd_internet(args) -> int:
    from repro.bgp import (
        Failover,
        PrefixHijack,
        RouteLeak,
        SessionFlap,
        build_internet,
        build_leak_demo,
        compute_delta,
        rib_digest,
    )
    from repro.bgp.world import LEAK_DEMO_LEAKER, LEAK_DEMO_R2, LEAK_DEMO_T1

    if args.demo:
        world = build_leak_demo(seed=args.seed)
    else:
        print(f"compiling internet fabric (scale 1/{args.scale:g}) ...",
              file=sys.stderr)
        world = build_internet(
            seed=args.seed, scale=args.scale, n_tier1=args.tier1,
            n_ix=args.ix, n_tail_ases=args.tail_ases,
            populate=not args.no_population,
        )
    fabric = world.fabric
    from repro.telemetry import MetricsRegistry

    events = _telemetry_events(args)
    registry = MetricsRegistry()
    registry.gauge("bgp_ases").set(len(fabric.ases))
    registry.gauge("bgp_sessions").set(len(fabric.sessions))
    registry.gauge("bgp_rib_routes").set(fabric.rib_routes())
    registry.gauge("bgp_fib_routes").set(fabric.fib_routes())
    registry.gauge("bgp_devices").set(len(world.network.devices))
    events.emit(
        "fabric_compiled",
        ases=len(fabric.ases), ixes=len(fabric.ixes),
        sessions=len(fabric.sessions), demo=bool(args.demo),
    )

    by_role: dict = {}
    for system in fabric.ases.values():
        by_role[system.role.value] = by_role.get(system.role.value, 0) + 1
    transit_sessions = sum(
        1 for s in fabric.sessions.values() if s.rel == "transit"
    )
    table = ComparisonTable(
        "BGP fabric" + (" (leak demo)" if args.demo else ""),
        ("Metric", "Value"),
    )
    table.add("autonomous systems",
              ", ".join(f"{n} {role}" for role, n in sorted(by_role.items())))
    table.add("internet exchanges", len(fabric.ixes))
    table.add("eBGP sessions",
              f"{transit_sessions} transit, "
              f"{len(fabric.sessions) - transit_sessions} peer")
    table.add("RIB routes (tracked ASes)", fabric.rib_routes())
    table.add("installed FIB rows", fabric.fib_routes())
    table.add("RIB digest", rib_digest(fabric.rib)[:16])
    table.add("devices on network", len(world.network.devices))
    if world.edges:
        table.add("edge ASes populated", len(world.edges))
        table.add("CPE devices", sum(e.n_devices for e in world.edges))
        table.add("loop-vulnerable CPEs", sum(e.n_loops for e in world.edges))
    print(table.render())

    if args.scenario is None:
        if args.metrics_out:
            _write_metrics(registry, args.metrics_out)
        return 0
    if args.scenario == "failover":
        asn = args.asn if args.asn is not None else (
            world.edges[0].asn if world.edges else None
        )
        if asn is None:
            print("failover needs --asn on an unpopulated world",
                  file=sys.stderr)
            return 2
        scenario = Failover(asn=asn)
    elif not args.demo:
        print(f"--scenario {args.scenario} needs the --demo world "
              "(its cast of ASes is fixed); use --scenario failover --asn N "
              "on the full internet", file=sys.stderr)
        return 2
    elif args.scenario == "leak":
        scenario = RouteLeak(
            leaker=LEAK_DEMO_LEAKER, from_as=LEAK_DEMO_R2, to_as=LEAK_DEMO_T1,
            prefixes=(str(world.edges[0].block),),
        )
    elif args.scenario == "hijack":
        victim_window = world.edges[0].block.subprefix(1, 40)
        scenario = PrefixHijack(
            hijacker=LEAK_DEMO_LEAKER,
            prefix=str(victim_window.subprefix(0, 44)),
        )
    else:  # flap: drop the victim edge's session with its primary provider
        scenario = SessionFlap(LEAK_DEMO_R2, world.edges[0].asn)
    delta = compute_delta(fabric, scenario)
    registry.counter("bgp_scenario_route_ops",
                     scenario=args.scenario).inc(len(delta.ops))
    events.emit("scenario_delta", scenario=args.scenario, ops=len(delta.ops))
    print()
    print(delta.summary())
    for op in delta.ops[:args.max_ops]:
        hop = f" via {op.next_hop}" if op.next_hop else ""
        print(f"  {op.device}: {op.action} {op.prefix}{hop}")
    if len(delta.ops) > args.max_ops:
        print(f"  ... {len(delta.ops) - args.max_ops} more")
    if args.metrics_out:
        _write_metrics(registry, args.metrics_out)
    return 0


def cmd_casestudy(args) -> int:
    from repro.loop.casestudy import run_case_study

    results = run_case_study()
    print(tables.table12_case_study(results).render())
    vulnerable = sum(1 for r in results if r.vulnerable)
    print(f"\n{vulnerable}/{len(results)} units vulnerable")
    return 0


def cmd_disclose(args) -> int:
    from repro.analysis.disclosure import build_disclosure_report
    from repro.discovery.vendor_id import VendorIdentifier

    deployment = _build(args)
    scanner = AppScanner(deployment.network, deployment.vantage)
    vid = VendorIdentifier(deployment.catalog)
    identified, surveys, observations = [], {}, []
    for key, isp in deployment.isps.items():
        census = discover(
            deployment.network, deployment.vantage, isp.scan_spec,
            seed=args.seed,
        )
        app = scanner.scan(census.last_hop_addresses())
        identified.extend(vid.identify(census.records, app.observations))
        observations.extend(app.observations)
        surveys[key] = find_loops(
            deployment.network, deployment.vantage, isp.scan_spec,
            seed=args.seed,
        )
    report = build_disclosure_report(identified, surveys, observations)
    print(report.render_summary())
    if args.vendor:
        print()
        print(report.render_advisory(args.vendor))
    return 0


def cmd_reproduce(args) -> int:
    import time

    from repro.analysis.reproduce import reproduce_all

    started = time.time()

    def progress(message: str) -> None:
        print(f"[{time.time() - started:6.1f}s] {message}", file=sys.stderr,
              flush=True)

    run = reproduce_all(scale=args.scale, seed=args.seed, progress=progress,
                        metrics_out=args.metrics_out)
    report = run.report()
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report + "\n")
        print(f"report written to {args.out}")
    else:
        print(report)
    return 0


def _open_store(args):
    """Open the store with the shared telemetry flags wired through.

    Returns ``(store, registry)``: corruption/quarantine transitions land
    in the ``--log-json`` event stream, integrity counters in the registry
    that ``--metrics-out`` exports.
    """
    from repro.store import ResultStore
    from repro.telemetry import MetricsRegistry

    events = _telemetry_events(args)
    registry = MetricsRegistry()
    store = ResultStore(
        args.dir, metrics=registry,
        on_event=lambda rec: events.ingest([rec]),
    )
    return store, registry


def _export_store_metrics(args, registry) -> None:
    if getattr(args, "metrics_out", None):
        _write_metrics(registry, args.metrics_out)


def cmd_store_info(args) -> int:
    import json as _json

    from repro.store import StoreCorruption

    try:
        store, registry = _open_store(args)
    except StoreCorruption as exc:
        print(f"store corrupt: {exc}", file=sys.stderr)
        return 1
    print(_json.dumps(store.info(), indent=2, sort_keys=True))
    _export_store_metrics(args, registry)
    return 0


def cmd_store_query(args) -> int:
    from repro.store import StoreCorruption, StoreError, query
    from repro.store.sink import CsvSink, JsonlSink

    try:
        store, registry = _open_store(args)
        rows = query(
            store,
            snapshot=args.snapshot,
            prefix=args.prefix,
            kind=args.kind,
            responder64=args.responder64,
        )
        handle = open(args.out, "w") if args.out else sys.stdout
        try:
            sink = JsonlSink(handle) if args.jsonl else CsvSink(handle)
            sink.emit_many(rows)
            sink.close()
        finally:
            if args.out:
                handle.close()
    except (StoreError, StoreCorruption, ValueError) as exc:
        print(f"query failed: {exc}", file=sys.stderr)
        return 1
    print(f"{sink.rows} row(s)", file=sys.stderr)
    _export_store_metrics(args, registry)
    return 0


def cmd_store_diff(args) -> int:
    import json as _json

    from repro.store import StoreCorruption, StoreError, diff

    try:
        store, registry = _open_store(args)
        report = diff(store, args.snapshot_a, args.snapshot_b)
    except (StoreError, StoreCorruption) as exc:
        print(f"diff failed: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(_json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    _export_store_metrics(args, registry)
    return 0


def cmd_store_compact(args) -> int:
    from repro.store import StoreCorruption, StoreError

    try:
        store, registry = _open_store(args)
        report = store.compact()
    except (StoreError, StoreCorruption) as exc:
        print(f"compaction failed: {exc}", file=sys.stderr)
        return 1
    print(
        f"compacted {report['segments_before']} -> "
        f"{report['segments_after']} segment(s); "
        f"{report['rows_before']} -> {report['rows_after']} row(s) "
        f"({report['duplicates_dropped']} duplicate(s) dropped)"
    )
    _export_store_metrics(args, registry)
    return 0


def cmd_feasibility(args) -> int:
    bandwidth = args.gbps * 1e9
    rows = [
        FeasibilityRow("/64 sub-prefixes of a /32 block (2^32)", 32, bandwidth),
        FeasibilityRow("/60 sub-prefixes of a /28 block (2^36)", 36, bandwidth),
        FeasibilityRow("/64 sub-prefixes of a /24 block (2^40)", 40, bandwidth),
    ]
    table = ComparisonTable(
        f"§III-B scan projections at {args.gbps:g} Gbps",
        ("Space", "window bits", "duration"),
    )
    for row in rows:
        table.add(row.label, row.window_bits, row.human)
    print(table.render())
    return 0


def cmd_serve(args) -> int:
    import asyncio
    import json

    from repro.service import ScanService, ServiceServer, TenantPolicy

    policies = {}
    if args.policies:
        with open(args.policies) as handle:
            policies = {
                tenant: TenantPolicy.from_dict(policy)
                for tenant, policy in json.load(handle).items()
            }
    service = ScanService(
        args.root,
        policies=policies,
        default_policy=TenantPolicy(max_in_flight=args.max_in_flight),
        max_workers=args.workers,
        seed=args.seed,
    )
    server = ServiceServer(service, host=args.host, port=args.port).start()
    # The address line is the contract scripts wait on (port 0 is valid).
    print(json.dumps({"address": server.address,
                      "scope": service.queue.allocator.scope,
                      "recovered": service.queue.recovered_leases}),
          flush=True)
    try:
        with service.sigterm_scope():
            if args.once:
                service.run_until_idle()
            else:
                asyncio.run(service.run())
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    print(json.dumps({"stopped": True, "drained": service.draining,
                      "queue_depth": service.queue.depth}), flush=True)
    return 0


def _service_client(args):
    from repro.service.api import ServiceClient

    return ServiceClient(args.url)


def cmd_submit(args) -> int:
    import json

    from repro.service.api import ApiError

    spec = {
        "tenant": args.tenant,
        "name": args.name or args.scan_range,
        "scan_range": args.scan_range,
        "topology": args.topology,
        "seed": args.seed,
        "shards": args.shards,
        "executor": args.executor,
        "priority": args.priority,
        "rate_pps": args.rate,
        "max_probes": args.max_probes,
    }
    try:
        record = _service_client(args).submit(spec)
    except ApiError as exc:
        print(f"submit rejected: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(record, indent=2))
    return 0


def cmd_status(args) -> int:
    import json

    from repro.service.api import ApiError

    client = _service_client(args)
    try:
        if args.id is None:
            payload: object = client.service_status()
            if args.tenant is not None:
                payload = {"campaigns": client.list_campaigns(args.tenant)}
        elif args.results:
            payload = {"rows": client.results(args.id, limit=args.limit)}
        else:
            payload = client.status(args.id)
    except ApiError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    print(json.dumps(payload, indent=2))
    return 0


def cmd_cancel(args) -> int:
    import json

    from repro.service.api import ApiError

    try:
        record = _service_client(args).cancel(args.id)
    except ApiError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    print(json.dumps(record, indent=2))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-xmap",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # One shared parent for the telemetry surface, so every subcommand
    # that produces metrics/events spells the flags identically.
    telemetry = argparse.ArgumentParser(add_help=False)
    telemetry.add_argument("--metrics-out", default=None, metavar="FILE",
                           help="write telemetry counters/gauges/histograms "
                                "(and any sampled probe traces) as NDJSON")
    telemetry.add_argument("--log-json", action="store_true",
                           help="emit raw structured events as JSON lines "
                                "instead of human status text")

    def common(p):
        p.add_argument("--scale", type=float, default=20_000.0,
                       help="population scale-down factor (default 20000)")
        p.add_argument("--seed", type=int, default=7)
        p.add_argument("--isp", action="append", default=None,
                       metavar="KEY",
                       help="profile key (repeatable); default: all fifteen")
        p.add_argument("--csv", default=None, help="also write results as CSV")

    p = sub.add_parser("census", help="Tables I-III: discovery census")
    common(p)
    p.add_argument("--rate", type=float, default=25_000.0,
                   help="probe rate in pps (default 25000, the paper's)")
    p.set_defaults(func=cmd_census)

    p = sub.add_parser("scan",
                       help="orchestrated sharded scan campaign "
                            "(checkpoint/resume)",
                       parents=[telemetry])
    common(p)
    p.add_argument("--range", action="append", default=None, metavar="SPEC",
                   help="explicit scan range (repeatable), e.g. "
                        "2001:db8::/32-64; default: each selected ISP's "
                        "delegated window")
    p.add_argument("--rate", type=float, default=25_000.0,
                   help="probe rate in pps (default 25000)")
    p.add_argument("--shards", type=int, default=1,
                   help="shards per range (default 1)")
    p.add_argument("--workers", type=int, default=None,
                   help="pool size for thread/process executors")
    p.add_argument("--executor", choices=("serial", "thread", "process"),
                   default="serial")
    p.add_argument("--checkpoint-dir", default=None,
                   help="directory for ZMap-style resumable state files")
    p.add_argument("--resume", action="store_true",
                   help="resume from --checkpoint-dir instead of starting "
                        "fresh")
    p.add_argument("--max-probes", type=int, default=None,
                   help="cap probes per shard")
    p.add_argument("--trace", default="off", metavar="SPEC",
                   help="probe-lifecycle tracing: off, all, or sample:N "
                        "(default off)")
    p.add_argument("--timeseries", type=float, default=None,
                   metavar="SECONDS",
                   help="sample per-bucket metric deltas every SECONDS of "
                        "virtual clock (merged bit-identically across "
                        "shards)")
    p.add_argument("--timeseries-out", default=None, metavar="FILE",
                   help="write the merged campaign time series as JSON "
                        "(requires --timeseries)")
    p.add_argument("--health", action="store_true",
                   help="evaluate the stock SLO/health rules over the "
                        "sampled series and print the verdict (requires "
                        "--timeseries)")
    p.add_argument("--flight-recorder", default=None, metavar="DIR",
                   help="always-on bounded flight recorder: dump a "
                        "telemetry bundle to DIR on watchdog kill, "
                        "checkpoint/store quarantine, SIGTERM, or campaign "
                        "failure")
    p.add_argument("--no-flow-cache", action="store_true",
                   help="disable the forwarding flow cache (A/B escape "
                        "hatch; results are identical, scans are slower)")
    p.add_argument("--batched", action="store_true",
                   help="run shards through the block-amortised scan loop "
                        "(identical results)")
    p.add_argument("--columnar", action="store_true",
                   help="forward probe blocks through the vectorised "
                        "columnar engine (repro.net.columnar; implies "
                        "batched dispatch, identical results, falls back "
                        "to scalar when numpy or preconditions are "
                        "missing)")
    p.add_argument("--fault-schedule", default=None, metavar="FILE",
                   help="JSON fault schedule (repro.faults) injected into "
                        "every shard's simulated network — deterministic "
                        "chaos testing")
    p.add_argument("--host-faults", default=None, metavar="FILE",
                   help="JSON fault schedule of host-domain events "
                        "(fs-error/fs-torn-write/fs-crash) injected into "
                        "every shard's checkpoint/store I/O; merges with "
                        "--fault-schedule")
    p.add_argument("--supervise", action="store_true",
                   help="enable the campaign supervisor: park shards that "
                        "keep failing (circuit breaker) and commit partial "
                        "results instead of failing the whole campaign")
    p.add_argument("--retry-budget", type=int, default=None, metavar="N",
                   help="global cap on shard retries across the campaign "
                        "(implies --supervise)")
    p.add_argument("--drain-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="grace period for in-flight shards after a SIGTERM "
                        "drain request (implies --supervise)")
    p.add_argument("--adaptive-rate", action="store_true",
                   help="AIMD probe-rate control: back off on reply-rate "
                        "collapse, creep back to --rate when healthy")
    p.add_argument("--retransmit", type=int, default=0, metavar="N",
                   help="retry silent targets up to N times with jittered "
                        "exponential virtual backoff (default 0 = off)")
    p.add_argument("--shard-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="watchdog: abandon and retry any shard still running "
                        "after this many wall seconds (thread/process "
                        "executors only)")
    p.add_argument("--store", default=None, metavar="DIR",
                   help="stream results into a repro.store result store at "
                        "DIR (segments + atomic manifest) instead of "
                        "buffering them in memory")
    p.add_argument("--snapshot", default=None, metavar="NAME",
                   help="snapshot name for this round in the store "
                        "(default: round-<campaign id>)")
    p.add_argument("--jsonl", default=None, metavar="FILE",
                   help="also write results as JSON lines")
    p.set_defaults(func=cmd_scan)

    p = sub.add_parser("services", help="Tables VII-VIII: service audit")
    common(p)
    p.set_defaults(func=cmd_services)

    p = sub.add_parser("loops", help="Table XI: loop location")
    common(p)
    p.set_defaults(func=cmd_loops)

    p = sub.add_parser("attack", help="§VI-A: amplification demo")
    p.add_argument("--hop-limit", type=int, default=MAX_HOP_LIMIT)
    p.set_defaults(func=cmd_attack)

    p = sub.add_parser("casestudy", help="Table XII: 99-router bench")
    p.set_defaults(func=cmd_casestudy)

    p = sub.add_parser("internet",
                       help="compile the AS-level BGP fabric and "
                            "inspect control-plane scenarios",
                       parents=[telemetry])
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--scale", type=float, default=20_000.0,
                   help="edge population scale-down factor (default 20000)")
    p.add_argument("--tier1", type=int, default=3,
                   help="number of tier-1 transit ASes (default 3)")
    p.add_argument("--ix", type=int, default=2,
                   help="number of internet exchanges (default 2)")
    p.add_argument("--tail-ases", type=int, default=220,
                   help="generated edge ASes beyond Figure 5's top ten")
    p.add_argument("--no-population", action="store_true",
                   help="compile routers/RIBs/FIBs only, skip the CPEs")
    p.add_argument("--demo", action="store_true",
                   help="build the small two-transit route-leak world")
    p.add_argument("--scenario",
                   choices=("leak", "hijack", "flap", "failover"),
                   default=None,
                   help="compute and print a control-plane scenario delta")
    p.add_argument("--asn", type=int, default=None,
                   help="AS for --scenario failover")
    p.add_argument("--max-ops", type=int, default=20,
                   help="route operations to print (default 20)")
    p.set_defaults(func=cmd_internet)

    p = sub.add_parser("disclose",
                       help="§VII: per-vendor disclosure summary/advisories")
    common(p)
    p.add_argument("--vendor", default=None,
                   help="also print the full advisory for one vendor")
    p.set_defaults(func=cmd_disclose)

    p = sub.add_parser("reproduce",
                       help="run the whole evaluation, emit one report")
    p.add_argument("--scale", type=float, default=50_000.0)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--out", default=None, help="write the report to a file")
    p.add_argument("--metrics-out", default=None, metavar="FILE",
                   help="write the per-table metrics snapshot as NDJSON")
    p.set_defaults(func=cmd_reproduce)

    p = sub.add_parser("store",
                       help="inspect, query, diff, and compact a result "
                            "store written by `scan --store`")
    store_sub = p.add_subparsers(dest="store_command", required=True)

    sp = store_sub.add_parser("info", help="manifest summary as JSON",
                              parents=[telemetry])
    sp.add_argument("dir", help="store directory")
    sp.set_defaults(func=cmd_store_info)

    sp = store_sub.add_parser("query",
                              help="stream matching rows as CSV/JSONL",
                              parents=[telemetry])
    sp.add_argument("dir", help="store directory")
    sp.add_argument("--snapshot", default=None,
                    help="restrict to one round's snapshot")
    sp.add_argument("--prefix", default=None, metavar="PFX",
                    help="probe-target prefix filter, e.g. 2001:db8::/32")
    sp.add_argument("--kind", default=None,
                    help="reply-kind filter (e.g. echo-reply, "
                         "dest-unreachable)")
    sp.add_argument("--responder64", default=None, metavar="PFX64",
                    help="responder /64 filter")
    sp.add_argument("--out", default=None, metavar="FILE",
                    help="write rows here instead of stdout")
    sp.add_argument("--jsonl", action="store_true",
                    help="emit JSON lines instead of CSV")
    sp.set_defaults(func=cmd_store_query)

    sp = store_sub.add_parser("diff",
                              help="longitudinal churn between two rounds",
                              parents=[telemetry])
    sp.add_argument("dir", help="store directory")
    sp.add_argument("snapshot_a", help="earlier round")
    sp.add_argument("snapshot_b", help="later round")
    sp.add_argument("--json", action="store_true",
                    help="machine-readable report")
    sp.set_defaults(func=cmd_store_diff)

    sp = store_sub.add_parser("compact",
                              help="merge + dedup segments, sweep orphans",
                              parents=[telemetry])
    sp.add_argument("dir", help="store directory")
    sp.set_defaults(func=cmd_store_compact)

    p = sub.add_parser("health",
                       help="summarise flight-recorder bundles and "
                            "time-series documents")
    p.add_argument("bundle", nargs="+",
                   help="flight-recorder bundle or --timeseries-out "
                        "document (repeatable)")
    p.set_defaults(func=cmd_health)

    p = sub.add_parser("feasibility", help="§III-B projections")
    p.add_argument("--gbps", type=float, default=1.0)
    p.set_defaults(func=cmd_feasibility)

    p = sub.add_parser("serve",
                       help="run the multi-tenant scan-service daemon "
                            "(HTTP API + fair-share scheduler)")
    p.add_argument("--root", required=True,
                   help="service state root (queue.json, tenants/, logs/)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="HTTP port (default 0 = ephemeral; the chosen "
                        "address is printed as JSON on stdout)")
    p.add_argument("--workers", type=int, default=2,
                   help="worker-fleet size (concurrent campaign leases)")
    p.add_argument("--seed", type=int, default=0,
                   help="scheduler tiebreak seed (replayable decisions)")
    p.add_argument("--max-in-flight", type=int, default=2,
                   help="default per-tenant concurrent-lease cap")
    p.add_argument("--policies", default=None, metavar="FILE",
                   help="JSON {tenant: policy} overriding the default "
                        "(weight, max_in_flight, probe_budget, ...)")
    p.add_argument("--once", action="store_true",
                   help="drain the queue to idle, then exit (batch mode)")
    p.set_defaults(func=cmd_serve)

    def service_client_args(p):
        p.add_argument("--url", required=True,
                       help="daemon base URL, e.g. http://127.0.0.1:8640")

    p = sub.add_parser("submit", help="submit a campaign to a daemon")
    service_client_args(p)
    p.add_argument("--tenant", required=True)
    p.add_argument("--name", default=None,
                   help="campaign label (default: the range spec)")
    p.add_argument("--range", required=True, dest="scan_range",
                   metavar="SPEC", help="e.g. 2001:db8:1::/56-64")
    p.add_argument("--topology", default="mini",
                   help="topology kind (default mini)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--shards", type=int, default=2)
    p.add_argument("--executor", default="serial",
                   choices=("serial", "thread", "process"))
    p.add_argument("--priority", default="normal",
                   choices=("interactive", "normal", "batch"))
    p.add_argument("--rate", type=float, default=25_000.0)
    p.add_argument("--max-probes", type=int, default=None)
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser("status",
                       help="service summary, or one campaign's record")
    service_client_args(p)
    p.add_argument("id", nargs="?", default=None,
                   help="campaign id (omit for the service summary)")
    p.add_argument("--tenant", default=None,
                   help="list this tenant's campaigns instead")
    p.add_argument("--results", action="store_true",
                   help="fetch the campaign's committed rows")
    p.add_argument("--limit", type=int, default=None,
                   help="cap --results rows")
    p.set_defaults(func=cmd_status)

    p = sub.add_parser("cancel", help="cancel a queued or leased campaign")
    service_client_args(p)
    p.add_argument("id")
    p.set_defaults(func=cmd_cancel)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
