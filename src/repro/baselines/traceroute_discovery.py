"""Traceroute-based periphery discovery (the Rye & Beverly baseline).

"Discovering the IPv6 Network Periphery" (PAM 2020) finds peripheries by
tracerouting toward randomised addresses inside routed prefixes and
recording the deepest responding hop.  It finds the same devices XMap does
— the last hop *is* the periphery — but costs one probe per hop-limit value
per target instead of XMap's single probe, because the technique walks the
whole path rather than exploiting the RFC 4443 unreachable directly.

The implementation reuses :func:`repro.loop.hopcount.traceroute` and the
standard target generator so the comparison against XMap
(``bench_baseline_comparison.py``) is apples-to-apples: same blocks, same
pseudorandom targets, measured probes-per-discovered-periphery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Set

from repro.core.target import IidStrategy, ScanRange, TargetGenerator
from repro.loop.hopcount import traceroute
from repro.net.addr import IPv6Addr
from repro.net.device import Device
from repro.net.network import Network


@dataclass
class TracerouteDiscovery:
    """Outcome of a traceroute sweep over a sub-prefix window."""

    scan_range: ScanRange
    last_hops: Set[IPv6Addr] = field(default_factory=set)
    probes_sent: int = 0
    targets_walked: int = 0

    @property
    def probes_per_discovery(self) -> float:
        return self.probes_sent / len(self.last_hops) if self.last_hops else 0.0


def discover_by_traceroute(
    network: Network,
    vantage: Device,
    scan_spec: str | ScanRange,
    max_targets: Optional[int] = None,
    max_hops: int = 32,
    seed: int = 0,
    skip_transit_hops: int = 2,
) -> TracerouteDiscovery:
    """Traceroute toward one random-IID address per sub-prefix.

    ``skip_transit_hops`` drops the shared transit portion of every path
    (vantage-side core/ISP routers) from the discovery set, as the baseline
    does by filtering known infrastructure.
    """
    scan_range = (
        ScanRange.parse(scan_spec) if isinstance(scan_spec, str) else scan_spec
    )
    generator = TargetGenerator(scan_range, IidStrategy.RANDOM, seed=seed)
    from repro.core.permutation import make_permutation

    permutation = make_permutation(scan_range.count, seed=seed)
    result = TracerouteDiscovery(scan_range=scan_range)

    for index in permutation.indices():
        if max_targets is not None and result.targets_walked >= max_targets:
            break
        result.targets_walked += 1
        target = generator.address(index)
        trace = traceroute(network, vantage, target, max_hops=max_hops,
                           seed=seed)
        result.probes_sent += len(trace.hops)
        # The deepest responding hop beyond the transit core is the
        # periphery candidate.
        responders = [hop.responder for hop in trace.hops if hop.responder]
        if len(responders) > skip_transit_hops:
            result.last_hops.add(responders[-1])
    return result
