"""End-host scanning baseline: the 2^64 needle the paper's intro dismisses.

Classic IPv6 host discovery looks for *live hosts* — echo replies from
addresses that exist.  Without seeds/hitlists, a probe into a /64 hits a
real interface identifier with probability ~2^-64; the same probe elicits a
periphery unreachable with probability ~1.  This module runs exactly that
experiment: one random-IID probe per sub-prefix, counting both outcomes, so
the benchmark can show the paper's headline contrast — "search times ...
reduced from 2^(128-64) or larger to 1" — as a measured ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.probes.base import ReplyKind
from repro.core.probes.icmp import IcmpEchoProbe
from repro.core.scanner import ScanConfig, Scanner
from repro.core.target import ScanRange
from repro.core.validate import Validator
from repro.net.device import Device
from repro.net.network import Network


@dataclass
class EndHostScanReport:
    """Live-host vs last-hop yield for one probe budget."""

    probes: int
    live_hosts: int  # echo replies: what end-host scanning is after
    last_hops: int  # ICMPv6-error responders: what XMap harvests

    @property
    def live_host_hit_rate(self) -> float:
        return self.live_hosts / self.probes if self.probes else 0.0

    @property
    def last_hop_hit_rate(self) -> float:
        return self.last_hops / self.probes if self.probes else 0.0


def scan_end_hosts(
    network: Network,
    vantage: Device,
    scan_spec: str | ScanRange,
    seed: int = 0,
    max_probes: int | None = None,
) -> EndHostScanReport:
    """One random-IID echo probe per sub-prefix; tally both reply classes."""
    scan_range = (
        ScanRange.parse(scan_spec) if isinstance(scan_spec, str) else scan_spec
    )
    probe = IcmpEchoProbe(
        Validator(((seed * 0xE57) & ((1 << 128) - 1) or 11).to_bytes(16, "little")),
        hop_limit=255,
    )
    config = ScanConfig(scan_range=scan_range, seed=seed, max_probes=max_probes)
    result = Scanner(network, vantage, probe, config).run()
    live = {
        r.responder for r in result.results if r.kind is ReplyKind.ECHO_REPLY
    }
    errors = {r.responder for r in result.results if r.kind.is_error}
    return EndHostScanReport(
        probes=result.stats.sent,
        live_hosts=len(live),
        last_hops=len(errors),
    )
