"""Baseline discovery techniques the paper compares against (§III, §VIII).

* :mod:`repro.baselines.traceroute_discovery` — periphery discovery via
  traceroute (Rye & Beverly, PAM'20: the "[77]" the paper claims to beat):
  walk paths toward random addresses and keep the last responding hop.
* :mod:`repro.baselines.endhost` — classic end-host scanning (the
  hitlist/TGA framing): count devices found as *live hosts* (echo replies)
  under a probe budget, the 2^64-IID needle-in-a-haystack the paper's
  introduction dismisses.

Both run against the same simulated blocks as XMap, so the benchmark
`bench_baseline_comparison.py` can compare probes-per-discovery directly.
"""

from repro.baselines.traceroute_discovery import (
    TracerouteDiscovery,
    discover_by_traceroute,
)
from repro.baselines.endhost import EndHostScanReport, scan_end_hosts

__all__ = [
    "TracerouteDiscovery",
    "discover_by_traceroute",
    "EndHostScanReport",
    "scan_end_hosts",
]
