"""Telemetry: metrics registry, probe-lifecycle tracing, structured events.

The measurement substrate the ROADMAP's perf goals rest on — the paper's
operational story (§IV, Table II) is only legible because XMap/ZMap report
send rate, hit rate, and reply mix *while the scan runs*.  Three pieces:

* :class:`MetricsRegistry` — labelled counters/gauges/fixed-bucket
  histograms, mergeable across thread/process shard workers like
  ``ScanStats.merge``, exportable as NDJSON (``--metrics-out``);
* :class:`ProbeTracer` — span-based probe-lifecycle tracing behind a
  sampling knob (``off`` / ``all`` / ``sample:N`` / address predicate);
* :class:`EventLog` — the JSON-lines campaign journal ``Campaign``,
  ``CheckpointStore``, and the retry/backoff paths emit into, which
  ``ProgressMonitor`` renders as status lines.
"""

from repro.telemetry.events import (
    DEFAULT_MAX_EVENTS,
    CampaignIdAllocator,
    EventLog,
    WorkerEventBuffer,
    make_campaign_id,
)
from repro.telemetry.metrics import (
    HOP_BUCKETS,
    NULL_REGISTRY,
    WAIT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.telemetry.health import (
    HealthEngine,
    HealthReport,
    HealthRule,
    HealthWindow,
    default_rules,
    hardening_rules,
)
from repro.telemetry.recorder import (
    BUNDLE_FORMAT,
    TRIGGER_EVENTS,
    FlightRecorder,
    load_bundle,
)
from repro.telemetry.timeseries import (
    DEFAULT_MAX_BUCKETS,
    SERIES_FORMAT,
    MetricSeries,
    SeriesSampler,
    SeriesSet,
    sparkline,
)
from repro.telemetry.trace import (
    DEFAULT_MAX_TRACES,
    ProbeTrace,
    ProbeTracer,
    TraceSpecError,
)

__all__ = [
    "BUNDLE_FORMAT",
    "CampaignIdAllocator",
    "Counter",
    "DEFAULT_MAX_BUCKETS",
    "DEFAULT_MAX_EVENTS",
    "DEFAULT_MAX_TRACES",
    "EventLog",
    "FlightRecorder",
    "Gauge",
    "HOP_BUCKETS",
    "HealthEngine",
    "HealthReport",
    "HealthRule",
    "HealthWindow",
    "Histogram",
    "MetricSeries",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "ProbeTrace",
    "ProbeTracer",
    "SERIES_FORMAT",
    "SeriesSampler",
    "SeriesSet",
    "TRIGGER_EVENTS",
    "TraceSpecError",
    "WAIT_BUCKETS",
    "WorkerEventBuffer",
    "default_rules",
    "hardening_rules",
    "load_bundle",
    "make_campaign_id",
    "sparkline",
]
