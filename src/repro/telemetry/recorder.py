"""Always-on bounded flight recorder: the post-mortem artifact.

A campaign that dies — watchdog-killed shard, quarantined checkpoint,
corrupted store, operator SIGTERM — takes its in-memory telemetry with it
unless something persists a tail of it *at the moment of failure*.
:class:`FlightRecorder` is that something: it subscribes to the campaign
:class:`~repro.telemetry.events.EventLog`, keeps bounded deques of the
most recent events, holds live references to the campaign's metrics
registry / merged time series / tracer, and on any **trigger event**
(or an explicit :meth:`dump`) writes everything to one timestamped JSON
bundle.  The bundle is self-describing (``format: repro-flight-recorder``)
and is what ``repro-xmap health <bundle>`` summarises.

Bounded-by-construction: the recorder never grows past its deque caps and
never writes unless triggered, so leaving it attached costs one subscriber
call per event — well inside the 5 % observability overhead budget.

Dump paths are atomic (tmp file + rename) so a bundle is either absent or
complete; a SIGTERM arriving mid-dump cannot leave a torn artifact.
"""

from __future__ import annotations

import contextlib
import json
import os
import signal
import threading
import time
from collections import deque
from typing import Deque, Dict, Iterator, List, Optional

from repro.telemetry.events import EventLog

#: Event types that trip an automatic dump.  ``campaign_failed`` is
#: deliberately absent: the Campaign's failure path dumps explicitly so a
#: failure that *also* tripped one of these does not produce two bundles.
TRIGGER_EVENTS = frozenset({
    "watchdog_timeout",
    "checkpoint_corrupt",
    "store_quarantined",
})

BUNDLE_FORMAT = "repro-flight-recorder"

#: Bounded retention defaults.
DEFAULT_MAX_EVENTS = 512
DEFAULT_MAX_TRACES = 64
DEFAULT_MAX_BUNDLES = 8


class FlightRecorder:
    """Ring-buffered telemetry tail, dumped to a bundle on failure."""

    def __init__(
        self,
        directory: str,
        campaign_id: str = "",
        max_events: int = DEFAULT_MAX_EVENTS,
        max_traces: int = DEFAULT_MAX_TRACES,
        max_bundles: int = DEFAULT_MAX_BUNDLES,
    ) -> None:
        self.directory = directory
        self.campaign_id = campaign_id
        self.events: Deque[Dict[str, object]] = deque(maxlen=max_events)
        self.trace_dicts: Deque[Dict[str, object]] = deque(maxlen=max_traces)
        #: Live references the campaign keeps current; read at dump time.
        self.metrics = None  # MetricsRegistry-compatible or None
        self.series = None  # SeriesSet or None
        self.max_bundles = max_bundles
        #: Paths of bundles written, oldest first.
        self.bundles: List[str] = []
        #: True once a dump failed at the OS level (disk full, I/O error):
        #: the recorder keeps collecting and keeps trying, but callers can
        #: see the post-mortem trail is incomplete.
        self.degraded = False
        self._dumping = False
        self._seq = 0

    # -- wiring ------------------------------------------------------------------

    def attach(self, log: EventLog) -> "FlightRecorder":
        """Subscribe to a campaign log; trigger events dump automatically."""
        if not self.campaign_id:
            self.campaign_id = log.campaign_id
        log.subscribe(self.handle_event)
        return self

    def handle_event(self, record: Dict[str, object]) -> None:
        self.events.append(record)
        if record.get("type") in TRIGGER_EVENTS and not self._dumping:
            self.dump(str(record["type"]))

    def add_traces(self, trace_dicts: List[Dict[str, object]]) -> None:
        self.trace_dicts.extend(trace_dicts)

    # -- dumping -----------------------------------------------------------------

    def bundle_dict(self, reason: str) -> Dict[str, object]:
        data: Dict[str, object] = {
            "format": BUNDLE_FORMAT,
            "version": 1,
            "reason": reason,
            "campaign": self.campaign_id,
            "dumped_at": time.time(),
            "events": list(self.events),
            "traces": list(self.trace_dicts),
        }
        if self.metrics is not None:
            data["metrics"] = self.metrics.to_dict()
        if self.series is not None:
            data["timeseries"] = self.series.to_dict()
        return data

    def dump(self, reason: str) -> str:
        """Write the current tail to a timestamped bundle; returns its path.

        Guarded against re-entry: the act of dumping may itself be
        observed (e.g. a subscriber emitting), and one failure must not
        cascade into a bundle storm.

        Never raises for storage failures: the recorder runs on the
        campaign's *failure* paths, where the disk may be the very thing
        that is broken (ENOSPC, EIO).  A dump that cannot land is recorded
        in the event tail as ``recorder_dump_failed``, :attr:`degraded`
        flips, and ``""`` is returned — losing a post-mortem bundle must
        not turn a degraded campaign into a crashed one.
        """
        self._dumping = True
        try:
            os.makedirs(self.directory, exist_ok=True)
            stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
            name = (
                f"flight-{self.campaign_id or 'scan'}-"
                f"{stamp}-{self._seq:03d}-{reason}.json"
            )
            self._seq += 1
            path = os.path.join(self.directory, name)
            tmp = path + ".tmp"
            with open(tmp, "w") as handle:
                json.dump(self.bundle_dict(reason), handle, sort_keys=True,
                          default=str)
            os.replace(tmp, path)
            self.bundles.append(path)
            while len(self.bundles) > self.max_bundles:
                stale = self.bundles.pop(0)
                with contextlib.suppress(OSError):
                    os.remove(stale)
            return path
        except OSError as exc:
            self.degraded = True
            self.events.append({
                "type": "recorder_dump_failed",
                "reason": reason,
                "error": str(exc),
            })
            if self.metrics is not None:
                self.metrics.counter("recorder_dump_failures").inc()
            with contextlib.suppress(OSError, UnboundLocalError):
                os.remove(tmp)
            return ""
        finally:
            self._dumping = False

    # -- signal scope ------------------------------------------------------------

    @contextlib.contextmanager
    def sigterm_scope(self) -> Iterator[None]:
        """Dump a bundle if SIGTERM lands while the scope is open.

        Installs a chaining handler (the previous handler still runs) for
        the duration of the ``with`` block, then restores it.  Only the
        main thread may install signal handlers; elsewhere this scope is
        a no-op — the recorder's event triggers still work.
        """
        if threading.current_thread() is not threading.main_thread():
            yield
            return
        previous = signal.getsignal(signal.SIGTERM)

        def _on_sigterm(signum: int, frame: object) -> None:
            self.dump("sigterm")
            if callable(previous):
                previous(signum, frame)
            else:
                # Default disposition: restore and re-deliver so the
                # process still terminates the way the sender expects.
                signal.signal(signal.SIGTERM, signal.SIG_DFL)
                os.kill(os.getpid(), signal.SIGTERM)

        try:
            signal.signal(signal.SIGTERM, _on_sigterm)
        except ValueError:  # non-main interpreter contexts
            yield
            return
        try:
            yield
        finally:
            signal.signal(signal.SIGTERM, previous)


def load_bundle(path: str) -> Dict[str, object]:
    """Read and sanity-check one flight-recorder bundle."""
    with open(path) as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or data.get("format") != BUNDLE_FORMAT:
        raise ValueError(f"{path} is not a {BUNDLE_FORMAT} bundle")
    return data
