"""The structured event log: JSON-lines campaign journal.

Where :class:`~repro.telemetry.metrics.MetricsRegistry` answers "how many",
the event log answers "what happened when": every campaign-level state
transition — campaign start/finish, shard completion with its shard
coordinates, retries with backoff, checkpoint writes, worker restores —
lands here as one dict with a monotonic timestamp, a sequence number, and
the campaign id.  :class:`~repro.engine.monitor.ProgressMonitor` is a
subscriber that renders human status lines (or raw JSON with
``--log-json``) over these events instead of synthesising strings of its
own, so the log is the single source of truth.

Worker processes cannot share the campaign's log object; they accumulate
plain event dicts locally (see :mod:`repro.engine.worker`) and the campaign
:meth:`EventLog.ingest`\\ s them when outcomes return, preserving the
worker-side relative timestamps under ``worker_t``.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from collections import deque
from typing import Callable, Deque, Dict, Iterable, Iterator, List, Mapping, Optional

#: Default in-memory retention; the tail stays available for tests/views.
DEFAULT_MAX_EVENTS = 10_000

Subscriber = Callable[[Dict[str, object]], None]


def make_campaign_id() -> str:
    """A short, unique campaign identifier for correlating artifacts."""
    return uuid.uuid4().hex[:12]


class CampaignIdAllocator:
    """Monotonic, collision-safe campaign ids for multi-campaign processes.

    A one-shot CLI run can live with a random :func:`make_campaign_id`,
    but a daemon minting ids for *many* campaigns wants two stronger
    properties: ids are unique **across everything the daemon ever ran**
    (the per-daemon ``scope`` is random, the counter is monotonic), and
    they sort in submission order — so event streams, store snapshots, and
    checkpoint directories from concurrent campaigns never collide and
    stay greppable.  Thread-safe; a restarted daemon restores the counter
    with :meth:`reserve` from its persisted state.
    """

    def __init__(self, scope: Optional[str] = None, start: int = 0) -> None:
        self.scope = scope or uuid.uuid4().hex[:8]
        self._next = int(start)
        self._lock = threading.Lock()

    def next(self) -> str:
        with self._lock:
            n = self._next
            self._next += 1
        return f"{self.scope}-{n:04d}"

    def reserve(self, floor: int) -> None:
        """Never hand out a counter below ``floor`` (restart recovery)."""
        with self._lock:
            self._next = max(self._next, int(floor))

    @property
    def allocated(self) -> int:
        """How many ids have been handed out (the persisted watermark)."""
        with self._lock:
            return self._next


class EventLog:
    """Append-only, bounded journal of structured events."""

    def __init__(
        self,
        campaign_id: Optional[str] = None,
        max_events: int = DEFAULT_MAX_EVENTS,
        sink: Optional[Callable[[str], None]] = None,
        labels: Optional[Mapping[str, object]] = None,
    ) -> None:
        self.campaign_id = campaign_id or make_campaign_id()
        self.events: Deque[Dict[str, object]] = deque(maxlen=max_events)
        self.subscribers: List[Subscriber] = []
        #: Optional line sink receiving each event as a JSON string.
        self.sink = sink
        #: Ambient labels stamped onto every record (a daemon sets e.g.
        #: ``{"tenant": ...}`` so multi-tenant streams stay attributable).
        #: Explicit event fields win; :meth:`ingest` therefore preserves a
        #: tenant label already present on a worker/campaign record instead
        #: of overwriting it with this log's own.
        self.labels: Dict[str, object] = dict(labels or {})
        self._seq = 0
        self._t0 = time.monotonic()
        self.started_at = time.time()  # wall anchor for the monotonic axis

    def subscribe(self, subscriber: Subscriber) -> None:
        self.subscribers.append(subscriber)

    def emit(self, event_type: str, **fields: object) -> Dict[str, object]:
        """Record one event; timestamps are monotonic seconds since log start."""
        record: Dict[str, object] = {
            "seq": self._seq,
            "t": round(time.monotonic() - self._t0, 6),
            "campaign": self.campaign_id,
            "type": event_type,
        }
        record.update(fields)
        for key, value in self.labels.items():
            record.setdefault(key, value)
        self._seq += 1
        self.events.append(record)
        for subscriber in self.subscribers:
            subscriber(record)
        if self.sink is not None:
            self.sink(json.dumps(record, sort_keys=True, default=str))
        return record

    def ingest(self, records: Iterable[Dict[str, object]]) -> None:
        """Re-emit worker-local events under this log's clock and sequence.

        The worker's own relative timestamp is preserved as ``worker_t``
        and its local sequence number as ``worker_seq`` — outcomes arrive
        shard-at-a-time, so the campaign-level ``seq`` serialises shards
        back to back; ``worker_seq`` (plus the shard coordinates on the
        records) is what lets flight-recorder readers reconstruct the true
        cross-shard interleaving.
        """
        for record in records:
            fields = {
                k: v
                for k, v in record.items()
                if k not in ("type", "seq", "t", "campaign")
            }
            if "t" in record:
                fields["worker_t"] = record["t"]
            if "seq" in record:
                fields["worker_seq"] = record["seq"]
            self.emit(str(record.get("type", "worker_event")), **fields)

    # -- views -----------------------------------------------------------------

    def of_type(self, event_type: str) -> List[Dict[str, object]]:
        return [e for e in self.events if e["type"] == event_type]

    def ndjson_lines(self) -> Iterator[str]:
        for event in self.events:
            yield json.dumps(event, sort_keys=True, default=str)

    def write(self, path: str) -> None:
        with open(path, "w") as handle:
            for line in self.ndjson_lines():
                handle.write(line + "\n")

    def __len__(self) -> int:
        return len(self.events)


class WorkerEventBuffer:
    """Picklable-friendly event accumulator for shard workers.

    Mirrors :meth:`EventLog.emit`'s record shape minus seq/campaign (the
    campaign log stamps those at ingest time).
    """

    def __init__(self) -> None:
        self.records: List[Dict[str, object]] = []
        self._t0 = time.monotonic()
        self._seq = 0

    def emit(self, event_type: str, **fields: object) -> None:
        record: Dict[str, object] = {
            "type": event_type,
            "t": round(time.monotonic() - self._t0, 6),
            "seq": self._seq,
        }
        self._seq += 1
        record.update(fields)
        self.records.append(record)

    def record(self, record: Dict[str, object]) -> None:
        """File an externally built record (checkpoint hooks, fault
        journals) under the buffer's own clock and sequence; timestamps
        already on the record are kept."""
        stamped = dict(record)
        stamped.setdefault("t", round(time.monotonic() - self._t0, 6))
        stamped["seq"] = self._seq
        self._seq += 1
        self.records.append(stamped)
