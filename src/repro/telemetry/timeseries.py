"""Virtual-clock time series: periodic snapshots of metric deltas.

:class:`MetricsRegistry` answers "how many, in total"; a week-long scan
needs "how many, *when*" — XMap's one-line-per-second status stream, but
retained and queryable.  :class:`SeriesSampler` closes that gap: it rides
the scan's **virtual clock** (the same axis the pacer and the fault
injector use) and, every ``interval`` virtual seconds, snapshots the
deltas of every counter in the registry into a sparse, ring-bounded
:class:`SeriesSet` — one integer per (metric, labels, bucket), zero-delta
buckets omitted.

**Shard merge is bit-identical.**  The campaign's shards each scan a
strided slice of the probe stream (shard *s* owns global stream positions
``s, s+S, s+2S, …``) on a private clock, so one global wall-clock bucket
of the unsharded scan maps onto *compressed* local windows of each shard.
The sampler therefore samples at ``interval / shards`` on the shard's
local clock: local bucket *k* of shard *s* then contains exactly the
shard's share of global bucket *k*, and summing the per-bucket deltas
across shards reproduces the unsharded series exactly — the same
decomposition argument as the PR 2 metrics merge, extended to the time
axis.  The identity is exact when ``shards`` divides the probes-per-bucket
``rate_pps * interval`` and the scan runs the plain pipeline (no
retransmit/adaptive layer, ``probes_per_target=1``); outside that
envelope the merged series remains a faithful aggregate, just not
bit-for-bit equal to a hypothetical unsharded run.  Pacer counters carry
the same ``shards - 1`` caveat as the PR 2 metrics-merge tests (every
shard's token bucket starts full, so each shard's first probe is
stall-free) — identity is asserted over the scanner's probe/reply
families.

**Tick placement.**  :meth:`SeriesSampler.tick` must cut *between* probes:
the :class:`~repro.core.ratelimit.VirtualPacer` drives it right after the
send timestamp is known but before any of the probe's own counters (its
``pacer_stalls``, its sent/reply accounting) move, so closing bucket
``k-1`` captures the deltas of exactly the probes sent before bucket
``k`` began — on every backend.  Bucket indexing adds a relative epsilon
before flooring so accumulated float error in the token bucket cannot
push a boundary probe into the wrong bucket.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Optional, Tuple

from repro.telemetry.metrics import LabelKey, MetricsRegistry

#: Default ring bound on retained sample buckets per series.
DEFAULT_MAX_BUCKETS = 4096

#: Bundle format tag for exported series documents.
SERIES_FORMAT = "repro-timeseries"

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values, width: Optional[int] = None) -> str:
    """Render numbers as a one-line unicode bar chart (newest on the
    right when ``width`` trims the history)."""
    vals = [float(v) for v in values]
    if width is not None and len(vals) > width:
        vals = vals[-width:]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if hi <= lo:
        return (_SPARK_CHARS[0] if hi <= 0 else _SPARK_CHARS[4]) * len(vals)
    span = hi - lo
    top = len(_SPARK_CHARS) - 1
    return "".join(_SPARK_CHARS[int((v - lo) / span * top)] for v in vals)


class MetricSeries:
    """One metric's sparse bucket→delta map (ints, zero deltas omitted)."""

    __slots__ = ("name", "labels", "points", "truncated")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.points: Dict[int, int] = {}
        #: True once the ring bound evicted old buckets.
        self.truncated = False

    def add(self, bucket: int, value: int, max_buckets: int) -> None:
        points = self.points
        if bucket in points:
            points[bucket] += value
            return
        if len(points) >= max_buckets:
            del points[min(points)]
            self.truncated = True
        points[bucket] = value

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "name": self.name,
            "labels": dict(self.labels),
            "points": [[b, self.points[b]] for b in sorted(self.points)],
        }
        if self.truncated:
            data["truncated"] = True
        return data


class SeriesSet:
    """A collection of :class:`MetricSeries` over one global bucket axis.

    Buckets are indexed on the *campaign* axis: bucket ``b`` covers
    virtual time ``[b * interval, (b+1) * interval)`` of the unsharded
    scan.  Shard-local sets use the same global indices (see the module
    docstring), so :meth:`merge` is a plain per-bucket sum.
    """

    def __init__(
        self, interval: float, max_buckets: int = DEFAULT_MAX_BUCKETS
    ) -> None:
        if interval <= 0:
            raise ValueError("series interval must be positive")
        self.interval = float(interval)
        self.max_buckets = max_buckets
        self._series: Dict[Tuple[str, LabelKey], MetricSeries] = {}

    def record(
        self, name: str, labels: LabelKey, bucket: int, value: int
    ) -> None:
        key = (name, labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = MetricSeries(name, labels)
        series.add(bucket, value, self.max_buckets)

    # -- views -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._series)

    def __iter__(self) -> Iterator[MetricSeries]:
        return iter(self._series.values())

    def get(self, name: str, **labels: object) -> Optional[MetricSeries]:
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        return self._series.get(key)

    def named(self, name: str) -> Dict[int, int]:
        """One metric family summed across label variants, bucket→value."""
        out: Dict[int, int] = {}
        for (n, _labels), series in self._series.items():
            if n != name:
                continue
            for bucket, value in series.points.items():
                out[bucket] = out.get(bucket, 0) + value
        return out

    def bucket_range(self) -> Optional[Tuple[int, int]]:
        """(lowest, highest) recorded bucket index, or None when empty."""
        lo: Optional[int] = None
        hi: Optional[int] = None
        for series in self._series.values():
            if not series.points:
                continue
            s_lo, s_hi = min(series.points), max(series.points)
            lo = s_lo if lo is None else min(lo, s_lo)
            hi = s_hi if hi is None else max(hi, s_hi)
        if lo is None or hi is None:
            return None
        return lo, hi

    def t_of(self, bucket: int) -> float:
        """Virtual start time of a bucket on the campaign axis."""
        return bucket * self.interval

    # -- merge -----------------------------------------------------------------

    def merge(self, other: "SeriesSet") -> "SeriesSet":
        """Sum another set's per-bucket deltas into this one (in place)."""
        if other.interval != self.interval:
            raise ValueError(
                f"cannot merge series sampled at {other.interval}s into "
                f"series sampled at {self.interval}s"
            )
        for key, series in other._series.items():
            mine = self._series.get(key)
            if mine is None:
                mine = self._series[key] = MetricSeries(series.name,
                                                        series.labels)
            for bucket in sorted(series.points):
                mine.add(bucket, series.points[bucket], self.max_buckets)
            mine.truncated = mine.truncated or series.truncated
        return self

    # -- export ----------------------------------------------------------------

    def series_dicts(self) -> List[Dict[str, object]]:
        """Deterministically ordered JSON-ready series payloads."""
        return [
            self._series[key].to_dict() for key in sorted(self._series)
        ]

    def to_dict(self) -> Dict[str, object]:
        return {
            "format": SERIES_FORMAT,
            "version": 1,
            "interval": self.interval,
            "series": self.series_dicts(),
        }

    def ndjson_lines(self) -> Iterator[str]:
        """One line per series, each carrying the interval (streamable)."""
        for payload in self.series_dicts():
            payload["interval"] = self.interval
            yield json.dumps(payload, sort_keys=True)

    @classmethod
    def from_dict(
        cls, data: Dict[str, object],
        max_buckets: int = DEFAULT_MAX_BUCKETS,
    ) -> "SeriesSet":
        out = cls(float(data["interval"]), max_buckets=max_buckets)  # type: ignore[arg-type]
        for payload in data.get("series", ()):  # type: ignore[union-attr]
            labels = tuple(sorted(
                (str(k), str(v))
                for k, v in payload.get("labels", {}).items()
            ))
            series = MetricSeries(str(payload["name"]), labels)
            series.points = {
                int(b): int(v) for b, v in payload.get("points", ())
            }
            series.truncated = bool(payload.get("truncated", False))
            out._series[(series.name, labels)] = series
        return out


class SeriesSampler:
    """Snapshots a registry's counter deltas into per-bucket series.

    One sampler per scan.  :meth:`start` pins the bucket origin to the
    scan's starting clock (so shards sharing a prebuilt network — whose
    clock keeps running across serial shards — still index from zero);
    the pacer calls :meth:`tick` with each probe's send timestamp, and
    the scanner calls :meth:`finish` once to close the final partial
    bucket.  Only counters are sampled: they delta cleanly and merge by
    summation; gauges and histograms stay point-in-time in the registry.
    """

    __slots__ = ("registry", "interval", "shards", "local_interval",
                 "series", "boundary", "ticks", "_eps", "_last", "_bucket",
                 "_origin", "_started")

    def __init__(
        self,
        registry: MetricsRegistry,
        interval: float,
        shards: int = 1,
        max_buckets: int = DEFAULT_MAX_BUCKETS,
    ) -> None:
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.registry = registry
        self.interval = float(interval)
        self.shards = shards
        #: Shard-local sampling period; global bucket k == local bucket k.
        self.local_interval = self.interval / shards
        #: Float guard: a boundary probe whose accumulated token-bucket
        #: rounding lands an ulp short of k*interval still buckets as k.
        self._eps = self.local_interval * 1e-6
        self.series = SeriesSet(self.interval, max_buckets=max_buckets)
        self._last: Dict[Tuple[str, LabelKey], int] = {}
        self._bucket = 0
        self._origin = 0.0
        self._started = False
        #: Next absolute clock value at which :meth:`tick` closes a bucket
        #: (inf until started / after finish) — the pacer's one compare.
        self.boundary = float("inf")
        self.ticks = 0

    def start(self, clock: float) -> None:
        """Pin the bucket origin to the scan's starting clock (idempotent)."""
        if self._started:
            return
        self._started = True
        self._origin = clock
        self._bucket = 0
        self.boundary = clock + self.local_interval - self._eps

    def tick(self, clock: float) -> None:
        """Close finished buckets; ``clock`` is the next probe's send time."""
        bucket = int((clock - self._origin + self._eps) / self.local_interval)
        if bucket > self._bucket:
            self._close(self._bucket)
            self._bucket = bucket
            self.boundary = (
                self._origin + (bucket + 1) * self.local_interval - self._eps
            )

    def _close(self, bucket: int) -> None:
        last = self._last
        record = self.series.record
        for key, counter in self.registry.counter_items():
            value = counter.value
            prev = last.get(key, 0)
            if value != prev:
                record(key[0], key[1], bucket, value - prev)
                last[key] = value
        self.ticks += 1

    def finish(self, clock: Optional[float] = None) -> SeriesSet:
        """Close the final partial bucket and detach; returns the series.

        Trailing deltas belong to the bucket that was open while they
        accrued, so ``clock`` (accepted for symmetry) is not used to
        advance the bucket index.
        """
        if self._started:
            self._close(self._bucket)
            self.boundary = float("inf")
        return self.series

    def to_dict(self) -> Dict[str, object]:
        return self.series.to_dict()
