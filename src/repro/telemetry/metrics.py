"""The process-local metrics registry.

ZMap-lineage scanners live and die by their telemetry: the one-line-per-
second status output, the ``--metadata-file`` counters, the per-ICMP-type
reply breakdown.  :class:`MetricsRegistry` is the reproduction's equivalent
substrate — a flat namespace of labelled **counters**, **gauges**, and
**fixed-bucket histograms** that every layer (scanner, pacer, blocklist,
forwarding engine, campaign) writes into.

Registries are cheap, single-threaded objects: each shard worker owns one
and the campaign folds them together with :meth:`MetricsRegistry.merge`,
exactly the way :meth:`repro.core.stats.ScanStats.merge` folds shard
counters — counters sum, gauges take the max, histograms add bucket-wise.
Merging the four shards of one logical scan therefore yields bit-identical
probe/reply/veto counters to the unsharded scan (asserted by
``tests/test_telemetry.py``).

Export is NDJSON (one metric per line, ``kind``/``name``/``labels``/value
fields) or a plain dict, both invertible, so snapshots survive process
pools and land in ``--metrics-out`` files and CI artifacts.

The :data:`NULL_REGISTRY` singleton is a no-op implementation of the same
interface; passing it (or ``ScanConfig.collect_metrics=False``) removes
all collection cost from the hot path except the no-op calls themselves.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

LabelKey = Tuple[Tuple[str, str], ...]

#: Default histogram buckets for hop counts (virtual latency proxy: one
#: forwarding hop == one tick of simulator work).
HOP_BUCKETS = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 32.0, 64.0, 256.0)

#: Default buckets for virtual pacer waits (seconds of virtual clock).
WAIT_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0)


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time float; merge takes the maximum across shards."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram (cumulative-free: one count per bucket).

    ``bounds`` are inclusive upper bounds; observations above the last
    bound land in the overflow bucket, so ``len(counts) == len(bounds)+1``.
    Merging requires identical bounds.
    """

    __slots__ = ("bounds", "counts", "count", "sum", "_last")

    def __init__(self, bounds: Sequence[float]) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be a sorted, non-empty sequence")
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        #: (value, bucket) of the previous observation — scan telemetry is
        #: highly repetitive (constant pacer waits, a handful of distinct
        #: hop counts), so this skips the bisect on the common path.
        self._last: Tuple[Optional[float], int] = (None, 0)

    def observe(self, value: float) -> None:
        last_value, index = self._last
        if value != last_value:
            index = bisect_left(self.bounds, value)
            self._last = (value, index)
        self.counts[index] += 1
        self.count += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by linear interpolation in-bucket.

        **Bucket-resolution caveat**: all that is known about an
        observation is its bucket, so the estimate interpolates the rank
        uniformly across the bucket's ``(lower, upper]`` edge span — the
        answer is only ever as precise as the bucket width, and repeated
        identical observations smear across their bucket instead of
        collapsing onto their true value.  Bucket 0's lower edge is taken
        as 0 (scan telemetry observes non-negative values); ranks landing
        in the overflow bucket clamp to the last finite bound.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        lower = 0.0
        for upper, bucket_count in zip(self.bounds, self.counts):
            if bucket_count:
                if cumulative + bucket_count >= rank:
                    fraction = (rank - cumulative) / bucket_count
                    return lower + (upper - lower) * fraction
                cumulative += bucket_count
            lower = upper
        return self.bounds[-1]


class _NullCounter:
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0


class MetricsRegistry:
    """Get-or-create registry of labelled metrics.

    Metrics are identified by ``(name, labels)``; lookups cache the metric
    object, so hot loops should hoist ``registry.counter(...)`` out of the
    loop and call ``.inc()`` on the returned object.
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    # -- get-or-create ---------------------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        key = (name, _label_key(labels))
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter()
        return metric

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = (name, _label_key(labels))
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge()
        return metric

    def histogram(
        self, name: str, bounds: Sequence[float] = HOP_BUCKETS, **labels: object
    ) -> Histogram:
        key = (name, _label_key(labels))
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram(bounds)
        return metric

    # -- read access -----------------------------------------------------------

    def value(self, name: str, **labels: object) -> float:
        """The current value of a counter or gauge (0 if never touched)."""
        key = (name, _label_key(labels))
        if key in self._counters:
            return self._counters[key].value
        if key in self._gauges:
            return self._gauges[key].value
        return 0

    def counters_named(self, name: str) -> Dict[LabelKey, int]:
        """All label-variants of one counter family, for reply-mix views."""
        return {
            labels: metric.value
            for (n, labels), metric in self._counters.items()
            if n == name
        }

    def counter_items(self):
        """Live ``((name, labels), Counter)`` view — what the time-series
        sampler walks to delta every counter at a bucket close."""
        return self._counters.items()

    def histograms_named(self, name: str) -> Dict[LabelKey, Histogram]:
        """All label-variants of one histogram family (latency summaries)."""
        return {
            labels: metric
            for (n, labels), metric in self._histograms.items()
            if n == name
        }

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # -- merge ------------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry into this one (in place).

        Counters sum, gauges take the max (e.g. deepest stream position
        across shards), histograms add bucket-wise; a bucket-bounds
        mismatch on the same name+labels is a programming error and raises.
        """
        for key, counter in other._counters.items():
            mine = self._counters.get(key)
            if mine is None:
                mine = self._counters[key] = Counter()
            mine.value += counter.value
        for key, gauge in other._gauges.items():
            mine_g = self._gauges.get(key)
            if mine_g is None:
                mine_g = self._gauges[key] = Gauge()
            mine_g.value = max(mine_g.value, gauge.value)
        for key, hist in other._histograms.items():
            mine_h = self._histograms.get(key)
            if mine_h is None:
                mine_h = self._histograms[key] = Histogram(hist.bounds)
            if mine_h.bounds != hist.bounds:
                raise ValueError(
                    f"histogram {key[0]!r} bucket bounds differ between "
                    "registries; cannot merge"
                )
            for i, c in enumerate(hist.counts):
                mine_h.counts[i] += c
            mine_h.count += hist.count
            mine_h.sum += hist.sum
        return self

    def merge_dict(self, data: Optional[Dict[str, object]]) -> "MetricsRegistry":
        """Merge an exported snapshot (what pool workers ship back)."""
        if data:
            self.merge(MetricsRegistry.from_dict(data))
        return self

    # -- export -----------------------------------------------------------------

    def metric_dicts(self) -> Iterator[Dict[str, object]]:
        """One JSON-ready dict per metric (the NDJSON line payloads)."""
        for (name, labels), counter in sorted(self._counters.items()):
            yield {
                "kind": "counter",
                "name": name,
                "labels": dict(labels),
                "value": counter.value,
            }
        for (name, labels), gauge in sorted(self._gauges.items()):
            yield {
                "kind": "gauge",
                "name": name,
                "labels": dict(labels),
                "value": gauge.value,
            }
        for (name, labels), hist in sorted(self._histograms.items()):
            yield {
                "kind": "histogram",
                "name": name,
                "labels": dict(labels),
                "bounds": list(hist.bounds),
                "counts": list(hist.counts),
                "count": hist.count,
                "sum": hist.sum,
            }

    def to_dict(self) -> Dict[str, object]:
        return {"metrics": list(self.metric_dicts())}

    def ndjson_lines(self) -> Iterator[str]:
        for metric in self.metric_dicts():
            yield json.dumps(metric, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MetricsRegistry":
        registry = cls()
        for metric in data.get("metrics", ()):  # type: ignore[union-attr]
            name = str(metric["name"])
            labels = {str(k): v for k, v in metric.get("labels", {}).items()}
            kind = metric.get("kind")
            if kind == "counter":
                registry.counter(name, **labels).value = int(metric["value"])
            elif kind == "gauge":
                registry.gauge(name, **labels).value = float(metric["value"])
            elif kind == "histogram":
                hist = registry.histogram(name, bounds=metric["bounds"], **labels)
                hist.counts = [int(c) for c in metric["counts"]]
                hist.count = int(metric["count"])
                hist.sum = float(metric["sum"])
            else:
                raise ValueError(f"unknown metric kind {kind!r}")
        return registry


class NullRegistry:
    """No-op registry: same interface, zero collection."""

    enabled = False

    _COUNTER = _NullCounter()
    _GAUGE = _NullGauge()
    _HISTOGRAM = _NullHistogram()

    def counter(self, name: str, **labels: object) -> _NullCounter:
        return self._COUNTER

    def gauge(self, name: str, **labels: object) -> _NullGauge:
        return self._GAUGE

    def histogram(
        self, name: str, bounds: Sequence[float] = HOP_BUCKETS, **labels: object
    ) -> _NullHistogram:
        return self._HISTOGRAM

    def value(self, name: str, **labels: object) -> float:
        return 0

    def counter_items(self):
        return ()

    def to_dict(self) -> Dict[str, object]:
        return {"metrics": []}

    def ndjson_lines(self) -> Iterator[str]:
        return iter(())

    def __len__(self) -> int:
        return 0


#: Shared no-op registry for telemetry-off scans.
NULL_REGISTRY = NullRegistry()
