"""Span-based probe-lifecycle tracing.

A :class:`ProbeTrace` records one probe's full journey in timestamped
events: generated → blocklist check → paced send → per-hop forwarding
decisions inside the simulator (longest-prefix match taken, hop-limit
decrement, ICMPv6 error generation/suppression) → validation verdict.
Timestamps are virtual-clock readings, so a trace lines up with the pacer's
timeline and device-side error limiters.

Tracing is off by default and sits entirely behind a sampling knob so the
fast path stays fast: :class:`ProbeTracer` decides per probe whether to
open a span (``off`` / ``all`` / every-Nth / address predicate), and the
simulator only emits hop events when :attr:`repro.net.network.Network.
active_trace` is set — a single ``is not None`` check per hop otherwise.

Spec strings (``ScanConfig.trace``, ``--trace``): ``"off"``, ``"all"``,
``"sample:N"`` (every Nth generated probe).  Predicates are programmatic
only (``ProbeTracer(predicate=lambda addr: ...)``) since a callable cannot
ride in a picklable config.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

#: Default cap on retained traces; completed spans beyond it evict oldest.
DEFAULT_MAX_TRACES = 256


class TraceSpecError(ValueError):
    """An unparseable trace sampling spec."""


class ProbeTrace:
    """One probe's lifecycle span: an ordered list of timestamped events."""

    __slots__ = ("probe_index", "target", "events")

    def __init__(self, probe_index: int, target: str) -> None:
        self.probe_index = probe_index
        self.target = target
        self.events: List[Dict[str, object]] = []

    def add(self, name: str, clock: float, **fields: object) -> None:
        event: Dict[str, object] = {"event": name, "t": clock}
        if fields:
            event.update(fields)
        self.events.append(event)

    # -- views -----------------------------------------------------------------

    def hops(self) -> List[Dict[str, object]]:
        """The per-hop forwarding events, in traversal order."""
        return [e for e in self.events if e["event"] == "hop"]

    def path(self) -> List[str]:
        """Device names the probe (and its replies) traversed."""
        return [str(e["device"]) for e in self.hops()]

    def verdict(self) -> Optional[str]:
        for event in reversed(self.events):
            if event["event"] == "verdict":
                return str(event["outcome"])
        return None

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": "trace",
            "probe_index": self.probe_index,
            "target": self.target,
            "events": list(self.events),
        }


class ProbeTracer:
    """Decides which probes get a span and retains the completed spans."""

    def __init__(
        self,
        mode: str = "off",
        every: int = 0,
        predicate: Optional[Callable[[object], bool]] = None,
        max_traces: int = DEFAULT_MAX_TRACES,
    ) -> None:
        if mode not in ("off", "all", "sample"):
            raise TraceSpecError(f"unknown trace mode {mode!r}")
        if mode == "sample" and every < 1:
            raise TraceSpecError("sample mode needs a positive interval")
        self.mode = mode
        self.every = every
        self.predicate = predicate
        self.traces: Deque[ProbeTrace] = deque(maxlen=max_traces)
        self._generated = 0

    @classmethod
    def from_spec(cls, spec: str, max_traces: int = DEFAULT_MAX_TRACES) -> "ProbeTracer":
        """Parse ``"off"`` / ``"all"`` / ``"sample:N"``."""
        spec = (spec or "off").strip().lower()
        if spec == "off":
            return cls(mode="off", max_traces=max_traces)
        if spec == "all":
            return cls(mode="all", max_traces=max_traces)
        if spec.startswith("sample:"):
            try:
                every = int(spec.split(":", 1)[1])
            except ValueError as exc:
                raise TraceSpecError(f"bad trace spec {spec!r}") from exc
            if every < 1:
                raise TraceSpecError(f"bad trace spec {spec!r}: interval must be >= 1")
            return cls(mode="sample", every=every, max_traces=max_traces)
        raise TraceSpecError(
            f"bad trace spec {spec!r} (expected off, all, or sample:N)"
        )

    @property
    def enabled(self) -> bool:
        return self.mode != "off" or self.predicate is not None

    def begin(self, target: object) -> Optional[ProbeTrace]:
        """Open a span for this probe if the sampling knob selects it."""
        index = self._generated
        self._generated += 1
        if self.predicate is not None and self.predicate(target):
            return ProbeTrace(index, str(target))
        if self.mode == "all":
            return ProbeTrace(index, str(target))
        if self.mode == "sample" and index % self.every == 0:
            return ProbeTrace(index, str(target))
        return None

    def finish(self, trace: ProbeTrace) -> None:
        self.traces.append(trace)

    def to_dicts(self) -> List[Dict[str, object]]:
        return [trace.to_dict() for trace in self.traces]

    @classmethod
    def from_dicts(cls, dicts: List[Dict[str, object]]) -> List[ProbeTrace]:
        """Rehydrate spans shipped back from pool workers."""
        traces = []
        for data in dicts:
            trace = ProbeTrace(int(data["probe_index"]), str(data["target"]))
            trace.events = list(data["events"])  # type: ignore[arg-type]
            traces.append(trace)
        return traces
