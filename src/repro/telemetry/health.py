"""Declarative scan-health rules over metric time series.

A long-running campaign degrades in recognisable shapes: a loss burst
spikes the probes-minus-replies delta, a rate-limited ISP collapses the
hit rate, a starved pacer halves the send rate, a hung shard flatlines to
zero.  :class:`HealthEngine` evaluates a list of :class:`HealthRule`\\ s
against a :class:`~repro.telemetry.timeseries.SeriesSet` bucket by bucket
and coalesces the firing buckets into :class:`HealthWindow`\\ s — exactly
the artifact an operator (or the scan-as-a-service scheduler the ROADMAP
wants) needs to decide "back off", "retry", or "page someone".

Ground truth: the :mod:`repro.faults` injector journals every fault's
virtual-clock window, so a chaos run gives the detector a labelled
dataset — the alignment tests assert the collapse windows the engine
reports equal the injected windows bucket for bucket.

Rule kinds:

* ``threshold`` — fire where ``signal OP threshold`` (missing buckets are
  skipped for ratio signals, which are undefined with nothing sent);
* ``spike``     — rate-of-change upward: fire where the signal exceeds
  ``threshold ×`` the mean of the trailing ``baseline_buckets`` values
  (and an absolute ``min_value`` floor, so an all-zero history cannot
  fire on noise);
* ``drop``      — rate-of-change downward: fire where the signal falls
  below ``threshold ×`` the trailing mean; the final bucket is exempt
  (it is a partial bucket and always under-counts);
* ``stall``     — fire where the signal is zero *strictly inside* its own
  active span (leading/trailing silence is not a stall).

Everything is derived from counters, so verdicts are as deterministic as
the scan itself: same seed + same schedule = same windows, on every
backend.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.telemetry.events import EventLog
from repro.telemetry.timeseries import SeriesSet

_OPS = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

#: Signals derived from the scanner's counter families; any other signal
#: name resolves to that raw counter family summed across labels.
DERIVED_SIGNALS = (
    "sent", "validated", "hit_rate", "loss", "loss_rate", "stalls",
)


@dataclass(frozen=True)
class HealthRule:
    """One declarative detector over one signal."""

    name: str
    signal: str
    kind: str = "threshold"  # threshold | spike | drop | stall
    op: str = "<"            # threshold rules only
    threshold: float = 0.0
    #: Consecutive firing buckets required before a window is reported.
    min_buckets: int = 1
    #: Trailing window for spike/drop baselines.
    baseline_buckets: int = 4
    #: Absolute floor a spike must reach (guards all-zero baselines).
    min_value: float = 0.0
    severity: str = "warning"

    def __post_init__(self) -> None:
        if self.kind not in ("threshold", "spike", "drop", "stall"):
            raise ValueError(f"unknown rule kind {self.kind!r}")
        if self.kind == "threshold" and self.op not in _OPS:
            raise ValueError(f"unknown threshold op {self.op!r}")
        if self.min_buckets < 1 or self.baseline_buckets < 1:
            raise ValueError("min_buckets/baseline_buckets must be >= 1")

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name, "signal": self.signal, "kind": self.kind,
            "op": self.op, "threshold": self.threshold,
            "min_buckets": self.min_buckets,
            "baseline_buckets": self.baseline_buckets,
            "min_value": self.min_value, "severity": self.severity,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "HealthRule":
        return cls(**{str(k): v for k, v in data.items()})  # type: ignore[arg-type]


def default_rules() -> List[HealthRule]:
    """The stock SLO set: the four degradations the ISSUE names."""
    return [
        # Rate-limited ISP / loss window: most probes in a bucket go
        # unanswered.  In the simulator's periphery censuses every target
        # answers, so a healthy bucket sits at hit rate 1.0.
        HealthRule("hit-rate-collapse", signal="hit_rate",
                   kind="threshold", op="<", threshold=0.5,
                   severity="critical"),
        # Probe-loss spike: sent-minus-validated jumps versus its recent
        # history (min_value keeps a loss-free scan from firing on 0 > 0).
        HealthRule("probe-loss-spike", signal="loss", kind="spike",
                   threshold=3.0, min_value=1.0, severity="warning"),
        # Pacer starvation / AIMD clampdown: probes emitted per bucket
        # fall to less than half the trailing mean.
        HealthRule("pacer-starvation", signal="sent", kind="drop",
                   threshold=0.5, severity="warning"),
        # Shard stall: a whole bucket with zero sends inside the scan's
        # active span (the clock advanced, the scanner did not).
        HealthRule("shard-stall", signal="sent", kind="stall",
                   severity="critical"),
    ]


def hardening_rules() -> List[HealthRule]:
    """Detectors over the host-fault / supervision counter families.

    Chaos campaigns (:mod:`repro.faults` host domain, the engine
    supervisor) journal their interventions as plain counters, so the
    same bucket-by-bucket machinery that spots organic degradation also
    localises *injected* storage trouble on the virtual-clock axis.
    Compose with :func:`default_rules` — these fire only when the
    corresponding counters exist, so they are free on clean runs.
    """
    return [
        # Any bucket where the host-fault shim failed/tore/crashed a
        # storage op: the labelled window ground truth for chaos runs.
        HealthRule("host-fault-pressure", signal="host_faults_injected",
                   kind="threshold", op=">=", threshold=1.0,
                   severity="warning"),
        # The supervisor parked a shard: partial results were committed
        # and an operator decision (retry the parked shards?) is pending.
        HealthRule("shard-degradation",
                   signal="supervisor_shards_degraded",
                   kind="threshold", op=">=", threshold=1.0,
                   severity="critical"),
        # The store's manifest-directory fsync failed: commits remain
        # atomic but durability of the *rename* is no longer guaranteed.
        HealthRule("store-fsync-failure", signal="store_fsync_failures",
                   kind="threshold", op=">=", threshold=1.0,
                   severity="critical"),
        # The flight recorder could not land a post-mortem bundle — the
        # disk is failing underneath the failure-path telemetry itself.
        HealthRule("recorder-degraded", signal="recorder_dump_failures",
                   kind="threshold", op=">=", threshold=1.0,
                   severity="warning"),
    ]


@dataclass
class HealthWindow:
    """A coalesced run of buckets where one rule fired."""

    rule: str
    severity: str
    start_bucket: int
    end_bucket: int  # exclusive
    t_start: float
    t_end: float
    #: The most extreme signal value observed inside the window.
    value: float = 0.0

    @property
    def buckets(self) -> Tuple[int, int]:
        return (self.start_bucket, self.end_bucket)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule, "severity": self.severity,
            "start_bucket": self.start_bucket,
            "end_bucket": self.end_bucket,
            "t_start": self.t_start, "t_end": self.t_end,
            "value": self.value,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "HealthWindow":
        return cls(**{str(k): v for k, v in data.items()})  # type: ignore[arg-type]


@dataclass
class HealthReport:
    """Every window every rule produced over one series set."""

    windows: List[HealthWindow] = field(default_factory=list)
    rules: List[str] = field(default_factory=list)
    interval: float = 0.0
    buckets: Optional[Tuple[int, int]] = None

    @property
    def degraded(self) -> bool:
        return bool(self.windows)

    def windows_for(self, rule: str) -> List[HealthWindow]:
        return [w for w in self.windows if w.rule == rule]

    def emit(self, events: EventLog) -> None:
        """Journal the verdicts: one ``health_degraded`` per window start,
        one ``health_recovered`` per window end, in time order."""
        for window in self.windows:
            events.emit(
                "health_degraded", rule=window.rule,
                severity=window.severity, t_start=window.t_start,
                t_end=window.t_end, start_bucket=window.start_bucket,
                end_bucket=window.end_bucket, value=window.value,
            )
        for window in self.windows:
            events.emit(
                "health_recovered", rule=window.rule,
                t_end=window.t_end, end_bucket=window.end_bucket,
            )

    def summary(self) -> str:
        if not self.windows:
            span = ""
            if self.buckets is not None:
                lo, hi = self.buckets
                span = f" over buckets {lo}..{hi}"
            return f"healthy: {len(self.rules)} rule(s), 0 window(s){span}"
        lines = [
            f"degraded: {len(self.windows)} window(s) "
            f"from {len(self.rules)} rule(s)"
        ]
        for w in self.windows:
            lines.append(
                f"  [{w.severity:<8}] {w.rule:<20} "
                f"t=[{w.t_start:.6g}, {w.t_end:.6g}) "
                f"buckets [{w.start_bucket}, {w.end_bucket}) "
                f"value {w.value:.4g}"
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "windows": [w.to_dict() for w in self.windows],
            "rules": list(self.rules),
            "interval": self.interval,
            "buckets": list(self.buckets) if self.buckets else None,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "HealthReport":
        buckets = data.get("buckets")
        return cls(
            windows=[
                HealthWindow.from_dict(w)  # type: ignore[arg-type]
                for w in data.get("windows", ())  # type: ignore[union-attr]
            ],
            rules=[str(r) for r in data.get("rules", ())],  # type: ignore[union-attr]
            interval=float(data.get("interval", 0.0)),  # type: ignore[arg-type]
            buckets=tuple(buckets) if buckets else None,  # type: ignore[arg-type]
        )


class HealthEngine:
    """Evaluates rules against a series set, post-hoc or between waves."""

    def __init__(self, rules: Optional[Sequence[HealthRule]] = None) -> None:
        self.rules: List[HealthRule] = (
            list(rules) if rules is not None else default_rules()
        )

    # -- signal resolution -------------------------------------------------------

    @staticmethod
    def _signal_values(
        rule: HealthRule, series: SeriesSet, lo: int, hi: int
    ) -> List[Optional[float]]:
        """The rule's signal per bucket over [lo, hi]; None = undefined."""
        sent = series.named("scanner_probes_sent")
        name = rule.signal
        if name == "sent":
            return [float(sent.get(b, 0)) for b in range(lo, hi + 1)]
        if name == "validated":
            got = series.named("scanner_replies_validated")
            return [float(got.get(b, 0)) for b in range(lo, hi + 1)]
        if name in ("hit_rate", "loss", "loss_rate"):
            got = series.named("scanner_replies_validated")
            out: List[Optional[float]] = []
            for b in range(lo, hi + 1):
                s = sent.get(b, 0)
                v = got.get(b, 0)
                if name == "loss":
                    out.append(float(max(0, s - v)))
                elif s == 0:
                    out.append(None)  # ratios are undefined with no sends
                elif name == "hit_rate":
                    out.append(v / s)
                else:
                    out.append(max(0, s - v) / s)
            return out
        if name == "stalls":
            stalls = series.named("pacer_stalls")
            return [float(stalls.get(b, 0)) for b in range(lo, hi + 1)]
        raw = series.named(name)
        return [float(raw.get(b, 0)) for b in range(lo, hi + 1)]

    # -- evaluation --------------------------------------------------------------

    def evaluate(self, series: SeriesSet) -> HealthReport:
        report = HealthReport(
            rules=[rule.name for rule in self.rules],
            interval=series.interval,
            buckets=series.bucket_range(),
        )
        if report.buckets is None:
            return report
        lo, hi = report.buckets
        for rule in self.rules:
            values = self._signal_values(rule, series, lo, hi)
            fired = self._fired(rule, values)
            report.windows.extend(
                self._coalesce(rule, fired, values, series, lo)
            )
        report.windows.sort(key=lambda w: (w.t_start, w.rule))
        return report

    @staticmethod
    def _trailing_mean(
        values: List[Optional[float]], index: int, width: int
    ) -> Optional[float]:
        window = [v for v in values[max(0, index - width):index]
                  if v is not None]
        if not window:
            return None
        return sum(window) / len(window)

    def _fired(
        self, rule: HealthRule, values: List[Optional[float]]
    ) -> List[bool]:
        n = len(values)
        fired = [False] * n
        if rule.kind == "threshold":
            op = _OPS[rule.op]
            for i, v in enumerate(values):
                if v is not None and op(v, rule.threshold):
                    fired[i] = True
        elif rule.kind == "spike":
            for i, v in enumerate(values):
                if v is None or v < rule.min_value:
                    continue
                baseline = self._trailing_mean(values, i,
                                               rule.baseline_buckets) or 0.0
                if v > rule.threshold * baseline:
                    fired[i] = True
        elif rule.kind == "drop":
            for i, v in enumerate(values[:-1]):  # final bucket is partial
                if v is None:
                    continue
                baseline = self._trailing_mean(values, i,
                                               rule.baseline_buckets)
                if baseline and v < rule.threshold * baseline:
                    fired[i] = True
        else:  # stall: zero strictly inside the signal's own active span
            active = [i for i, v in enumerate(values) if v]
            if active:
                first, last = active[0], active[-1]
                for i in range(first + 1, last):
                    if not values[i]:
                        fired[i] = True
        return fired

    def _coalesce(
        self,
        rule: HealthRule,
        fired: List[bool],
        values: List[Optional[float]],
        series: SeriesSet,
        lo: int,
    ) -> List[HealthWindow]:
        windows: List[HealthWindow] = []
        run_start: Optional[int] = None
        worst = max if rule.kind in ("spike", "stall") or rule.op in (
            ">", ">=") else min
        for i in range(len(fired) + 1):
            firing = i < len(fired) and fired[i]
            if firing and run_start is None:
                run_start = i
            elif not firing and run_start is not None:
                if i - run_start >= rule.min_buckets:
                    observed = [
                        v for v in values[run_start:i] if v is not None
                    ]
                    windows.append(HealthWindow(
                        rule=rule.name,
                        severity=rule.severity,
                        start_bucket=lo + run_start,
                        end_bucket=lo + i,
                        t_start=series.t_of(lo + run_start),
                        t_end=series.t_of(lo + i),
                        value=worst(observed) if observed else 0.0,
                    ))
                run_start = None
        return windows
