"""Aliased-prefix detection.

Table II reports "unique, **non-aliased** last hop IPv6 addresses": a prefix
is *aliased* when some middlebox answers for every address inside it (CDN
front ends, some firewalls), which would let a single device masquerade as
millions of discoveries.  The standard test (Gasser et al., the hitlist work
the paper builds on) probes a handful of pseudorandom addresses per prefix —
a real periphery answers for *none* of them (they don't exist), while an
aliased prefix answers for *all* of them.

:class:`AliasedResponder` is the corresponding simulator device, used to
inject aliasing into test populations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Set

from repro.core.probes.base import ReplyKind
from repro.core.probes.icmp import IcmpEchoProbe
from repro.core.validate import Validator
from repro.net.addr import IPv6Prefix
from repro.net.device import Device, Host, ReceiveResult
from repro.net.network import Network
from repro.core.siphash import keyed_uint


class AliasedResponder(Host):
    """A middlebox that answers echo probes for its whole prefix."""

    def __init__(self, name: str, alias_prefix: IPv6Prefix, **kwargs) -> None:
        super().__init__(name, alias_prefix.address(1), **kwargs)
        self.alias_prefix = alias_prefix

    def receive(self, packet, network: "Network") -> ReceiveResult:
        if self.alias_prefix.contains(packet.dst):
            return ReceiveResult(replies=self._deliver_local(packet, network))
        return super().receive(packet, network)


@dataclass
class AliasCheck:
    """Outcome of probing one prefix for aliasing."""

    prefix: IPv6Prefix
    probes: int
    echo_replies: int

    @property
    def aliased(self) -> bool:
        """Aliased iff every pseudorandom probe drew an echo reply."""
        return self.probes > 0 and self.echo_replies == self.probes


def check_aliased(
    network: Network,
    vantage: Device,
    prefixes: Iterable[IPv6Prefix],
    samples: int = 3,
    seed: int = 0,
) -> List[AliasCheck]:
    """Probe ``samples`` pseudorandom addresses inside each prefix."""
    validator = Validator(((seed * 0x85EB) & ((1 << 128) - 1) or 5).to_bytes(16, "little"))
    probe = IcmpEchoProbe(validator)
    key = (seed & ((1 << 128) - 1)).to_bytes(16, "little")
    results = []
    for prefix in prefixes:
        host_bits = 128 - prefix.length
        hits = 0
        for i in range(samples):
            offset = keyed_uint(key, prefix.network, i) & ((1 << host_bits) - 1)
            target = prefix.address(offset)
            packet = probe.build(vantage.primary_address, target)
            inbox, _trace = network.inject(packet, vantage)
            for reply in inbox:
                classified = probe.classify(reply)
                if classified is not None and classified.kind is ReplyKind.ECHO_REPLY:
                    hits += 1
                    break
        results.append(AliasCheck(prefix=prefix, probes=samples, echo_replies=hits))
    return results


def aliased_prefixes(
    network: Network,
    vantage: Device,
    prefixes: Iterable[IPv6Prefix],
    samples: int = 3,
    seed: int = 0,
) -> Set[IPv6Prefix]:
    """The subset of ``prefixes`` that test as aliased."""
    return {
        check.prefix
        for check in check_aliased(network, vantage, prefixes, samples, seed)
        if check.aliased
    }
