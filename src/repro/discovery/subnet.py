"""Sub-prefix (subnet boundary) length inference (§IV-A).

A prerequisite of periphery scanning is knowing the delegation length an ISP
hands its customers (Table I).  The paper's technique:

1. **Preliminary scan** — probe random-IID addresses under different /64
   sub-prefixes of the ISP block until an ICMPv6 Destination Unreachable
   arrives from a periphery-like address.
2. **Bit walking** — starting from that witness probe, flip address bits
   from the 64th up toward the block boundary, re-probing each variant.  As
   long as the flipped address still falls inside the same customer's
   delegation, the same periphery answers; the first bit whose flip changes
   (or silences) the responder marks the subnet boundary.
3. **Replication** — repeat with several witnesses and take the majority.

The same device answering for a whole /60 is exactly what RFC 7084 prefix
delegation produces, which is why the walk converges on the delegation size.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.permutation import make_permutation
from repro.core.probes.base import ProbeModule
from repro.core.probes.icmp import IcmpEchoProbe
from repro.core.validate import Validator
from repro.net.addr import IPv6Addr, IPv6Prefix
from repro.net.device import Device
from repro.net.network import Network


@dataclass
class SubnetInference:
    """Outcome of one boundary inference run."""

    base: IPv6Prefix
    boundary_length: Optional[int]
    witnesses: List[Tuple[IPv6Addr, IPv6Addr, int]] = field(default_factory=list)
    probes_sent: int = 0

    @property
    def confident(self) -> bool:
        """True when at least two witnesses agreed on the boundary."""
        if self.boundary_length is None:
            return False
        votes = [boundary for _probe, _resp, boundary in self.witnesses]
        return votes.count(self.boundary_length) >= 2


class _Prober:
    def __init__(self, network: Network, vantage: Device, probe: ProbeModule):
        self.network = network
        self.vantage = vantage
        self.probe = probe
        self.sent = 0

    def responder(self, target: IPv6Addr) -> Optional[IPv6Addr]:
        """Send one probe; the address of the error-replying device, if any."""
        packet = self.probe.build(self.vantage.primary_address, target)
        self.sent += 1
        inbox, _trace = self.network.inject(packet, self.vantage)
        for reply in inbox:
            classified = self.probe.classify(reply)
            if classified is not None and classified.kind.is_error:
                return classified.responder
        return None


def infer_subprefix_length(
    network: Network,
    vantage: Device,
    base: IPv6Prefix,
    probe: Optional[ProbeModule] = None,
    seed: int = 0,
    max_preliminary: int = 512,
    witnesses: int = 3,
    longest: int = 64,
) -> SubnetInference:
    """Infer the delegation length for customers inside ``base``.

    ``longest`` caps the assumed boundary at /64, "the longest prefix
    assigned to peripheries depending on the far-ranging address assignment
    practices" (§IV-A).
    """
    if base.length > longest:
        raise ValueError(f"base {base} is already longer than /{longest}")
    if probe is None:
        # Full hop limit: on loop-vulnerable customers the Time Exceeded
        # then comes from the CPE itself, so every probe into one delegation
        # names the same responder and the bit walk stays consistent.
        probe = IcmpEchoProbe(
            Validator((seed & ((1 << 128) - 1)).to_bytes(16, "little")),
            hop_limit=255,
        )
    prober = _Prober(network, vantage, probe)
    rng = random.Random(seed ^ 0x5EB0)
    result = SubnetInference(base=base, boundary_length=None)

    # Preliminary scan: walk random /64s of the block until something answers.
    window = longest - base.length
    permutation = make_permutation(1 << min(window, 24), seed=seed or 1)
    found: List[Tuple[IPv6Addr, IPv6Addr]] = []
    for index in permutation.indices():
        if prober.sent >= max_preliminary or len(found) >= witnesses:
            break
        target = base.subprefix(index % (1 << window), longest).address(
            rng.getrandbits(64)
        )
        responder = prober.responder(target)
        if responder is not None:
            found.append((target, responder))

    votes: Counter[int] = Counter()
    for target, responder in found:
        boundary = _walk_bits(prober, rng, base, target, responder, longest)
        result.witnesses.append((target, responder, boundary))
        votes[boundary] += 1

    result.probes_sent = prober.sent
    if votes:
        result.boundary_length = votes.most_common(1)[0][0]
    return result


def _walk_bits(
    prober: _Prober,
    rng: random.Random,
    base: IPv6Prefix,
    witness: IPv6Addr,
    responder: IPv6Addr,
    longest: int,
    attempts: int = 3,
) -> int:
    """Flip prefix bits of the witness toward the block boundary.

    Returns the inferred boundary: one past the highest flipped bit whose
    variant no longer drew the same responder.  Each bit is re-probed up to
    ``attempts`` times before concluding the responder changed, so a single
    lost reply does not truncate the walk ("we replicate the test several
    times to ensure the correctness", §IV-A).
    """
    boundary = longest
    for bit in range(longest - 1, base.length - 1, -1):
        same_responder = False
        for _ in range(attempts):
            flipped = IPv6Addr(witness.value ^ (1 << (127 - bit)))
            # Refresh the IID so the variant is almost surely nonexistent.
            flipped = IPv6Addr(
                (flipped.value & ~((1 << 64) - 1)) | rng.getrandbits(64)
            )
            if prober.responder(flipped) == responder:
                same_responder = True
                break
        if not same_responder:
            # The flip left the customer's delegation: this bit is already
            # routing-significant, so the boundary sits just below it.
            boundary = bit + 1
            break
        boundary = bit
    return boundary
