"""Vendor identification (§IV-E, §V-B): MACs + application-level banners.

The paper identifies 3.9M devices "with the assistance of the hardware
manufacturer and the application-level information": the MAC embedded in an
EUI-64 address resolves through the IEEE OUI registry, and HTTP titles, TLS
certificate CNs, and TELNET banners name vendors directly.  This module runs
the same two channels over a periphery census and its app-scan observations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.discovery.periphery import PeripheryRecord
from repro.isp.vendors import VendorCatalog
from repro.net.addr import IPv6Addr
from repro.services.zgrab import ServiceObservation

MAC_METHOD = "mac"
BANNER_METHOD = "banner"


@dataclass(frozen=True)
class IdentifiedDevice:
    """One last hop attributed to a vendor."""

    last_hop: IPv6Addr
    vendor: str
    kind: str  # "CPE" | "UE"
    method: str  # "mac" | "banner"


class VendorIdentifier:
    """Resolves last hops to vendors via OUI lookups and banner matching."""

    def __init__(self, catalog: VendorCatalog) -> None:
        self.catalog = catalog
        # Banner matching is substring-based against known vendor names,
        # longest names first so "China Mobile" wins over "China".
        self._known_names = sorted(
            (v.name for v in catalog), key=len, reverse=True
        )

    def _kind_of(self, vendor: str) -> str:
        return self.catalog.get(vendor).kind if vendor in self.catalog else "CPE"

    def _match_banner(self, text: str) -> Optional[str]:
        if not text:
            return None
        lowered = text.lower()
        for name in self._known_names:
            if name.lower() in lowered:
                return name
        return None

    def identify(
        self,
        records: Iterable[PeripheryRecord],
        observations: Iterable[ServiceObservation] = (),
    ) -> List[IdentifiedDevice]:
        """Attribute last hops to vendors; MAC evidence wins over banners."""
        identified: Dict[int, IdentifiedDevice] = {}

        for record in records:
            if record.mac is None:
                continue
            vendor = self.catalog.registry.vendor_of(record.mac)
            if vendor is None:
                continue
            identified[record.last_hop.value] = IdentifiedDevice(
                last_hop=record.last_hop,
                vendor=vendor,
                kind=self._kind_of(vendor),
                method=MAC_METHOD,
            )

        for obs in observations:
            if not obs.alive or obs.target.value in identified:
                continue
            vendor = self._match_banner(obs.vendor_hint) or self._match_banner(
                obs.banner
            )
            if vendor is None:
                continue
            identified[obs.target.value] = IdentifiedDevice(
                last_hop=obs.target,
                vendor=vendor,
                kind=self._kind_of(vendor),
                method=BANNER_METHOD,
            )

        return list(identified.values())

    @staticmethod
    def vendor_counts(devices: Iterable[IdentifiedDevice]) -> Dict[str, Dict[str, int]]:
        """kind → vendor → device count (Table IV's two blocks)."""
        out: Dict[str, Dict[str, int]] = {"CPE": {}, "UE": {}}
        for device in devices:
            bucket = out.setdefault(device.kind, {})
            bucket[device.vendor] = bucket.get(device.vendor, 0) + 1
        return out
