"""The periphery-discovery methodology layer (§III-§IV).

* :mod:`repro.discovery.subnet` — the sub-prefix (subnet boundary) length
  inference of §IV-A;
* :mod:`repro.discovery.periphery` — the end-to-end discovery pipeline that
  produces Table II;
* :mod:`repro.discovery.iid` — the addr6-equivalent interface-identifier
  classifier behind Tables III/V/X;
* :mod:`repro.discovery.vendor_id` — vendor identification from embedded
  MACs and application-level banners (Table IV, Figures 2/3/6).
"""

from repro.discovery.iid import IidClass, classify_iid, iid_breakdown
from repro.discovery.subnet import SubnetInference, infer_subprefix_length
from repro.discovery.periphery import PeripheryCensus, PeripheryRecord, discover
from repro.discovery.vendor_id import VendorIdentifier, IdentifiedDevice

__all__ = [
    "IidClass",
    "classify_iid",
    "iid_breakdown",
    "SubnetInference",
    "infer_subprefix_length",
    "PeripheryCensus",
    "PeripheryRecord",
    "discover",
    "VendorIdentifier",
    "IdentifiedDevice",
]
