"""The periphery discovery pipeline (§IV): scan → dedup → census.

One XMap scan of a sub-prefix window yields raw :class:`ProbeResult`s; the
census deduplicates them into unique last hops and annotates each with the
paper's analysis dimensions — same/diff /64 (Table II), IID class (Table
III), embedded MAC (Table II's MAC column) — producing exactly the rows the
evaluation reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.probes.base import ReplyKind
from repro.core.probes.icmp import IcmpEchoProbe
from repro.core.scanner import ScanConfig, Scanner, ScanResult
from repro.core.stats import ScanStats
from repro.core.target import ScanRange
from repro.core.validate import Validator, seed_secret
from repro.discovery.iid import IidClass, classify_iid
from repro.net.addr import IPv6Addr, IPv6Prefix, MacAddress
from repro.net.device import Device
from repro.net.network import Network
from repro.net.packet import MAX_HOP_LIMIT


@dataclass
class PeripheryRecord:
    """One unique discovered last hop."""

    last_hop: IPv6Addr
    probe_target: IPv6Addr
    reply_kind: ReplyKind
    iid_class: IidClass = field(init=False)
    mac: Optional[MacAddress] = field(init=False)

    def __post_init__(self) -> None:
        self.iid_class = classify_iid(self.last_hop.iid)
        self.mac = self.last_hop.embedded_mac()

    @property
    def same_slash64(self) -> bool:
        return self.last_hop.slash64 == self.probe_target.slash64


@dataclass
class PeripheryCensus:
    """Aggregated discovery results for one scanned window (Table II row)."""

    scan_range: ScanRange
    records: List[PeripheryRecord] = field(default_factory=list)
    stats: ScanStats = field(default_factory=ScanStats)

    # -- Table II columns -------------------------------------------------------

    @property
    def n_unique(self) -> int:
        return len(self.records)

    @property
    def same_pct(self) -> float:
        if not self.records:
            return 0.0
        same = sum(1 for r in self.records if r.same_slash64)
        return 100.0 * same / len(self.records)

    @property
    def diff_pct(self) -> float:
        return 100.0 - self.same_pct if self.records else 0.0

    def unique_slash64s(self) -> Set[IPv6Prefix]:
        return {r.last_hop.slash64 for r in self.records}

    @property
    def unique64_pct(self) -> float:
        if not self.records:
            return 0.0
        return 100.0 * len(self.unique_slash64s()) / len(self.records)

    def eui64_records(self) -> List[PeripheryRecord]:
        return [r for r in self.records if r.iid_class is IidClass.EUI64]

    @property
    def eui64_pct(self) -> float:
        if not self.records:
            return 0.0
        return 100.0 * len(self.eui64_records()) / len(self.records)

    def unique_macs(self) -> Set[MacAddress]:
        return {r.mac for r in self.records if r.mac is not None}

    @property
    def mac_unique_pct(self) -> float:
        """Share of embedded MACs that appear exactly once (Table II)."""
        eui = self.eui64_records()
        if not eui:
            return 0.0
        counts: Dict[MacAddress, int] = {}
        for record in eui:
            assert record.mac is not None
            counts[record.mac] = counts.get(record.mac, 0) + 1
        singles = sum(1 for c in counts.values() if c == 1)
        return 100.0 * singles / len(counts)

    def last_hop_addresses(self) -> List[IPv6Addr]:
        return [r.last_hop for r in self.records]

    def merged_with(self, other: "PeripheryCensus") -> "PeripheryCensus":
        merged = PeripheryCensus(scan_range=self.scan_range)
        seen: Set[int] = set()
        for record in self.records + other.records:
            if record.last_hop.value in seen:
                continue
            seen.add(record.last_hop.value)
            merged.records.append(record)
        return merged


def census_from_scan(result: ScanResult) -> PeripheryCensus:
    """Deduplicate a scan's error replies into a census of last hops."""
    census = PeripheryCensus(scan_range=result.range, stats=result.stats)
    seen: Set[int] = set()
    for probe_result in result.results:
        if not probe_result.kind.is_error:
            continue  # echo replies are live hosts, not exposed last hops
        if probe_result.responder.value in seen:
            continue
        seen.add(probe_result.responder.value)
        census.records.append(
            PeripheryRecord(
                last_hop=probe_result.responder,
                probe_target=probe_result.target,
                reply_kind=probe_result.kind,
            )
        )
    return census


def discover(
    network: Network,
    vantage: Device,
    scan_spec: str | ScanRange,
    rate_pps: float = 25_000.0,
    seed: int = 0,
    hop_limit: int = MAX_HOP_LIMIT,
    max_probes: Optional[int] = None,
    **config_kwargs,
) -> PeripheryCensus:
    """Run one periphery-discovery scan and summarise it.

    The probe hop limit defaults to 255 so that looping customer routes
    still surface the *CPE's* Time Exceeded (not the ISP's), matching the
    paper's observation that loop devices appear among discovered last hops.
    """
    scan_range = (
        ScanRange.parse(scan_spec) if isinstance(scan_spec, str) else scan_spec
    )
    validator = Validator(seed_secret(seed))
    probe = IcmpEchoProbe(validator, hop_limit=hop_limit)
    config = ScanConfig(
        scan_range=scan_range,
        rate_pps=rate_pps,
        seed=seed,
        max_probes=max_probes,
        **config_kwargs,
    )
    scanner = Scanner(network, vantage, probe, config)
    return census_from_scan(scanner.run())
