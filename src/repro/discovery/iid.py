"""Interface-identifier classification (the paper's addr6 step, §IV-E).

The paper runs every discovered address through Gont's ``addr6`` tool and
buckets the 64-bit IID as:

* **EUI-64** — carries the ``ff:fe`` middle marker, i.e. SLAAC from a MAC;
  the embedded MAC identifies the hardware vendor;
* **Low-byte** — a run of zeroes followed only by a low number (typically
  manually configured router addresses like ``::1``);
* **Embed-IPv4** — an IPv4 address carried in the low 32 bits;
* **Byte-pattern** — a discernible repeating pattern;
* **Randomized** — none of the above (SLAAC privacy addresses, RFC 4941/7217).

The classifier is deterministic and the population generator inverts it: it
draws IIDs per class and asserts they classify back, so the measured Table
III/V/X splits reflect the configured populations exactly.
"""

from __future__ import annotations

import random
from enum import Enum
from typing import Dict, Iterable

from repro.net.addr import IPv6Addr, MacAddress, is_eui64_iid

LOW_BYTE_MAX = 0xFFFF


class IidClass(Enum):
    EUI64 = "EUI-64"
    LOW_BYTE = "Low-byte"
    EMBED_IPV4 = "Embed-IPv4"
    BYTE_PATTERN = "Byte-pattern"
    RANDOMIZED = "Randomized"


def _hextets(iid: int) -> tuple[int, int, int, int]:
    return (
        (iid >> 48) & 0xFFFF,
        (iid >> 32) & 0xFFFF,
        (iid >> 16) & 0xFFFF,
        iid & 0xFFFF,
    )


def _looks_like_ipv4(value: int) -> bool:
    """Plausible unicast IPv4 in 32 bits: first octet 1..223, last not 255."""
    first = (value >> 24) & 0xFF
    last = value & 0xFF
    return 1 <= first <= 223 and last != 255


def classify_iid(iid: int | IPv6Addr) -> IidClass:
    """Bucket one interface identifier (low 64 bits of an address)."""
    if isinstance(iid, IPv6Addr):
        iid = iid.iid
    if is_eui64_iid(iid):
        return IidClass.EUI64
    if 0 <= iid <= LOW_BYTE_MAX:
        return IidClass.LOW_BYTE
    if iid >> 32 == 0 and _looks_like_ipv4(iid):
        return IidClass.EMBED_IPV4
    if len(set(_hextets(iid))) <= 2:
        return IidClass.BYTE_PATTERN
    return IidClass.RANDOMIZED


def iid_breakdown(addrs: Iterable[IPv6Addr | int]) -> Dict[IidClass, int]:
    """Class → count over a population (Tables III, V, X)."""
    counts: Dict[IidClass, int] = {cls: 0 for cls in IidClass}
    for addr in addrs:
        counts[classify_iid(addr if isinstance(addr, int) else addr.iid)] += 1
    return counts


class IidGenerator:
    """Draws IIDs of a requested class (the classifier's inverse)."""

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng

    def generate(self, cls: IidClass, mac: MacAddress | None = None) -> int:
        if cls is IidClass.EUI64:
            if mac is None:
                raise ValueError("EUI-64 IIDs require a MAC address")
            return mac.to_eui64_iid()
        if cls is IidClass.LOW_BYTE:
            return self.rng.randrange(1, 0x100)
        if cls is IidClass.EMBED_IPV4:
            value = (
                (self.rng.randrange(1, 224) << 24)
                | (self.rng.randrange(0, 256) << 16)
                | (self.rng.randrange(0, 256) << 8)
                | self.rng.randrange(1, 255)
            )
            assert classify_iid(value) is IidClass.EMBED_IPV4
            return value
        if cls is IidClass.BYTE_PATTERN:
            hextet = self.rng.randrange(0x100, 0x10000)
            shape = self.rng.choice(("solid", "alternating"))
            if shape == "solid":
                value = hextet << 48 | hextet << 32 | hextet << 16 | hextet
            else:
                value = hextet << 48 | hextet << 16
            if classify_iid(value) is IidClass.BYTE_PATTERN:
                return value
            return self.generate(cls)  # rare marker collision: redraw
        # RANDOMIZED: redraw until nothing else claims the value.
        while True:
            value = self.rng.getrandbits(64)
            if classify_iid(value) is IidClass.RANDOMIZED:
                return value
