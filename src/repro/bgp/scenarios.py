"""Control-plane chaos as data: leak / hijack / flap / failover knobs.

A scenario is a frozen, picklable description of one BGP incident.
:func:`compute_delta` re-runs the :mod:`repro.bgp.solver` for exactly the
prefixes the incident can move (incremental reconvergence), recompiles the
affected forwarding rows, and diffs them against the fabric's installed
baseline — yielding a :class:`TableDelta` of per-device route operations.

The delta does **not** mutate the network.  It compiles into a
:class:`repro.faults.FaultSchedule` (:meth:`TableDelta.to_fault_schedule`)
so the incident is applied and reverted mid-scan through the same
virtual-clock fault journal every other chaos kind uses: ``route-set``
events re-home routes, ``route-flap`` events withdraw them, and a hijack
optionally ``blackhole``\\ s captured traffic at the hijacker's edge.

Scenarios:

* :class:`RouteLeak` — ``leaker`` re-exports its best route learned from
  ``from_as`` to ``to_as`` as if it were a customer route; customer
  preference then pulls ``to_as``'s traffic through the leaker (the
  classic valley violation);
* :class:`PrefixHijack` — ``hijacker`` originates ``prefix`` (typically a
  more-specific inside a victim's block); longest-prefix-match diverts
  exactly that slice of the delegation set;
* :class:`SessionFlap` — one eBGP session goes down; every path that used
  it reconverges, and ASes default-homed on it re-home (or lose their
  default entirely when single-homed);
* :class:`Failover` — flap of ``asn``'s primary provider session, the
  multi-homed-CPE-edge drill.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.bgp.fabric import BgpFabric, FabricError
from repro.bgp.solver import LeakSpec, Rib
from repro.faults import BLACKHOLE, ROUTE_FLAP, ROUTE_SET, FaultEvent, FaultSchedule
from repro.net.addr import IPv6Prefix
from repro.net.routing import Route, RouteKind


@dataclass(frozen=True)
class RouteLeak:
    leaker: int
    from_as: int
    to_as: int
    #: Prefix strings to leak (None = everything heard from ``from_as``).
    prefixes: Optional[Tuple[str, ...]] = None


@dataclass(frozen=True)
class PrefixHijack:
    hijacker: int
    prefix: str
    #: Sink captured traffic at the hijacker's edge router (otherwise it
    #: falls through the hijacker's default — a leak-like detour).
    blackhole: bool = True


@dataclass(frozen=True)
class SessionFlap:
    a: int
    b: int


@dataclass(frozen=True)
class Failover:
    asn: int


Scenario = Union[RouteLeak, PrefixHijack, SessionFlap, Failover]


@dataclass(frozen=True)
class RouteOp:
    """One forwarding-table operation on one device."""

    device: str
    prefix: str
    action: str  # "set" | "withdraw" | "blackhole"
    next_hop: Optional[str] = None


@dataclass
class TableDelta:
    """The per-device diff a scenario produces, plus the after-RIB."""

    scenario: Scenario
    ops: Tuple[RouteOp, ...]
    #: Prefixes the solver re-ran (the incident's blast radius).
    dirty: Tuple[IPv6Prefix, ...]
    #: The merged RIB with the scenario active (tracked ASes only).
    rib_after: Rib

    def devices(self) -> Tuple[str, ...]:
        return tuple(sorted({op.device for op in self.ops}))

    def to_fault_schedule(
        self, start: float, end: float, seed: int = 0
    ) -> FaultSchedule:
        """The delta as virtual-clock fault events over ``[start, end)``."""
        events = []
        for op in self.ops:
            if op.action == "set":
                events.append(FaultEvent(
                    kind=ROUTE_SET, start=start, end=end,
                    device=op.device, prefix=op.prefix, next_hop=op.next_hop,
                ))
            elif op.action == "withdraw":
                events.append(FaultEvent(
                    kind=ROUTE_FLAP, start=start, end=end,
                    device=op.device, prefix=op.prefix,
                ))
            else:
                events.append(FaultEvent(
                    kind=BLACKHOLE, start=start, end=end,
                    device=op.device, prefix=op.prefix,
                ))
        return FaultSchedule(events=tuple(events), seed=seed)

    def summary(self) -> str:
        kinds: Dict[str, int] = {}
        for op in self.ops:
            kinds[op.action] = kinds.get(op.action, 0) + 1
        parts = ", ".join(f"{n} {k}" for k, n in sorted(kinds.items()))
        return (
            f"{type(self.scenario).__name__}: {len(self.dirty)} prefix(es) "
            f"reconverged, {len(self.ops)} route op(s) on "
            f"{len(self.devices())} device(s) ({parts or 'no-op'})"
        )


def _paths_using_session(rib: Rib, key: Tuple[int, int]) -> Set[IPv6Prefix]:
    """Prefixes whose current best path crosses the (a, b) adjacency."""
    a, b = key
    dirty: Set[IPv6Prefix] = set()
    for asn, entries in rib.items():
        for prefix, route in entries.items():
            if prefix in dirty:
                continue
            hops = (asn,) + route.path
            for u, v in zip(hops, hops[1:]):
                if (min(u, v), max(u, v)) == key:
                    dirty.add(prefix)
                    break
    return dirty


def compute_delta(fabric: BgpFabric, scenario: Scenario) -> TableDelta:
    """Reconverge the fabric under ``scenario`` and diff the FIBs."""
    if not fabric.compiled or fabric.topology is None:
        raise FabricError("compute_delta needs a compiled fabric")

    if isinstance(scenario, Failover):
        session = fabric.default_session(scenario.asn)
        if session is None:
            raise FabricError(
                f"AS{scenario.asn} has no provider session to fail over from"
            )
        flap = SessionFlap(session.a, session.b)
        delta = compute_delta(fabric, flap)
        return TableDelta(
            scenario=scenario, ops=delta.ops, dirty=delta.dirty,
            rib_after=delta.rib_after,
        )

    topo = fabric.topology
    announcements = dict(fabric.announcements)
    exclude: Tuple[Tuple[int, int], ...] = ()
    leaks: Tuple[LeakSpec, ...] = ()
    extra_ops: List[RouteOp] = []

    if isinstance(scenario, SessionFlap):
        key = (min(scenario.a, scenario.b), max(scenario.a, scenario.b))
        if key not in fabric.sessions:
            raise FabricError(
                f"no session between AS{scenario.a} and AS{scenario.b}"
            )
        topo = topo.without_session(*key)
        exclude = (key,)
        dirty = _paths_using_session(fabric.rib, key)
    elif isinstance(scenario, RouteLeak):
        prefixes = (
            None if scenario.prefixes is None
            else tuple(IPv6Prefix.from_string(p) for p in scenario.prefixes)
        )
        leaks = (LeakSpec(
            leaker=scenario.leaker, from_as=scenario.from_as,
            to_as=scenario.to_as, prefixes=prefixes,
        ),)
        dirty = set(prefixes) if prefixes is not None else set(announcements)
    elif isinstance(scenario, PrefixHijack):
        prefix = IPv6Prefix.from_string(scenario.prefix)
        origins = announcements.get(prefix, ())
        if scenario.hijacker not in fabric.ases:
            raise FabricError(f"hijacker AS{scenario.hijacker} not declared")
        announcements[prefix] = tuple(sorted(
            set(origins) | {scenario.hijacker}
        ))
        dirty = {prefix}
        if scenario.blackhole:
            hijacker = fabric.ases[scenario.hijacker]
            device = (
                hijacker.router_name if not hijacker.managed
                else hijacker.device_name(hijacker.routers[0])
            )
            if device is not None:
                extra_ops.append(RouteOp(
                    device=device, prefix=str(prefix), action="blackhole",
                ))
    else:
        raise FabricError(f"unknown scenario {scenario!r}")

    dirty_list = sorted(dirty, key=lambda p: (p.network, p.length))
    partial = fabric.solver.solve(
        topo, announcements, leaks=leaks, prefixes=dirty_list,
    )

    # Merge: dirty prefixes are replaced wholesale (a dirty prefix missing
    # from the partial solve means that AS lost its route entirely).
    dirty_set = set(dirty_list)
    rib_after: Rib = {}
    for asn, entries in fabric.rib.items():
        rib_after[asn] = {
            p: r for p, r in entries.items() if p not in dirty_set
        }
    for asn, entries in partial.items():
        rib_after.setdefault(asn, {}).update(entries)

    fib_after = fabric.fib_snapshot(rib_after, exclude_sessions=exclude)

    ops = list(extra_ops)
    for device in sorted(set(fabric.fib) | set(fib_after)):
        before = fabric.fib.get(device, {})
        after = fib_after.get(device, {})
        for prefix in before:
            if prefix not in after:
                ops.append(RouteOp(
                    device=device, prefix=str(prefix), action="withdraw",
                ))
        for prefix, route in after.items():
            if before.get(prefix) == route:
                continue
            if route.kind is RouteKind.NEXT_HOP:
                ops.append(RouteOp(
                    device=device, prefix=str(prefix), action="set",
                    next_hop=str(route.next_hop),
                ))
            elif route.kind is RouteKind.BLACKHOLE:
                ops.append(RouteOp(
                    device=device, prefix=str(prefix), action="blackhole",
                ))
    ops.sort(key=lambda op: (op.device, op.prefix, op.action))

    return TableDelta(
        scenario=scenario, ops=tuple(ops), dirty=tuple(dirty_list),
        rib_after=rib_after,
    )


def _route_for_op(op: RouteOp) -> Optional[Route]:
    """The route a "set" op installs (used by tests)."""
    if op.action != "set" or op.next_hop is None:
        return None
    from repro.net.addr import IPv6Addr

    return Route(
        IPv6Prefix.from_string(op.prefix), RouteKind.NEXT_HOP,
        next_hop=IPv6Addr.from_string(op.next_hop),
    )
