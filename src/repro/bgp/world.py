"""Internet-scale topology builders on top of the BGP fabric.

:func:`build_internet` subsumes the flat ``repro.loop.bgp``
``build_global_internet`` world: the same Figure-5-shaped CPE-edge AS
population (identical blocks, device names, IID draws, and loop ground
truth for a given seed — the legacy builder's RNG stream is reproduced
draw-for-draw), but reached through a real AS-level fabric: tier-1
transits meshed at internet exchanges, regional transits buying from
them, and every edge AS homed (sometimes multi-homed) under a regional.
Routes come out of the Gao–Rexford path-vector solver, so control-plane
scenarios (:mod:`repro.bgp.scenarios`) can re-route, leak, or hijack any
slice of the population mid-scan.

Hop-count parity is load-bearing: a probe from the vantage host crosses
exactly **four** forwarding routers before the CPE (vantage-AS core →
tier-1 core → regional core → edge access router), versus the legacy
world's two (core → edge router).  Both are even, so for any probe hop
limit the CPE receives the same parity either way and the §V loop /
Time-Exceeded responder identities are unchanged — ``find_loops`` and
the Table IX pipeline run unmodified on either world.

:func:`build_leak_demo` is the small two-transit world the route-leak
example and the policy tests drive: a victim delegation set in one
transit's customer cone, a vantage single-homed to the other, and a
dual-homed leaker AS positioned to pull the victim's traffic through
itself (7-router baseline path, 5-router leaked path — parity again
preserved).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bgp.fabric import AsRole, BgpFabric
from repro.bgp.table import BgpTable
from repro.discovery.iid import IidClass, IidGenerator
from repro.net.addr import IPv6Addr, IPv6Prefix, MacAddress
from repro.net.device import CpeRouter, Host, IspRouter, Router
from repro.net.network import Network

#: IID mix of the general discovered population (Table III shape).
GENERAL_IID_MIX: Sequence[Tuple[IidClass, float]] = (
    (IidClass.EUI64, 0.076),
    (IidClass.LOW_BYTE, 0.010),
    (IidClass.EMBED_IPV4, 0.055),
    (IidClass.BYTE_PATTERN, 0.104),
    (IidClass.RANDOMIZED, 0.755),
)

#: IID mix of loop-vulnerable last hops (Table X): manually configured
#: low-byte router addresses dominate far more than in the general pool.
LOOP_IID_MIX: Sequence[Tuple[IidClass, float]] = (
    (IidClass.EUI64, 0.180),
    (IidClass.LOW_BYTE, 0.317),
    (IidClass.EMBED_IPV4, 0.024),
    (IidClass.BYTE_PATTERN, 0.007),
    (IidClass.RANDOMIZED, 0.467),
)

#: The ten loop-heaviest origin ASes (Figure 5 left), as
#: (asn, country, paper loop-device count).  The figure's bar chart tops out
#: around 35k for a Brazilian ISP and decays toward ~4k.
TOP_LOOP_ASES: Sequence[Tuple[int, str, int]] = (
    (28006, "BR", 34_000),
    (4134, "CN", 20_500),
    (27947, "EC", 15_500),
    (7552, "VN", 12_000),
    (7018, "US", 9_000),
    (9988, "MM", 7_200),
    (55836, "IN", 6_100),
    (2856, "GB", 5_200),
    (3320, "DE", 4_700),
    (6830, "CH", 4_100),
)

#: Countries for the synthetic long tail, beyond Figure 5's top ten.
TAIL_COUNTRIES = (
    "CZ", "FR", "JP", "KR", "AU", "NL", "SE", "PL", "IT", "ES", "MX", "AR",
    "CL", "CO", "ZA", "EG", "NG", "TR", "SA", "TH", "MY", "ID", "PH", "TW",
    "HK", "SG", "NZ", "RO", "HU", "GR", "PT", "FI", "NO", "DK", "AT", "BE",
    "IE", "UA", "RS", "BG",
)

#: ASN layout: private-use 16-bit space for the infrastructure ASes, the
#: legacy 60000+ range for the generated edge tail.
VANTAGE_ASN = 64500
TIER1_BASE = 64601
REGIONAL_BASE = 64701
TAIL_ASN_BASE = 60_000

VANTAGE_ADDRESS = "2001:4860:4860::6464"
#: The vantage (measurement) AS block; ``block.address(1)`` is the legacy
#: core router address 2001:4860:4860::1.
VANTAGE_BLOCK = IPv6Prefix(0x2001_4860_4860 << 80, 48)


def _pick_iid_class(rng: random.Random,
                    mix: Sequence[Tuple[IidClass, float]]) -> IidClass:
    roll = rng.random()
    for cls, share in mix:
        roll -= share
        if roll <= 0:
            return cls
    return mix[-1][0]


def _edge_block(order: int) -> IPv6Prefix:
    """The legacy per-edge-AS /32 (2a00::/16 space, keyed by plan order)."""
    return IPv6Prefix(
        (0x2A00 + (order >> 8) << 112) | ((order & 0xFF) << 104), 32
    )


@dataclass
class EdgeAs:
    """Ground truth for one populated CPE-edge AS."""

    asn: int
    country: str
    block: IPv6Prefix
    scan_spec: str
    n_devices: int
    n_loops: int
    #: The access router's device name (the AS's single fabric edge).
    access_router: str
    #: Provider ASNs, primary first.
    providers: Tuple[int, ...]
    #: Delegated /48s in device order; ``loop_delegations`` is the subset
    #: whose CPE forwards unknown-IID traffic back out the WAN (§V).
    delegations: List[IPv6Prefix] = field(default_factory=list)
    loop_delegations: List[IPv6Prefix] = field(default_factory=list)


@dataclass
class InternetWorld:
    """A compiled BGP fabric plus its populated CPE-edge periphery."""

    network: Network
    vantage: Host
    core: Router
    fabric: BgpFabric
    #: Routeviews-style attribution table over every announced prefix.
    table: BgpTable
    edges: List[EdgeAs] = field(default_factory=list)
    #: Optional ISP deployments mounted under the vantage core
    #: (``isp_profiles=``), for mixed fabric + profile-catalog worlds.
    isps: Optional[object] = None

    def scan_specs(self) -> List[str]:
        return [e.scan_spec for e in self.edges]

    def edge_by_asn(self) -> Dict[int, EdgeAs]:
        return {e.asn: e for e in self.edges}


def populate_edge_as(
    network: Network,
    fabric: BgpFabric,
    *,
    order: int,
    asn: int,
    country: str,
    n_devices: int,
    n_loops: int,
    rng: random.Random,
    iid_gen: IidGenerator,
    window_bits: int = 8,
    block: Optional[IPv6Prefix] = None,
) -> EdgeAs:
    """Build one edge AS's access router + CPE population.

    The AS must already be declared on the (compiled) fabric; its default
    route points at whatever provider exit the fabric resolved.  The RNG
    draw sequence is byte-identical to the legacy flat builder, so a given
    ``(seed, plan)`` yields the same devices, addresses, and loop flags.
    """
    system = fabric.ases[asn]
    if block is None:
        block = system.block if system.block is not None else _edge_block(order)
    router = IspRouter(
        system.device_name(system.routers[0]), block.address(1), block,
        unassigned_behavior="blackhole",
    )
    next_hop = fabric.edge_default_next_hop(asn)
    if next_hop is not None:
        router.table.add_default(next_hop)
    network.register(router)

    # The paper probes the successive 16-bit sub-prefix space (/32-48);
    # scaled, each AS exposes a window_bits-wide child at /48 granularity.
    base = block.subprefix(1, 48 - window_bits)
    scan_spec = f"{base}-48"
    indices = rng.sample(range(1 << window_bits), n_devices)
    loop_flags = [i < n_loops for i in range(n_devices)]
    rng.shuffle(loop_flags)

    edge = EdgeAs(
        asn=asn, country=country, block=block, scan_spec=scan_spec,
        n_devices=n_devices, n_loops=n_loops, access_router=router.name,
        providers=tuple(
            s.other(asn) for s in fabric.provider_sessions(asn)
        ),
    )

    for i in range(n_devices):
        delegated = base.subprefix(indices[i], 48)
        mix = LOOP_IID_MIX if loop_flags[i] else GENERAL_IID_MIX
        cls = _pick_iid_class(rng, mix)
        if cls is IidClass.EUI64:
            mac = MacAddress(rng.getrandbits(48))
            iid = iid_gen.generate(cls, mac=mac)
        else:
            iid = iid_gen.generate(cls)
        address = delegated.address(iid)
        device = CpeRouter(
            f"as{asn}-dev-{order}-{i}",
            address,
            wan_prefix=delegated,
            lan_prefix=delegated,
            subnet_prefix=None,
            isp_address=router.primary_address,
            vulnerable_wan=loop_flags[i],
        )
        network.register(device)
        router.delegate(delegated, address)
        edge.delegations.append(delegated)
        if loop_flags[i]:
            edge.loop_delegations.append(delegated)

    return edge


def _mount_vantage(fabric: BgpFabric, network: Network) -> Tuple[Host, Router]:
    """Attach the vantage host to the measurement AS's core router."""
    core = fabric.devices[(VANTAGE_ASN, "core")]
    vantage = Host("vantage", IPv6Addr.from_string(VANTAGE_ADDRESS))
    network.attach_host(vantage, core)
    core.table.add_connected(vantage.primary_address.prefix(128), "vantage")
    return vantage, core


def build_internet(
    seed: int = 0,
    scale: float = 1000.0,
    n_tier1: int = 3,
    n_regionals: Optional[int] = None,
    n_ix: int = 2,
    n_tail_ases: int = 220,
    tail_devices_paper: int = 12_000,
    tail_loop_rate: float = 0.012,
    window_bits: int = 8,
    edge_plan: Optional[Sequence[Tuple[int, str, int, int]]] = None,
    multihome_rate: float = 0.25,
    vantage_multihomed: bool = True,
    isp_profiles: Optional[Sequence[object]] = None,
    loss_rate: float = 0.0,
    populate: bool = True,
) -> InternetWorld:
    """Build the Internet-scale scan substrate on a real BGP fabric.

    The edge plan (which ASes exist, how many devices/loops each carries)
    and the per-device draws reproduce the legacy flat builder exactly;
    what changed is the transit above them: ``n_tier1`` DFZ cores fully
    meshed across ``n_ix`` exchanges, ``n_regionals`` regional transits
    buying from them, every edge AS homed under one regional (multi-homed
    under two at ``multihome_rate``), and the measurement AS buying from
    every tier-1 (``vantage_multihomed``) so its best path to any edge
    block is always the 3-AS-hop customer-cone route — four forwarding
    routers before the CPE, preserving the legacy world's even hop parity.

    ``populate=False`` stops after :meth:`BgpFabric.compile` (routers,
    RIBs, and FIBs but no CPE population) — the convergence bench's mode.
    ``edge_plan`` overrides the generated plan with explicit
    ``(asn, country, n_devices, n_loops)`` rows.
    """
    # Legacy device-draw stream: the plan draws come first, then every
    # populate draw, in plan order, with nothing in between.  All topology
    # wiring choices use a separate RNG so they never perturb it.
    rng = random.Random(seed ^ 0xB69)
    iid_gen = IidGenerator(rng)
    wiring = random.Random((seed << 8) ^ 0x1B69)

    if edge_plan is None:
        plan: List[Tuple[int, str, int, int]] = []
        for asn, country, paper_loops in TOP_LOOP_ASES:
            n_loops = max(2, round(paper_loops / scale))
            # Figure 5 ASes are loop-dense: loops ~ 35% of their last hops.
            n_devices = max(n_loops + 2, round(n_loops / 0.35))
            plan.append((asn, country, n_devices, n_loops))
        for i in range(n_tail_ases):
            country = TAIL_COUNTRIES[i % len(TAIL_COUNTRIES)]
            n_devices = max(
                2, round(tail_devices_paper / scale * rng.uniform(0.3, 1.7))
            )
            # About half the tail ASes harbour at least one loop device,
            # matching the paper's 3,877-of-6,911 AS ratio.
            n_loops = rng.choice(
                (0, 1, 1, max(1, round(n_devices * tail_loop_rate * 8)))
            ) if rng.random() < 0.55 else 0
            n_loops = min(n_loops, n_devices)
            plan.append((TAIL_ASN_BASE + i, country, n_devices, n_loops))
    else:
        plan = [tuple(row) for row in edge_plan]  # type: ignore[misc]

    if n_regionals is None:
        n_regionals = max(2, 2 * n_tier1)

    fabric = BgpFabric(seed=seed)
    ix_ids = list(range(1, n_ix + 1))
    for ix_id in ix_ids:
        fabric.add_ix(ix_id)

    # Tier-1s: DFZ cores, present at every exchange, fully peer-meshed.
    tier1: List[int] = []
    for t in range(n_tier1):
        asn = TIER1_BASE + t
        fabric.add_as(
            asn, role=AsRole.TRANSIT,
            block=IPv6Prefix((0x2F00 + t) << 112, 32),
            routers=("core",) + tuple(f"ix{i}" for i in ix_ids),
            country="ZZ",
        )
        tier1.append(asn)
    pair = 0
    for i in range(n_tier1):
        for j in range(i + 1, n_tier1):
            fabric.peer(tier1[i], tier1[j], ix=ix_ids[pair % len(ix_ids)])
            pair += 1

    # Regionals: customers of one tier-1 (two at 50%), sell to the edges.
    regionals: List[int] = []
    for r in range(n_regionals):
        asn = REGIONAL_BASE + r
        fabric.add_as(
            asn, role=AsRole.TRANSIT,
            block=IPv6Prefix((0x2F40 + r) << 112, 32), country="ZZ",
        )
        fabric.provider(tier1[r % n_tier1], asn)
        if n_tier1 > 1 and wiring.random() < 0.5:
            fabric.provider(tier1[(r + 1) % n_tier1], asn)
        regionals.append(asn)

    # The measurement AS: the vantage core, buying from every tier-1.
    fabric.add_as(
        VANTAGE_ASN, role=AsRole.MEASUREMENT, block=VANTAGE_BLOCK,
        device_names={"core": "core"}, country="US",
    )
    for asn in (tier1 if vantage_multihomed else tier1[:1]):
        fabric.provider(asn, VANTAGE_ASN)

    # Edge ASes: unmanaged CPE populations under the regionals.
    placements: List[Tuple[int, Tuple[int, str, int, int]]] = []
    for order, row in enumerate(plan):
        asn, country, _n_devices, _n_loops = row
        block = _edge_block(order)
        primary = regionals[wiring.randrange(n_regionals)]
        providers = [primary]
        if n_regionals > 1 and wiring.random() < multihome_rate:
            step = 1 + wiring.randrange(n_regionals - 1)
            providers.append(
                regionals[(regionals.index(primary) + step) % n_regionals]
            )
        fabric.add_as(
            asn, role=AsRole.EDGE, block=block, country=country,
            router_address=block.address(1),
            router_name=f"as{asn}-edge-{order}",
            primary_provider=primary,
        )
        for provider in providers:
            fabric.provider(provider, asn)
        placements.append((order, row))

    network = fabric.compile()
    vantage, core = _mount_vantage(fabric, network)
    world = InternetWorld(
        network=network, vantage=vantage, core=core, fabric=fabric,
        table=fabric.bgp_table(),
    )

    if populate:
        for order, (asn, country, n_devices, n_loops) in placements:
            world.edges.append(populate_edge_as(
                network, fabric, order=order, asn=asn, country=country,
                n_devices=n_devices, n_loops=n_loops, rng=rng,
                iid_gen=iid_gen, window_bits=window_bits,
            ))

    if isp_profiles is not None:
        from repro.isp.builder import build_deployment

        world.isps = build_deployment(
            profiles=list(isp_profiles), scale=scale, seed=seed,
            loss_rate=loss_rate, network=network, vantage=vantage, core=core,
        )

    return world


#: build_leak_demo's cast, exported so tests and the example agree.
LEAK_DEMO_T1 = TIER1_BASE
LEAK_DEMO_T2 = TIER1_BASE + 1
LEAK_DEMO_R1 = REGIONAL_BASE
LEAK_DEMO_R2 = REGIONAL_BASE + 1
LEAK_DEMO_VICTIM = 65010
LEAK_DEMO_LEAKER = 65099


def build_leak_demo(
    seed: int = 0,
    n_devices: int = 12,
    n_loops: int = 4,
    window_bits: int = 8,
) -> InternetWorld:
    """The two-transit route-leak / hijack demonstration world.

    Topology: tier-1s T1 and T2 peer at IX1; regional R1 buys from T1 and
    R2 from T2; the vantage AS is **single-homed** to T1; the victim edge
    AS (65010, legacy 2a00::/32 block) sits in T2's customer cone under
    R2; and the leaker AS 65099 buys from both T1 and R2 with R2 pinned
    as its primary exit.  Clean path vantage→victim crosses 7 routers
    (T1 core → T1 IX port → T2 IX port → T2 core → R2 → edge); when the
    leaker re-exports R2's victim route to T1, customer preference pulls
    the path through the leaker — 5 routers, same hop parity, measurably
    more §V loop amplification per probe.
    """
    rng = random.Random(seed ^ 0xB69)
    iid_gen = IidGenerator(rng)
    fabric = BgpFabric(seed=seed)
    fabric.add_ix(1)

    for t, asn in enumerate((LEAK_DEMO_T1, LEAK_DEMO_T2)):
        fabric.add_as(
            asn, role=AsRole.TRANSIT,
            block=IPv6Prefix((0x2F00 + t) << 112, 32),
            routers=("core", "ix1"), country="ZZ",
        )
    fabric.peer(LEAK_DEMO_T1, LEAK_DEMO_T2, ix=1)
    fabric.add_as(
        LEAK_DEMO_R1, role=AsRole.TRANSIT,
        block=IPv6Prefix(0x2F40 << 112, 32), country="ZZ",
    )
    fabric.provider(LEAK_DEMO_T1, LEAK_DEMO_R1)
    fabric.add_as(
        LEAK_DEMO_R2, role=AsRole.TRANSIT,
        block=IPv6Prefix(0x2F41 << 112, 32), country="ZZ",
    )
    fabric.provider(LEAK_DEMO_T2, LEAK_DEMO_R2)

    fabric.add_as(
        VANTAGE_ASN, role=AsRole.MEASUREMENT, block=VANTAGE_BLOCK,
        device_names={"core": "core"}, country="US",
    )
    fabric.provider(LEAK_DEMO_T1, VANTAGE_ASN)

    victim_block = _edge_block(0)
    fabric.add_as(
        LEAK_DEMO_VICTIM, role=AsRole.EDGE, block=victim_block, country="BR",
        router_address=victim_block.address(1),
        router_name=f"as{LEAK_DEMO_VICTIM}-edge-0",
        primary_provider=LEAK_DEMO_R2,
    )
    fabric.provider(LEAK_DEMO_R2, LEAK_DEMO_VICTIM)

    # The leaker: a dual-homed stub whose default exits via R2, so leaked
    # traffic it attracts still reaches the victim (a detour, not a sink).
    fabric.add_as(
        LEAK_DEMO_LEAKER, role=AsRole.STUB,
        block=IPv6Prefix(0x2F80 << 112, 32), country="ZZ",
        primary_provider=LEAK_DEMO_R2,
    )
    fabric.provider(LEAK_DEMO_T1, LEAK_DEMO_LEAKER)
    fabric.provider(LEAK_DEMO_R2, LEAK_DEMO_LEAKER)

    network = fabric.compile()
    vantage, core = _mount_vantage(fabric, network)
    edge = populate_edge_as(
        network, fabric, order=0, asn=LEAK_DEMO_VICTIM, country="BR",
        n_devices=n_devices, n_loops=n_loops, rng=rng, iid_gen=iid_gen,
        window_bits=window_bits,
    )
    return InternetWorld(
        network=network, vantage=vantage, core=core, fabric=fabric,
        table=fabric.bgp_table(), edges=[edge],
    )
