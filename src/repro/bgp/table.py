"""The Routeviews-shaped attribution table: prefix → (ASN, country).

The paper joins every loop finding back through the global BGP table
(Routeviews) and MaxMind to name the origin AS and country (§VI-B,
Table IX, Figure 5).  :class:`BgpTable` is the offline stand-in — a
longest-prefix-match view over advertised prefixes, built on the shared
:class:`repro.net.lpm.PrefixTrie` like the forwarding tables and the
scanner blocklist.

Historically this lived in :mod:`repro.loop.bgp` with its own trie; it
moved here so the BGP fabric (:mod:`repro.bgp.fabric`) can derive one from
its RIB without the loop layer importing the fabric.  :mod:`repro.loop.bgp`
re-exports it unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.net.addr import IPv6Addr, IPv6Prefix
from repro.net.lpm import PrefixTrie


@dataclass(frozen=True)
class BgpPrefixInfo:
    prefix: IPv6Prefix
    asn: int
    country: str


class BgpTable:
    """Longest-prefix lookup from address to advertising AS and country."""

    def __init__(self) -> None:
        self._trie: PrefixTrie[BgpPrefixInfo] = PrefixTrie()
        self.entries: List[BgpPrefixInfo] = []

    def add(self, info: BgpPrefixInfo) -> None:
        self._trie.set(info.prefix, info)
        self.entries.append(info)

    def lookup(self, addr: IPv6Addr | int) -> Optional[BgpPrefixInfo]:
        entry = self._trie.longest(addr)
        return None if entry is None else entry[1]

    def __len__(self) -> int:
        return len(self.entries)
