"""The AS-level BGP fabric: declarative topology, policy routing, chaos.

This package gives the simulator a control plane.  Declare
:class:`AutonomousSystem` objects (transit / stub / multi-homed CPE-edge),
:class:`InternetExchange` peering LANs, and eBGP sessions with Gao–Rexford
transit/peer relationships; the deterministic, seedable
:class:`PathVectorSolver` compiles them — valley-free export, local-pref
over AS-path length over a seeded tiebreak — into the **existing**
per-device :class:`~repro.net.routing.RoutingTable`\\ s, so the forwarding
engine, flow caches, scanner, and result store all run unchanged on top.

Control-plane incidents are data, not code: a :class:`RouteLeak`,
:class:`PrefixHijack`, :class:`SessionFlap`, or :class:`Failover` is
handed to :func:`compute_delta`, which reconverges exactly the affected
prefixes and emits a :class:`TableDelta` of per-device route operations —
applied and reverted mid-scan through the :mod:`repro.faults`
virtual-clock journal.

:func:`build_internet` builds the Internet-scale scan substrate (tier-1
mesh, regionals, hundreds of CPE-edge ASes) and subsumes the legacy
``repro.loop.bgp.build_global_internet``, which now thinly wraps it.
"""

from repro.bgp.fabric import (
    IX_LAN_BLOCK,
    MANAGED_ROLES,
    TRACKED_ROLES,
    AsRole,
    AutonomousSystem,
    BgpFabric,
    FabricError,
    InternetExchange,
)
from repro.bgp.scenarios import (
    Failover,
    PrefixHijack,
    RouteLeak,
    RouteOp,
    Scenario,
    SessionFlap,
    TableDelta,
    compute_delta,
)
from repro.bgp.solver import (
    PREF_CUSTOMER,
    PREF_PEER,
    PREF_PROVIDER,
    PREF_SELF,
    LeakSpec,
    PathVectorSolver,
    Rib,
    RibRoute,
    Session,
    SolverTopology,
    rib_digest,
)
from repro.bgp.table import BgpPrefixInfo, BgpTable
from repro.bgp.world import (
    GENERAL_IID_MIX,
    LOOP_IID_MIX,
    TAIL_COUNTRIES,
    TOP_LOOP_ASES,
    VANTAGE_ASN,
    EdgeAs,
    InternetWorld,
    build_internet,
    build_leak_demo,
    populate_edge_as,
)

__all__ = [
    "IX_LAN_BLOCK",
    "MANAGED_ROLES",
    "TRACKED_ROLES",
    "AsRole",
    "AutonomousSystem",
    "BgpFabric",
    "FabricError",
    "InternetExchange",
    "Failover",
    "PrefixHijack",
    "RouteLeak",
    "RouteOp",
    "Scenario",
    "SessionFlap",
    "TableDelta",
    "compute_delta",
    "PREF_CUSTOMER",
    "PREF_PEER",
    "PREF_PROVIDER",
    "PREF_SELF",
    "LeakSpec",
    "PathVectorSolver",
    "Rib",
    "RibRoute",
    "Session",
    "SolverTopology",
    "rib_digest",
    "BgpPrefixInfo",
    "BgpTable",
    "GENERAL_IID_MIX",
    "LOOP_IID_MIX",
    "TAIL_COUNTRIES",
    "TOP_LOOP_ASES",
    "VANTAGE_ASN",
    "EdgeAs",
    "InternetWorld",
    "build_internet",
    "build_leak_demo",
    "populate_edge_as",
]
