"""The declarative AS-level fabric and its compiler.

This is the seed-emulator-shaped layer of :mod:`repro.bgp`: you declare
:class:`AutonomousSystem` objects (transit, stub, CPE-edge, measurement),
:class:`InternetExchange` peering LANs, and eBGP sessions with Gao–Rexford
relationships; :meth:`BgpFabric.compile` then

1. instantiates one :class:`~repro.net.device.Router` per declared router
   of every *managed* AS (transit/measurement) and binds IX-LAN addresses
   to the routers that terminate IX sessions,
2. runs the :class:`~repro.bgp.solver.PathVectorSolver` to a full RIB for
   every tracked AS, and
3. installs the RIB into the existing per-device
   :class:`~repro.net.routing.RoutingTable`\\ s, so the forwarding engine,
   flow caches, scanner, and store run unchanged on top.

FIB installation is *compressed*: each router carries a default route
toward its AS's best provider exit (iBGP star: non-exit routers point at
the exit), and an explicit per-prefix route only where the resolved next
hop differs from that default's — exactly forwarding-equivalent to the
full RIB, at a fraction of the entries.  Tier-1 cores (no providers) carry
full explicit tables, like the real DFZ.  Every installed row is recorded
in :attr:`BgpFabric.fib` so scenario deltas (:mod:`repro.bgp.scenarios`)
can be diffed against it.

*Unmanaged* ASes (role ``cpe-edge``, the scaled CPE populations) bring
their own edge router — built by :func:`repro.bgp.world.populate_edge_as`
or :func:`repro.isp.builder.build_deployment` — and are default-routed:
the fabric only computes which provider exit their default should point at
(:meth:`edge_default_next_hop`) and how transit reaches their announced
block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Mapping, Optional, Tuple

from repro.bgp.solver import (
    PathVectorSolver,
    Rib,
    RibRoute,
    Session,
    SolverTopology,
)
from repro.bgp.table import BgpPrefixInfo, BgpTable
from repro.net.addr import IPv6Addr, IPv6Prefix
from repro.net.device import Router
from repro.net.network import Network
from repro.net.routing import Route, RouteKind

#: Default IX LAN space: 2001:7f8::/32 (the real-world IXP block), one /64
#: per exchange, member address = LAN prefix + member ASN as the IID.
IX_LAN_BLOCK = IPv6Prefix(0x2001_07F8 << 96, 32)


class FabricError(ValueError):
    """The fabric declaration or compilation is inconsistent."""


class AsRole(str, Enum):
    TRANSIT = "transit"          # carries full RIB, managed routers
    MEASUREMENT = "measurement"  # the vantage AS: full RIB, managed
    STUB = "stub"                # default-routed leaf, managed router
    EDGE = "cpe-edge"            # default-routed CPE population, unmanaged


#: Roles whose routers the fabric creates and fills itself.
MANAGED_ROLES = (AsRole.TRANSIT, AsRole.MEASUREMENT, AsRole.STUB)
#: Roles the solver keeps full RIBs for.
TRACKED_ROLES = (AsRole.TRANSIT, AsRole.MEASUREMENT)


@dataclass
class AutonomousSystem:
    """One declared AS: identity, role, address block, routers."""

    asn: int
    role: AsRole = AsRole.STUB
    block: Optional[IPv6Prefix] = None
    country: str = "ZZ"
    #: Router keys; the first is the "core" (iBGP star hub).  Routers named
    #: ``ix<N>`` terminate that exchange's sessions.
    routers: Tuple[str, ...] = ("core",)
    #: Managed ASes get fabric-created routers at block.address(1 + index);
    #: unmanaged (cpe-edge) ASes bring their own single edge router.
    managed: bool = True
    #: Unmanaged only: the externally created edge router's address/name.
    router_address: Optional[IPv6Addr] = None
    router_name: Optional[str] = None
    #: Optional device-name overrides per router key (managed ASes).
    device_names: Dict[str, str] = field(default_factory=dict)
    #: Pin the default/primary exit to this provider ASN (None = seeded
    #: tiebreak across provider sessions).
    primary_provider: Optional[int] = None
    announced: List[IPv6Prefix] = field(default_factory=list)

    def device_name(self, key: str) -> str:
        if not self.managed:
            assert self.router_name is not None
            return self.router_name
        return self.device_names.get(key, f"as{self.asn}-{key}")


@dataclass
class InternetExchange:
    """A peering LAN: sessions declared ``ix=<id>`` ride it."""

    ix_id: int
    prefix: IPv6Prefix

    def member_address(self, asn: int) -> IPv6Addr:
        return self.prefix.address(asn)


class BgpFabric:
    """Declare an AS topology, then compile it onto a live network."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.solver = PathVectorSolver(seed)
        self.ases: Dict[int, AutonomousSystem] = {}
        self.ixes: Dict[int, InternetExchange] = {}
        self.sessions: Dict[Tuple[int, int], Session] = {}
        self.network: Optional[Network] = None
        #: Managed routers by (asn, router key), after compile.
        self.devices: Dict[Tuple[int, str], Router] = {}
        #: The solved RIB (tracked ASN → prefix → best route).
        self.rib: Rib = {}
        #: Installed forwarding rows per device name (incl. ``::/0`` and
        #: own-block discard rows) — the baseline scenario deltas diff.
        self.fib: Dict[str, Dict[IPv6Prefix, Route]] = {}
        self.topology: Optional[SolverTopology] = None
        self.announcements: Dict[IPv6Prefix, Tuple[int, ...]] = {}
        self.compiled = False

    # -- declaration -------------------------------------------------------

    def add_as(
        self,
        asn: int,
        role: AsRole | str = AsRole.STUB,
        block: Optional[IPv6Prefix] = None,
        country: str = "ZZ",
        routers: Tuple[str, ...] = ("core",),
        managed: Optional[bool] = None,
        router_address: Optional[IPv6Addr] = None,
        router_name: Optional[str] = None,
        device_names: Optional[Dict[str, str]] = None,
        primary_provider: Optional[int] = None,
        announce: bool = True,
    ) -> AutonomousSystem:
        if asn in self.ases:
            raise FabricError(f"AS{asn} already declared")
        role = AsRole(role)
        if managed is None:
            managed = role in MANAGED_ROLES
        if managed and block is None:
            raise FabricError(f"AS{asn}: managed ASes need an address block")
        if not managed and (router_address is None or router_name is None):
            raise FabricError(
                f"AS{asn}: unmanaged ASes must declare router_address and "
                "router_name (the externally built edge router)"
            )
        system = AutonomousSystem(
            asn=asn, role=role, block=block, country=country,
            routers=tuple(routers), managed=managed,
            router_address=router_address, router_name=router_name,
            device_names=dict(device_names or {}),
            primary_provider=primary_provider,
        )
        if announce and block is not None:
            system.announced.append(block)
        self.ases[asn] = system
        return system

    def add_ix(
        self, ix_id: int, prefix: Optional[IPv6Prefix] = None
    ) -> InternetExchange:
        if ix_id in self.ixes:
            raise FabricError(f"IX{ix_id} already declared")
        if prefix is None:
            prefix = IPv6Prefix(
                IX_LAN_BLOCK.network | (ix_id << 64), 64
            )
        ix = InternetExchange(ix_id=ix_id, prefix=prefix)
        self.ixes[ix_id] = ix
        return ix

    def provider(
        self, provider_asn: int, customer_asn: int, ix: Optional[int] = None
    ) -> Session:
        """Declare a transit session: ``provider_asn`` sells to ``customer_asn``."""
        return self._add_session(
            Session(a=provider_asn, b=customer_asn, rel="transit", ix=ix)
        )

    def peer(self, a: int, b: int, ix: Optional[int] = None) -> Session:
        """Declare a settlement-free peering session."""
        return self._add_session(Session(a=a, b=b, rel="peer", ix=ix))

    def announce(self, asn: int, prefix: IPv6Prefix) -> None:
        self._as(asn).announced.append(prefix)

    def _add_session(self, session: Session) -> Session:
        for asn in (session.a, session.b):
            if asn not in self.ases:
                raise FabricError(f"session references undeclared AS{asn}")
        if session.ix is not None and session.ix not in self.ixes:
            raise FabricError(f"session references undeclared IX{session.ix}")
        key = session.key()
        if key in self.sessions:
            raise FabricError(
                f"AS{session.a}–AS{session.b} already have a session"
            )
        self.sessions[key] = session
        return session

    def _as(self, asn: int) -> AutonomousSystem:
        try:
            return self.ases[asn]
        except KeyError:
            raise FabricError(f"AS{asn} is not declared") from None

    # -- session/router resolution ----------------------------------------

    def router_key_for(self, asn: int, session: Session) -> str:
        """Which of the AS's routers terminates this session."""
        system = self._as(asn)
        if session.ix is not None:
            ix_key = f"ix{session.ix}"
            if ix_key in system.routers:
                return ix_key
        return system.routers[0]

    def session_endpoint_address(
        self, session: Session, asn: int
    ) -> IPv6Addr:
        """The address a neighbor uses to reach ``asn`` over ``session``."""
        system = self._as(asn)
        key = self.router_key_for(asn, session)
        if session.ix is not None and key == f"ix{session.ix}":
            return self.ixes[session.ix].member_address(asn)
        if not system.managed:
            assert system.router_address is not None
            return system.router_address
        return self.devices[(asn, key)].primary_address

    def provider_sessions(self, asn: int) -> Tuple[Session, ...]:
        return tuple(
            s for s in self.sessions.values()
            if s.rel == "transit" and s.b == asn
        )

    def default_session(
        self, asn: int, exclude: Tuple[Tuple[int, int], ...] = ()
    ) -> Optional[Session]:
        """The provider session the AS's default route exits through."""
        system = self._as(asn)
        sessions = [
            s for s in self.provider_sessions(asn) if s.key() not in exclude
        ]
        if not sessions:
            return None
        if system.primary_provider is not None:
            for session in sessions:
                if session.other(asn) == system.primary_provider:
                    return session
        return min(
            sessions,
            key=lambda s: (self.solver.tiebreak(s.other(asn)), s.other(asn)),
        )

    def edge_default_next_hop(
        self, asn: int, exclude: Tuple[Tuple[int, int], ...] = ()
    ) -> Optional[IPv6Addr]:
        """Where an unmanaged edge AS's default route should point."""
        session = self.default_session(asn, exclude=exclude)
        if session is None:
            return None
        return self.session_endpoint_address(session, session.other(asn))

    # -- compilation -------------------------------------------------------

    def solver_topology(self) -> SolverTopology:
        providers_of: Dict[int, List[Session]] = {}
        customers_of: Dict[int, List[Session]] = {}
        peers_of: Dict[int, List[Session]] = {}
        for key in sorted(self.sessions):
            session = self.sessions[key]
            if session.rel == "transit":
                customers_of.setdefault(session.a, []).append(session)
                providers_of.setdefault(session.b, []).append(session)
            else:
                peers_of.setdefault(session.a, []).append(session)
                peers_of.setdefault(session.b, []).append(session)
        tracked = frozenset(
            asn for asn, system in self.ases.items()
            if system.role in TRACKED_ROLES
        )
        return SolverTopology(
            providers_of={k: tuple(v) for k, v in providers_of.items()},
            customers_of={k: tuple(v) for k, v in customers_of.items()},
            peers_of={k: tuple(v) for k, v in peers_of.items()},
            tracked=tracked,
            sessions=dict(self.sessions),
        )

    def compile(self, network: Optional[Network] = None) -> Network:
        """Create routers, solve routes, install forwarding tables."""
        if self.compiled:
            raise FabricError("fabric is already compiled")
        if network is None:
            network = Network(seed=self.seed)
        self.network = network

        # 1. Managed routers: block.address(1 + index) per declared key.
        for asn in sorted(self.ases):
            system = self.ases[asn]
            if not system.managed:
                continue
            assert system.block is not None
            for index, key in enumerate(system.routers):
                router = Router(
                    system.device_name(key), system.block.address(1 + index)
                )
                network.register(router)
                self.devices[(asn, key)] = router

        # 2. IX LAN addresses on the terminating routers.
        for key in sorted(self.sessions):
            session = self.sessions[key]
            if session.ix is None:
                continue
            ix = self.ixes[session.ix]
            for asn in (session.a, session.b):
                system = self._as(asn)
                if not system.managed:
                    raise FabricError(
                        f"AS{asn}: unmanaged ASes cannot terminate IX "
                        "sessions (give the session a private interconnect)"
                    )
                router_key = self.router_key_for(asn, session)
                if router_key != f"ix{session.ix}":
                    raise FabricError(
                        f"AS{asn}: sessions at IX{session.ix} need an "
                        f"'ix{session.ix}' router declared"
                    )
                router = self.devices[(asn, router_key)]
                address = ix.member_address(asn)
                if address not in router.addresses:
                    network.bind(address, router)

        # 3. Solve.
        self.topology = self.solver_topology()
        announcements: Dict[IPv6Prefix, List[int]] = {}
        for asn in sorted(self.ases):
            for prefix in self.ases[asn].announced:
                announcements.setdefault(prefix, []).append(asn)
        self.announcements = {
            prefix: tuple(sorted(origins))
            for prefix, origins in announcements.items()
        }
        self.rib = self.solver.solve(self.topology, self.announcements)

        # 4. Install.
        self.fib = self.fib_snapshot(self.rib)
        for asn in sorted(self.ases):
            system = self.ases[asn]
            if not system.managed:
                continue
            for key in system.routers:
                router = self.devices[(asn, key)]
                for route in self.fib.get(router.name, {}).values():
                    router.table.add(route)

        self.compiled = True
        return network

    # -- FIB computation ---------------------------------------------------

    def fib_snapshot(
        self,
        rib: Rib,
        exclude_sessions: Tuple[Tuple[int, int], ...] = (),
    ) -> Dict[str, Dict[IPv6Prefix, Route]]:
        """Compressed forwarding rows for every fabric-known router.

        Pure function of (declarations, rib, excluded sessions): used once
        at compile time and again by scenario deltas to compute the
        after-world without touching live tables.
        """
        fib: Dict[str, Dict[IPv6Prefix, Route]] = {}
        default_prefix = IPv6Prefix(0, 0)
        for asn in sorted(self.ases):
            system = self.ases[asn]
            default_sess = self.default_session(asn, exclude=exclude_sessions)
            if not system.managed:
                # Edge ASes are default-routed; record the expected row so
                # scenario deltas can re-home (or withdraw) their default.
                rows: Dict[IPv6Prefix, Route] = {}
                if default_sess is not None:
                    next_hop = self.session_endpoint_address(
                        default_sess, default_sess.other(asn)
                    )
                    rows[default_prefix] = Route(
                        default_prefix, RouteKind.NEXT_HOP, next_hop=next_hop
                    )
                if system.router_name is not None:
                    fib[system.router_name] = rows
                continue

            default_nh = self._default_next_hops(system, default_sess)
            for key in system.routers:
                name = system.device_name(key)
                rows = {}
                if default_nh.get(key) is not None:
                    rows[default_prefix] = Route(
                        default_prefix, RouteKind.NEXT_HOP,
                        next_hop=default_nh[key],
                    )
                fib[name] = rows
            # Own announced blocks: unrouted space discards at the core
            # instead of chasing the default back up to the provider.
            core_name = system.device_name(system.routers[0])
            for prefix in system.announced:
                fib[core_name][prefix] = Route(prefix, RouteKind.BLACKHOLE)

            for prefix, entry in rib.get(asn, {}).items():
                if entry.session is None:
                    continue  # self-originated: the blackhole row covers it
                if entry.session.key() in exclude_sessions:
                    continue
                exit_key = self.router_key_for(asn, entry.session)
                exit_router_addr = self.devices[(asn, exit_key)].primary_address
                remote = self.session_endpoint_address(
                    entry.session, entry.session.other(asn)
                )
                for key in system.routers:
                    next_hop = remote if key == exit_key else exit_router_addr
                    if next_hop == default_nh.get(key):
                        continue  # compressed into the default
                    name = system.device_name(key)
                    fib[name][prefix] = Route(
                        prefix, RouteKind.NEXT_HOP, next_hop=next_hop
                    )
        return fib

    def _default_next_hops(
        self, system: AutonomousSystem, default_sess: Optional[Session]
    ) -> Dict[str, Optional[IPv6Addr]]:
        """Per-router default next hop (iBGP star toward the best exit)."""
        core_key = system.routers[0]
        core_addr = self.devices[(system.asn, core_key)].primary_address
        hops: Dict[str, Optional[IPv6Addr]] = {}
        if default_sess is None:
            # No provider (tier-1): the core runs default-free; other
            # routers hand unknown space to the core's full table.
            for key in system.routers:
                hops[key] = None if key == core_key else core_addr
            return hops
        exit_key = self.router_key_for(system.asn, default_sess)
        exit_addr = self.session_endpoint_address(
            default_sess, default_sess.other(system.asn)
        )
        exit_router_addr = self.devices[(system.asn, exit_key)].primary_address
        for key in system.routers:
            hops[key] = exit_addr if key == exit_key else exit_router_addr
        return hops

    # -- derived views -----------------------------------------------------

    def bgp_table(
        self, roles: Optional[Tuple[AsRole | str, ...]] = None
    ) -> BgpTable:
        """A Routeviews-style attribution table derived from the fabric.

        ``roles`` filters which ASes contribute entries (e.g. only the
        CPE-edge populations for loop attribution); None = every announced
        prefix.
        """
        wanted = (
            None if roles is None else tuple(AsRole(role) for role in roles)
        )
        table = BgpTable()
        for system in self.ases.values():  # declaration order
            if wanted is not None and system.role not in wanted:
                continue
            for prefix in system.announced:
                table.add(BgpPrefixInfo(prefix, system.asn, system.country))
        return table

    def rib_routes(self) -> int:
        return sum(len(entries) for entries in self.rib.values())

    def fib_routes(self) -> int:
        return sum(len(rows) for rows in self.fib.values())
