"""Deterministic, seedable path-vector route computation.

This is the control plane of the BGP fabric: given an AS graph annotated
with Gao–Rexford business relationships, it computes each tracked AS's
best route per announced prefix — the RIB the fabric then compiles into
per-device forwarding tables.

Selection follows the classic policy order:

1. **local preference** by relationship of the announcing neighbor:
   customer (300) > peer (200) > provider (100); a self-originated prefix
   (400) always wins at its origin;
2. **AS-path length**;
3. a **seeded tiebreak**: a keyed hash of the neighbor ASN, so equal-cost
   choices are stable per seed but reshuffle across seeds (the stand-in
   for router-id/IGP tiebreaks the paper's substrate would have).

Export is valley-free: customer routes (and own prefixes) go to everyone;
peer- and provider-learned routes go to customers only.  That structure
lets the solver run each prefix in three staged sweeps rather than a
general Bellman–Ford fixpoint:

* **uphill** — customer routes climb provider edges (best-first on path
  length, so every AS picks its best customer route exactly once);
* **across** — one peer hop off any customer/self route;
* **downhill** — routes descend customer edges (best-first again).

Route **leaks** break the valley-free property on purpose: a leak re-offers
the leaker's *provider-* or *peer-learned* best route to another neighbor
as if it were a customer announcement.  The solver injects the leaked
route as a candidate and iterates to a fixpoint (a few rounds at most in
practice, hard-capped), which reproduces the classic "customer preference
pulls the Internet through the leaker" failure mode.

Only **tracked** ASes (transit + measurement, plus per-prefix origins and
leakers) get full RIB entries; everyone else is a stub that will be
default-routed by the fabric.  That restriction is what keeps a ~2k-AS
world solvable in well under a second of pure Python.
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.net.addr import IPv6Prefix

#: Gao–Rexford local preferences, highest wins.
PREF_SELF = 400
PREF_CUSTOMER = 300
PREF_PEER = 200
PREF_PROVIDER = 100

#: Hard cap on leak fixpoint rounds (mutually-amplifying leaks).
MAX_LEAK_ROUNDS = 4


@dataclass(frozen=True)
class Session:
    """One eBGP adjacency.

    ``rel == "transit"`` means ``a`` is the provider and ``b`` the
    customer; ``rel == "peer"`` is settlement-free.  ``ix`` names the
    Internet exchange the session rides (None = private interconnect).
    """

    a: int
    b: int
    rel: str  # "transit" | "peer"
    ix: Optional[int] = None

    def __post_init__(self) -> None:
        if self.rel not in ("transit", "peer"):
            raise ValueError(f"unknown session relationship {self.rel!r}")
        if self.a == self.b:
            raise ValueError(f"session endpoints must differ (AS{self.a})")

    def other(self, asn: int) -> int:
        return self.b if asn == self.a else self.a

    def key(self) -> Tuple[int, int]:
        return (min(self.a, self.b), max(self.a, self.b))


@dataclass(frozen=True)
class RibRoute:
    """One AS's best route for one prefix.

    ``path`` is the AS path as seen from the holder: ``path[0]`` is the
    announcing neighbor, ``path[-1]`` the origin.  A self-originated route
    has an empty path and no session.
    """

    prefix: IPv6Prefix
    path: Tuple[int, ...]
    pref: int
    session: Optional[Session]
    origin: int

    @property
    def neighbor(self) -> Optional[int]:
        return self.path[0] if self.path else None


@dataclass(frozen=True)
class LeakSpec:
    """A route leak: ``leaker`` re-exports its best route *learned from*
    ``from_as`` to ``to_as`` as if it were a customer route.  ``prefixes``
    limits the leak (None = everything the leaker heard that way)."""

    leaker: int
    from_as: int
    to_as: int
    prefixes: Optional[Tuple[IPv6Prefix, ...]] = None

    def covers(self, prefix: IPv6Prefix) -> bool:
        return self.prefixes is None or prefix in self.prefixes


@dataclass(frozen=True)
class SolverTopology:
    """The AS graph in solver form (built by the fabric)."""

    #: Sessions in which the keyed AS is the *customer*, sorted by provider.
    providers_of: Mapping[int, Tuple[Session, ...]]
    #: Sessions in which the keyed AS is the *provider*, sorted by customer.
    customers_of: Mapping[int, Tuple[Session, ...]]
    peers_of: Mapping[int, Tuple[Session, ...]]
    #: ASes that get full RIB entries (transit + measurement).
    tracked: FrozenSet[int]
    sessions: Mapping[Tuple[int, int], Session] = field(default_factory=dict)

    def session_between(self, a: int, b: int) -> Optional[Session]:
        return self.sessions.get((min(a, b), max(a, b)))

    def without_session(self, a: int, b: int) -> "SolverTopology":
        """A copy of the topology with one session withdrawn (flap)."""
        key = (min(a, b), max(a, b))

        def drop(table: Mapping[int, Tuple[Session, ...]]) -> Dict[int, Tuple[Session, ...]]:
            return {
                asn: tuple(s for s in sessions if s.key() != key)
                for asn, sessions in table.items()
            }

        return SolverTopology(
            providers_of=drop(self.providers_of),
            customers_of=drop(self.customers_of),
            peers_of=drop(self.peers_of),
            tracked=self.tracked,
            sessions={k: s for k, s in self.sessions.items() if k != key},
        )


#: A RIB: tracked ASN → {prefix → best route}.
Rib = Dict[int, Dict[IPv6Prefix, RibRoute]]


def rib_digest(rib: Rib) -> str:
    """A stable content hash of a RIB (the determinism tests' currency)."""
    lines = []
    for asn in sorted(rib):
        entries = rib[asn]
        for prefix in sorted(entries, key=lambda p: (p.network, p.length)):
            rr = entries[prefix]
            path = ",".join(str(hop) for hop in rr.path)
            lines.append(f"{asn} {prefix} {rr.pref} [{path}] {rr.origin}")
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


class PathVectorSolver:
    """Computes best routes per prefix over a :class:`SolverTopology`."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._tb: Dict[int, int] = {}

    def tiebreak(self, asn: int) -> int:
        """Deterministic per-seed ranking of an ASN (lower is preferred)."""
        value = self._tb.get(asn)
        if value is None:
            digest = hashlib.blake2b(
                f"{self.seed}:{asn}".encode(), digest_size=8
            ).digest()
            value = self._tb[asn] = int.from_bytes(digest, "big")
        return value

    # -- public API --------------------------------------------------------

    def solve(
        self,
        topo: SolverTopology,
        announcements: Mapping[IPv6Prefix, Tuple[int, ...]],
        leaks: Sequence[LeakSpec] = (),
        prefixes: Optional[Sequence[IPv6Prefix]] = None,
    ) -> Rib:
        """Best routes for every (or a restricted set of) prefix(es).

        ``announcements`` maps each prefix to its origin ASN(s) — more than
        one origin models anycast or a hijack.  ``prefixes`` restricts the
        computation (incremental reconvergence); the returned RIB then only
        contains entries for those prefixes.
        """
        rib: Rib = {}
        todo = list(announcements) if prefixes is None else list(prefixes)
        todo.sort(key=lambda p: (p.network, p.length))
        for prefix in todo:
            origins = announcements.get(prefix, ())
            if not origins:
                continue
            active_leaks = [leak for leak in leaks if leak.covers(prefix)]
            best = self._solve_prefix(topo, prefix, origins, active_leaks)
            for asn, route in best.items():
                rib.setdefault(asn, {})[prefix] = route
        return rib

    # -- per-prefix computation -------------------------------------------

    def _solve_prefix(
        self,
        topo: SolverTopology,
        prefix: IPv6Prefix,
        origins: Tuple[int, ...],
        leaks: Sequence[LeakSpec],
    ) -> Dict[int, RibRoute]:
        tracked = set(topo.tracked)
        tracked.update(origins)
        for leak in leaks:
            tracked.add(leak.leaker)
            tracked.add(leak.to_as)

        injected: Dict[int, RibRoute] = {}
        best: Dict[int, RibRoute] = {}
        for _ in range(MAX_LEAK_ROUNDS):
            best = self._run_stages(topo, prefix, origins, injected, tracked)
            if not leaks:
                return best
            renewed: Dict[int, RibRoute] = {}
            for leak in leaks:
                candidate = self._leak_candidate(topo, leak, best)
                if candidate is not None:
                    renewed[leak.to_as] = candidate
            if renewed == injected:
                return best
            injected = renewed
        return best

    @staticmethod
    def _leak_candidate(
        topo: SolverTopology, leak: LeakSpec, best: Dict[int, RibRoute]
    ) -> Optional[RibRoute]:
        """The route ``to_as`` hears when the leak is active, if any."""
        route = best.get(leak.leaker)
        if route is None or route.session is None:
            return None  # leaker has nothing (or only its own prefix)
        if route.session.other(leak.leaker) != leak.from_as:
            return None  # best route isn't via the leaked-from neighbor
        if leak.to_as == leak.leaker or leak.to_as in route.path:
            return None  # AS-path loop prevention at the receiver
        session = topo.session_between(leak.leaker, leak.to_as)
        if session is None:
            return None
        if session.rel == "transit" and session.a == leak.to_as:
            pref = PREF_CUSTOMER  # to_as is the leaker's provider
        elif session.rel == "peer":
            pref = PREF_PEER
        else:
            return None  # exporting down to a customer is normal, not a leak
        return RibRoute(
            prefix=route.prefix,
            path=(leak.leaker,) + route.path,
            pref=pref,
            session=session,
            origin=route.origin,
        )

    def _run_stages(
        self,
        topo: SolverTopology,
        prefix: IPv6Prefix,
        origins: Tuple[int, ...],
        injected: Mapping[int, RibRoute],
        tracked: set,
    ) -> Dict[int, RibRoute]:
        best: Dict[int, RibRoute] = {}
        seq = itertools.count()

        # -- stage 1: uphill (customer-class routes climb provider edges).
        # Best-first on (path length, neighbor tiebreak): the first
        # candidate popped for an AS is its best customer route.
        heap: List[Tuple[int, int, int, int, int, RibRoute]] = []

        def push_up(asn: int, route: RibRoute) -> None:
            for session in topo.providers_of.get(asn, ()):
                provider = session.other(asn)
                if provider not in tracked or provider in best:
                    continue
                offered = RibRoute(
                    prefix, (asn,) + route.path, PREF_CUSTOMER, session,
                    route.origin,
                )
                heapq.heappush(heap, (
                    len(offered.path), self.tiebreak(asn), asn, provider,
                    next(seq), offered,
                ))

        for origin in sorted(origins):
            if origin not in best:
                best[origin] = RibRoute(prefix, (), PREF_SELF, None, origin)
        for origin in sorted(origins):
            push_up(origin, best[origin])
        for asn in sorted(injected):
            route = injected[asn]
            if route.pref == PREF_CUSTOMER and route.neighbor is not None:
                heapq.heappush(heap, (
                    len(route.path), self.tiebreak(route.neighbor),
                    route.neighbor, asn, next(seq), route,
                ))
        while heap:
            _length, _tb, _nbr, target, _seq, route = heapq.heappop(heap)
            if target in best:
                continue
            best[target] = route
            push_up(target, route)

        # -- stage 2: across (one peer hop off any customer/self route).
        candidates: List[Tuple[int, int, int, int, RibRoute]] = []
        for asn in sorted(best):
            route = best[asn]
            for session in topo.peers_of.get(asn, ()):
                other = session.other(asn)
                if other not in tracked or other in best:
                    continue
                candidates.append((
                    len(route.path) + 1, self.tiebreak(asn), asn, other,
                    RibRoute(prefix, (asn,) + route.path, PREF_PEER, session,
                             route.origin),
                ))
        for asn in sorted(injected):
            route = injected[asn]
            if (route.pref == PREF_PEER and asn not in best
                    and route.neighbor is not None):
                candidates.append((
                    len(route.path), self.tiebreak(route.neighbor),
                    route.neighbor, asn, route,
                ))
        for _length, _tb, _nbr, target, route in sorted(
            candidates, key=lambda c: c[:4]
        ):
            best.setdefault(target, route)

        # -- stage 3: downhill (everything descends customer edges).
        heap = []

        def push_down(asn: int, route: RibRoute) -> None:
            for session in topo.customers_of.get(asn, ()):
                customer = session.other(asn)
                if customer not in tracked or customer in best:
                    continue
                offered = RibRoute(
                    prefix, (asn,) + route.path, PREF_PROVIDER, session,
                    route.origin,
                )
                heapq.heappush(heap, (
                    len(offered.path), self.tiebreak(asn), asn, customer,
                    next(seq), offered,
                ))

        for asn in sorted(best):
            push_down(asn, best[asn])
        while heap:
            _length, _tb, _nbr, target, _seq, route = heapq.heappop(heap)
            if target in best:
                continue
            best[target] = route
            push_down(target, route)

        return best
