"""A minimal hand-built topology for demos and tests.

One ISP (/32 block), one correct CPE, one fully vulnerable CPE, and one UE —
the smallest network exhibiting every behaviour in the paper: same-/64 and
different-/64 unreachables, echo replies, blackholed unassigned space, and
the WAN/LAN routing loops.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.addr import IPv6Addr, IPv6Prefix
from repro.net.device import CpeRouter, Host, IspRouter, Router, UeDevice
from repro.net.network import Network


@dataclass
class MiniTopology:
    network: Network
    vantage: Host
    core: Router
    isp: IspRouter
    cpe_ok: CpeRouter
    cpe_vuln: CpeRouter
    ue: UeDevice

    BLOCK = IPv6Prefix.from_string("2001:db8::/32")
    WAN_OK = IPv6Prefix.from_string("2001:db8:0:5::/64")
    LAN_OK = IPv6Prefix.from_string("2001:db8:1:50::/60")
    SUBNET_OK = IPv6Prefix.from_string("2001:db8:1:50::/64")
    WAN_VULN = IPv6Prefix.from_string("2001:db8:0:6::/64")
    LAN_VULN = IPv6Prefix.from_string("2001:db8:1:60::/60")
    SUBNET_VULN = IPv6Prefix.from_string("2001:db8:1:60::/64")
    UE_PREFIX = IPv6Prefix.from_string("2001:db8:2:7::/64")


def build_mini(seed: int = 1, **network_kwargs) -> MiniTopology:
    """Build the demo network; extra kwargs go to :class:`Network`."""
    net = Network(seed=seed, **network_kwargs)
    vantage = Host("vantage", IPv6Addr.from_string("2001:4860::100"))
    core = Router("core", IPv6Addr.from_string("2001:4860::1"))
    net.register(core)
    net.attach_host(vantage, core)
    core.table.add_connected(vantage.primary_address.prefix(128), "v")

    isp = IspRouter("isp", MiniTopology.BLOCK.address(1), MiniTopology.BLOCK)
    net.register(isp)
    core.table.add_next_hop(MiniTopology.BLOCK, isp.primary_address)
    isp.table.add_default(core.primary_address)

    wan_ok_addr = MiniTopology.WAN_OK.address(0xDEADBEEF)
    cpe_ok = CpeRouter(
        "cpe-ok", wan_ok_addr, MiniTopology.WAN_OK, MiniTopology.LAN_OK,
        subnet_prefix=MiniTopology.SUBNET_OK, isp_address=isp.primary_address,
    )
    net.register(cpe_ok)
    isp.delegate(MiniTopology.WAN_OK, wan_ok_addr)
    isp.delegate(MiniTopology.LAN_OK, wan_ok_addr)

    wan_vuln_addr = MiniTopology.WAN_VULN.address(0x1234)
    cpe_vuln = CpeRouter(
        "cpe-vuln", wan_vuln_addr, MiniTopology.WAN_VULN,
        MiniTopology.LAN_VULN, subnet_prefix=MiniTopology.SUBNET_VULN,
        isp_address=isp.primary_address,
        vulnerable_wan=True, vulnerable_lan=True,
    )
    net.register(cpe_vuln)
    isp.delegate(MiniTopology.WAN_VULN, wan_vuln_addr)
    isp.delegate(MiniTopology.LAN_VULN, wan_vuln_addr)

    ue = UeDevice(
        "ue", MiniTopology.UE_PREFIX.address(0x42), MiniTopology.UE_PREFIX,
        isp_address=isp.primary_address,
    )
    net.register(ue)
    isp.delegate(MiniTopology.UE_PREFIX, ue.ue_address)

    return MiniTopology(net, vantage, core, isp, cpe_ok, cpe_vuln, ue)
