"""Longest-prefix-match IPv6 routing tables.

The routing table is a binary trie keyed on prefix bits.  It supports the
three route kinds the paper's threat model distinguishes (§VI, Figure 4):

* ``CONNECTED`` — deliver locally / on-link (the destination subnet is
  attached to this device);
* ``NEXT_HOP``  — forward to another device's address;
* ``UNREACHABLE`` — a null/discard route.  The paper's mitigation ("the CPE
  router should add an unreachable route for the unused prefix", RFC 7084
  requirement) is exactly the presence of this route kind; its *absence* on
  delegated-but-unassigned space is the routing-loop vulnerability.

Lookups return the most specific matching route, so a CPE with a default
route to its ISP and no covering route for a not-used LAN sub-prefix will
bounce packets for that sub-prefix back upstream — the behaviour the
routing-loop attack exploits.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterator, List, Optional

from repro.net.addr import IPv6Addr, IPv6Prefix
from repro.net.lpm import PrefixTrie


class RouteKind(Enum):
    CONNECTED = "connected"
    NEXT_HOP = "next-hop"
    #: Discard and report: the router drops the packet and sends an ICMPv6
    #: Destination Unreachable (the "unreachable route" of RFC 7084 / §VII).
    UNREACHABLE = "unreachable"
    #: Discard silently: models operators that null-route aggregates or
    #: filter outbound ICMPv6 errors (the paper's §IV-C limitation).
    BLACKHOLE = "blackhole"


@dataclass(frozen=True)
class Route:
    """A single forwarding entry."""

    prefix: IPv6Prefix
    kind: RouteKind
    next_hop: Optional[IPv6Addr] = None
    interface: str = ""

    def __post_init__(self) -> None:
        if self.kind is RouteKind.NEXT_HOP and self.next_hop is None:
            raise ValueError("NEXT_HOP route requires a next_hop address")

    def __str__(self) -> str:
        if self.kind is RouteKind.NEXT_HOP:
            return f"{self.prefix} via {self.next_hop}"
        if self.kind is RouteKind.CONNECTED:
            return f"{self.prefix} dev {self.interface or 'local'}"
        return f"{self.prefix} unreachable"


class BaseRoutingTable(ABC):
    """Interface shared by the trie and hash LPM implementations."""

    #: Mutation counter: bumped by every ``add``/``remove`` so route-
    #: resolution caches (the forwarding flow cache) can detect staleness
    #: with one integer comparison instead of subscribing to changes.
    version: int = 0

    @abstractmethod
    def add(self, route: Route) -> None: ...

    @abstractmethod
    def remove(self, prefix: IPv6Prefix) -> bool: ...

    @abstractmethod
    def lookup(self, addr: IPv6Addr | int) -> Optional[Route]: ...

    @abstractmethod
    def routes(self) -> Iterator[Route]: ...

    @abstractmethod
    def __len__(self) -> int: ...

    def has_specific_within_slash64(self, key: int) -> bool:
        """Any route longer than /64 whose prefix lies inside this /64?

        ``key`` is the /64 network value right-shifted by 64.  The flow
        cache may serve a whole /64 of destinations from one entry only
        when no more-specific route could override the cached decision for
        *some* address of that /64; this is the guard.  Generic O(routes)
        implementation; the hash table overrides it with a per-length probe.
        """
        for route in self.routes():
            if route.prefix.length > 64 and (route.prefix.network >> 64) == key:
                return True
        return False

    def add_connected(self, prefix: IPv6Prefix, interface: str = "") -> None:
        self.add(Route(prefix, RouteKind.CONNECTED, interface=interface))

    def add_next_hop(self, prefix: IPv6Prefix, next_hop: IPv6Addr) -> None:
        self.add(Route(prefix, RouteKind.NEXT_HOP, next_hop=next_hop))

    def add_unreachable(self, prefix: IPv6Prefix) -> None:
        self.add(Route(prefix, RouteKind.UNREACHABLE))

    def add_blackhole(self, prefix: IPv6Prefix) -> None:
        self.add(Route(prefix, RouteKind.BLACKHOLE))

    def add_default(self, next_hop: IPv6Addr) -> None:
        self.add_next_hop(IPv6Prefix(0, 0), next_hop)

    def __str__(self) -> str:
        return "\n".join(str(r) for r in sorted(
            self.routes(), key=lambda r: (r.prefix.network, r.prefix.length)
        ))


class RoutingTable(BaseRoutingTable):
    """A binary-trie forwarding table with longest-prefix-match lookup.

    The trie walk itself lives in :class:`repro.net.lpm.PrefixTrie`, shared
    with the blocklist and BGP-attribution tables; this class adds the
    route semantics (replacement, version stamping) on top.
    """

    def __init__(self) -> None:
        self._trie: PrefixTrie[Route] = PrefixTrie()
        self.version = 0

    def add(self, route: Route) -> None:
        """Insert a route, replacing any existing route for the same prefix."""
        self.version += 1
        self._trie.set(route.prefix, route)

    def remove(self, prefix: IPv6Prefix) -> bool:
        """Remove the route for an exact prefix.  Returns True if removed."""
        if not self._trie.delete(prefix):
            return False
        self.version += 1
        return True

    def lookup(self, addr: IPv6Addr | int) -> Optional[Route]:
        """The most specific route covering ``addr``, or None."""
        entry = self._trie.longest(addr)
        return None if entry is None else entry[1]

    def routes(self) -> Iterator[Route]:
        """All routes, in trie (prefix-ordered) traversal order."""
        for _prefix, route in self._trie.items():
            yield route

    def __len__(self) -> int:
        return len(self._trie)


class HashRoutingTable(BaseRoutingTable):
    """A length-bucketed hash LPM table.

    Routes are grouped by prefix length into ``{network_int: Route}`` dicts;
    lookup masks the address at each present length, longest first.  Real
    deployments have very few distinct prefix lengths per device (a CPE has
    /128 + /64 + /60 + /0; an ISP access router has /64 + /60 + /32), so
    lookups cost O(distinct lengths) dict probes, and memory is one dict
    entry per route — far lighter than a trie when the simulator instantiates
    tens of thousands of CPE tables.

    The unit tests cross-validate this implementation against the trie on
    randomly generated route sets.
    """

    def __init__(self) -> None:
        self._by_length: Dict[int, Dict[int, Route]] = {}
        self._lengths_desc: List[int] = []
        self.version = 0

    def add(self, route: Route) -> None:
        length = route.prefix.length
        bucket = self._by_length.get(length)
        if bucket is None:
            bucket = self._by_length[length] = {}
            self._lengths_desc = sorted(self._by_length, reverse=True)
        bucket[route.prefix.network] = route
        self.version += 1

    def remove(self, prefix: IPv6Prefix) -> bool:
        bucket = self._by_length.get(prefix.length)
        if bucket is None or prefix.network not in bucket:
            return False
        del bucket[prefix.network]
        if not bucket:
            del self._by_length[prefix.length]
            self._lengths_desc = sorted(self._by_length, reverse=True)
        self.version += 1
        return True

    def lookup(self, addr: IPv6Addr | int) -> Optional[Route]:
        value = addr.value if isinstance(addr, IPv6Addr) else addr
        for length in self._lengths_desc:
            masked = value >> (128 - length) << (128 - length) if length else 0
            route = self._by_length[length].get(masked)
            if route is not None:
                return route
        return None

    def routes(self) -> Iterator[Route]:
        for bucket in self._by_length.values():
            yield from bucket.values()

    def has_specific_within_slash64(self, key: int) -> bool:
        """Probe only the longer-than-/64 length buckets (usually none)."""
        for length in self._lengths_desc:
            if length <= 64:
                break
            for network in self._by_length[length]:
                if (network >> 64) == key:
                    return True
        return False

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._by_length.values())
