"""Synthetic IEEE OUI registry.

The paper identifies device vendors by resolving the MAC address embedded in
EUI-64 interface identifiers against the IEEE "Standard OUI" registry.  That
registry is an online resource; this module provides a deterministic synthetic
stand-in with the same interface: 24-bit OUI → organisation name.

Vendors are assigned OUIs derived from a stable hash of the vendor name, so
that registries built in different processes agree, and a vendor may own
several OUIs (as real manufacturers do).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List

from repro.net.addr import MacAddress


class OuiRegistry:
    """A bidirectional OUI ↔ vendor mapping.

    >>> registry = OuiRegistry()
    >>> registry.register("ZTE", count=2)
    >>> mac = registry.make_mac("ZTE", nic=7)
    >>> registry.vendor_of(mac)
    'ZTE'
    """

    def __init__(self) -> None:
        self._oui_to_vendor: Dict[int, str] = {}
        self._vendor_to_ouis: Dict[str, List[int]] = {}

    @staticmethod
    def _derive_oui(vendor: str, index: int) -> int:
        digest = hashlib.sha256(f"oui:{vendor}:{index}".encode()).digest()
        oui = int.from_bytes(digest[:3], "big")
        # Clear the multicast (I/G) and local (U/L) bits of the first octet so
        # the OUI is a plausible globally-administered unicast assignment.
        return oui & ~(0x03 << 16)

    def register(self, vendor: str, count: int = 1) -> None:
        """Assign ``count`` deterministic OUIs to ``vendor``."""
        ouis = self._vendor_to_ouis.setdefault(vendor, [])
        target = len(ouis) + count
        index = len(ouis)
        while len(ouis) < target:
            oui = self._derive_oui(vendor, index)
            index += 1
            if oui in self._oui_to_vendor:
                continue  # extremely unlikely collision; skip to next index
            self._oui_to_vendor[oui] = vendor
            ouis.append(oui)

    def register_all(self, vendors: Iterable[str], count: int = 1) -> None:
        for vendor in vendors:
            self.register(vendor, count=count)

    def vendors(self) -> List[str]:
        return sorted(self._vendor_to_ouis)

    def ouis_for(self, vendor: str) -> List[int]:
        try:
            return list(self._vendor_to_ouis[vendor])
        except KeyError:
            raise KeyError(f"vendor {vendor!r} not registered") from None

    def vendor_of(self, mac: MacAddress) -> str | None:
        """The vendor owning the MAC's OUI, or None if unregistered."""
        return self._oui_to_vendor.get(mac.oui)

    def make_mac(self, vendor: str, nic: int, oui_index: int = 0) -> MacAddress:
        """A concrete MAC under one of the vendor's OUIs.

        ``nic`` is the 24-bit NIC-specific suffix; the population builder
        hands out sequential values so every simulated device gets a unique
        MAC, mirroring the paper's finding that 96.5% of embedded MACs were
        unique.
        """
        ouis = self.ouis_for(vendor)
        if not 0 <= nic < (1 << 24):
            raise ValueError(f"NIC suffix out of range: {nic:#x}")
        return MacAddress((ouis[oui_index % len(ouis)] << 24) | nic)

    def __len__(self) -> int:
        return len(self._oui_to_vendor)

    def __contains__(self, vendor: str) -> bool:
        return vendor in self._vendor_to_ouis
