"""Neighbor Discovery (RFC 4861): solicitations, advertisements, cache.

The periphery-discovery mechanism bottoms out in ND: a router delivering
on-link traffic multicasts a Neighbor Solicitation for the target; when no
Neighbor Advertisement comes back, address resolution has failed and the
router reports ICMPv6 Destination Unreachable / address-unreachable — the
error the scanner harvests.

This module implements the NS/NA message wire formats (ICMPv6 types 135/136
with the target-address body and the link-layer-address option) and a
per-device :class:`NeighborCache` with REACHABLE/negative entries and
expiry over the simulator's virtual clock.  The simulator models the
solicited-node multicast domain as the set of registered devices owning the
target address, so resolution produces real NA packets without a full
multicast fabric.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Optional, TYPE_CHECKING

from repro.net.addr import IPv6Addr, MacAddress
from repro.net.packet import Icmpv6Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.device import Device
    from repro.net.network import Network

NEIGHBOR_SOLICITATION = 135
NEIGHBOR_ADVERTISEMENT = 136

OPT_SOURCE_LLADDR = 1
OPT_TARGET_LLADDR = 2

#: RFC 4861 defaults (seconds).
REACHABLE_TIME = 30.0
NEGATIVE_TIME = 3.0  # how long a failed resolution is remembered


@dataclass(frozen=True)
class NeighborSolicitation:
    """ICMPv6 type 135: who-has ``target``?"""

    target: IPv6Addr
    source_lladdr: Optional[MacAddress] = None

    def to_message(self) -> Icmpv6Message:
        body = b"\x00\x00\x00\x00" + self.target.to_bytes()
        if self.source_lladdr is not None:
            body += struct.pack("!BB", OPT_SOURCE_LLADDR, 1)
            body += self.source_lladdr.value.to_bytes(6, "big")
        return Icmpv6Message(NEIGHBOR_SOLICITATION, payload=body)

    @classmethod
    def from_message(cls, message: Icmpv6Message) -> "NeighborSolicitation":
        if message.type != NEIGHBOR_SOLICITATION:
            raise ValueError("not a neighbor solicitation")
        body = message.payload
        if len(body) < 20:
            raise ValueError("truncated neighbor solicitation")
        target = IPv6Addr.from_bytes(body[4:20])
        lladdr = _parse_lladdr_option(body[20:], OPT_SOURCE_LLADDR)
        return cls(target=target, source_lladdr=lladdr)


@dataclass(frozen=True)
class NeighborAdvertisement:
    """ICMPv6 type 136: ``target`` is-at ``target_lladdr``."""

    target: IPv6Addr
    target_lladdr: Optional[MacAddress] = None
    solicited: bool = True
    override: bool = True

    def to_message(self) -> Icmpv6Message:
        flags = (
            (0x40000000 if self.solicited else 0)
            | (0x20000000 if self.override else 0)
        )
        body = struct.pack("!I", flags) + self.target.to_bytes()
        if self.target_lladdr is not None:
            body += struct.pack("!BB", OPT_TARGET_LLADDR, 1)
            body += self.target_lladdr.value.to_bytes(6, "big")
        return Icmpv6Message(NEIGHBOR_ADVERTISEMENT, payload=body)

    @classmethod
    def from_message(cls, message: Icmpv6Message) -> "NeighborAdvertisement":
        if message.type != NEIGHBOR_ADVERTISEMENT:
            raise ValueError("not a neighbor advertisement")
        body = message.payload
        if len(body) < 20:
            raise ValueError("truncated neighbor advertisement")
        (flags,) = struct.unpack("!I", body[:4])
        target = IPv6Addr.from_bytes(body[4:20])
        lladdr = _parse_lladdr_option(body[20:], OPT_TARGET_LLADDR)
        return cls(
            target=target,
            target_lladdr=lladdr,
            solicited=bool(flags & 0x40000000),
            override=bool(flags & 0x20000000),
        )


def _parse_lladdr_option(options: bytes, wanted: int) -> Optional[MacAddress]:
    offset = 0
    while offset + 2 <= len(options):
        opt_type = options[offset]
        opt_len = options[offset + 1] * 8
        if opt_len == 0:
            break
        if opt_type == wanted and offset + 8 <= len(options):
            raw = options[offset + 2 : offset + 8]
            return MacAddress(int.from_bytes(raw, "big"))
        offset += opt_len
    return None


@dataclass
class NeighborEntry:
    reachable: bool
    lladdr: Optional[MacAddress]
    expires_at: float


class NeighborCache:
    """A per-device neighbour cache with positive and negative entries."""

    def __init__(
        self,
        reachable_time: float = REACHABLE_TIME,
        negative_time: float = NEGATIVE_TIME,
    ) -> None:
        self.reachable_time = reachable_time
        self.negative_time = negative_time
        self._entries: Dict[int, NeighborEntry] = {}
        self.hits = 0
        self.misses = 0
        self.solicitations = 0

    def lookup(self, addr: IPv6Addr, now: float) -> Optional[NeighborEntry]:
        entry = self._entries.get(addr.value)
        if entry is None or entry.expires_at <= now:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def store(self, addr: IPv6Addr, lladdr: Optional[MacAddress],
              reachable: bool, now: float) -> None:
        ttl = self.reachable_time if reachable else self.negative_time
        self._entries[addr.value] = NeighborEntry(
            reachable=reachable, lladdr=lladdr, expires_at=now + ttl
        )

    def flush(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


def resolve(
    device: "Device",
    target: IPv6Addr,
    network: "Network",
) -> bool:
    """Run address resolution for ``target`` from ``device``.

    Consults the device's neighbour cache; on a miss, emits a Neighbor
    Solicitation into the on-link multicast domain (modelled as the network
    registry) and records the outcome.  Returns whether the neighbour is
    reachable.
    """
    cache = device.neighbor_cache
    entry = cache.lookup(target, network.clock)
    if entry is not None:
        return entry.reachable

    cache.solicitations += 1
    solicitation = NeighborSolicitation(target=target)
    # Model the solicited-node multicast: the owner (if any) answers.
    owner = network.device_at(target)
    if owner is None:
        cache.store(target, None, reachable=False, now=network.clock)
        return False
    advertisement = NeighborAdvertisement(
        target=target,
        target_lladdr=getattr(owner, "lladdr", None),
    )
    # Round-trip the messages through their wire formats so the protocol
    # encoding is exercised on the hot path.
    ns = NeighborSolicitation.from_message(solicitation.to_message())
    na = NeighborAdvertisement.from_message(advertisement.to_message())
    assert ns.target == na.target == target
    cache.store(target, na.target_lladdr, reachable=True, now=network.clock)
    return True
