"""The in-process IPv6 network simulator.

This is the substrate that stands in for the live Internet: a registry of
devices plus a synchronous forwarding engine.  A probe injected at the
measurement vantage traverses device routing tables hop by hop — decrementing
hop limits, generating ICMPv6 errors, possibly looping between a vulnerable
CPE and its ISP router — until every packet in flight has either been
delivered, dropped, or returned to the vantage.

The engine has two forwarding paths with identical observable behaviour:

* the **slow path** walks ``Device.receive`` → ``Device._forward`` hop by
  hop and emits probe-lifecycle trace events;
* the **fast path** (on by default, ``flow_cache=False`` to disable) runs
  whenever no probe trace is being recorded and the hop's device uses base
  forwarding semantics.  It resolves each destination through the device's
  :meth:`~repro.net.device.Device.flow_entry` route flow cache — one dict
  probe per hop instead of an LPM walk plus result-object allocation.
  Cache entries are invalidated by a **topology generation counter**
  (bumped on register/unregister/bind) paired with each routing table's
  mutation version, so prefix rotation and churn modelling stay correct.

The engine can track per-link traversal counts, which is how the
routing-loop benchmarks measure amplification: the paper's >200x factor is
literally the number of times one attack packet crosses the ISP↔CPE link.
Link/path recording is opt-in (``record_links`` / ``record_paths``) so the
scan hot loop does not pay for dict updates it never reads.

Time is virtual: the scanner's rate limiter advances :attr:`Network.clock`,
and device ICMPv6 error limiters read it.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, NamedTuple, Optional, Tuple

from repro.net.addr import IPv6Addr
from repro.net.device import (
    FLOW_BLACKHOLE,
    FLOW_CONNECTED,
    FLOW_FORWARD,
    FLOW_UNREACHABLE,
    Device,
    Host,
    ReceiveResult,
)
from repro.net.ndp import resolve
from repro.net.packet import (
    Icmpv6Type,
    Packet,
    TimeExceededCode,
    UnreachableCode,
)
from repro.net.routing import RouteKind

if False:  # TYPE_CHECKING without the import cost on the hot path
    from repro.telemetry.trace import ProbeTrace


class Link(NamedTuple):
    """A directed device-to-device hop, keyed by device names."""

    src: str
    dst: str


@dataclass
class DeliveryTrace:
    """Per-injection record of what the forwarding engine did.

    ``link_counts`` and ``path`` fill only when the network's
    ``record_links`` / ``record_paths`` flags are set — the loop-attack
    measurements enable them; the scanner's hot loop leaves them off.
    """

    hops: int = 0
    drops: int = 0
    delivered: int = 0
    errors_generated: int = 0
    link_counts: Dict[Link, int] = field(default_factory=dict)
    path: List[str] = field(default_factory=list)

    def crossings(self, a: str, b: str) -> int:
        """Traversals of the (a, b) link, both directions."""
        return self.link_counts.get(Link(a, b), 0) + self.link_counts.get(
            Link(b, a), 0
        )


class NetworkError(RuntimeError):
    """Raised for topology misconfigurations (duplicate addresses, etc.)."""


class Network:
    """Device registry plus the synchronous packet-forwarding engine."""

    def __init__(
        self,
        seed: int = 0,
        loss_rate: float = 0.0,
        max_hops: int = 4096,
        record_paths: bool = False,
        record_links: bool = False,
        flow_cache: bool = True,
    ) -> None:
        self.rng = random.Random(seed)
        self.loss_rate = loss_rate
        self.max_hops = max_hops
        self.record_paths = record_paths
        #: Fill ``DeliveryTrace.link_counts`` per hop.  Opt-in: the loop
        #: attack/case-study paths enable it (they read ``crossings``); the
        #: scanner leaves it off.
        self.record_links = record_links
        #: Escape hatch for A/B measurement: ``False`` forces every hop
        #: through the slow path regardless of scan configuration.
        self.flow_cache = flow_cache
        self.clock = 0.0
        #: Armed :class:`~repro.faults.injector.FaultInjector`, if any.
        #: :meth:`inject` compares the clock against its ``next_transition``
        #: once per injection — the whole cost of an idle fault layer.
        self.faults = None
        #: Fault-layer loss windows: ``{(src, dst) names | None: rate}``
        #: (None = every link), drawn against :attr:`fault_rng` so chaos
        #: never perturbs the topology RNG stream.
        self.link_loss: Dict[Optional[Tuple[str, str]], float] = {}
        self.fault_rng: Optional[random.Random] = None
        #: Packets the fault layer dropped (read by fault telemetry).
        self.fault_drops = 0
        self.devices: Dict[str, Device] = {}
        self._addr_owner: Dict[int, Device] = {}
        self.total_hops = 0
        self.total_injected = 0
        #: Topology generation: bumped by every register/unregister/bind so
        #: per-device flow caches can detect staleness with one comparison.
        self.generation = 0
        #: Flow-cache effectiveness counters (read by benches and tests).
        self.flow_hits = 0
        self.flow_misses = 0
        #: Cached :class:`~repro.net.columnar.ColumnarFib`; rebuilt whenever
        #: ``generation`` or any table version moves (see ``columnar_fib``).
        self._columnar_fib = None
        #: The probe-lifecycle span currently being recorded, if any.  The
        #: scanner sets this around :meth:`inject` for sampled probes; every
        #: other injection pays one ``is not None`` check per hop and
        #: nothing else (the tracing fast-path contract).  While a span is
        #: active the flow-cache fast path stands down, so the span sees
        #: every route-lookup decision exactly as the slow path takes it.
        self.active_trace: Optional["ProbeTrace"] = None

    def trace_event(self, name: str, **fields: object) -> None:
        """Record a forwarding-decision event on the active span, if any."""
        if self.active_trace is not None:
            self.active_trace.add(name, self.clock, **fields)

    # -- topology ------------------------------------------------------------

    def register(self, device: Device) -> Device:
        if device.name in self.devices:
            raise NetworkError(f"duplicate device name {device.name!r}")
        self.devices[device.name] = device
        self.generation += 1
        for addr in device.addresses:
            self.bind(addr, device)
        return device

    def unregister(self, device: Device) -> None:
        """Remove a device and all its address bindings (prefix rotation,
        churn modelling).  Routes pointing at it become blackholes naturally
        (the next hop no longer resolves), and the generation bump flushes
        every flow-cache entry that resolved through it."""
        if self.devices.get(device.name) is not device:
            raise NetworkError(f"device {device.name!r} is not registered")
        del self.devices[device.name]
        self.generation += 1
        for addr in list(device.addresses):
            owner = self._addr_owner.get(addr.value)
            if owner is device:
                del self._addr_owner[addr.value]

    def bind(self, addr: IPv6Addr, device: Device) -> None:
        existing = self._addr_owner.get(addr.value)
        if existing is not None and existing is not device:
            raise NetworkError(
                f"address {addr} already owned by {existing.name!r}"
            )
        self._addr_owner[addr.value] = device
        device.addresses.add(addr)
        self.generation += 1

    def attach_host(self, host: Host, gateway: Device) -> Host:
        """Register a LAN host and remember its first-hop gateway."""
        host.gateway = gateway
        return self.register(host)  # type: ignore[return-value]

    def device_at(self, addr: IPv6Addr) -> Optional[Device]:
        return self._addr_owner.get(addr.value)

    def advance(self, seconds: float) -> None:
        self.clock += seconds

    # -- forwarding engine -----------------------------------------------------

    def inject(
        self, packet: Packet, vantage: Device
    ) -> Tuple[List[Packet], DeliveryTrace]:
        """Send ``packet`` from ``vantage`` and run the network to quiescence.

        Returns the packets that arrived back at the vantage, plus a trace of
        everything the engine did for this injection.
        """
        trace = DeliveryTrace()
        inbox: List[Packet] = []
        queue: Deque[Tuple[Device, Packet]] = deque()
        self.total_injected += 1

        faults = self.faults
        if faults is not None and self.clock >= faults.next_transition:
            faults.sync(self.clock)

        self._originate(vantage, packet, queue, trace)
        self._drain(queue, vantage, inbox, trace)
        return inbox, trace

    def _drain(
        self,
        queue: Deque[Tuple[Device, Packet]],
        vantage: Device,
        inbox: List[Packet],
        trace: DeliveryTrace,
    ) -> None:
        """Run the forwarding engine until every queued packet settles.

        Factored out of :meth:`inject` so the columnar engine can resume
        scalar forwarding mid-flight: it seeds ``trace`` with the hops the
        vectorised phase already took, queues the packet at its ejection
        device, and re-enters here for the stateful tail (NDP, error rate
        limiting, subclass hooks) with bit-identical semantics.
        """
        # Hot-loop hoists: every per-hop attribute/constant below is looked
        # up once per injection instead of once per hop.
        fast = self.flow_cache and self.active_trace is None
        # When nothing observes individual hops (no loss model, no link/path
        # recording), the fast path appends to the queue directly instead of
        # paying a _enqueue call per hop.
        plain = fast and not (
            self.loss_rate or self.link_loss
            or self.record_links or self.record_paths
        )
        max_hops = self.max_hops
        popleft = queue.popleft
        append = queue.append
        addr_owner = self._addr_owner

        while queue:
            if trace.hops > max_hops:
                raise NetworkError(
                    f"forwarding exceeded {self.max_hops} hops; "
                    "unbounded loop (hop limits should prevent this)"
                )
            device, current = popleft()
            dst = current.dst
            if device is vantage and dst in device.addresses:
                inbox.append(current)
                trace.delivered += 1
                if self.active_trace is not None:
                    self.active_trace.add(
                        "delivered", self.clock, device=device.name,
                        src=str(current.src),
                    )
                continue
            if (
                fast
                and device.forwards
                and device.flow_forward_safe
                and dst not in device.addresses
            ):
                # Forwarding fast path: one dict probe resolves the hop.
                entry = device.flow_entry(dst.value, self)
                action = entry.action
                if action != FLOW_UNREACHABLE and action != FLOW_BLACKHOLE:
                    # FORWARD / CONNECTED / UNRESOLVED all pass the route
                    # check, so (as in the slow path) the hop-limit test
                    # comes before any next-hop resolution outcome.
                    hop_limit = current.hop_limit
                    if hop_limit <= 1:
                        error = device._make_error(
                            current,
                            Icmpv6Type.TIME_EXCEEDED,
                            int(TimeExceededCode.HOP_LIMIT),
                            self,
                        )
                        if error is not None:
                            trace.errors_generated += 1
                            self._originate(device, error, queue, trace)
                        continue
                    if action == FLOW_FORWARD:
                        if plain:
                            trace.hops += 1
                            self.total_hops += 1
                            append((
                                entry.next_device,
                                current.with_hop_limit(hop_limit - 1),
                            ))
                        else:
                            self._enqueue(
                                device,
                                entry.next_device,  # type: ignore[arg-type]
                                current.with_hop_limit(hop_limit - 1),
                                queue,
                                trace,
                            )
                        continue
                    if action == FLOW_CONNECTED:
                        # On-link: NDP decides per destination.
                        if resolve(device, dst, self):
                            if plain:
                                trace.hops += 1
                                self.total_hops += 1
                                append((
                                    addr_owner[dst.value],
                                    current.with_hop_limit(hop_limit - 1),
                                ))
                            else:
                                self._enqueue(
                                    device,
                                    addr_owner[dst.value],
                                    current.with_hop_limit(hop_limit - 1),
                                    queue,
                                    trace,
                                )
                            continue
                        error = device._make_error(
                            current,
                            Icmpv6Type.DEST_UNREACHABLE,
                            int(UnreachableCode.ADDR_UNREACHABLE),
                            self,
                        )
                        if error is not None:
                            trace.errors_generated += 1
                            self._originate(device, error, queue, trace)
                        continue
                    trace.drops += 1  # FLOW_UNRESOLVED: churn blackhole
                    continue
                if action == FLOW_UNREACHABLE:
                    error = device._make_error(
                        current,
                        Icmpv6Type.DEST_UNREACHABLE,
                        int(UnreachableCode.NO_ROUTE),
                        self,
                    )
                    if error is not None:
                        trace.errors_generated += 1
                        self._originate(device, error, queue, trace)
                    continue
                continue  # FLOW_BLACKHOLE: silent discard
            result = device.receive(current, self)
            self._apply(device, result, queue, trace)

    def inject_block(
        self,
        packets: List[Packet],
        vantage: Device,
        clocks: Optional[List[float]] = None,
    ) -> List[Tuple[List[Packet], DeliveryTrace]]:
        """Inject a batch of packets, returning one ``inject`` result each.

        Observably identical to calling :meth:`inject` per packet with
        ``self.clock`` set to the matching ``clocks`` entry first (the
        entry clock is restored afterwards).  When the columnar engine is
        usable (numpy present, no tracing/loss/fault window active) the
        batch advances through pure forwarding hops as struct-of-arrays
        vector ops and only ejects to the scalar engine for stateful work;
        otherwise this is literally the sequential loop.
        """
        from repro.net import columnar

        return columnar.inject_block(self, packets, vantage, clocks)

    def columnar_fib(self):
        """The cached columnar FIB for the current topology generation.

        Recompiled lazily whenever the generation counter or any device
        routing-table version moved — the same invalidation protocol the
        per-device flow caches use.
        """
        from repro.net import columnar

        fib = self._columnar_fib
        if fib is None or not fib.valid(self):
            fib = columnar.ColumnarFib.compile(self)
            self._columnar_fib = fib
        return fib

    def _apply(
        self,
        device: Device,
        result: ReceiveResult,
        queue: Deque[Tuple[Device, Packet]],
        trace: DeliveryTrace,
    ) -> None:
        for reply in result.replies:
            trace.errors_generated += 1
            self._originate(device, reply, queue, trace)
        if result.forward is not None:
            next_addr, packet = result.forward
            self._hop(device, next_addr, packet, queue, trace)

    def _originate(
        self,
        device: Device,
        packet: Packet,
        queue: Deque[Tuple[Device, Packet]],
        trace: DeliveryTrace,
    ) -> None:
        """Route a self-originated packet out of ``device``."""
        if packet.dst in device.addresses:
            queue.append((device, packet))
            return
        if device.forwards:
            route = device.table.lookup(packet.dst)
            if route is None:
                trace.drops += 1
                return
            if route.kind is RouteKind.UNREACHABLE:
                trace.drops += 1
                return
            next_addr = (
                packet.dst if route.kind is RouteKind.CONNECTED else route.next_hop
            )
            assert next_addr is not None
            self._hop(device, next_addr, packet, queue, trace)
            return
        gateway = device.gateway
        if gateway is None:
            trace.drops += 1
            return
        self._enqueue(device, gateway, packet, queue, trace)

    def _hop(
        self,
        device: Device,
        next_addr: IPv6Addr,
        packet: Packet,
        queue: Deque[Tuple[Device, Packet]],
        trace: DeliveryTrace,
    ) -> None:
        next_device = self._addr_owner.get(next_addr.value)
        if next_device is None:
            trace.drops += 1  # next hop fell off the topology: blackhole
            if self.active_trace is not None:
                self.active_trace.add(
                    "drop", self.clock, device=device.name,
                    reason="unresolvable-next-hop", next_hop=str(next_addr),
                )
            return
        self._enqueue(device, next_device, packet, queue, trace)

    def _enqueue(
        self,
        src: Device,
        dst: Device,
        packet: Packet,
        queue: Deque[Tuple[Device, Packet]],
        trace: DeliveryTrace,
    ) -> None:
        if self.loss_rate and self.rng.random() < self.loss_rate:
            trace.drops += 1
            if self.active_trace is not None:
                self.active_trace.add(
                    "loss", self.clock, src=src.name, dst=dst.name,
                )
            return
        if self.link_loss:
            rate = self.link_loss.get((src.name, dst.name))
            if rate is None:
                rate = self.link_loss.get(None)
            if rate is not None and self.fault_rng.random() < rate:  # type: ignore[union-attr]
                trace.drops += 1
                self.fault_drops += 1
                if self.active_trace is not None:
                    self.active_trace.add(
                        "fault_loss", self.clock, src=src.name, dst=dst.name,
                    )
                return
        if self.record_links:
            link = Link(src.name, dst.name)
            trace.link_counts[link] = trace.link_counts.get(link, 0) + 1
        trace.hops += 1
        self.total_hops += 1
        if self.record_paths:
            trace.path.append(dst.name)
        if self.active_trace is not None:
            self.active_trace.add(
                "hop", self.clock, device=dst.name, via=src.name,
                dst=str(packet.dst), hop_limit=packet.hop_limit,
            )
        queue.append((dst, packet))
