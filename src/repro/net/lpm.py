"""The one longest-prefix-match trie everything routes through.

Three parts of the simulator need "most specific covering prefix" queries:
forwarding tables (:mod:`repro.net.routing`), scanner block/allow lists
(:mod:`repro.core.blocklist`), and BGP origin attribution
(:class:`repro.loop.bgp.BgpTable`).  They historically carried three
near-identical binary-trie walks; this module is the single shared
implementation they all wrap now.

:class:`PrefixTrie` is a bitwise binary trie mapping
:class:`~repro.net.addr.IPv6Prefix` keys to arbitrary values.  Insert and
exact lookup cost O(prefix length); :meth:`PrefixTrie.longest` walks at most
128 bits and returns the most specific stored (prefix, value) pair covering
an address — the LPM semantics RFC 1812 forwarding, ZMap-style blocklists,
and Routeviews-style origin lookup all share.
"""

from __future__ import annotations

from typing import Generic, Iterator, List, Optional, Tuple, TypeVar

from repro.net.addr import IPv6Addr, IPv6Prefix

V = TypeVar("V")


class _Node(Generic[V]):
    __slots__ = ("zero", "one", "entry")

    def __init__(self) -> None:
        self.zero: Optional[_Node[V]] = None
        self.one: Optional[_Node[V]] = None
        self.entry: Optional[Tuple[IPv6Prefix, V]] = None


class PrefixTrie(Generic[V]):
    """A binary trie from IPv6 prefixes to values, with LPM queries."""

    def __init__(self) -> None:
        self._root: _Node[V] = _Node()
        self._count = 0

    def set(self, prefix: IPv6Prefix, value: V) -> bool:
        """Store ``value`` under ``prefix`` (replacing any previous value).

        Returns True when the prefix was new, False on replacement — which
        is what lets wrappers keep an O(1) length counter semantics-free.
        """
        node = self._root
        for depth in range(prefix.length):
            bit = (prefix.network >> (127 - depth)) & 1
            if bit:
                if node.one is None:
                    node.one = _Node()
                node = node.one
            else:
                if node.zero is None:
                    node.zero = _Node()
                node = node.zero
        created = node.entry is None
        if created:
            self._count += 1
        node.entry = (prefix, value)
        return created

    def get(self, prefix: IPv6Prefix) -> Optional[V]:
        """The value stored under exactly ``prefix``, or None."""
        node = self._find(prefix)
        if node is None or node.entry is None:
            return None
        return node.entry[1]

    def delete(self, prefix: IPv6Prefix) -> bool:
        """Remove the exact ``prefix``.  Returns True if it was present."""
        node = self._find(prefix)
        if node is None or node.entry is None:
            return False
        node.entry = None
        self._count -= 1
        return True

    def longest(self, addr: IPv6Addr | int) -> Optional[Tuple[IPv6Prefix, V]]:
        """The most specific stored (prefix, value) covering ``addr``."""
        value = addr.value if isinstance(addr, IPv6Addr) else addr
        node: Optional[_Node[V]] = self._root
        best = self._root.entry
        for depth in range(128):
            bit = (value >> (127 - depth)) & 1
            node = node.one if bit else node.zero  # type: ignore[union-attr]
            if node is None:
                break
            if node.entry is not None:
                best = node.entry
        return best

    def _find(self, prefix: IPv6Prefix) -> Optional[_Node[V]]:
        node: Optional[_Node[V]] = self._root
        for depth in range(prefix.length):
            if node is None:
                return None
            bit = (prefix.network >> (127 - depth)) & 1
            node = node.one if bit else node.zero
        return node

    def items(self) -> Iterator[Tuple[IPv6Prefix, V]]:
        """Every stored (prefix, value) pair, in trie traversal order."""
        stack: List[_Node[V]] = [self._root]
        while stack:
            node = stack.pop()
            if node.entry is not None:
                yield node.entry
            if node.one is not None:
                stack.append(node.one)
            if node.zero is not None:
                stack.append(node.zero)

    def __len__(self) -> int:
        return self._count

    def __contains__(self, prefix: IPv6Prefix) -> bool:
        node = self._find(prefix)
        return node is not None and node.entry is not None
