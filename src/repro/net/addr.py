"""IPv6 address and prefix arithmetic.

Addresses are modelled as immutable wrappers around 128-bit integers so that
the scanner's permutation arithmetic, the routing tables and the IID analysis
all operate on plain ints.  Parsing and formatting follow RFC 4291 (textual
representation) and RFC 5952 (canonical compressed form).  EUI-64 interface
identifier construction follows RFC 4291 Appendix A: the 48-bit MAC is split,
``ff:fe`` is inserted in the middle, and the universal/local bit is flipped.

The classes here are deliberately lighter than :mod:`ipaddress` — no
host-mask/netmask niceties, just what the periphery-discovery pipeline needs —
but the test suite cross-validates parsing and formatting against the standard
library on randomly generated addresses.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

MAX_ADDR = (1 << 128) - 1

_HEX_GROUP = re.compile(r"^[0-9a-fA-F]{1,4}$")


class AddressError(ValueError):
    """Raised for malformed addresses, prefixes, or MAC strings."""


def parse_ipv6(text: str) -> int:
    """Parse an IPv6 address string into its 128-bit integer value.

    Supports full and ``::``-compressed forms.  Embedded IPv4 dotted-quad
    tails (``::ffff:192.0.2.1``) are accepted because ISP CPEs frequently
    embed IPv4 addresses in IIDs and the classifier needs to parse them.
    """
    if not text:
        raise AddressError("empty IPv6 address")
    text = text.strip()
    if text.count("::") > 1:
        raise AddressError(f"more than one '::' in {text!r}")

    # Handle an embedded IPv4 dotted-quad tail by converting it to two
    # hextets up front, so the remaining logic only sees hex groups.
    if "." in text:
        head, _, tail = text.rpartition(":")
        if not head:
            raise AddressError(f"malformed embedded IPv4 in {text!r}")
        v4 = _parse_ipv4_tail(tail)
        text = f"{head}:{v4 >> 16:x}:{v4 & 0xFFFF:x}"

    if "::" in text:
        left_text, right_text = text.split("::")
        left = left_text.split(":") if left_text else []
        right = right_text.split(":") if right_text else []
        missing = 8 - len(left) - len(right)
        if missing < 1:
            raise AddressError(f"'::' expands to nothing in {text!r}")
        groups = left + ["0"] * missing + right
    else:
        groups = text.split(":")

    if len(groups) != 8:
        raise AddressError(f"expected 8 groups in {text!r}, got {len(groups)}")

    value = 0
    for group in groups:
        if not _HEX_GROUP.match(group):
            raise AddressError(f"bad hex group {group!r} in {text!r}")
        value = (value << 16) | int(group, 16)
    return value


def _parse_ipv4_tail(tail: str) -> int:
    octets = tail.split(".")
    if len(octets) != 4:
        raise AddressError(f"bad IPv4 tail {tail!r}")
    value = 0
    for octet in octets:
        if not octet.isdigit() or (len(octet) > 1 and octet[0] == "0"):
            raise AddressError(f"bad IPv4 octet {octet!r}")
        number = int(octet)
        if number > 255:
            raise AddressError(f"IPv4 octet out of range: {octet}")
        value = (value << 8) | number
    return value


def format_ipv6(value: int) -> str:
    """Format a 128-bit integer as the RFC 5952 canonical string.

    The longest run of two or more zero groups is compressed with ``::``
    (leftmost run wins ties) and hex digits are lower-case.
    """
    if not 0 <= value <= MAX_ADDR:
        raise AddressError(f"address out of range: {value:#x}")
    groups = [(value >> (112 - 16 * i)) & 0xFFFF for i in range(8)]

    best_start, best_len = -1, 0
    run_start, run_len = -1, 0
    for i, group in enumerate(groups):
        if group == 0:
            if run_start < 0:
                run_start, run_len = i, 0
            run_len += 1
            if run_len > best_len:
                best_start, best_len = run_start, run_len
        else:
            run_start, run_len = -1, 0

    if best_len < 2:
        return ":".join(f"{g:x}" for g in groups)
    head = ":".join(f"{g:x}" for g in groups[:best_start])
    tail = ":".join(f"{g:x}" for g in groups[best_start + best_len:])
    return f"{head}::{tail}"


@dataclass(frozen=True, order=True)
class MacAddress:
    """A 48-bit IEEE MAC address.

    The top 24 bits are the Organisationally Unique Identifier (OUI), which
    the vendor-identification pipeline resolves against
    :class:`repro.net.oui.OuiRegistry`.
    """

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value < (1 << 48):
            raise AddressError(f"MAC out of range: {self.value:#x}")

    @classmethod
    def from_string(cls, text: str) -> "MacAddress":
        parts = text.strip().lower().replace("-", ":").split(":")
        if len(parts) != 6 or any(len(p) not in (1, 2) for p in parts):
            raise AddressError(f"bad MAC address {text!r}")
        try:
            octets = [int(p, 16) for p in parts]
        except ValueError as exc:
            raise AddressError(f"bad MAC address {text!r}") from exc
        value = 0
        for octet in octets:
            value = (value << 8) | octet
        return cls(value)

    @property
    def oui(self) -> int:
        """The 24-bit organisationally unique identifier."""
        return self.value >> 24

    def to_eui64_iid(self) -> int:
        """Build the modified-EUI-64 interface identifier (RFC 4291 App. A).

        ``ff:fe`` is inserted between the OUI and the NIC-specific half and
        the universal/local bit (bit 1 of the first octet) is inverted.
        """
        high24 = self.value >> 24
        low24 = self.value & 0xFFFFFF
        iid = (high24 << 40) | (0xFFFE << 24) | low24
        return iid ^ (1 << 57)  # flip the U/L bit of the first octet

    @classmethod
    def from_eui64_iid(cls, iid: int) -> "MacAddress":
        """Recover the MAC embedded in a modified-EUI-64 IID.

        Raises :class:`AddressError` if the IID lacks the ``ff:fe`` marker.
        """
        if not is_eui64_iid(iid):
            raise AddressError(f"IID {iid:#018x} is not EUI-64 format")
        flipped = iid ^ (1 << 57)
        high24 = flipped >> 40
        low24 = flipped & 0xFFFFFF
        return cls((high24 << 24) | low24)

    def __str__(self) -> str:
        octets = [(self.value >> (40 - 8 * i)) & 0xFF for i in range(6)]
        return ":".join(f"{o:02x}" for o in octets)


def is_eui64_iid(iid: int) -> bool:
    """True if the 64-bit IID carries the EUI-64 ``ff:fe`` middle marker."""
    return (iid >> 24) & 0xFFFF == 0xFFFE


@dataclass(frozen=True, order=True)
class IPv6Addr:
    """An immutable 128-bit IPv6 address."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= MAX_ADDR:
            raise AddressError(f"address out of range: {self.value:#x}")

    @classmethod
    def from_string(cls, text: str) -> "IPv6Addr":
        return cls(parse_ipv6(text))

    @classmethod
    def from_bytes(cls, data: bytes) -> "IPv6Addr":
        if len(data) != 16:
            raise AddressError(f"expected 16 bytes, got {len(data)}")
        return cls(int.from_bytes(data, "big"))

    @classmethod
    def from_parts(cls, prefix: "IPv6Prefix", iid: int) -> "IPv6Addr":
        """Assemble prefix bits + interface identifier (SLAAC-style)."""
        host_bits = 128 - prefix.length
        if iid >> host_bits:
            raise AddressError(
                f"IID {iid:#x} does not fit in {host_bits} host bits"
            )
        return cls(prefix.network | iid)

    @classmethod
    def from_eui64(cls, prefix: "IPv6Prefix", mac: MacAddress) -> "IPv6Addr":
        """SLAAC address from a /64 prefix and a MAC (RFC 4862 + RFC 4291)."""
        if prefix.length != 64:
            raise AddressError("EUI-64 SLAAC requires a /64 prefix")
        return cls(prefix.network | mac.to_eui64_iid())

    def to_bytes(self) -> bytes:
        return self.value.to_bytes(16, "big")

    @property
    def iid(self) -> int:
        """The low 64 bits (interface identifier under the /64 convention)."""
        return self.value & ((1 << 64) - 1)

    @property
    def slash64(self) -> "IPv6Prefix":
        """The enclosing /64 prefix — the paper's unit of periphery dedup."""
        return IPv6Prefix(self.value & ~((1 << 64) - 1), 64)

    def prefix(self, length: int) -> "IPv6Prefix":
        """The enclosing prefix of the given length."""
        return IPv6Prefix(self.value & _mask(length), length)

    def embedded_mac(self) -> MacAddress | None:
        """The MAC embedded in an EUI-64 IID, or None."""
        if is_eui64_iid(self.iid):
            return MacAddress.from_eui64_iid(self.iid)
        return None

    def __str__(self) -> str:
        return format_ipv6(self.value)


def _mask(length: int) -> int:
    if not 0 <= length <= 128:
        raise AddressError(f"prefix length out of range: {length}")
    return MAX_ADDR ^ ((1 << (128 - length)) - 1)


@dataclass(frozen=True, order=True)
class IPv6Prefix:
    """An IPv6 prefix: network bits plus a length, e.g. ``2001:db8::/32``."""

    network: int
    length: int

    def __post_init__(self) -> None:
        mask = _mask(self.length)
        if self.network & ~mask:
            raise AddressError(
                f"host bits set in {format_ipv6(self.network)}/{self.length}"
            )

    @classmethod
    def from_string(cls, text: str) -> "IPv6Prefix":
        addr_text, _, len_text = text.partition("/")
        if not len_text:
            raise AddressError(f"missing /length in {text!r}")
        try:
            length = int(len_text)
        except ValueError as exc:
            raise AddressError(f"bad prefix length in {text!r}") from exc
        value = parse_ipv6(addr_text)
        if value & ~_mask(length):
            raise AddressError(f"host bits set in {text!r}")
        return cls(value, length)

    @property
    def mask(self) -> int:
        return _mask(self.length)

    @property
    def num_addresses(self) -> int:
        return 1 << (128 - self.length)

    @property
    def first(self) -> IPv6Addr:
        return IPv6Addr(self.network)

    @property
    def last(self) -> IPv6Addr:
        return IPv6Addr(self.network | ((1 << (128 - self.length)) - 1))

    def contains(self, addr: IPv6Addr | int) -> bool:
        value = addr.value if isinstance(addr, IPv6Addr) else addr
        return value & self.mask == self.network

    def contains_prefix(self, other: "IPv6Prefix") -> bool:
        return other.length >= self.length and self.contains(other.network)

    def subprefix(self, index: int, length: int) -> "IPv6Prefix":
        """The index-th sub-prefix of the given length, in address order.

        E.g. ``IPv6Prefix.from_string("2001:db8::/32").subprefix(5, 64)`` is
        ``2001:db8:0:5::/64``.  This is the primitive the scanner's
        permutation drives: sub-prefix index → concrete prefix.
        """
        if length < self.length:
            raise AddressError(
                f"sub-prefix /{length} shorter than parent /{self.length}"
            )
        count = 1 << (length - self.length)
        if not 0 <= index < count:
            raise AddressError(f"sub-prefix index {index} out of range")
        return IPv6Prefix(self.network | (index << (128 - length)), length)

    def subprefix_index(self, addr: IPv6Addr | int, length: int) -> int:
        """Inverse of :meth:`subprefix` for an address inside this prefix."""
        value = addr.value if isinstance(addr, IPv6Addr) else addr
        if not self.contains(value):
            raise AddressError("address outside prefix")
        return (value >> (128 - length)) & ((1 << (length - self.length)) - 1)

    def subprefixes(self, length: int) -> Iterator["IPv6Prefix"]:
        """Iterate every sub-prefix of the given length, in address order."""
        for index in range(1 << (length - self.length)):
            yield self.subprefix(index, length)

    def address(self, iid: int) -> IPv6Addr:
        """The address obtained by OR-ing an offset into the host bits."""
        return IPv6Addr.from_parts(self, iid)

    def __str__(self) -> str:
        return f"{format_ipv6(self.network)}/{self.length}"
