"""Deterministic, picklable topology specifications.

A :class:`~repro.net.network.Network` holds live object graphs (devices,
routing tables, bound services) that do not survive pickling, so the
orchestration engine cannot ship a built topology to a pool worker.  It
ships a :class:`TopologySpec` instead: a frozen recipe — builder kind plus
keyword parameters — from which every worker deterministically rebuilds the
identical simulated Internet.  Because the builders are seeded, two workers
holding the same spec agree on every address, route, and defect, which is
what lets shard results merge into exactly the unsharded reply set.

The ``deployment`` kind builds on :func:`repro.isp.builder.build_deployment`;
the import happens lazily inside :meth:`TopologySpec.build` so this module
does not invert the net ← isp layering at import time.  Additional kinds can
be registered with :func:`register_topology` (workers inherit registrations
through process-fork; spawn-based pools must re-register on import).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.net.device import Device
from repro.net.network import Network


@dataclass
class BuiltTopology:
    """A live topology as the scan engine consumes it."""

    network: Network
    vantage: Device
    #: The builder's native object (``MiniTopology``, ``Deployment``, …) for
    #: callers that need more than network + vantage.
    handle: object = None


_REGISTRY: Dict[str, Callable[..., BuiltTopology]] = {}


def register_topology(kind: str, builder: Callable[..., BuiltTopology]) -> None:
    """Register a custom topology builder under ``kind``."""
    _REGISTRY[kind] = builder


@dataclass(frozen=True)
class TopologySpec:
    """A rebuildable topology description: kind + sorted keyword params."""

    kind: str
    params: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def mini(cls, seed: int = 1, **network_kwargs: object) -> "TopologySpec":
        """The hand-built demo topology (:func:`repro.net.testbed.build_mini`)."""
        return cls("mini", tuple(sorted({"seed": seed, **network_kwargs}.items())))

    @classmethod
    def deployment(
        cls,
        profiles: Optional[Sequence[str]] = None,
        scale: float = 1000.0,
        seed: int = 0,
        min_devices: int = 40,
        loss_rate: float = 0.0,
    ) -> "TopologySpec":
        """A :func:`repro.isp.builder.build_deployment` world.

        ``profiles`` are profile *keys* (None = all fifteen paper blocks);
        the per-ISP RNG streams are keyed by (seed, profile index), so a
        block is bit-identical whether built alone or among the fifteen.
        """
        params: Dict[str, object] = {
            "scale": scale,
            "seed": seed,
            "min_devices": min_devices,
            "loss_rate": loss_rate,
        }
        if profiles is not None:
            params["profiles"] = tuple(profiles)
        return cls("deployment", tuple(sorted(params.items())))

    @classmethod
    def internet(
        cls,
        seed: int = 0,
        scale: float = 1000.0,
        n_tier1: int = 3,
        n_ix: int = 2,
        n_tail_ases: int = 220,
        window_bits: int = 8,
        multihome_rate: float = 0.25,
        **extra: object,
    ) -> "TopologySpec":
        """A :func:`repro.bgp.build_internet` world: the CPE-edge AS
        population under a compiled tier-1/regional BGP fabric."""
        params: Dict[str, object] = {
            "seed": seed,
            "scale": scale,
            "n_tier1": n_tier1,
            "n_ix": n_ix,
            "n_tail_ases": n_tail_ases,
            "window_bits": window_bits,
            "multihome_rate": multihome_rate,
            **extra,
        }
        return cls("internet", tuple(sorted(params.items())))

    @classmethod
    def leak_demo(
        cls,
        seed: int = 0,
        n_devices: int = 12,
        n_loops: int = 4,
        window_bits: int = 8,
    ) -> "TopologySpec":
        """The two-transit route-leak world
        (:func:`repro.bgp.build_leak_demo`)."""
        params: Dict[str, object] = {
            "seed": seed,
            "n_devices": n_devices,
            "n_loops": n_loops,
            "window_bits": window_bits,
        }
        return cls("leak-demo", tuple(sorted(params.items())))

    def build(self) -> BuiltTopology:
        """Rebuild the topology this spec describes."""
        params = dict(self.params)
        if self.kind == "mini":
            from repro.net.testbed import build_mini

            topo = build_mini(**params)  # type: ignore[arg-type]
            return BuiltTopology(topo.network, topo.vantage, topo)
        if self.kind == "deployment":
            from repro.isp.builder import build_deployment
            from repro.isp.profiles import profile_by_key

            keys = params.pop("profiles", None)
            profiles = (
                [profile_by_key(key) for key in keys]  # type: ignore[union-attr]
                if keys is not None
                else None
            )
            dep = build_deployment(profiles=profiles, **params)  # type: ignore[arg-type]
            return BuiltTopology(dep.network, dep.vantage, dep)
        if self.kind == "internet":
            from repro.bgp.world import build_internet

            world = build_internet(**params)  # type: ignore[arg-type]
            return BuiltTopology(world.network, world.vantage, world)
        if self.kind == "leak-demo":
            from repro.bgp.world import build_leak_demo

            world = build_leak_demo(**params)  # type: ignore[arg-type]
            return BuiltTopology(world.network, world.vantage, world)
        builder = _REGISTRY.get(self.kind)
        if builder is None:
            raise ValueError(f"unknown topology kind {self.kind!r}")
        return builder(**params)

    def __str__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.params)
        return f"{self.kind}({inner})"
