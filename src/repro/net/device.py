"""Simulated IPv6 devices: hosts, routers, ISP routers, CPEs, and UEs.

These models implement the RFC behaviours the paper's measurements rest on:

* **RFC 4443 §3.1** — a router that cannot deliver a packet generates an
  ICMPv6 Destination Unreachable.  This is the entire basis of the periphery
  discovery technique: a probe to a nonexistent IID inside a delegated prefix
  makes the CPE/UE reveal its own (WAN) address in the error's source field.
* **RFC 8200 §3** — hop-limit decrement on every forwarding hop, with an
  ICMPv6 Time Exceeded when it reaches zero (RFC 4443 §3.3).  This bounds the
  routing-loop attack at a 255−n amplification factor.
* **RFC 7084 requirement (§VI mitigation)** — a correct CPE installs an
  unreachable (discard) route for delegated-but-unassigned space.  The
  vulnerable firmware models omit it, reproducing the paper's flaw.

Devices never generate ICMPv6 errors in response to ICMPv6 errors
(RFC 4443 §2.4(e)) and rate-limit error generation (§2.4(f)).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.net.addr import IPv6Addr, IPv6Prefix
from repro.net.packet import (
    Icmpv6Message,
    Icmpv6Type,
    Packet,
    TcpFlags,
    TcpSegment,
    TimeExceededCode,
    UdpDatagram,
    UnreachableCode,
    icmpv6_error,
)
from repro.net.routing import BaseRoutingTable, HashRoutingTable, Route, RouteKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.network import Network
    from repro.services.base import Service


@dataclass
class ReceiveResult:
    """What a device did with a packet.

    ``replies`` are new packets this device originated (echo replies, service
    responses, ICMPv6 errors).  ``forward`` is a (next-device-address, packet)
    pair when the packet should continue through the network.
    """

    replies: List[Packet] = field(default_factory=list)
    forward: Optional[Tuple[IPv6Addr, Packet]] = None


# -- forwarding flow cache ---------------------------------------------------
#
# Periphery scanning re-traverses the same ISP→CPE route for every target in
# a sub-prefix, so the per-device route resolution is highly cacheable.  A
# FlowEntry is one resolved forwarding decision: the LPM result *plus* the
# next-hop device object, so the fast path skips the routing-table probes,
# the Route-kind branching, and the address→device lookup on every hop.

#: Resolved NEXT_HOP: enqueue straight to ``entry.next_device``.
FLOW_FORWARD = 0
#: On-link delivery: NDP-resolve the (per-packet) destination.
FLOW_CONNECTED = 1
#: No route / unreachable route: answer ICMPv6 no-route unreachable.
FLOW_UNREACHABLE = 2
#: Blackhole route: silent discard.
FLOW_BLACKHOLE = 3
#: Next hop no longer resolves to a device (churn blackhole): drop.
FLOW_UNRESOLVED = 4

#: Entries per device before the cache self-clears (bounds memory when a
#: scan sweeps a huge window through one aggregation router).
FLOW_CACHE_MAX = 65536


class FlowEntry:
    """One cached (egress decision, next-hop device) pair."""

    __slots__ = ("action", "next_device", "route")

    def __init__(self, action: int, next_device: Optional["Device"],
                 route: Optional["Route"]) -> None:
        self.action = action
        self.next_device = next_device
        self.route = route


class ErrorRateLimiter:
    """Token-bucket limiter for ICMPv6 error generation (RFC 4443 §2.4(f))."""

    def __init__(self, rate_per_second: float = 1000.0, burst: float = 100.0):
        self.rate = rate_per_second
        self.burst = burst
        self._tokens = burst
        #: Lazily initialised from the first observed clock: anchoring at
        #: 0.0 would grant the first ``allow()`` a full refill for however
        #: much virtual time passed before this limiter saw any traffic —
        #: wrong for limiters installed mid-scan (fault injection).
        self._last: Optional[float] = None

    def allow(self, now: float) -> bool:
        if self._last is None:
            self._last = now
        elapsed = max(0.0, now - self._last)
        self._last = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


class Device:
    """Base class: owns addresses, answers echo probes, runs services."""

    #: Routers forward; plain hosts and UEs-without-tethering do not.
    forwards = False

    def __init__(
        self,
        name: str,
        primary_address: IPv6Addr,
        vendor: str = "",
        model: str = "",
        error_rate_limit: Optional[ErrorRateLimiter] = None,
    ) -> None:
        self.name = name
        self.primary_address = primary_address
        self.vendor = vendor
        self.model = model
        self.table: BaseRoutingTable = HashRoutingTable()
        self.addresses: set[IPv6Addr] = {primary_address}
        self.udp_services: Dict[int, "Service"] = {}
        self.tcp_services: Dict[int, "Service"] = {}
        self.error_limiter = error_rate_limit or ErrorRateLimiter()
        self.errors_suppressed = 0
        #: First-hop router for self-originated traffic on non-forwarding
        #: devices (set by Network.attach_host or the caller).
        self.gateway: Optional["Device"] = None
        #: Hardware address advertised in Neighbor Advertisements.
        self.lladdr: Optional[object] = None
        from repro.net.ndp import NeighborCache

        self.neighbor_cache = NeighborCache()
        #: Route-resolution flow cache (see module docs above) plus the
        #: (network generation, table version) stamp it was filled under.
        self._flow_cache: Dict[int, FlowEntry] = {}
        self._flow_stamp: Tuple[int, int] = (-1, -1)
        #: The engine may bypass :meth:`receive`/:meth:`_forward` only when
        #: this device's forwarding is exactly the base implementation;
        #: subclasses with behavioural overrides must clear the flag.
        self.flow_forward_safe = type(self)._forward is Device._forward

    # -- configuration -----------------------------------------------------

    def add_address(self, addr: IPv6Addr) -> None:
        self.addresses.add(addr)

    def bind_service(self, service: "Service") -> None:
        """Expose a service on this device (TCP and/or UDP per its spec)."""
        if service.spec.udp:
            self.udp_services[service.spec.port] = service
        if service.spec.tcp:
            self.tcp_services[service.spec.port] = service

    def owns(self, addr: IPv6Addr) -> bool:
        return addr in self.addresses

    # -- packet handling ---------------------------------------------------

    def receive(self, packet: Packet, network: "Network") -> ReceiveResult:
        if self.owns(packet.dst):
            return ReceiveResult(replies=self._deliver_local(packet, network))
        if not self.forwards:
            return ReceiveResult()  # hosts silently drop transit packets
        return self._forward(packet, network)

    def _deliver_local(self, packet: Packet, network: "Network") -> List[Packet]:
        payload = packet.payload
        if isinstance(payload, Icmpv6Message):
            return self._handle_icmpv6(packet, payload)
        if isinstance(payload, UdpDatagram):
            return self._handle_udp(packet, payload, network)
        if isinstance(payload, TcpSegment):
            return self._handle_tcp(packet, payload, network)
        return []

    def _handle_icmpv6(self, packet: Packet, msg: Icmpv6Message) -> List[Packet]:
        if msg.type == Icmpv6Type.ECHO_REQUEST:
            reply = Icmpv6Message(
                int(Icmpv6Type.ECHO_REPLY),
                ident=msg.ident,
                seq=msg.seq,
                payload=msg.payload,
            )
            # Reply from the probed address so the prober sees a live host.
            return [Packet(src=packet.dst, dst=packet.src, payload=reply)]
        return []  # errors and replies terminate here

    def _handle_udp(
        self, packet: Packet, datagram: UdpDatagram, network: "Network"
    ) -> List[Packet]:
        service = self.udp_services.get(datagram.dport)
        if service is None:
            error = self._make_error(
                packet,
                Icmpv6Type.DEST_UNREACHABLE,
                int(UnreachableCode.PORT_UNREACHABLE),
                network,
            )
            return [error] if error else []
        response = service.handle_udp(datagram.payload)
        if response is None:
            return []
        reply = UdpDatagram(datagram.dport, datagram.sport, response)
        return [Packet(src=packet.dst, dst=packet.src, payload=reply)]

    def _handle_tcp(
        self, packet: Packet, segment: TcpSegment, network: "Network"
    ) -> List[Packet]:
        service = self.tcp_services.get(segment.dport)
        if service is None:
            rst = TcpSegment(
                sport=segment.dport,
                dport=segment.sport,
                seq=0,
                ack=segment.seq + 1,
                flags=int(TcpFlags.RST) | int(TcpFlags.ACK),
            )
            return [Packet(src=packet.dst, dst=packet.src, payload=rst)]
        if segment.has_flag(TcpFlags.SYN) and not segment.has_flag(TcpFlags.ACK):
            synack = TcpSegment(
                sport=segment.dport,
                dport=segment.sport,
                seq=network.rng.getrandbits(32),
                ack=(segment.seq + 1) & 0xFFFFFFFF,
                flags=int(TcpFlags.SYN) | int(TcpFlags.ACK),
            )
            return [Packet(src=packet.dst, dst=packet.src, payload=synack)]
        if segment.payload:
            response = service.handle_tcp(segment.payload)
            if response is None:
                return []
            reply = TcpSegment(
                sport=segment.dport,
                dport=segment.sport,
                seq=segment.ack,
                ack=(segment.seq + len(segment.payload)) & 0xFFFFFFFF,
                flags=int(TcpFlags.PSH) | int(TcpFlags.ACK),
                payload=response,
            )
            return [Packet(src=packet.dst, dst=packet.src, payload=reply)]
        return []

    # -- forwarding (routers only) ------------------------------------------

    def flow_entry(self, value: int, network: "Network") -> FlowEntry:
        """Resolve one destination to a cached forwarding decision.

        The cache is keyed by the destination's /64 (the granularity the
        scanner sweeps), is consulted with a single dict probe, and stores
        the matched route together with the *resolved* next-hop device.  An
        entry is inserted only when one decision provably serves the whole
        /64: the LPM-matched prefix must be /64 or shorter and no more-
        specific (>64-bit) route may exist inside that /64.  Staleness is
        detected by stamp comparison: the network bumps its ``generation``
        on any register/unregister/bind and the routing table bumps
        ``version`` on any add/remove, so prefix rotation and churn
        invalidate every affected cache in O(1).
        """
        table = self.table
        stamp = (network.generation, table.version)
        cache = self._flow_cache
        if self._flow_stamp != stamp:
            cache.clear()
            self._flow_stamp = stamp
        key = value >> 64
        entry = cache.get(key)
        if entry is not None:
            network.flow_hits += 1
            return entry
        network.flow_misses += 1
        route = table.lookup(value)
        if route is None or route.kind is RouteKind.UNREACHABLE:
            entry = FlowEntry(FLOW_UNREACHABLE, None, route)
        elif route.kind is RouteKind.BLACKHOLE:
            entry = FlowEntry(FLOW_BLACKHOLE, None, route)
        elif route.kind is RouteKind.CONNECTED:
            entry = FlowEntry(FLOW_CONNECTED, None, route)
        else:
            assert route.next_hop is not None
            next_device = network.device_at(route.next_hop)
            entry = FlowEntry(
                FLOW_FORWARD if next_device is not None else FLOW_UNRESOLVED,
                next_device,
                route,
            )
        if (route is None or route.prefix.length <= 64) and (
            not table.has_specific_within_slash64(key)
        ):
            if len(cache) >= FLOW_CACHE_MAX:
                cache.clear()
            cache[key] = entry
        return entry

    def _forward(self, packet: Packet, network: "Network") -> ReceiveResult:
        route = self.table.lookup(packet.dst)
        if network.active_trace is not None:
            # The longest-prefix-match decision, exactly as taken.
            network.trace_event(
                "route_lookup",
                device=self.name,
                dst=str(packet.dst),
                route=str(route) if route is not None else "no-route",
                kind=route.kind.value if route is not None else "none",
            )
        if route is not None and route.kind is RouteKind.BLACKHOLE:
            if network.active_trace is not None:
                network.trace_event("drop", device=self.name,
                                    reason="blackhole-route")
            return ReceiveResult()  # silent discard
        if route is None or route.kind is RouteKind.UNREACHABLE:
            error = self._make_error(
                packet,
                Icmpv6Type.DEST_UNREACHABLE,
                int(UnreachableCode.NO_ROUTE),
                network,
            )
            return ReceiveResult(replies=[error] if error else [])

        if packet.hop_limit <= 1:
            if network.active_trace is not None:
                network.trace_event("hop_limit_exhausted", device=self.name,
                                    hop_limit=packet.hop_limit)
            error = self._make_error(
                packet,
                Icmpv6Type.TIME_EXCEEDED,
                int(TimeExceededCode.HOP_LIMIT),
                network,
            )
            return ReceiveResult(replies=[error] if error else [])

        forwarded = packet.with_hop_limit(packet.hop_limit - 1)
        if network.active_trace is not None:
            network.trace_event("hop_limit_decrement", device=self.name,
                                hop_limit=forwarded.hop_limit)
        if route.kind is RouteKind.CONNECTED:
            # On-link delivery: RFC 4861 address resolution must find the
            # target; a failed resolution is reported as ICMPv6 address-
            # unreachable — the error the discovery technique harvests.
            from repro.net.ndp import resolve

            if not resolve(self, packet.dst, network):
                error = self._make_error(
                    packet,
                    Icmpv6Type.DEST_UNREACHABLE,
                    int(UnreachableCode.ADDR_UNREACHABLE),
                    network,
                )
                return ReceiveResult(replies=[error] if error else [])
            return ReceiveResult(forward=(packet.dst, forwarded))
        assert route.next_hop is not None
        return ReceiveResult(forward=(route.next_hop, forwarded))

    # -- ICMPv6 error generation ---------------------------------------------

    def _make_error(
        self,
        invoking: Packet,
        error_type: Icmpv6Type,
        code: int,
        network: "Network",
    ) -> Optional[Packet]:
        payload = invoking.payload
        if isinstance(payload, Icmpv6Message) and payload.is_error:
            return None  # RFC 4443 §2.4(e): never error an error
        if not self.error_limiter.allow(network.clock):
            self.errors_suppressed += 1
            if network.active_trace is not None:
                network.trace_event(
                    "icmpv6_error_suppressed", device=self.name,
                    error_type=int(error_type), code=code,
                )
            return None
        if network.active_trace is not None:
            network.trace_event(
                "icmpv6_error", device=self.name,
                error_type=int(error_type), code=code,
                source=str(self.primary_address),
            )
        return icmpv6_error(
            self.primary_address, invoking.src, error_type, code, invoking
        )


class Host(Device):
    """A plain end host (e.g. a LAN device behind a CPE)."""


class Router(Device):
    """A forwarding device with a routing table."""

    forwards = True


class IspRouter(Router):
    """An ISP access/aggregation router owning an ISP block.

    Per Figure 4's "Routing Table P", the router carries one next-hop route
    per customer (WAN /64 and delegated LAN prefix both via the CPE's WAN
    address; UE /64 via the UE address) — installed by
    :meth:`delegate`.  ``unassigned_behavior`` picks what happens to probes
    for space the ISP never delegated: ``"unreachable"`` answers with a
    Destination Unreachable from the router (exposing the aggregation
    router's own address), ``"blackhole"`` discards silently — the upstream
    filtering the paper names as its false-negative source (§IV-C).

    ``drop_external_errors`` additionally suppresses *all* ICMPv6 errors this
    router would emit toward sources outside its block (full ICMPv6 egress
    filtering, as inferred for BSNL's sparse results).
    """

    def __init__(
        self,
        name: str,
        primary_address: IPv6Addr,
        block: IPv6Prefix,
        unassigned_behavior: str = "blackhole",
        drop_external_errors: bool = False,
        **kwargs,
    ) -> None:
        super().__init__(name, primary_address, **kwargs)
        self.block = block
        self.drop_external_errors = drop_external_errors
        if unassigned_behavior == "blackhole":
            self.table.add_blackhole(block)
        elif unassigned_behavior == "unreachable":
            self.table.add_unreachable(block)
        else:
            raise ValueError(
                f"unknown unassigned_behavior {unassigned_behavior!r}"
            )

    def delegate(self, prefix: IPv6Prefix, via: IPv6Addr) -> None:
        """Install the customer route for an assigned/delegated prefix."""
        self.table.add_next_hop(prefix, via)

    def _make_error(self, invoking, error_type, code, network):
        if self.drop_external_errors and not self.block.contains(invoking.src):
            if network.active_trace is not None:
                network.trace_event(
                    "icmpv6_error_filtered", device=self.name,
                    error_type=int(error_type), code=code,
                )
            return None
        return super()._make_error(invoking, error_type, code, network)


class CpeRouter(Router):
    """A customer-premises-edge router (Figure 1a / Figure 4).

    The ISP assigns ``wan_prefix`` (the point-to-point /64 containing
    ``wan_address``) and delegates ``lan_prefix`` (/64 or shorter).  The CPE
    advertises ``subnet_prefix`` (one /64 of the delegation) to its LAN.

    ``vulnerable_wan`` / ``vulnerable_lan`` select the flawed routing-table
    construction of Figure 4: the firmware fails to install discard routes
    for the unused remainder of the WAN / delegated prefix, so those packets
    match the default route and bounce back to the ISP router in a loop.
    """

    def __init__(
        self,
        name: str,
        wan_address: IPv6Addr,
        wan_prefix: IPv6Prefix,
        lan_prefix: IPv6Prefix,
        subnet_prefix: Optional[IPv6Prefix] = None,
        isp_address: Optional[IPv6Addr] = None,
        vulnerable_wan: bool = False,
        vulnerable_lan: bool = False,
        loop_forward_limit: Optional[int] = None,
        **kwargs,
    ) -> None:
        super().__init__(name, wan_address, **kwargs)
        if not wan_prefix.contains(wan_address):
            raise ValueError("WAN address must fall inside the WAN prefix")
        self.wan_prefix = wan_prefix
        self.lan_prefix = lan_prefix
        self.subnet_prefix = subnet_prefix
        self.isp_address = isp_address
        self.vulnerable_wan = vulnerable_wan
        self.vulnerable_lan = vulnerable_lan
        #: Some firmware (Xiaomi, Gargoyle, librecmc, OpenWrt in Table XII)
        #: stops bouncing a looping packet after ~10 forwards instead of
        #: burning the whole hop-limit budget.
        self.loop_forward_limit = loop_forward_limit
        self._loop_bounces = 0
        #: The loop-mitigation override only deviates from base forwarding
        #: when a bounce limit is armed; without one the fast path is exact.
        self.flow_forward_safe = loop_forward_limit is None
        self._install_routes()

    @property
    def wan_address(self) -> IPv6Addr:
        return self.primary_address

    def _install_routes(self) -> None:
        """Build the routing table per the firmware's (mis)behaviour."""
        if self.isp_address is not None:
            self.table.add_default(self.isp_address)

        if self.vulnerable_wan:
            # Flawed: only a host route for the WAN address itself; the rest
            # of the WAN /64 falls through to the default route.
            self.table.add_connected(self.wan_address.prefix(128), "wan")
        else:
            # Correct: the whole point-to-point subnet is on-link, so probes
            # to nonexistent WAN-prefix addresses get ADDR_UNREACHABLE here.
            self.table.add_connected(self.wan_prefix, "wan")

        if self.subnet_prefix is not None:
            self.table.add_connected(self.subnet_prefix, "lan")
        if (
            self.lan_prefix != self.subnet_prefix
            and self.lan_prefix != self.wan_prefix
            and not self.vulnerable_lan
        ):
            # Correct firmware discards traffic for delegated-but-unassigned
            # space (RFC 7084); vulnerable firmware omits this route.  When
            # the delegation *is* the WAN prefix (single-prefix devices) the
            # WAN branch above already decided the policy.
            self.table.add_unreachable(self.lan_prefix)

    def apply_rfc7084_fix(self) -> None:
        """Install the mitigation of §VII / RFC 7084: discard routes for any
        delegated-but-unassigned space, closing the routing loop."""
        self.vulnerable_wan = False
        self.vulnerable_lan = False
        self.table.add_connected(self.wan_prefix, "wan")
        if self.lan_prefix != self.subnet_prefix and (
            self.lan_prefix != self.wan_prefix
        ):
            self.table.add_unreachable(self.lan_prefix)

    def _forward(self, packet: Packet, network: "Network") -> ReceiveResult:
        if self.loop_forward_limit is not None and (
            self.wan_prefix.contains(packet.dst)
            or self.lan_prefix.contains(packet.dst)
        ):
            route = self.table.lookup(packet.dst)
            bounces_upstream = (
                route is not None
                and route.kind is RouteKind.NEXT_HOP
                and route.next_hop == self.isp_address
            )
            if bounces_upstream:
                self._loop_bounces += 1
                if self._loop_bounces > self.loop_forward_limit:
                    self._loop_bounces = 0
                    return ReceiveResult()  # firmware loop mitigation kicks in
        return super()._forward(packet, network)


class UeDevice(Router):
    """A user equipment (Figure 1b): a phone holding a delegated /64.

    The UE is "the last hop routed infrastructure … or only enables
    connectivity for itself": its prefix is on-link to itself with no other
    neighbours, so any probe to a nonexistent IID inside the prefix draws an
    ADDR_UNREACHABLE from the UE's own address — the same exposure mechanism
    as the CPE, with same-/64 replies (Table II's "same" column).
    """

    def __init__(
        self,
        name: str,
        ue_address: IPv6Addr,
        ue_prefix: IPv6Prefix,
        isp_address: Optional[IPv6Addr] = None,
        **kwargs,
    ) -> None:
        super().__init__(name, ue_address, **kwargs)
        if not ue_prefix.contains(ue_address):
            raise ValueError("UE address must fall inside the UE prefix")
        self.ue_prefix = ue_prefix
        self.table.add_connected(ue_prefix, "radio")
        if isp_address is not None:
            self.table.add_default(isp_address)

    @property
    def ue_address(self) -> IPv6Addr:
        return self.primary_address
