"""IPv6 network substrate: addresses, wire formats, devices, and simulator.

This subpackage implements everything the XMap reproduction needs below the
scanner: IPv6 address arithmetic (:mod:`repro.net.addr`), an IEEE-OUI-style
vendor registry (:mod:`repro.net.oui`), byte-level wire formats with real
checksums (:mod:`repro.net.packet`), longest-prefix-match routing tables
(:mod:`repro.net.routing`), RFC-faithful device models
(:mod:`repro.net.device`), and the network simulator that stands in for the
live IPv6 Internet (:mod:`repro.net.network`).
"""

from repro.net.addr import MacAddress, IPv6Addr, IPv6Prefix
from repro.net.oui import OuiRegistry
from repro.net.routing import Route, RoutingTable
from repro.net.network import Network, Link

__all__ = [
    "MacAddress",
    "IPv6Addr",
    "IPv6Prefix",
    "OuiRegistry",
    "Route",
    "RoutingTable",
    "Network",
    "Link",
]
