"""Columnar (struct-of-arrays) forwarding engine.

The scalar engine in :mod:`repro.net.network` forwards one python object
per probe per hop; after PR 3 vectorised address generation and response
validation, that loop is the campaign's hot path.  This module compiles the
topology's routing state into numpy columns and advances an entire probe
block one hop at a time with masked vector operations, while keeping the
scalar engine as the bit-identical oracle.

The design splits every injection into two phases:

* a **vector phase** that advances all lanes (one lane per injected probe)
  through *pure* forwarding hops only — base-semantics routers resolving a
  ``NEXT_HOP`` route with hop limit left to burn.  Those hops touch no
  mutable state in the scalar engine either (no RNG, no NDP cache, no rate
  limiter), so they can be replayed out of order and en masse;
* a **scalar replay phase** that finishes each lane *in probe order* from
  its ejection point by re-entering the real engine
  (:meth:`Network._drain`).  Everything stateful — NDP resolution, ICMPv6
  error synthesis and its token-bucket limiter, subclass forwarding hooks
  (loop mitigation counters), TCP ISN draws from the topology RNG — runs
  through the exact scalar code, under the exact virtual clock the scalar
  engine would have used.

A lane **ejects** from the vector phase whenever the next step *could*
observe or mutate state: delivery to the destination's owner, a device with
an overridden ``_forward``, a route miss / unreachable route (ICMPv6
no-route), hop-limit exhaustion (ICMPv6 time-exceeded), or an on-link
``CONNECTED`` match (NDP).  The replay does not trust the vector phase's
classification — it re-executes the scalar engine from the ejection device
with the ejection hop limit — so equivalence reduces to the pure hops being
pure, not to this module re-implementing error semantics correctly.

Routing state is compiled once per topology **generation** into a
:class:`ColumnarFib`: one globally shared hash table per prefix length
(longest first), keyed by (device index, masked prefix), with verification
columns so hash collisions degrade to a miss check instead of a wrong
answer, exactly mirroring the per-device flow-cache invalidation protocol
(``Network.generation`` + per-table ``version`` stamps).

Everything degrades gracefully: no numpy, an active trace span, a loss
model, a pending fault transition, or an uncompilable table all fall back
to the sequential scalar loop with identical observables.
"""

from __future__ import annotations

import math
from collections import deque
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.net.routing import RouteKind

try:  # optional acceleration; sequential scalar fallback otherwise
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI images
    _np = None  # type: ignore[assignment]

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.device import Device
    from repro.net.network import DeliveryTrace, Network
    from repro.net.packet import Packet

__all__ = ["ColumnarFib", "inject_block"]

_M64 = 0xFFFFFFFFFFFFFFFF

# -- FIB action codes (one int8 per compiled route) --------------------------
#: No route matched at any length (equivalent to an UNREACHABLE route).
A_MISS = 0
#: Resolved NEXT_HOP: advance the lane to the compiled next-device index.
A_NEXT_HOP = 1
#: On-link CONNECTED match: eject (NDP resolution is stateful).
A_CONNECTED = 2
#: Unreachable route: eject (ICMPv6 no-route synthesis is rate limited).
A_UNREACHABLE = 3
#: Blackhole route: silent discard.
A_BLACKHOLE = 4
#: NEXT_HOP whose next hop no longer owns an address (churn blackhole).
A_UNRESOLVED = 5

# -- lane status codes -------------------------------------------------------
_ACTIVE = 0  # still advancing through pure vector hops
_SILENT = 1  # terminated with no observable left to produce
_EJECT = 2  # finish via scalar replay from (cur device, current hop limit)
_ORIGIN = 3  # replay the whole injection (degenerate originate path)

#: Hash-seed attempts for each per-length table before giving up on the
#: whole compile (``ok=False`` → scalar fallback).  Collisions across a few
#: thousand 64-bit keys are already ~never; eight seeds make the retry path
#: deterministic rather than probabilistic.
_SEEDS = tuple(0x9E3779B97F4A7C15 + k * 0x100000001B3 for k in range(8))


def _finalize(z):  # splitmix64 finalizer on uint64 arrays (wrapping)
    z = z + _np.uint64(0x9E3779B97F4A7C15)
    z = (z ^ (z >> _np.uint64(30))) * _np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> _np.uint64(27))) * _np.uint64(0x94D049BB133111EB)
    return z ^ (z >> _np.uint64(31))


def _mix(dev, hi, lo, seed):
    """64-bit hash of one (device index, masked 128-bit prefix) key."""
    z = _finalize(dev + _np.uint64(seed & _M64))
    z = _finalize(z ^ hi)
    return _finalize(z ^ lo)


class _LengthTable:
    """All routes of one prefix length, across every device, sorted by key.

    ``searchsorted`` gives the candidate row; the ``dev``/``hi``/``lo``
    verification columns reject hash collisions on the query side.  Compile
    rejects seed choices that collide between *stored* keys, so at most one
    candidate row can match a query key, and it matches iff the entry is
    genuinely present.
    """

    __slots__ = (
        "length", "seed", "mask_hi", "mask_lo",
        "keys", "dev", "hi", "lo", "action", "nxt",
    )

    def __init__(self, length: int, entries) -> None:
        # entries: list of (dev_idx, masked_hi, masked_lo, action, nxt)
        self.length = length
        if length == 0:
            self.mask_hi = _np.uint64(0)
            self.mask_lo = _np.uint64(0)
        elif length <= 64:
            self.mask_hi = _np.uint64((_M64 << (64 - length)) & _M64)
            self.mask_lo = _np.uint64(0)
        else:
            self.mask_hi = _np.uint64(_M64)
            self.mask_lo = _np.uint64((_M64 << (128 - length)) & _M64)
        self.dev = _np.array([e[0] for e in entries], dtype=_np.uint64)
        self.hi = _np.array([e[1] for e in entries], dtype=_np.uint64)
        self.lo = _np.array([e[2] for e in entries], dtype=_np.uint64)
        self.action = _np.array([e[3] for e in entries], dtype=_np.int8)
        self.nxt = _np.array([e[4] for e in entries], dtype=_np.int64)
        self.seed = -1
        order = None
        for seed in _SEEDS:
            keys = _mix(self.dev, self.hi, self.lo, seed)
            order = _np.argsort(keys)
            keys = keys[order]
            if not bool((keys[1:] == keys[:-1]).any()):
                self.seed = seed
                break
        if self.seed < 0:
            self.keys = None  # signals compile failure to ColumnarFib
            return
        self.keys = keys
        self.dev = self.dev[order]
        self.hi = self.hi[order]
        self.lo = self.lo[order]
        self.action = self.action[order]
        self.nxt = self.nxt[order]


class ColumnarFib:
    """Every device routing table, compiled to struct-of-arrays columns.

    Carries the (generation, per-table version) stamp it was compiled
    under; :meth:`valid` re-checks the stamp so route churn, prefix
    rotation, and fault-injected route swaps invalidate the compile the
    same way they flush the per-device flow caches.
    """

    def __init__(self, network: "Network") -> None:
        self.devices: List["Device"] = list(network.devices.values())
        self.index: Dict[int, int] = {
            id(d): i for i, d in enumerate(self.devices)
        }
        self.generation = network.generation
        self.versions = [d.table.version for d in self.devices]
        self.ok = _np is not None
        if not self.ok:  # pragma: no cover - numpy is present in CI images
            return
        self.forwards = _np.array(
            [d.forwards for d in self.devices], dtype=bool
        )
        self.flow_safe = _np.array(
            [d.forwards and d.flow_forward_safe for d in self.devices],
            dtype=bool,
        )
        # The vector phase decides local delivery from the network's
        # address-owner map; a device owning an address the network never
        # bound would make that decision diverge from the scalar engine's
        # ``dst in device.addresses`` check, so such topologies fall back.
        owner_map = network._addr_owner
        for device in self.devices:
            for addr in device.addresses:
                if owner_map.get(addr.value) is not device:
                    self.ok = False
                    return
        by_length: Dict[int, list] = {}
        for dev_idx, device in enumerate(self.devices):
            if not device.forwards:
                continue
            for route in device.table.routes():
                length = route.prefix.length
                value = route.prefix.network
                hi = (value >> 64) & _M64
                lo = value & _M64
                if length == 0:
                    hi = lo = 0
                elif length <= 64:
                    hi &= (_M64 << (64 - length)) & _M64
                    lo = 0
                else:
                    lo &= (_M64 << (128 - length)) & _M64
                nxt = -1
                if route.kind is RouteKind.UNREACHABLE:
                    action = A_UNREACHABLE
                elif route.kind is RouteKind.BLACKHOLE:
                    action = A_BLACKHOLE
                elif route.kind is RouteKind.CONNECTED:
                    action = A_CONNECTED
                else:
                    # Resolve the next-hop device at compile time: any
                    # register/unregister/bind bumps the generation and
                    # forces a recompile, so the resolution cannot go stale.
                    next_device = network.device_at(route.next_hop)
                    if next_device is None:
                        action = A_UNRESOLVED
                    else:
                        action = A_NEXT_HOP
                        nxt = self.index[id(next_device)]
                by_length.setdefault(length, []).append(
                    (dev_idx, hi, lo, action, nxt)
                )
        self._tables: List[_LengthTable] = []
        for length in sorted(by_length, reverse=True):
            table = _LengthTable(length, by_length[length])
            if table.keys is None:  # pragma: no cover - 8 seeds all collided
                self.ok = False
                return
            self._tables.append(table)

    @classmethod
    def compile(cls, network: "Network") -> "ColumnarFib":
        return cls(network)

    def valid(self, network: "Network") -> bool:
        """Stamp check: still compiled for the network's current tables?"""
        if network.generation != self.generation:
            return False
        for device, version in zip(self.devices, self.versions):
            if device.table.version != version:
                return False
        return True

    def lookup(self, dev, dst_hi, dst_lo):
        """Vectorised longest-prefix match for a batch of lanes.

        ``dev`` indexes this FIB's device list; returns ``(action, nxt)``
        int arrays where ``action == A_MISS`` means no length matched.
        """
        n = dev.size
        action = _np.zeros(n, dtype=_np.int8)
        nxt = _np.full(n, -1, dtype=_np.int64)
        pending = _np.arange(n)
        devu = dev.astype(_np.uint64)
        for table in self._tables:
            if not pending.size:
                break
            mhi = dst_hi[pending] & table.mask_hi
            mlo = dst_lo[pending] & table.mask_lo
            key = _mix(devu[pending], mhi, mlo, table.seed)
            pos = _np.minimum(
                _np.searchsorted(table.keys, key), table.keys.size - 1
            )
            hit = (
                (table.keys[pos] == key)
                & (table.dev[pos] == devu[pending])
                & (table.hi[pos] == mhi)
                & (table.lo[pos] == mlo)
            )
            if hit.any():
                rows = pos[hit]
                lanes = pending[hit]
                action[lanes] = table.action[rows]
                nxt[lanes] = table.nxt[rows]
                pending = pending[~hit]
        return action, nxt


def _usable(network: "Network") -> bool:
    """Can the vector phase run without observing or perturbing state?"""
    if _np is None:
        return False
    if network.active_trace is not None:
        return False  # spans must see every scalar forwarding decision
    if network.loss_rate or network.link_loss:
        return False  # per-hop RNG draws must happen in scalar hop order
    if network.record_links or network.record_paths:
        return False  # per-hop recording is exactly what we elide
    faults = network.faults
    if faults is not None and faults.next_transition != math.inf:
        return False  # a pending transition must fire at the right clock
    return True


def _sequential(
    network: "Network",
    packets: List["Packet"],
    vantage: "Device",
    clocks: Optional[List[float]],
) -> List[Tuple[List["Packet"], "DeliveryTrace"]]:
    """The oracle: one scalar ``inject`` per packet, under its own clock."""
    entry_clock = network.clock
    results = []
    for i, packet in enumerate(packets):
        if clocks is not None:
            network.clock = clocks[i]
        results.append(network.inject(packet, vantage))
    network.clock = entry_clock
    return results


def inject_block(
    network: "Network",
    packets: List["Packet"],
    vantage: "Device",
    clocks: Optional[List[float]] = None,
) -> List[Tuple[List["Packet"], "DeliveryTrace"]]:
    """Batch equivalent of per-packet :meth:`Network.inject`.

    Bit-identical to the sequential loop in :func:`_sequential` (which is
    also the fallback whenever the vector phase cannot run safely).  The
    network's clock is restored to its entry value before returning.
    """
    from repro.net.network import DeliveryTrace, NetworkError

    if clocks is not None and len(clocks) != len(packets):
        raise ValueError("clocks must match packets one-to-one")
    if not _usable(network):
        return _sequential(network, packets, vantage, clocks)
    fib = network.columnar_fib()
    if not fib.ok:
        return _sequential(network, packets, vantage, clocks)

    n = len(packets)
    status = _np.zeros(n, dtype=_np.int8)
    cur = _np.full(n, -1, dtype=_np.int64)
    hl = _np.zeros(n, dtype=_np.int64)
    hops = _np.zeros(n, dtype=_np.int64)
    drops = _np.zeros(n, dtype=_np.int64)
    owner = _np.full(n, -1, dtype=_np.int64)
    dst_hi = _np.zeros(n, dtype=_np.uint64)
    dst_lo = _np.zeros(n, dtype=_np.uint64)

    addr_owner = network._addr_owner
    index = fib.index
    vantage_idx = index[id(vantage)]

    # -- spawn: replicate Network._originate(vantage, packet) per lane ------
    for i, packet in enumerate(packets):
        value = packet.dst.value
        dst_hi[i] = (value >> 64) & _M64
        dst_lo[i] = value & _M64
        hl[i] = packet.hop_limit
        owning = addr_owner.get(value)
        if owning is not None:
            owner[i] = index[id(owning)]
        if packet.dst in vantage.addresses:
            # Scalar queues (vantage, packet) directly — no hop taken.
            status[i] = _EJECT
            cur[i] = vantage_idx
            continue
        if vantage.forwards:
            route = vantage.table.lookup(packet.dst)
            if route is None or route.kind is RouteKind.UNREACHABLE:
                drops[i] = 1
                status[i] = _SILENT
                continue
            if route.kind is RouteKind.CONNECTED:
                next_device = owning  # _originate targets dst directly
            elif route.kind is RouteKind.NEXT_HOP:
                next_device = addr_owner.get(route.next_hop.value)
            else:
                # BLACKHOLE originate: the scalar engine asserts — replay
                # the whole injection so even that reproduces faithfully.
                status[i] = _ORIGIN
                continue
            if next_device is None:
                drops[i] = 1
                status[i] = _SILENT
                continue
            hops[i] = 1  # _originate enqueues without a hop-limit decrement
            cur[i] = index[id(next_device)]
        else:
            gateway = vantage.gateway
            if gateway is None:
                drops[i] = 1
                status[i] = _SILENT
                continue
            hops[i] = 1
            cur[i] = index[id(gateway)]

    # -- vector phase: advance all lanes through pure hops ------------------
    # Each iteration either terminates a lane or burns one hop limit, so
    # the loop runs at most max(hop_limit) + 1 times; routing-loop lanes
    # short-circuit through the 2-cycle fast-forward below.
    max_hops = network.max_hops
    alive = status == _ACTIVE
    prev1 = _np.full(n, -2, dtype=_np.int64)  # device one step ago
    prev2 = _np.full(n, -3, dtype=_np.int64)  # device two steps ago
    while True:
        idx = _np.nonzero(alive)[0]
        if not idx.size:
            break
        at = cur[idx]
        # (A) reached the destination's owner: local delivery is stateful
        # (echo replies, services, vantage inbox) — eject.
        mask = at == owner[idx]
        if mask.any():
            lanes = idx[mask]
            status[lanes] = _EJECT
            alive[lanes] = False
            idx = idx[~mask]
            at = at[~mask]
            if not idx.size:
                continue
        # (B) non-forwarding device: hosts drop transit packets silently.
        mask = ~fib.forwards[at]
        if mask.any():
            lanes = idx[mask]
            status[lanes] = _SILENT
            alive[lanes] = False
            idx = idx[~mask]
            at = at[~mask]
            if not idx.size:
                continue
        # (C) overridden forwarding hook (loop mitigation): stateful, eject.
        mask = ~fib.flow_safe[at]
        if mask.any():
            lanes = idx[mask]
            status[lanes] = _EJECT
            alive[lanes] = False
            idx = idx[~mask]
            at = at[~mask]
            if not idx.size:
                continue
        action, nxt = fib.lookup(at, dst_hi[idx], dst_lo[idx])
        # (D) no route / unreachable: ICMPv6 no-route synthesis — eject.
        mask = (action == A_MISS) | (action == A_UNREACHABLE)
        if mask.any():
            lanes = idx[mask]
            status[lanes] = _EJECT
            alive[lanes] = False
        # (E) blackhole route: silent discard, nothing recorded.
        mask = action == A_BLACKHOLE
        if mask.any():
            lanes = idx[mask]
            status[lanes] = _SILENT
            alive[lanes] = False
        # Route check passed: like both scalar paths, the hop-limit test
        # comes before any next-hop resolution outcome.
        remaining = (
            (action == A_NEXT_HOP)
            | (action == A_CONNECTED)
            | (action == A_UNRESOLVED)
        )
        # (F) hop limit exhausted: ICMPv6 time-exceeded synthesis — eject.
        mask = remaining & (hl[idx] <= 1)
        if mask.any():
            lanes = idx[mask]
            status[lanes] = _EJECT
            alive[lanes] = False
        remaining &= ~mask
        # (G) on-link delivery: NDP resolution is stateful — eject.
        mask = remaining & (action == A_CONNECTED)
        if mask.any():
            lanes = idx[mask]
            status[lanes] = _EJECT
            alive[lanes] = False
        # (H) churn blackhole: counted drop, then silence.
        mask = remaining & (action == A_UNRESOLVED)
        if mask.any():
            lanes = idx[mask]
            drops[lanes] += 1
            status[lanes] = _SILENT
            alive[lanes] = False
        # (I) the pure hop: decrement, advance, keep the lane in flight.
        mask = remaining & (action == A_NEXT_HOP)
        if mask.any():
            lanes = idx[mask]
            prev2[lanes] = prev1[lanes]
            prev1[lanes] = at[mask]
            cur[lanes] = nxt[mask]
            hl[lanes] -= 1
            hops[lanes] += 1
            # Routing-loop fast-forward: a lane back on the device it left
            # two pure hops ago is in a deterministic 2-cycle (the FIB is
            # frozen for the whole vector phase), i.e. the paper's
            # amplification loop.  It will bounce until the hop limit runs
            # out, so burn the remaining budget analytically: from (A, h)
            # the lane takes s = h - 1 further hops and ejects with hl=1 at
            # A for even s, at the other loop device for odd s.
            cycle = (cur[lanes] == prev2[lanes]) & (hl[lanes] > 1)
            if cycle.any():
                spinners = lanes[cycle]
                steps = hl[spinners] - 1
                hops[spinners] += steps
                hl[spinners] = 1
                swap = spinners[(steps & 1) == 1]
                cur[swap] = prev1[swap]
            if int(hops[lanes].max()) > max_hops:
                raise NetworkError(
                    f"forwarding exceeded {network.max_hops} hops; "
                    "unbounded loop (hop limits should prevent this)"
                )

    # -- scalar replay: finish each lane in probe order ---------------------
    entry_clock = network.clock
    results: List[Tuple[List["Packet"], DeliveryTrace]] = []
    devices = fib.devices
    drain = network._drain
    for i, packet in enumerate(packets):
        if clocks is not None:
            network.clock = clocks[i]
        lane_status = status[i]
        if lane_status == _ORIGIN:
            results.append(network.inject(packet, vantage))
            continue
        network.total_injected += 1
        lane_hops = int(hops[i])
        network.total_hops += lane_hops
        trace = DeliveryTrace(hops=lane_hops, drops=int(drops[i]))
        inbox: List["Packet"] = []
        if lane_status == _EJECT:
            resumed = packet.with_hop_limit(int(hl[i]))
            queue = deque([(devices[int(cur[i])], resumed)])
            drain(queue, vantage, inbox, trace)
        results.append((inbox, trace))
    network.clock = entry_clock
    return results
