"""Byte-level wire formats: IPv6, ICMPv6 (RFC 4443), UDP, and TCP.

The network simulator moves :class:`Packet` objects in process, but the
scanner's probe modules encode and decode real wire bytes — including the
IPv6 pseudo-header checksums — so that the reproduction exercises the same
packet-construction logic as a raw-socket scanner would.  ``decode`` is the
strict inverse of ``encode``; the property tests round-trip random packets.

Only the fields the paper's probes use are modelled (no extension headers —
XMap's probe modules send plain IPv6).  ICMPv6 error messages carry the
invoking packet, as RFC 4443 requires, because the scanner recovers the
original probe target from that embedded packet to attribute replies.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import IntEnum
from typing import Union

from repro.net.addr import IPv6Addr

IPV6_HEADER_LEN = 40
DEFAULT_HOP_LIMIT = 64
MAX_HOP_LIMIT = 255


class NextHeader(IntEnum):
    """IPv6 Next Header / protocol numbers used by the probe modules."""

    TCP = 6
    UDP = 17
    ICMPV6 = 58


class Icmpv6Type(IntEnum):
    """ICMPv6 message types (RFC 4443)."""

    DEST_UNREACHABLE = 1
    PACKET_TOO_BIG = 2
    TIME_EXCEEDED = 3
    PARAM_PROBLEM = 4
    ECHO_REQUEST = 128
    ECHO_REPLY = 129


class UnreachableCode(IntEnum):
    """Codes for ICMPv6 Destination Unreachable (RFC 4443 §3.1)."""

    NO_ROUTE = 0
    ADMIN_PROHIBITED = 1
    BEYOND_SCOPE = 2
    ADDR_UNREACHABLE = 3
    PORT_UNREACHABLE = 4


class TimeExceededCode(IntEnum):
    """Codes for ICMPv6 Time Exceeded (RFC 4443 §3.3)."""

    HOP_LIMIT = 0
    REASSEMBLY = 1


class TcpFlags(IntEnum):
    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10


class PacketError(ValueError):
    """Raised when wire bytes cannot be decoded."""


def internet_checksum(data: bytes) -> int:
    """The 16-bit one's-complement Internet checksum (RFC 1071)."""
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


def pseudo_header(src: IPv6Addr, dst: IPv6Addr, length: int, proto: int) -> bytes:
    """The IPv6 pseudo-header used in upper-layer checksums (RFC 8200 §8.1)."""
    return (
        src.to_bytes()
        + dst.to_bytes()
        + struct.pack("!I", length)
        + b"\x00\x00\x00"
        + bytes([proto])
    )


@dataclass(frozen=True)
class Icmpv6Message:
    """An ICMPv6 message: echoes carry ident/seq + payload, errors carry the
    invoking packet's bytes (truncated per RFC 4443 to fit the minimum MTU)."""

    type: int
    code: int = 0
    ident: int = 0
    seq: int = 0
    payload: bytes = b""
    invoking: bytes = b""

    @property
    def is_error(self) -> bool:
        return self.type < 128

    def body(self) -> bytes:
        if self.type in (Icmpv6Type.ECHO_REQUEST, Icmpv6Type.ECHO_REPLY):
            return struct.pack("!HH", self.ident, self.seq) + self.payload
        # Error messages: 4 bytes unused/MTU/pointer + invoking packet,
        # truncated so the whole IPv6 packet stays within 1280 bytes.
        room = 1280 - IPV6_HEADER_LEN - 8
        return b"\x00\x00\x00\x00" + self.invoking[:room]

    def encode(self, src: IPv6Addr, dst: IPv6Addr) -> bytes:
        body = self.body()
        length = 4 + len(body)
        header = struct.pack("!BBH", self.type, self.code, 0)
        csum = internet_checksum(
            pseudo_header(src, dst, length, NextHeader.ICMPV6) + header + body
        )
        return struct.pack("!BBH", self.type, self.code, csum) + body

    @classmethod
    def decode(cls, data: bytes, src: IPv6Addr, dst: IPv6Addr) -> "Icmpv6Message":
        if len(data) < 8:
            raise PacketError(f"ICMPv6 message too short: {len(data)} bytes")
        mtype, code, csum = struct.unpack("!BBH", data[:4])
        verify = internet_checksum(
            pseudo_header(src, dst, len(data), NextHeader.ICMPV6)
            + data[:2]
            + b"\x00\x00"
            + data[4:]
        )
        if verify != csum:
            raise PacketError(f"bad ICMPv6 checksum: {csum:#06x} != {verify:#06x}")
        if mtype in (Icmpv6Type.ECHO_REQUEST, Icmpv6Type.ECHO_REPLY):
            ident, seq = struct.unpack("!HH", data[4:8])
            return cls(mtype, code, ident=ident, seq=seq, payload=data[8:])
        return cls(mtype, code, invoking=data[8:])


@dataclass(frozen=True)
class UdpDatagram:
    sport: int
    dport: int
    payload: bytes = b""

    def encode(self, src: IPv6Addr, dst: IPv6Addr) -> bytes:
        length = 8 + len(self.payload)
        header = struct.pack("!HHHH", self.sport, self.dport, length, 0)
        csum = internet_checksum(
            pseudo_header(src, dst, length, NextHeader.UDP) + header + self.payload
        )
        if csum == 0:
            csum = 0xFFFF  # RFC 8200 §8.1: zero checksum is illegal for UDPv6
        return struct.pack("!HHHH", self.sport, self.dport, length, csum) + self.payload

    @classmethod
    def decode(cls, data: bytes, src: IPv6Addr, dst: IPv6Addr) -> "UdpDatagram":
        if len(data) < 8:
            raise PacketError("UDP datagram too short")
        sport, dport, length, csum = struct.unpack("!HHHH", data[:8])
        if length != len(data):
            raise PacketError(f"UDP length {length} != actual {len(data)}")
        verify = internet_checksum(
            pseudo_header(src, dst, length, NextHeader.UDP)
            + data[:6]
            + b"\x00\x00"
            + data[8:]
        )
        if verify == 0:
            verify = 0xFFFF
        if verify != csum:
            raise PacketError(f"bad UDP checksum: {csum:#06x} != {verify:#06x}")
        return cls(sport, dport, data[8:])


@dataclass(frozen=True)
class TcpSegment:
    """A minimal-option TCP segment (20-byte header), enough for SYN scans."""

    sport: int
    dport: int
    seq: int = 0
    ack: int = 0
    flags: int = int(TcpFlags.SYN)
    window: int = 65535
    payload: bytes = b""

    def has_flag(self, flag: TcpFlags) -> bool:
        return bool(self.flags & flag)

    def encode(self, src: IPv6Addr, dst: IPv6Addr) -> bytes:
        offset_flags = (5 << 12) | (self.flags & 0x1FF)
        header = struct.pack(
            "!HHIIHHHH",
            self.sport,
            self.dport,
            self.seq & 0xFFFFFFFF,
            self.ack & 0xFFFFFFFF,
            offset_flags,
            self.window,
            0,
            0,
        )
        length = len(header) + len(self.payload)
        csum = internet_checksum(
            pseudo_header(src, dst, length, NextHeader.TCP) + header + self.payload
        )
        return header[:16] + struct.pack("!H", csum) + header[18:] + self.payload

    @classmethod
    def decode(cls, data: bytes, src: IPv6Addr, dst: IPv6Addr) -> "TcpSegment":
        if len(data) < 20:
            raise PacketError("TCP segment too short")
        sport, dport, seq, ack, offset_flags, window, csum, _ = struct.unpack(
            "!HHIIHHHH", data[:20]
        )
        data_offset = (offset_flags >> 12) * 4
        if data_offset < 20 or data_offset > len(data):
            raise PacketError(f"bad TCP data offset: {data_offset}")
        verify = internet_checksum(
            pseudo_header(src, dst, len(data), NextHeader.TCP)
            + data[:16]
            + b"\x00\x00"
            + data[18:]
        )
        if verify != csum:
            raise PacketError(f"bad TCP checksum: {csum:#06x} != {verify:#06x}")
        return cls(
            sport, dport, seq, ack, offset_flags & 0x1FF, window, data[data_offset:]
        )


Payload = Union[Icmpv6Message, UdpDatagram, TcpSegment, bytes]

_PAYLOAD_PROTO = {
    Icmpv6Message: NextHeader.ICMPV6,
    UdpDatagram: NextHeader.UDP,
    TcpSegment: NextHeader.TCP,
}


@dataclass(frozen=True)
class Packet:
    """An IPv6 packet: header fields plus a typed upper-layer payload."""

    src: IPv6Addr
    dst: IPv6Addr
    payload: Payload
    hop_limit: int = DEFAULT_HOP_LIMIT
    traffic_class: int = 0
    flow_label: int = 0

    @property
    def next_header(self) -> int:
        for kind, proto in _PAYLOAD_PROTO.items():
            if isinstance(self.payload, kind):
                return int(proto)
        return 59  # No Next Header: opaque payload

    def with_hop_limit(self, hop_limit: int) -> "Packet":
        # Direct construction: dataclasses.replace is ~3x slower and this
        # runs once per forwarding hop.
        return Packet(
            self.src, self.dst, self.payload, hop_limit,
            self.traffic_class, self.flow_label,
        )

    def encode(self) -> bytes:
        if isinstance(self.payload, bytes):
            body = self.payload
        else:
            body = self.payload.encode(self.src, self.dst)
        word0 = (6 << 28) | (self.traffic_class << 20) | self.flow_label
        header = struct.pack(
            "!IHBB", word0, len(body), self.next_header, self.hop_limit
        )
        return header + self.src.to_bytes() + self.dst.to_bytes() + body

    @classmethod
    def decode(cls, data: bytes) -> "Packet":
        if len(data) < IPV6_HEADER_LEN:
            raise PacketError("packet shorter than IPv6 header")
        word0, plen, next_header, hop_limit = struct.unpack("!IHBB", data[:8])
        version = word0 >> 28
        if version != 6:
            raise PacketError(f"not IPv6 (version {version})")
        src = IPv6Addr.from_bytes(data[8:24])
        dst = IPv6Addr.from_bytes(data[24:40])
        body = data[IPV6_HEADER_LEN:]
        if len(body) != plen:
            raise PacketError(f"payload length {plen} != actual {len(body)}")
        payload: Payload
        if next_header == NextHeader.ICMPV6:
            payload = Icmpv6Message.decode(body, src, dst)
        elif next_header == NextHeader.UDP:
            payload = UdpDatagram.decode(body, src, dst)
        elif next_header == NextHeader.TCP:
            payload = TcpSegment.decode(body, src, dst)
        else:
            payload = body
        return cls(
            src=src,
            dst=dst,
            payload=payload,
            hop_limit=hop_limit,
            traffic_class=(word0 >> 20) & 0xFF,
            flow_label=word0 & 0xFFFFF,
        )


def echo_request(
    src: IPv6Addr,
    dst: IPv6Addr,
    ident: int,
    seq: int,
    payload: bytes = b"",
    hop_limit: int = DEFAULT_HOP_LIMIT,
) -> Packet:
    """Convenience constructor for an ICMPv6 Echo Request probe."""
    message = Icmpv6Message(
        Icmpv6Type.ECHO_REQUEST, ident=ident, seq=seq, payload=payload
    )
    return Packet(src=src, dst=dst, payload=message, hop_limit=hop_limit)


def icmpv6_error(
    src: IPv6Addr,
    dst: IPv6Addr,
    error_type: Icmpv6Type,
    code: int,
    invoking: Packet,
    hop_limit: int = MAX_HOP_LIMIT,
) -> Packet:
    """Build an ICMPv6 error carrying the invoking packet (RFC 4443 §2.4).

    Errors originate with a full 255 hop limit, which is what lets the
    source-spoofing variant of the routing-loop attack double its traffic:
    a Time Exceeded aimed at a spoofed address inside looping space gets a
    whole hop-limit budget of its own (§VI-A).
    """
    message = Icmpv6Message(int(error_type), code, invoking=invoking.encode())
    return Packet(src=src, dst=dst, payload=message, hop_limit=hop_limit)
