"""Device-vendor catalogue.

Synthesises the population facts the paper's identification pipeline
recovers: each vendor has OUI registrations (or deliberately none, modelling
unidentifiable OEM gear), a device kind (CPE or UE), per-service exposure
affinities (StarNet devices "only tend to expose HTTP/8080", Youhua devices
answer "all of the selected 7 services except NTP", §V-B), and the software
stacks whose banners feed Table VIII (Youhua ships dnsmasq 2.4x released ~8
years before the measurement; Fiberhome ships dropbear 0.48 and GNU
Inetutils 1.4.1; China Mobile gateways run Jetty on 8080; …).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.net.oui import OuiRegistry
from repro.services.base import Software

CPE = "CPE"
UE = "UE"

#: (software, weight) choices per service key.
SoftwareMix = Sequence[Tuple[Software, float]]


@dataclass(frozen=True)
class Vendor:
    """One device manufacturer/brand."""

    name: str
    kind: str = CPE
    #: Number of OUI registrations; 0 models OEM gear whose MACs resolve to
    #: nothing, keeping identified-device counts below discovered counts.
    oui_count: int = 1
    #: Multipliers applied to the ISP's base per-service exposure rate.
    service_affinity: Dict[str, float] = field(default_factory=dict)
    #: Per-service software stacks: service key → [(Software, weight)].
    software: Dict[str, SoftwareMix] = field(default_factory=dict)
    #: Banner placed on TELNET greetings (the "forthright vendor banner").
    telnet_banner: str = ""
    #: Model names used in HTTP titles / TLS certificate CNs.
    models: Tuple[str, ...] = ("GW-1000",)
    #: Whether HTTP titles / TLS certificate CNs name the vendor.  White-label
    #: OEM gear ships anonymous pages, so it stays unidentified even when its
    #: management service is reachable.
    banner_identifiable: bool = True

    @property
    def identifiable_by_mac(self) -> bool:
        return self.oui_count > 0

    def affinity(self, service_key: str) -> float:
        return self.service_affinity.get(service_key, 1.0)

    def pick_software(self, service_key: str, rng: random.Random) -> Optional[Software]:
        mix = self.software.get(service_key)
        if not mix:
            return None
        total = sum(weight for _sw, weight in mix)
        roll = rng.random() * total
        for software, weight in mix:
            roll -= weight
            if roll <= 0:
                return software
        return mix[-1][0]

    def pick_model(self, rng: random.Random) -> str:
        return rng.choice(self.models)


def _sw(name: str, version: str) -> Software:
    return Software(name, version)


# Common embedded stacks, shared across vendor definitions.
_DNSMASQ_24 = _sw("dnsmasq", "2.45")
_DNSMASQ_25 = _sw("dnsmasq", "2.52")
_DNSMASQ_26 = _sw("dnsmasq", "2.66")
_DNSMASQ_27 = _sw("dnsmasq", "2.75")
_JETTY = _sw("Jetty", "6.1.26")
_MINIWEB = _sw("MiniWeb HTTP Server", "0.8.19")
_MICRO_HTTPD = _sw("micro_httpd", "1.0")
_GOAHEAD = _sw("GoAhead Embedded", "2.5.0")
_DROPBEAR_046 = _sw("dropbear", "0.46")
_DROPBEAR_048 = _sw("dropbear", "0.48")
_DROPBEAR_052 = _sw("dropbear", "0.52")
_DROPBEAR_2012 = _sw("dropbear", "2012.55")
_DROPBEAR_2017 = _sw("dropbear", "2017.75")
_OPENSSH_35 = _sw("openssh", "3.5")
_OPENSSH_5 = _sw("openssh", "5.8")
_OPENSSH_6 = _sw("openssh", "6.6")
_OPENSSH_7 = _sw("openssh", "7.4")
_OPENSSH_8 = _sw("openssh", "8.2")
_INETUTILS = _sw("GNU Inetutils", "1.4.1")
_FRITZ_FTP = _sw("Fritz!Box", "7.2.1")
_FREEBSD_FTP = _sw("FreeBSD", "6.00ls")
_VSFTPD_22 = _sw("vsftpd", "2.2.2")
_VSFTPD_23 = _sw("vsftpd", "2.3.4")
_VSFTPD_30 = _sw("vsftpd", "3.0.3")
_NTPD4 = _sw("NTP", "4")


def _catalog_vendors() -> List[Vendor]:
    """The CPE and UE vendors of Tables IV/XII and Figures 2/3/6."""
    return [
        # ----- Chinese broadband CPE vendors (Figure 2's top block) -----
        Vendor(
            "China Mobile",
            oui_count=4,
            service_affinity={
                "HTTP/8080": 1.6, "DNS/53": 0.35, "HTTP/80": 0.9,
                "FTP/21": 0.9, "SSH/22": 0.8, "TELNET/23": 0.9,
                "TLS/443": 1.0, "NTP/123": 0.0,
            },
            software={
                "DNS/53": [(_DNSMASQ_25, 1.0)],
                "HTTP/80": [(_MINIWEB, 0.6), (_MICRO_HTTPD, 0.4)],
                "HTTP/8080": [(_JETTY, 1.0)],
                "SSH/22": [(_DROPBEAR_2012, 0.8), (_DROPBEAR_052, 0.2)],
                "FTP/21": [(_INETUTILS, 1.0)],
                "TLS/443": [(_MINIWEB, 1.0)],
            },
            models=("GM220-S", "HG6543C", "AN5506"),
        ),
        Vendor(
            "Fiberhome",
            oui_count=3,
            service_affinity={
                "DNS/53": 2.2, "SSH/22": 9.0, "FTP/21": 9.0,
                "TELNET/23": 0.4, "HTTP/80": 0.8, "HTTP/8080": 0.05,
                "TLS/443": 0.2, "NTP/123": 0.0,
            },
            software={
                "DNS/53": [(_DNSMASQ_26, 0.7), (_DNSMASQ_25, 0.3)],
                "SSH/22": [(_DROPBEAR_048, 1.0)],
                "FTP/21": [(_INETUTILS, 1.0)],
                "HTTP/80": [(_MICRO_HTTPD, 1.0)],
                "HTTP/8080": [(_GOAHEAD, 1.0)],
                "TLS/443": [(_MICRO_HTTPD, 1.0)],
            },
            models=("HG6245D", "AN5506-04"),
        ),
        Vendor(
            "Youhua Tech",
            oui_count=2,
            # "All of the selected 7 services except NTP are accessible for
            # Youhua Tech's devices" (§V-B).
            service_affinity={
                "DNS/53": 11.0, "FTP/21": 11.0, "SSH/22": 3.5,
                "TELNET/23": 11.0, "HTTP/80": 1.2, "TLS/443": 11.0,
                "HTTP/8080": 0.4, "NTP/123": 0.0,
            },
            software={
                "DNS/53": [(_DNSMASQ_24, 1.0)],  # the 142k dnsmasq-2.4x row
                "SSH/22": [(_DROPBEAR_052, 1.0)],
                "FTP/21": [(_INETUTILS, 1.0)],
                "HTTP/80": [(_MINIWEB, 1.0)],
                "TLS/443": [(_MINIWEB, 1.0)],
                "HTTP/8080": [(_GOAHEAD, 1.0)],
            },
            telnet_banner="Youhua Tech",
            models=("WR1200JS", "GPN-1001"),
        ),
        Vendor(
            "China Unicom",
            oui_count=2,
            service_affinity={
                "DNS/53": 3.0, "TELNET/23": 2.5, "HTTP/80": 1.4,
                "HTTP/8080": 0.3, "SSH/22": 0.4, "FTP/21": 0.5,
                "TLS/443": 0.1, "NTP/123": 0.0,
            },
            software={
                "DNS/53": [(_DNSMASQ_27, 0.8), (_DNSMASQ_26, 0.2)],
                "HTTP/80": [(_MICRO_HTTPD, 1.0)],
                "HTTP/8080": [(_GOAHEAD, 1.0)],
                "SSH/22": [(_DROPBEAR_052, 1.0)],
                "FTP/21": [(_INETUTILS, 1.0)],
            },
            telnet_banner="China Unicom",
            models=("PON-U64", "HG1543"),
        ),
        Vendor(
            "ZTE",
            oui_count=4,
            service_affinity={
                "TELNET/23": 3.0, "DNS/53": 1.2, "HTTP/80": 1.1,
                "HTTP/8080": 0.2, "SSH/22": 0.3, "FTP/21": 0.8,
                "TLS/443": 0.3, "NTP/123": 0.0,
            },
            software={
                "DNS/53": [(_DNSMASQ_26, 1.0)],
                "HTTP/80": [(_MICRO_HTTPD, 1.0)],
                "HTTP/8080": [(_GOAHEAD, 1.0)],
                "SSH/22": [(_DROPBEAR_2012, 1.0)],
                "FTP/21": [(_INETUTILS, 1.0)],
            },
            telnet_banner="ZTE",
            models=("F660", "F7610M", "ZXHN-H168"),
        ),
        Vendor(
            "StarNet",
            oui_count=1,
            # "StarNet's devices only tend to expose HTTP/8080" (§V-B).
            service_affinity={
                "HTTP/8080": 6.0, "DNS/53": 0.0, "NTP/123": 0.0,
                "FTP/21": 0.0, "SSH/22": 0.0, "TELNET/23": 0.0,
                "HTTP/80": 0.02, "TLS/443": 0.0,
            },
            software={
                "HTTP/8080": [(_JETTY, 0.9), (_GOAHEAD, 0.1)],
                "HTTP/80": [(_GOAHEAD, 1.0)],
            },
            models=("SN-GW100",),
        ),
        Vendor(
            "Skyworth",
            oui_count=3,
            service_affinity={
                "HTTP/80": 1.8, "TLS/443": 1.2, "HTTP/8080": 0.25,
                "DNS/53": 0.15, "SSH/22": 0.1, "FTP/21": 0.1,
                "TELNET/23": 0.2, "NTP/123": 0.0,
            },
            software={
                "HTTP/80": [(_MINIWEB, 1.0)],
                "TLS/443": [(_MINIWEB, 1.0)],
                "HTTP/8080": [(_JETTY, 1.0)],
                "DNS/53": [(_DNSMASQ_25, 1.0)],
            },
            models=("DT741", "GN542VF"),
        ),
        Vendor(
            "Huawei", oui_count=3,
            service_affinity={"HTTP/80": 1.0, "TLS/443": 0.8, "DNS/53": 0.5,
                              "NTP/123": 0.0},
            software={
                "HTTP/80": [(_GOAHEAD, 1.0)],
                "TLS/443": [(_GOAHEAD, 1.0)],
                "DNS/53": [(_DNSMASQ_27, 1.0)],
                "SSH/22": [(_DROPBEAR_2017, 1.0)],
            },
            models=("WS5100", "HG8245H"),
        ),
        # ----- Western / other CPE vendors -----
        Vendor(
            "AVM GmbH",
            oui_count=2,
            service_affinity={
                "FTP/21": 4.0, "TLS/443": 3.0, "HTTP/80": 1.2,
                "NTP/123": 0.5, "DNS/53": 0.2, "SSH/22": 0.0,
                "TELNET/23": 0.0, "HTTP/8080": 0.1,
            },
            software={
                "FTP/21": [(_FRITZ_FTP, 1.0)],
                "HTTP/80": [(_GOAHEAD, 1.0)],
                "TLS/443": [(_GOAHEAD, 1.0)],
                "NTP/123": [(_NTPD4, 1.0)],
            },
            models=("FRITZ!Box 7590", "FRITZ!Box 6660"),
        ),
        Vendor(
            "Technicolor", oui_count=2,
            service_affinity={"HTTP/80": 1.0, "TLS/443": 1.0, "NTP/123": 0.6},
            software={
                "HTTP/80": [(_MICRO_HTTPD, 1.0)],
                "TLS/443": [(_MICRO_HTTPD, 1.0)],
                "NTP/123": [(_NTPD4, 1.0)],
                "SSH/22": [(_DROPBEAR_2017, 1.0)],
            },
            models=("TG789vac", "CGA4234"),
        ),
        Vendor(
            "Hitron Tech", oui_count=1,
            service_affinity={"HTTP/80": 2.0, "TLS/443": 2.0, "HTTP/8080": 1.0},
            software={
                "HTTP/80": [(_GOAHEAD, 1.0)],
                "TLS/443": [(_GOAHEAD, 1.0)],
                "HTTP/8080": [(_GOAHEAD, 1.0)],
            },
            models=("CGNV4", "CODA-4582"),
        ),
        Vendor(
            "Xfinity", oui_count=2,
            service_affinity={"NTP/123": 1.5, "HTTP/8080": 1.2, "TLS/443": 1.0},
            software={
                "NTP/123": [(_NTPD4, 1.0)],
                "HTTP/8080": [(_GOAHEAD, 1.0)],
                "TLS/443": [(_GOAHEAD, 1.0)],
            },
            models=("XB6", "XB7"),
        ),
        Vendor(
            "CenturyLink OEM", oui_count=0, banner_identifiable=False,
            service_affinity={
                "NTP/123": 8.0, "DNS/53": 1.5, "SSH/22": 1.2,
                "TELNET/23": 1.0, "TLS/443": 1.4,
            },
            software={
                "NTP/123": [(_NTPD4, 1.0)],
                "DNS/53": [(_DNSMASQ_25, 0.6), (_DNSMASQ_26, 0.4)],
                "SSH/22": [(_DROPBEAR_2017, 0.6), (_OPENSSH_35, 0.25),
                            (_OPENSSH_5, 0.05), (_OPENSSH_6, 0.05),
                            (_OPENSSH_7, 0.03), (_OPENSSH_8, 0.02)],
                "FTP/21": [(_FREEBSD_FTP, 0.55), (_VSFTPD_22, 0.15),
                            (_VSFTPD_23, 0.15), (_VSFTPD_30, 0.15)],
                "HTTP/80": [(_MICRO_HTTPD, 1.0)],
                "TLS/443": [(_MICRO_HTTPD, 1.0)],
            },
            models=("C3000A", "C4000XG"),
        ),
        Vendor(
            "TP-Link", oui_count=2,
            service_affinity={"HTTP/80": 1.5, "DNS/53": 0.8},
            software={
                "HTTP/80": [(_GOAHEAD, 1.0)],
                "DNS/53": [(_DNSMASQ_27, 1.0)],
                "SSH/22": [(_DROPBEAR_2017, 1.0)],
            },
            models=("TL-XDR3230", "Archer C7"),
        ),
        Vendor("D-Link", oui_count=2,
               service_affinity={"HTTP/80": 1.5, "TELNET/23": 1.0},
               software={"HTTP/80": [(_GOAHEAD, 1.0)]},
               models=("COVR-3902", "DIR-882")),
        Vendor("Xiaomi", oui_count=1,
               service_affinity={"HTTP/80": 1.0},
               software={"HTTP/80": [(_GOAHEAD, 1.0)],
                          "DNS/53": [(_DNSMASQ_27, 1.0)]},
               models=("AX5", "AX3600")),
        Vendor("Netgear", oui_count=2,
               service_affinity={"HTTP/80": 1.0, "TLS/443": 1.0},
               software={"HTTP/80": [(_MINIWEB, 1.0)],
                          "TLS/443": [(_MINIWEB, 1.0)]},
               models=("R6400v2", "RAX80")),
        Vendor("Linksys", oui_count=1,
               service_affinity={"HTTP/80": 1.0},
               software={"HTTP/80": [(_GOAHEAD, 1.0)]},
               models=("EA8100", "MR9600")),
        Vendor("Asus", oui_count=1,
               service_affinity={"HTTP/80": 1.0, "SSH/22": 0.5},
               software={"HTTP/80": [(_GOAHEAD, 1.0)],
                          "SSH/22": [(_DROPBEAR_2017, 1.0)]},
               models=("GT-AC5300", "RT-AX88U")),
        Vendor("Optilink", oui_count=1,
               service_affinity={"HTTP/80": 1.2, "TELNET/23": 1.5},
               software={"HTTP/80": [(_GOAHEAD, 1.0)]},
               models=("OP-XGW100",)),
        Vendor("Tenda", oui_count=1,
               service_affinity={"HTTP/80": 1.0},
               software={"HTTP/80": [(_GOAHEAD, 1.0)]},
               models=("AC23",)),
        Vendor("MikroTik", oui_count=1,
               service_affinity={"SSH/22": 1.5, "HTTP/80": 1.0,
                                  "FTP/21": 1.0},
               software={"SSH/22": [(_OPENSSH_7, 1.0)],
                          "HTTP/80": [(_GOAHEAD, 1.0)],
                          "FTP/21": [(_VSFTPD_30, 1.0)]},
               models=("hAP ac2", "RB4011")),
        Vendor("Technicolor-IN", oui_count=1,
               service_affinity={"HTTP/80": 1.0},
               software={"HTTP/80": [(_GOAHEAD, 1.0)],
                          "DNS/53": [(_DNSMASQ_27, 1.0)]},
               models=("DJA0231",)),
        Vendor(
            "JioOEM", oui_count=0, banner_identifiable=False,
            service_affinity={"DNS/53": 6.0, "HTTP/8080": 0.4,
                              "HTTP/80": 0.05, "NTP/123": 0.0},
            software={
                "DNS/53": [(_DNSMASQ_27, 0.9), (_DNSMASQ_26, 0.1)],
                "HTTP/8080": [(_GOAHEAD, 1.0)],
                "HTTP/80": [(_GOAHEAD, 1.0)],
            },
            models=("JCO4032", "JioFiber GW"),
        ),
        Vendor(
            "OpenWrt", oui_count=0,  # software distro: no OUI of its own
            service_affinity={"SSH/22": 2.0, "DNS/53": 2.0, "HTTP/80": 1.0},
            software={
                "SSH/22": [(_DROPBEAR_2017, 1.0)],
                "DNS/53": [(_DNSMASQ_27, 1.0)],
                "HTTP/80": [(_GOAHEAD, 1.0)],
            },
            telnet_banner="OpenWrt",
            models=("19.07.4",),
        ),
        # Unidentifiable OEM gear: MACs resolve to no registered vendor.
        Vendor("Generic OEM", oui_count=0, banner_identifiable=False,
               service_affinity={"NTP/123": 0.3},
               software={
                   "DNS/53": [(_DNSMASQ_26, 0.5), (_DNSMASQ_27, 0.5)],
                   "HTTP/80": [(_MICRO_HTTPD, 0.7), (_GOAHEAD, 0.3)],
                   "HTTP/8080": [(_JETTY, 0.8), (_GOAHEAD, 0.2)],
                   "SSH/22": [(_DROPBEAR_046, 0.25), (_DROPBEAR_048, 0.45),
                               (_DROPBEAR_2012, 0.2), (_DROPBEAR_2017, 0.1)],
                   "FTP/21": [(_INETUTILS, 1.0)],
                   "NTP/123": [(_NTPD4, 1.0)],
                   "TLS/443": [(_GOAHEAD, 1.0)],
               },
               models=("GW", "HGW")),
        # ----- UE (smartphone) vendors, Table IV's bottom block -----
        Vendor("NTMore", kind=UE, models=("NT-500",)),
        Vendor("HMD Global", kind=UE, models=("Nokia 8.3",)),
        Vendor("Vivo", kind=UE, models=("X50",)),
        Vendor("Oppo", kind=UE, models=("Reno4",)),
        Vendor("Apple", kind=UE, oui_count=3, models=("iPhone 11",)),
        Vendor("Samsung", kind=UE, oui_count=3, models=("Galaxy S20",)),
        Vendor("Nokia", kind=UE, models=("7.2",)),
        Vendor("LG", kind=UE, models=("Velvet",)),
        Vendor("Motorola", kind=UE, models=("Edge",)),
        Vendor("Lenovo", kind=UE, models=("Legion",)),
        Vendor("Nubia", kind=UE, models=("Red Magic 5G",)),
        Vendor("OnePlus", kind=UE, models=("8T",)),
        Vendor("Generic UE", kind=UE, oui_count=0, banner_identifiable=False,
               service_affinity={"NTP/123": 0.5},
               software={
                   "DNS/53": [(_DNSMASQ_27, 1.0)],
                   "HTTP/80": [(_GOAHEAD, 1.0)],
                   "HTTP/8080": [(_GOAHEAD, 1.0)],
                   "SSH/22": [(_DROPBEAR_2017, 1.0)],
                   "TLS/443": [(_GOAHEAD, 1.0)],
                   "NTP/123": [(_NTPD4, 1.0)],
               },
               models=("Phone",)),
    ]


class VendorCatalog:
    """All vendors plus the OUI registry they are registered in."""

    def __init__(self, vendors: Sequence[Vendor] | None = None) -> None:
        self.vendors: Dict[str, Vendor] = {}
        self.registry = OuiRegistry()
        for vendor in vendors if vendors is not None else _catalog_vendors():
            self.add(vendor)

    def add(self, vendor: Vendor) -> None:
        self.vendors[vendor.name] = vendor
        if vendor.oui_count > 0:
            self.registry.register(vendor.name, count=vendor.oui_count)

    def get(self, name: str) -> Vendor:
        try:
            return self.vendors[name]
        except KeyError:
            raise KeyError(f"unknown vendor {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self.vendors

    def __iter__(self):
        return iter(self.vendors.values())


#: The catalogue instance the default profiles reference.
DEFAULT_CATALOG = VendorCatalog()
