"""DHCPv6-PD prefix rotation / customer churn.

The paper's two measurement campaigns (the November discovery census and
the December loop survey) straddle real ISP address churn: delegated
prefixes rotate when CPEs rebind, a dynamic the related work (Padmanabhan
et al., Plonka & Berger) studies directly.  This module models it: rotate a
fraction of one block's customers onto fresh delegations (new prefixes, new
addresses, same device identity and services), so longitudinal experiments
can measure overlap decay between scans.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Set

from repro.isp.builder import BuiltIsp, Deployment
from repro.net.device import CpeRouter, UeDevice


@dataclass
class RotationReport:
    """What one rotation pass changed."""

    rotated: int
    kept: int
    released_prefixes: List = None  # type: ignore[assignment]

    @property
    def fraction(self) -> float:
        total = self.rotated + self.kept
        return self.rotated / total if total else 0.0


def rotate_delegations(
    deployment: Deployment,
    isp: BuiltIsp,
    fraction: float,
    seed: int = 0,
) -> RotationReport:
    """Move ``fraction`` of the block's customers to fresh delegations.

    Each rotated customer keeps its vendor, services, IID class, and loop
    behaviour but receives a new delegated prefix (a previously-unused
    window index) and, for same-model devices, a new address inside it —
    exactly what a DHCPv6 rebind with a non-sticky pool does.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction out of range: {fraction}")
    rng = random.Random(seed ^ 0x0707A7E)
    network = deployment.network
    profile = isp.profile

    used: Set[int] = {
        isp.scan_base.subprefix_index(truth.delegated.network,
                                      profile.subprefix_len)
        for truth in isp.truths
    }
    free = [i for i in range(1 << isp.window_bits) if i not in used]
    rng.shuffle(free)

    candidates = [i for i in range(len(isp.truths))]
    rng.shuffle(candidates)
    n_rotate = min(round(len(isp.truths) * fraction), len(free))

    released = []
    rotated = 0
    for truth_index in candidates[:n_rotate]:
        truth = isp.truths[truth_index]
        device = network.devices.get(truth.name)
        if device is None:
            continue
        new_index = free.pop()
        new_delegated = isp.scan_base.subprefix(new_index, profile.subprefix_len)

        # Tear down the old tenancy.
        isp.router.table.remove(truth.delegated)
        network.unregister(device)
        released.append(truth.delegated)

        if truth.archetype == "same":
            host_bits = 128 - new_delegated.length
            new_address = new_delegated.address(
                truth.last_hop.iid & ((1 << host_bits) - 1)
            )
            if isinstance(device, UeDevice):
                replacement = UeDevice(
                    truth.name, new_address, new_delegated,
                    isp_address=isp.router.primary_address,
                )
            else:
                assert isinstance(device, CpeRouter)
                replacement = CpeRouter(
                    truth.name, new_address,
                    wan_prefix=new_delegated, lan_prefix=new_delegated,
                    subnet_prefix=None,
                    isp_address=isp.router.primary_address,
                    vulnerable_wan=device.vulnerable_wan,
                )
            isp.router.delegate(new_delegated, new_address)
            truth.last_hop = new_address
        else:
            assert isinstance(device, CpeRouter)
            # The WAN tenancy survives a prefix rebind; only the delegated
            # LAN prefix changes.
            replacement = CpeRouter(
                truth.name, device.wan_address,
                wan_prefix=device.wan_prefix, lan_prefix=new_delegated,
                subnet_prefix=new_delegated.subprefix(0, 64),
                isp_address=isp.router.primary_address,
                vulnerable_lan=device.vulnerable_lan,
                loop_forward_limit=device.loop_forward_limit,
            )
            isp.router.delegate(new_delegated, device.wan_address)

        # Services move with the device.
        replacement.udp_services = device.udp_services
        replacement.tcp_services = device.tcp_services
        replacement.vendor = device.vendor
        replacement.model = device.model
        network.register(replacement)
        truth.delegated = new_delegated
        rotated += 1

    return RotationReport(
        rotated=rotated, kept=len(isp.truths) - rotated,
        released_prefixes=released,
    )
