"""Instantiates the simulated IPv6 Internet from ISP profiles.

``build_deployment`` creates the measurement vantage, a transit core, and —
for each :class:`repro.isp.profiles.IspProfile` — an ISP router plus a
scaled customer population:

* **"same" devices** (UE-model phones and single-prefix CPEs): their
  delegated prefix is on-link to themselves, so probes draw same-/64
  unreachables (Table II's "same" column);
* **"diff" devices** (CPE-model home routers): a delegated LAN prefix inside
  the scanned window plus a WAN address in the ISP's point-to-point
  infrastructure space, so probes draw different-/64 unreachables.  WAN
  addresses are optionally concentrated into few infrastructure /64s,
  reproducing Table II's low /64-uniqueness for Comcast/Charter/Mediacom;
* per-device IID class, vendor, MAC (with the configured duplicate rate),
  exposed services with vendor software stacks, and routing-loop defects
  (missing discard routes on the WAN or LAN prefix, split per Table XI).

The builder records a :class:`DeviceTruth` per device — ground truth used by
tests and EXPERIMENTS.md comparisons, never by the measurement pipeline.

Scale-down: populations are ``paper_count / scale`` and the scanned window is
sized to keep a realistic empty-space majority; every prefix keeps its real
paper length (delegations are genuine /64s and /60s), so discovery,
inference, and loop machinery run on unmodified address arithmetic.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.discovery.iid import IidClass, IidGenerator, classify_iid
from repro.isp.profiles import SERVICE_KEYS, IspProfile, PAPER_PROFILES
from repro.isp.vendors import DEFAULT_CATALOG, UE, Vendor, VendorCatalog
from repro.net.addr import IPv6Addr, IPv6Prefix, MacAddress
from repro.net.device import CpeRouter, Device, Host, IspRouter, Router, UeDevice
from repro.net.network import Network
from repro.services.base import SERVICE_SPECS, Software
from repro.services.banner import FtpServer, SshServer, TelnetServer
from repro.services.dns import DnsForwarder
from repro.services.http import HttpServer, TlsServer
from repro.services.ntp import NtpServer

#: Share of the non-EUI-64 population per IID class, from Table III's totals
#: (1.0 : 5.5 : 10.4 : 75.5 out of the 92.4% that is not EUI-64).
NON_EUI_SPLIT = (
    (IidClass.LOW_BYTE, 0.0108),
    (IidClass.EMBED_IPV4, 0.0595),
    (IidClass.BYTE_PATTERN, 0.1126),
    (IidClass.RANDOMIZED, 0.8171),
)

VANTAGE_ADDRESS = "2001:4860:4860::6464"
CORE_ADDRESS = "2001:4860:4860::1"

_TELNETD = Software("telnetd", "")


@dataclass
class DeviceTruth:
    """Ground truth for one simulated periphery device."""

    name: str
    isp_key: str
    vendor: str
    kind: str  # "CPE" | "UE"
    archetype: str  # "same" | "diff"
    iid_class: IidClass
    last_hop: IPv6Addr  # the WAN/UE address a scan should expose
    delegated: IPv6Prefix  # the in-window prefix assigned to the customer
    mac: Optional[MacAddress]
    services: Dict[str, Software] = field(default_factory=dict)
    loop_vulnerable: bool = False
    loop_prefix: str = ""  # "wan" | "lan" | ""


@dataclass
class BuiltIsp:
    """One instantiated ISP block."""

    profile: IspProfile
    router: IspRouter
    scan_base: IPv6Prefix
    window_bits: int
    n_devices: int
    scale: float
    truths: List[DeviceTruth] = field(default_factory=list)

    @property
    def scan_spec(self) -> str:
        """Scan-range string for the scaled window, in XMap notation."""
        return f"{self.scan_base}-{self.profile.subprefix_len}"

    def truth_by_last_hop(self) -> Dict[int, DeviceTruth]:
        return {truth.last_hop.value: truth for truth in self.truths}


@dataclass
class Deployment:
    """The full simulated Internet: vantage, core, and all ISP blocks."""

    network: Network
    vantage: Host
    core: Router
    isps: Dict[str, BuiltIsp]
    catalog: VendorCatalog

    def all_truths(self) -> List[DeviceTruth]:
        return [t for isp in self.isps.values() for t in isp.truths]

    @property
    def hops_before_isp(self) -> int:
        """The paper's ``n``: forwarding hops from the vantage to any ISP
        router (vantage → core → ISP)."""
        return 2


def _unregistered_mac(vendor: str, nic: int) -> MacAddress:
    """A MAC under an OUI nobody registered (unidentifiable hardware)."""
    digest = hashlib.sha256(f"unregistered-oui:{vendor}".encode()).digest()
    oui = int.from_bytes(digest[:3], "big") & ~(0x03 << 16)
    return MacAddress((oui << 24) | (nic & 0xFFFFFF))


def _iid_class_plan(
    rng: random.Random, count: int, eui64_frac: float
) -> List[IidClass]:
    n_eui = round(count * eui64_frac)
    plan = [IidClass.EUI64] * n_eui
    rest = count - n_eui
    for cls, share in NON_EUI_SPLIT:
        plan.extend([cls] * round(rest * share))
    plan = plan[:count]
    while len(plan) < count:
        plan.append(IidClass.RANDOMIZED)
    rng.shuffle(plan)
    return plan


class _IspBuilder:
    """Builds one ISP block's router and customer population."""

    def __init__(
        self,
        deployment: Deployment,
        profile: IspProfile,
        scale: float,
        min_devices: int,
        window_headroom_bits: int,
        seed: int,
    ) -> None:
        self.deployment = deployment
        self.profile = profile
        self.scale = scale
        self.rng = random.Random((seed << 16) ^ (profile.index * 0x9E3779B9))
        self.iid_gen = IidGenerator(self.rng)
        self.n_devices = max(min_devices, round(profile.paper_last_hops / scale))
        self.window_bits = min(
            20,
            max(8, math.ceil(math.log2(self.n_devices)) + window_headroom_bits),
        )
        self._nic_counters: Dict[str, int] = {}
        self._mac_pool: Dict[str, List[MacAddress]] = {}

        block = profile.block_prefix
        base_len = profile.subprefix_len - self.window_bits
        if base_len < block.length:
            raise ValueError(
                f"{profile.key}: window of {self.window_bits} bits does not "
                f"fit between /{block.length} and /{profile.subprefix_len}"
            )
        # Child 1 of the block at base_len: the scanned customer space;
        # child 2: point-to-point WAN infrastructure space (never scanned).
        self.scan_base = block.subprefix(1, base_len)
        self.infra_base = block.subprefix(2, base_len)

    # -- identity helpers -----------------------------------------------------

    def _make_mac(self, vendor: Vendor, force_duplicate: bool) -> MacAddress:
        pool = self._mac_pool.setdefault(vendor.name, [])
        if force_duplicate and pool:
            # Duplicate MACs come from cloned firmware, so the twin is
            # another unit of the same vendor.
            return self.rng.choice(pool)
        nic = self._nic_counters.get(vendor.name, 0)
        self._nic_counters[vendor.name] = nic + 1
        if vendor.identifiable_by_mac:
            mac = self.deployment.catalog.registry.make_mac(
                vendor.name, nic, oui_index=nic % max(1, vendor.oui_count)
            )
        else:
            mac = _unregistered_mac(vendor.name, nic)
        pool.append(mac)
        return mac

    #: Exposure damping for manually-configured address classes: Table V
    #: shows service-alive devices are essentially EUI-64 + Randomized (the
    #: consumer-CPE classes); low-byte/pattern/embed addresses belong to
    #: hand-configured infrastructure that rarely runs periphery services.
    MANUAL_IID_EXPOSURE = 0.15

    def _services_for(
        self, vendor: Vendor, iid_class: IidClass = IidClass.RANDOMIZED
    ) -> Dict[str, Software]:
        """Draw the device's exposed services.

        Exposure is *correlated*: Table VII's per-service counts sum to far
        more than its per-ISP totals, i.e. one exposed device typically
        opens several services.  So the device is first drawn "exposed" with
        the ISP's total-alive propensity (stretched to cover the vendor's
        largest per-service marginal), and only then are individual services
        drawn conditionally — preserving both the service marginals and the
        alive-device total.
        """
        profile = self.profile
        marginals = {
            key: min(1.0, profile.service_rate(key) * vendor.affinity(key))
            for key in SERVICE_KEYS
        }
        peak = max(marginals.values(), default=0.0)
        if peak <= 0:
            return {}
        q_isp = profile.service_total / profile.paper_last_hops
        propensity = min(1.0, max(q_isp, peak))
        if iid_class in (IidClass.LOW_BYTE, IidClass.BYTE_PATTERN,
                         IidClass.EMBED_IPV4):
            propensity *= self.MANUAL_IID_EXPOSURE
        if self.rng.random() >= propensity:
            return {}
        services: Dict[str, Software] = {}
        for key, marginal in marginals.items():
            if marginal <= 0 or self.rng.random() >= marginal / propensity:
                continue
            if key == "TELNET/23":
                services[key] = _TELNETD
                continue
            software = vendor.pick_software(key, self.rng)
            if software is not None:
                services[key] = software
        return services

    def _bind_services(
        self, device: Device, vendor: Vendor, model: str,
        services: Dict[str, Software],
    ) -> None:
        display_vendor = vendor.name if vendor.banner_identifiable else ""
        for key, software in services.items():
            spec = SERVICE_SPECS[key]
            if key == "DNS/53":
                device.bind_service(DnsForwarder(software))
            elif key == "NTP/123":
                device.bind_service(NtpServer(software))
            elif key == "FTP/21":
                device.bind_service(FtpServer(software))
            elif key == "SSH/22":
                device.bind_service(SshServer(software))
            elif key == "TELNET/23":
                device.bind_service(
                    TelnetServer(_TELNETD, vendor_banner=vendor.telnet_banner)
                )
            elif key in ("HTTP/80", "HTTP/8080"):
                device.bind_service(
                    HttpServer(
                        software, spec=spec, vendor=display_vendor,
                        model=model,
                        # ~15% of pages sit behind HTTP auth: reachable but
                        # not login-keyword-identifiable (the paper's 1.3M
                        # vs 1.1M HTTP/80 gap).
                        requires_auth=self.rng.random() < 0.15,
                    )
                )
            elif key == "TLS/443":
                device.bind_service(
                    TlsServer(software, vendor=display_vendor, model=model)
                )

    # -- device construction ----------------------------------------------------

    def _build_same_device(
        self,
        name: str,
        vendor: Vendor,
        delegated: IPv6Prefix,
        iid: int,
        loops: bool,
    ) -> Tuple[Device, IPv6Addr]:
        """A UE or single-prefix CPE: the delegation is on-link to itself."""
        host_bits = 128 - delegated.length
        address = delegated.address(iid & ((1 << host_bits) - 1))
        isp_addr = self._router.primary_address
        if vendor.kind == UE and not loops:
            device: Device = UeDevice(name, address, delegated, isp_address=isp_addr)
        else:
            device = CpeRouter(
                name,
                address,
                wan_prefix=delegated,
                lan_prefix=delegated,
                subnet_prefix=None,
                isp_address=isp_addr,
                vulnerable_wan=loops,
            )
        self._router.delegate(delegated, address)
        return device, address

    def _build_diff_device(
        self,
        name: str,
        vendor: Vendor,
        delegated: IPv6Prefix,
        iid: int,
        loops: bool,
        diff_index: int,
        shared_count: int,
    ) -> Tuple[Device, IPv6Addr]:
        """A CPE with an infrastructure WAN address and a LAN delegation."""
        wan_prefix = self.infra_base.subprefix(diff_index % shared_count, 64)
        wan_iid = iid
        wan_address = wan_prefix.address(wan_iid)
        retries = 0
        # Devices sharing an infrastructure /64 must still have unique WANs.
        while self.deployment.network.device_at(wan_address) is not None:
            retries += 1
            if retries > 64:
                raise RuntimeError("could not find a free WAN address")
            wan_iid = self.iid_gen.generate(classify_iid(iid))
            wan_address = wan_prefix.address(wan_iid)
        device = CpeRouter(
            name,
            wan_address,
            wan_prefix=wan_prefix,
            lan_prefix=delegated,
            subnet_prefix=delegated.subprefix(0, 64),
            isp_address=self._router.primary_address,
            vulnerable_lan=loops,
        )
        self._router.delegate(delegated, wan_address)
        self._router.table.add_connected(wan_prefix, "infra")
        return device, wan_address

    @property
    def _router(self) -> IspRouter:
        return self.deployment.isps[self.profile.key].router

    # -- the build ----------------------------------------------------------------

    def start(self) -> BuiltIsp:
        """Create and register the ISP router and the BuiltIsp shell."""
        profile = self.profile
        router = IspRouter(
            f"isp-{profile.key}",
            profile.block_prefix.address(1),
            profile.block_prefix,
            unassigned_behavior=profile.unassigned_behavior,
            drop_external_errors=profile.drop_external_errors,
        )
        router.table.add_default(self.deployment.core.primary_address)
        self.deployment.network.register(router)
        self.deployment.core.table.add_next_hop(
            profile.block_prefix, router.primary_address
        )
        return BuiltIsp(
            profile=profile,
            router=router,
            scan_base=self.scan_base,
            window_bits=self.window_bits,
            n_devices=self.n_devices,
            scale=self.scale,
        )

    def populate(self, built: BuiltIsp) -> None:
        """Create the customer devices and their ground-truth records."""
        profile = self.profile
        rng = self.rng
        n = self.n_devices
        n_same = round(n * profile.same_frac)
        n_diff = n - n_same
        n_loop = round(n * profile.loop_frac)
        loop_same = min(round(n_loop * profile.loop_same_frac), n_same)
        loop_diff = min(n_loop - loop_same, n_diff)

        # /64 uniqueness: same-archetype devices contribute one unique /64
        # each; diff devices share infrastructure /64s when the profile's
        # uniqueness ratio demands it.
        target_unique = max(1, round(n * profile.unique64_frac))
        shared_count = max(1, min(n_diff, target_unique - n_same)) if n_diff else 1

        window_indices = rng.sample(range(1 << self.window_bits), n)
        vendor_names = rng.choices(
            [name for name, _w in profile.vendor_mix],
            weights=[w for _n, w in profile.vendor_mix],
            k=n,
        )
        iid_plan = _iid_class_plan(rng, n, profile.eui64_frac)
        n_dup_macs = round(n * profile.eui64_frac * (1 - profile.mac_unique_frac))

        archetypes = ["same"] * n_same + ["diff"] * n_diff
        loop_flags = (
            [True] * loop_same + [False] * (n_same - loop_same)
            + [True] * loop_diff + [False] * (n_diff - loop_diff)
        )

        # EUI-64 UE addresses embed phone MACs — which is exactly how the
        # paper attributed its 1.8k UE-brand devices.  Condition the vendor
        # draw on the IID class for mobile blocks so branded phones surface
        # among the (rare) EUI-64 population rather than vanishing at scale.
        branded_ue = [
            (name, weight) for name, weight in profile.vendor_mix
            if name != "Generic UE"
            and self.deployment.catalog.get(name).kind == UE
        ]
        if profile.is_mobile and branded_ue:
            for i in range(n):
                if iid_plan[i] is IidClass.EUI64 and rng.random() < 0.5:
                    vendor_names[i] = rng.choices(
                        [name for name, _w in branded_ue],
                        weights=[w for _n, w in branded_ue],
                    )[0]

        diff_index = 0
        eui_seen = 0
        for i in range(n):
            vendor = self.deployment.catalog.get(vendor_names[i])
            archetype = archetypes[i]
            loops = loop_flags[i]
            iid_class = iid_plan[i]
            force_dup = False
            if iid_class is IidClass.EUI64:
                eui_seen += 1
                force_dup = eui_seen <= n_dup_macs and bool(
                    self._mac_pool.get(vendor.name)
                )
            mac = self._make_mac(vendor, force_dup)
            iid = self.iid_gen.generate(iid_class, mac=mac)
            delegated = self.scan_base.subprefix(
                window_indices[i], profile.subprefix_len
            )
            name = f"dev-{profile.key}-{i}"

            if archetype == "same":
                device, last_hop = self._build_same_device(
                    name, vendor, delegated, iid, loops
                )
                loop_prefix = "wan" if loops else ""
            else:
                device, last_hop = self._build_diff_device(
                    name, vendor, delegated, iid, loops, diff_index, shared_count
                )
                loop_prefix = "lan" if loops else ""
                diff_index += 1

            model = vendor.pick_model(rng)
            services = self._services_for(vendor, iid_class)
            self._bind_services(device, vendor, model, services)
            device.vendor = vendor.name
            device.model = model
            self.deployment.network.register(device)

            built.truths.append(
                DeviceTruth(
                    name=name,
                    isp_key=profile.key,
                    vendor=vendor.name,
                    kind=vendor.kind,
                    archetype=archetype,
                    iid_class=iid_class,
                    last_hop=last_hop,
                    delegated=delegated,
                    mac=mac if iid_class is IidClass.EUI64 else None,
                    services=services,
                    loop_vulnerable=loops,
                    loop_prefix=loop_prefix,
                )
            )


def build_deployment(
    profiles: Sequence[IspProfile] | None = None,
    scale: float = 1000.0,
    seed: int = 0,
    min_devices: int = 40,
    window_headroom_bits: int = 2,
    loss_rate: float = 0.0,
    catalog: VendorCatalog | None = None,
    network: Network | None = None,
    vantage: Host | None = None,
    core: Router | None = None,
) -> Deployment:
    """Build the full simulated Internet.

    ``scale`` divides every paper population count; ``min_devices`` keeps
    tiny blocks statistically usable.  The returned deployment is
    deterministic in ``seed`` — the per-ISP RNG streams are keyed by
    (seed, profile index) only, so a block is bit-identical whether built
    standalone or mounted into a larger world.

    Pass ``network``/``vantage``/``core`` together to mount the ISP blocks
    under an existing core (e.g. the measurement AS of a compiled
    :class:`repro.bgp.BgpFabric` world) instead of creating a fresh
    vantage; ``loss_rate`` is ignored in that case (the host network keeps
    its own).
    """
    if profiles is None:
        profiles = PAPER_PROFILES
    catalog = catalog or DEFAULT_CATALOG
    mounts = (network, vantage, core)
    if any(m is not None for m in mounts) and None in mounts:
        raise ValueError(
            "network, vantage, and core must be provided together"
        )
    if network is None:
        network = Network(seed=seed, loss_rate=loss_rate)
        vantage = Host("vantage", IPv6Addr.from_string(VANTAGE_ADDRESS))
        core = Router("core", IPv6Addr.from_string(CORE_ADDRESS))
        network.register(core)
        network.attach_host(vantage, core)
        core.table.add_connected(vantage.primary_address.prefix(128), "vantage")
    assert vantage is not None and core is not None

    deployment = Deployment(
        network=network, vantage=vantage, core=core, isps={}, catalog=catalog
    )

    for profile in profiles:
        builder = _IspBuilder(
            deployment, profile, scale, min_devices, window_headroom_bits, seed
        )
        built = builder.start()
        deployment.isps[profile.key] = built
        builder.populate(built)

    return deployment
