"""ISP population models: the synthetic stand-in for twelve production ISPs.

:mod:`repro.isp.vendors` is the device-vendor catalogue (who makes CPEs/UEs,
which software stacks they ship, which services they tend to expose);
:mod:`repro.isp.profiles` encodes the fifteen measured IPv6 blocks of
Table I/II as parameter sets; :mod:`repro.isp.builder` instantiates a
:class:`repro.net.network.Network` populated per those profiles.
"""

from repro.isp.vendors import Vendor, VendorCatalog, DEFAULT_CATALOG
from repro.isp.profiles import IspProfile, PAPER_PROFILES, profile_by_key
from repro.isp.builder import Deployment, BuiltIsp, build_deployment

__all__ = [
    "Vendor",
    "VendorCatalog",
    "DEFAULT_CATALOG",
    "IspProfile",
    "PAPER_PROFILES",
    "profile_by_key",
    "Deployment",
    "BuiltIsp",
    "build_deployment",
]
