"""The fifteen measured IPv6 blocks of Tables I/II as parameter sets.

Each :class:`IspProfile` captures, for one sample block of one ISP, the
population parameters the paper measured:

* the scan geometry (block length and delegated sub-prefix length, Table I /
  Table II "Scan Range");
* the discovered-periphery population: last-hop count, the same-/64 vs
  different-/64 reply split, /64-uniqueness, EUI-64 share, MAC uniqueness
  (Table II);
* the per-service exposure rates (Table VII, expressed as count ratios);
* the routing-loop vulnerability rate and its same/diff split (Table XI);
* the vendor mix feeding Tables IV/VIII and Figures 2/3/6.

Counts are the paper's; the builder divides them by the experiment's
``scale`` factor.  Vendor-mix weights are *calibrated* (the paper does not
publish per-ISP vendor shares) so that the identified-vendor tables come out
with the paper's rankings and rough magnitudes; EXPERIMENTS.md records the
residual deltas.  Blocks are synthetic documentation-style prefixes, one per
ISP, mirroring the real per-RIR address plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.net.addr import IPv6Prefix

BROADBAND = "Broadband"
MOBILE = "Mobile"
ENTERPRISE = "Enterprise"

#: Service keys in Table VII column order.
SERVICE_KEYS = (
    "DNS/53", "NTP/123", "FTP/21", "SSH/22",
    "TELNET/23", "HTTP/80", "TLS/443", "HTTP/8080",
)


@dataclass(frozen=True)
class IspProfile:
    """Population parameters for one sample IPv6 block."""

    key: str
    index: int  # 1..15, the paper's row number
    country: str  # "IN" | "US" | "CN"
    network: str  # Broadband | Mobile | Enterprise
    isp: str
    asn: int
    block: str  # synthetic ISP block, e.g. "2405:200::/32"
    subprefix_len: int  # Table I inferred sub-prefix length
    paper_last_hops: int  # Table II "# uniq"
    same_frac: float  # Table II "% same" / 100
    unique64_frac: float  # Table II "/64 prefix %" / 100
    eui64_frac: float  # Table II "EUI-64 addr %" / 100
    mac_unique_frac: float  # Table II "MAC addr %" / 100
    service_counts: Dict[str, int]  # Table VII device counts (paper scale)
    #: Table VII "Total" column: devices with >=1 alive service.  The
    #: per-service counts sum to more than this (one device often exposes
    #: several services); the builder uses the ratio to correlate per-device
    #: exposure so both the marginals and the total reproduce.
    service_total: int
    loop_count: int  # Table XI "# uniq"
    loop_same_frac: float  # Table XI "% same" / 100
    vendor_mix: Tuple[Tuple[str, float], ...]  # calibrated weights
    unassigned_behavior: str = "blackhole"
    drop_external_errors: bool = False

    @property
    def block_prefix(self) -> IPv6Prefix:
        return IPv6Prefix.from_string(self.block)

    @property
    def scan_label(self) -> str:
        """The paper's "Scan Range" notation, e.g. ``/32-64``."""
        return f"/{self.block_prefix.length}-{self.subprefix_len}"

    @property
    def is_mobile(self) -> bool:
        return self.network == MOBILE

    def service_rate(self, service_key: str) -> float:
        """Fraction of this block's peripheries exposing the service."""
        return self.service_counts.get(service_key, 0) / self.paper_last_hops

    @property
    def loop_frac(self) -> float:
        return self.loop_count / self.paper_last_hops


def _svc(dns, ntp, ftp, ssh, telnet, http, tls, alt) -> Dict[str, int]:
    return dict(zip(SERVICE_KEYS, (dns, ntp, ftp, ssh, telnet, http, tls, alt)))


PAPER_PROFILES: List[IspProfile] = [
    IspProfile(
        key="in-jio-broadband", index=1, country="IN", network=BROADBAND,
        isp="Reliance Jio", asn=55836, block="2405:200::/32", subprefix_len=64,
        paper_last_hops=3_365_175, same_frac=0.998, unique64_frac=1.000,
        eui64_frac=0.014, mac_unique_frac=0.999,
        service_counts=_svc(30_300, 6, 1, 9, 1, 102, 0, 1_400),
        service_total=31_800,
        loop_count=8_606, loop_same_frac=0.979,
        vendor_mix=(
            ("JioOEM", 0.30), ("Generic OEM", 0.6995),
            ("D-Link", 0.0002), ("Optilink", 0.00006),
        ),
    ),
    IspProfile(
        key="in-bsnl-broadband", index=2, country="IN", network=BROADBAND,
        isp="BSNL", asn=9829, block="2409:4000::/32", subprefix_len=64,
        paper_last_hops=2_404, same_frac=0.344, unique64_frac=0.947,
        eui64_frac=0.767, mac_unique_frac=0.960,
        service_counts=_svc(4, 88, 21, 89, 55, 24, 20, 4),
        service_total=189,
        loop_count=324, loop_same_frac=0.543,
        vendor_mix=(
            ("Generic OEM", 0.57), ("Technicolor-IN", 0.25),
            ("D-Link", 0.12), ("MikroTik", 0.03), ("Optilink", 0.03),
        ),
        # The paper attributes BSNL's sparse results to a lightly used block
        # or filtering; the profile models a lightly used block.
    ),
    IspProfile(
        key="in-airtel-mobile", index=3, country="IN", network=MOBILE,
        isp="Bharti Airtel", asn=45609, block="2401:4900::/32", subprefix_len=64,
        paper_last_hops=22_542_690, same_frac=0.989, unique64_frac=0.991,
        eui64_frac=0.014, mac_unique_frac=0.976,
        service_counts=_svc(36_600, 131, 27, 50, 19, 1_000, 0, 6_700),
        service_total=44_500,
        loop_count=29_135, loop_same_frac=0.992,
        vendor_mix=(
            ("Generic UE", 0.975), ("NTMore", 0.012), ("HMD Global", 0.005),
            ("Vivo", 0.003), ("Oppo", 0.002), ("Apple", 0.0015),
            ("Samsung", 0.001), ("Nokia", 0.0005),
        ),
    ),
    IspProfile(
        key="in-vodafone-mobile", index=4, country="IN", network=MOBILE,
        isp="Vadafone", asn=38266, block="2402:3a80::/32", subprefix_len=64,
        paper_last_hops=2_307_784, same_frac=0.998, unique64_frac=1.000,
        eui64_frac=0.013, mac_unique_frac=0.969,
        service_counts=_svc(201, 39, 0, 13, 2, 141, 0, 623),
        service_total=1_000,
        loop_count=207, loop_same_frac=0.372,
        vendor_mix=(
            ("Generic UE", 0.985), ("NTMore", 0.006), ("Vivo", 0.003),
            ("Oppo", 0.003), ("Samsung", 0.0015), ("Nokia", 0.0015),
        ),
    ),
    IspProfile(
        key="us-comcast-broadband", index=5, country="US", network=BROADBAND,
        isp="Comcast", asn=7922, block="2601::/24", subprefix_len=56,
        paper_last_hops=87_308, same_frac=0.000, unique64_frac=0.065,
        eui64_frac=0.950, mac_unique_frac=1.000,
        service_counts=_svc(9, 290, 5, 13, 50, 54, 64, 319),
        service_total=423,
        loop_count=31, loop_same_frac=0.0,
        vendor_mix=(
            ("Xfinity", 0.55), ("AVM GmbH", 0.20), ("Technicolor", 0.10),
            ("Hitron Tech", 0.008), ("Netgear", 0.0015), ("Linksys", 0.0015),
            ("Asus", 0.0015), ("Generic OEM", 0.137),
        ),
    ),
    IspProfile(
        key="us-att-broadband", index=6, country="US", network=BROADBAND,
        isp="AT&T", asn=7018, block="2600:1700::/28", subprefix_len=60,
        paper_last_hops=740_141, same_frac=0.000, unique64_frac=0.994,
        eui64_frac=0.128, mac_unique_frac=0.999,
        service_counts=_svc(3_600, 320, 880, 223, 13, 340, 3_400, 0),
        service_total=8_300,
        loop_count=1_598, loop_same_frac=0.0,
        vendor_mix=(
            ("Generic OEM", 0.93), ("Technicolor", 0.05),
            ("Netgear", 0.00005), ("Linksys", 0.00005), ("Asus", 0.0001),
        ),
    ),
    IspProfile(
        key="us-charter-broadband", index=7, country="US", network=BROADBAND,
        isp="Charter", asn=20115, block="2603:6000::/24", subprefix_len=56,
        paper_last_hops=13_027, same_frac=0.016, unique64_frac=0.121,
        eui64_frac=0.006, mac_unique_frac=1.000,
        service_counts=_svc(437, 58, 1, 46, 3, 31, 372, 357),
        service_total=1_300,
        loop_count=373, loop_same_frac=0.0,
        vendor_mix=(
            ("Generic OEM", 0.95), ("Hitron Tech", 0.01),
            ("Netgear", 0.002), ("Linksys", 0.002),
        ),
    ),
    IspProfile(
        key="us-centurylink-broadband", index=8, country="US",
        network=BROADBAND, isp="CenturyLink", asn=209,
        block="2602:100::/24", subprefix_len=56,
        paper_last_hops=249_835, same_frac=0.000, unique64_frac=0.934,
        eui64_frac=0.370, mac_unique_frac=0.987,
        service_counts=_svc(3_600, 14_900, 1_000, 1_900, 1_500, 38, 3_000, 2),
        service_total=23_800,
        loop_count=20_055, loop_same_frac=0.0,
        vendor_mix=(
            ("CenturyLink OEM", 0.45), ("AVM GmbH", 0.30),
            ("Technicolor", 0.15), ("Generic OEM", 0.10),
        ),
    ),
    IspProfile(
        key="us-att-mobile", index=9, country="US", network=MOBILE,
        isp="AT&T", asn=20057, block="2600:380::/32", subprefix_len=64,
        paper_last_hops=1_734_506, same_frac=0.945, unique64_frac=0.997,
        eui64_frac=0.0003, mac_unique_frac=0.994,
        service_counts=_svc(0, 0, 0, 3, 2, 625, 625, 489),
        service_total=1_100,
        loop_count=2, loop_same_frac=0.0,
        vendor_mix=(
            ("Generic UE", 0.99), ("Apple", 0.004), ("Samsung", 0.003),
            ("LG", 0.001), ("Motorola", 0.001), ("HMD Global", 0.001),
        ),
    ),
    IspProfile(
        key="us-mediacom-enterprise", index=10, country="US",
        network=ENTERPRISE, isp="Mediacom", asn=30036,
        block="2605:a000::/28", subprefix_len=56,
        paper_last_hops=38_399, same_frac=0.000, unique64_frac=0.013,
        eui64_frac=0.004, mac_unique_frac=0.928,
        service_counts=_svc(93, 129, 14, 1_200, 1_100, 2_600, 1_300, 55),
        service_total=3_200,
        loop_count=7_161, loop_same_frac=0.0,
        vendor_mix=(
            ("Generic OEM", 0.63), ("Technicolor", 0.20),
            ("AVM GmbH", 0.15), ("Hitron Tech", 0.002),
            ("MikroTik", 0.0013), ("Xiaomi", 0.001),
        ),
    ),
    IspProfile(
        key="cn-telecom-broadband", index=11, country="CN", network=BROADBAND,
        isp="Telecom", asn=4134, block="240e::/28", subprefix_len=60,
        paper_last_hops=2_122_292, same_frac=0.002, unique64_frac=0.990,
        eui64_frac=0.122, mac_unique_frac=0.974,
        service_counts=_svc(63_600, 146, 211, 335, 240, 791, 51, 7),
        service_total=64_500,
        loop_count=843_375, loop_same_frac=0.041,
        vendor_mix=(
            ("Generic OEM", 0.877), ("Skyworth", 0.033), ("ZTE", 0.05),
            ("Fiberhome", 0.024), ("Huawei", 0.012), ("TP-Link", 0.0005),
            ("D-Link", 0.0005), ("Xiaomi", 0.0005), ("Tenda", 0.00005),
        ),
    ),
    IspProfile(
        key="cn-unicom-broadband", index=12, country="CN", network=BROADBAND,
        isp="Unicom", asn=4837, block="2408:8000::/28", subprefix_len=60,
        paper_last_hops=1_273_075, same_frac=0.030, unique64_frac=1.000,
        eui64_frac=0.533, mac_unique_frac=0.954,
        service_counts=_svc(
            202_300, 76, 35_800, 20_500, 36_500, 211_000, 169, 229_500
        ),
        service_total=313_300,
        loop_count=1_003_635, loop_same_frac=0.039,
        vendor_mix=(
            ("China Unicom", 0.085), ("ZTE", 0.09), ("Huawei", 0.025),
            ("Skyworth", 0.02), ("Youhua Tech", 0.01),
            ("Generic OEM", 0.77),
        ),
    ),
    IspProfile(
        key="cn-mobile-broadband", index=13, country="CN", network=BROADBAND,
        isp="Mobile", asn=9808, block="2409:8000::/28", subprefix_len=60,
        paper_last_hops=7_316_861, same_frac=0.024, unique64_frac=1.000,
        eui64_frac=0.331, mac_unique_frac=0.963,
        service_counts=_svc(
            403_000, 19, 139_400, 114_200, 140_200, 1_000_000, 138_200,
            3_300_000
        ),
        service_total=4_200_000,
        loop_count=3_877_512, loop_same_frac=0.045,
        vendor_mix=(
            ("China Mobile", 0.27), ("ZTE", 0.07), ("Skyworth", 0.06),
            ("Fiberhome", 0.035), ("Youhua Tech", 0.02),
            ("StarNet", 0.0045), ("Huawei", 0.001), ("TP-Link", 0.0001),
            ("Generic OEM", 0.539),
        ),
    ),
    IspProfile(
        key="cn-unicom-mobile", index=14, country="CN", network=MOBILE,
        isp="Unicom", asn=4837, block="2408:8400::/32", subprefix_len=64,
        paper_last_hops=3_696_275, same_frac=0.979, unique64_frac=0.999,
        eui64_frac=0.004, mac_unique_frac=0.988,
        service_counts=_svc(468, 21, 0, 8, 5, 147, 4, 176),
        service_total=678,
        loop_count=190, loop_same_frac=0.0,
        vendor_mix=(
            ("Generic UE", 0.992), ("Vivo", 0.003), ("Oppo", 0.002),
            ("Nubia", 0.0015), ("Lenovo", 0.001), ("OnePlus", 0.0005),
        ),
    ),
    IspProfile(
        key="cn-mobile-mobile", index=15, country="CN", network=MOBILE,
        isp="Mobile", asn=9808, block="2409:8900::/32", subprefix_len=64,
        paper_last_hops=7_193_972, same_frac=0.984, unique64_frac=0.999,
        eui64_frac=0.003, mac_unique_frac=0.986,
        service_counts=_svc(296, 122, 0, 133, 130, 96, 1, 236),
        service_total=718,
        loop_count=353, loop_same_frac=0.0,
        vendor_mix=(
            ("Generic UE", 0.993), ("Oppo", 0.003), ("Vivo", 0.002),
            ("Nubia", 0.001), ("Lenovo", 0.001),
        ),
    ),
]

_BY_KEY = {profile.key: profile for profile in PAPER_PROFILES}
_BY_INDEX = {profile.index: profile for profile in PAPER_PROFILES}


def profile_by_key(key: str) -> IspProfile:
    try:
        return _BY_KEY[key]
    except KeyError:
        raise KeyError(
            f"unknown ISP profile {key!r}; known: {sorted(_BY_KEY)}"
        ) from None


def profile_by_index(index: int) -> IspProfile:
    return _BY_INDEX[index]


#: Paper-wide totals used by the analysis layer for comparison printing.
PAPER_TOTALS = {
    "last_hops": 52_478_703,
    "same_pct": 77.2,
    "diff_pct": 22.8,
    "unique64": 52_086_849,
    "eui64": 3_973_467,
    "mac": 3_832_520,
    "service_alive": 4_690_000,
    "loop": 5_792_237,
    "loop_same_pct": 4.9,
    "loop_diff_pct": 95.1,
}
