"""Regeneration of every table in the paper's evaluation.

Each ``tableN_*`` function consumes measured pipeline outputs and returns a
:class:`repro.analysis.report.ComparisonTable` whose rows place the paper's
published value next to the reproduction's measured value (with the scale
factor recorded), so a bench run *is* the experiment record.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

from repro.analysis.report import ComparisonTable, fmt_count, fmt_pct
from repro.discovery.iid import IidClass, iid_breakdown
from repro.discovery.periphery import PeripheryCensus
from repro.discovery.subnet import SubnetInference
from repro.discovery.vendor_id import IdentifiedDevice
from repro.isp.profiles import PAPER_PROFILES, SERVICE_KEYS, IspProfile
from repro.loop.casestudy import CaseStudyResult
from repro.loop.detector import LoopSurvey
from repro.net.addr import IPv6Addr
from repro.services.cve import CveDatabase, DEFAULT_CVE_DB, family_of
from repro.services.zgrab import AppScanResult

#: Paper Table III — IID mix of all discovered peripheries (percent).
PAPER_TABLE3 = {
    IidClass.EUI64: 7.6,
    IidClass.LOW_BYTE: 1.0,
    IidClass.EMBED_IPV4: 5.5,
    IidClass.BYTE_PATTERN: 10.4,
    IidClass.RANDOMIZED: 75.5,
}

#: Paper Table V — IID mix of peripheries with alive services (percent).
#: (The paper's Embed-IPv4 row repeats Table III's 5.5% — an editing
#: artefact, since the five rows then exceed 100%; the reproduction treats
#: the four consistent rows as the target.)
PAPER_TABLE5 = {
    IidClass.EUI64: 30.4,
    IidClass.LOW_BYTE: 0.3,
    IidClass.BYTE_PATTERN: 0.2,
    IidClass.RANDOMIZED: 69.0,
}

#: Paper Table X — IID mix of loop-vulnerable last hops (percent).
PAPER_TABLE10 = {
    IidClass.EUI64: 18.0,
    IidClass.LOW_BYTE: 31.7,
    IidClass.EMBED_IPV4: 2.4,
    IidClass.BYTE_PATTERN: 0.7,
    IidClass.RANDOMIZED: 46.7,
}

#: Paper Table IV — top identified vendors and device counts.
PAPER_TABLE4_CPE = {
    "China Mobile": 2_000_000, "ZTE": 611_500, "Skyworth": 509_000,
    "Fiberhome": 260_500, "Youhua Tech": 146_500, "China Unicom": 107_900,
    "AVM GmbH": 97_900, "Technicolor": 46_300, "Huawei": 41_700,
    "StarNet": 32_200, "TP-Link": 1_800, "D-Link": 1_500, "Xiaomi": 994,
    "Hitron Tech": 914, "Netgear": 149, "Linksys": 147, "Asus": 145,
    "Optilink": 127, "Tenda": 110, "MikroTik": 50,
}
PAPER_TABLE4_UE = {
    "NTMore": 633, "HMD Global": 282, "Vivo": 194, "Oppo": 165,
    "Apple": 162, "Samsung": 126, "Nokia": 107, "LG": 50, "Motorola": 30,
    "Lenovo": 25, "Nubia": 21, "OnePlus": 5,
}

#: Paper Table VIII — headline software families, device counts, CVE counts.
PAPER_TABLE8 = (
    ("DNS/53", "dnsmasq", "2.4x", 142_000, 16),
    ("DNS/53", "dnsmasq", "2.7x", 52_000, 16),
    ("HTTP", "Jetty", "6.1x", 3_500_000, 24),
    ("HTTP", "MiniWeb HTTP Server", "0.8x", 655_000, 24),
    ("HTTP", "micro_httpd", "1.0x", 462_000, 24),
    ("SSH/22", "dropbear", "0.4x", 112_000, 10),
    ("SSH/22", "openssh", "3.5", 469, 74),
    ("FTP/21", "GNU Inetutils", "1.4x", 139_300, 0),
    ("FTP/21", "FreeBSD", "6.00ls", 136, 1),
)


def _profile_for(key: str) -> IspProfile:
    for profile in PAPER_PROFILES:
        if profile.key == key:
            return profile
    raise KeyError(key)


# ---------------------------------------------------------------------------
# Table I — inferred sub-prefix lengths
# ---------------------------------------------------------------------------

def table1_subnet_inference(
    inferences: Mapping[str, SubnetInference],
) -> ComparisonTable:
    table = ComparisonTable(
        "Table I — inferred IPv6 sub-prefix length for end-users",
        ("ISP block", "Country", "Network", "Scan", "Paper /len",
         "Inferred /len", "Probes", "OK"),
    )
    for key, inference in inferences.items():
        profile = _profile_for(key)
        inferred = inference.boundary_length
        table.add(
            profile.isp,
            profile.country,
            profile.network,
            profile.scan_label,
            profile.subprefix_len,
            inferred if inferred is not None else "-",
            inference.probes_sent,
            "yes" if inferred == profile.subprefix_len else "NO",
        )
    return table


# ---------------------------------------------------------------------------
# Table II — periphery scanning results
# ---------------------------------------------------------------------------

def table2_periphery(
    censuses: Mapping[str, PeripheryCensus],
    scale: float,
) -> ComparisonTable:
    table = ComparisonTable(
        f"Table II — periphery scanning per sample block (scale 1/{scale:g})",
        ("ISP", "last hops", "paper/scale", "same%", "paper", "diff%",
         "/64%", "paper", "EUI-64%", "paper", "MAC uniq%", "paper"),
    )
    total_records: List = []
    for key, census in censuses.items():
        profile = _profile_for(key)
        total_records.extend(census.records)
        table.add(
            profile.isp + (" (m)" if profile.is_mobile else ""),
            census.n_unique,
            f"{profile.paper_last_hops / scale:,.0f}",
            fmt_pct(census.same_pct),
            fmt_pct(profile.same_frac * 100),
            fmt_pct(census.diff_pct),
            fmt_pct(census.unique64_pct),
            fmt_pct(profile.unique64_frac * 100),
            fmt_pct(census.eui64_pct),
            fmt_pct(profile.eui64_frac * 100),
            fmt_pct(census.mac_unique_pct),
            fmt_pct(profile.mac_unique_frac * 100),
        )
    if total_records:
        same = sum(1 for r in total_records if r.same_slash64)
        eui = sum(1 for r in total_records if r.iid_class is IidClass.EUI64)
        table.add(
            "Total",
            len(total_records),
            "52,479",
            fmt_pct(100 * same / len(total_records)),
            "77.2%",
            fmt_pct(100 - 100 * same / len(total_records)),
            "-", "99.3%",
            fmt_pct(100 * eui / len(total_records)),
            "7.6%",
            "-", "96.5%",
        )
    return table


# ---------------------------------------------------------------------------
# Tables III / V / X — IID breakdowns
# ---------------------------------------------------------------------------

def _iid_table(
    title: str,
    addrs: Iterable[IPv6Addr],
    paper: Mapping[IidClass, float],
) -> ComparisonTable:
    counts = iid_breakdown(addrs)
    total = sum(counts.values())
    table = ComparisonTable(
        title, ("IID class", "measured #", "measured %", "paper %")
    )
    for cls in IidClass:
        measured_pct = 100 * counts[cls] / total if total else 0.0
        paper_pct = paper.get(cls)
        table.add(
            cls.value,
            counts[cls],
            fmt_pct(measured_pct),
            fmt_pct(paper_pct) if paper_pct is not None else "-",
        )
    table.add("Total", total, "100.0%", "100.0%")
    return table


def table3_iid(addrs: Iterable[IPv6Addr]) -> ComparisonTable:
    return _iid_table(
        "Table III — IID analysis of discovered peripheries", addrs, PAPER_TABLE3
    )


def table5_service_iid(addrs: Iterable[IPv6Addr]) -> ComparisonTable:
    table = _iid_table(
        "Table V — IID analysis of peripheries with alive services",
        addrs,
        PAPER_TABLE5,
    )
    table.note(
        "paper's Embed-IPv4 row (5.5%) duplicates Table III and overflows "
        "100% — treated as an editing artefact"
    )
    return table


def table10_loop_iid(addrs: Iterable[IPv6Addr]) -> ComparisonTable:
    return _iid_table(
        "Table X — IID analysis of last hops with routing loops",
        addrs,
        PAPER_TABLE10,
    )


# ---------------------------------------------------------------------------
# Table IV — vendors
# ---------------------------------------------------------------------------

def table4_vendors(
    identified: Sequence[IdentifiedDevice], scale: float
) -> ComparisonTable:
    table = ComparisonTable(
        f"Table IV — top periphery vendors (scale 1/{scale:g})",
        ("Kind", "Vendor", "measured #", "paper #", "paper/scale"),
    )
    by_kind: Dict[str, Dict[str, int]] = {"CPE": {}, "UE": {}}
    for device in identified:
        bucket = by_kind.setdefault(device.kind, {})
        bucket[device.vendor] = bucket.get(device.vendor, 0) + 1
    for kind, paper in (("CPE", PAPER_TABLE4_CPE), ("UE", PAPER_TABLE4_UE)):
        measured = by_kind.get(kind, {})
        names = sorted(
            set(measured) | set(paper),
            key=lambda n: measured.get(n, 0),
            reverse=True,
        )
        for name in names[:20]:
            paper_count = paper.get(name)
            table.add(
                kind,
                name,
                measured.get(name, 0),
                fmt_count(paper_count) if paper_count else "-",
                f"{paper_count / scale:,.1f}" if paper_count else "-",
            )
    table.note(
        "UE brand shares are inflated in the profiles (~30x) so the UE block "
        "is visible at simulation scale; rankings follow the paper"
    )
    return table


# ---------------------------------------------------------------------------
# Table VI — service probe matrix
# ---------------------------------------------------------------------------

PAPER_TABLE6 = (
    ("DNS/53", "UDP", '"A" or version query', "answers"),
    ("NTP/123", "UDP", "version query", "version reply"),
    ("FTP/21", "TCP", "request for connecting", "successful response"),
    ("SSH/22", "TCP", "version, key request", "version, key"),
    ("TELNET/23", "TCP", "request for login", "response for login"),
    ("HTTP/80", "TCP", "HTTP GET request", "header, version, body"),
    ("TLS/443", "TCP", "certificate request", "certificate, cipher suite"),
    ("HTTP/8080", "TCP", "HTTP GET request", "header, version, body"),
)


def table6_probe_matrix(
    observations: Mapping[str, bool],
) -> ComparisonTable:
    """``observations``: service key → did the probe elicit a valid response
    from a device running that service."""
    table = ComparisonTable(
        "Table VI — probing requests and valid responses",
        ("Service/Port", "Proto", "Request", "Valid response", "Reproduced"),
    )
    for key, proto, request, response in PAPER_TABLE6:
        table.add(
            key, proto, request, response,
            "yes" if observations.get(key) else "NO",
        )
    return table


# ---------------------------------------------------------------------------
# Table VII — alive services per ISP
# ---------------------------------------------------------------------------

def table7_services(
    app_results: Mapping[str, AppScanResult],
    census_sizes: Mapping[str, int],
    scale: float,
) -> ComparisonTable:
    table = ComparisonTable(
        f"Table VII — alive services on peripheries per ISP (scale 1/{scale:g})",
        ("ISP", *[k.split("/")[0] + "/" + k.split("/")[1] for k in SERVICE_KEYS],
         "Total", "Total% (paper)"),
    )
    grand: Dict[str, int] = {k: 0 for k in SERVICE_KEYS}
    grand_alive = 0
    grand_devices = 0
    for key, result in app_results.items():
        profile = _profile_for(key)
        by_service = result.by_service()
        alive_targets = result.alive_targets()
        row = [f"{profile.isp} ({profile.network[0].lower()})"]
        for service in SERVICE_KEYS:
            count = len(by_service.get(service, []))
            grand[service] += count
            paper = profile.service_counts.get(service, 0) / scale
            row.append(f"{count}/{paper:,.1f}")
        n_devices = census_sizes.get(key, 0) or 1
        grand_alive += len(alive_targets)
        grand_devices += census_sizes.get(key, 0)
        paper_total_pct = (
            100 * sum(profile.service_counts.values()) / profile.paper_last_hops
        )
        row.append(str(len(alive_targets)))
        row.append(
            f"{100 * len(alive_targets) / n_devices:.1f}% "
            f"({paper_total_pct:.1f}%)"
        )
        table.add(*row)
    total_row = ["Total"]
    for service in SERVICE_KEYS:
        total_row.append(str(grand[service]))
    total_row.append(str(grand_alive))
    pct = 100 * grand_alive / grand_devices if grand_devices else 0.0
    total_row.append(f"{pct:.1f}% (9.0%)")
    table.add(*total_row)
    table.note("cells are measured/paper-scaled device counts")
    return table


# ---------------------------------------------------------------------------
# Table VIII — software versions and CVEs
# ---------------------------------------------------------------------------

def table8_software(
    app_results: Iterable[AppScanResult],
    scale: float,
    cve_db: CveDatabase = DEFAULT_CVE_DB,
) -> ComparisonTable:
    table = ComparisonTable(
        f"Table VIII — top software, device counts, CVEs (scale 1/{scale:g})",
        ("Service", "Software", "Family", "measured #", "paper #",
         "CVEs (family)", "CVEs (software, paper)", "release lag"),
    )
    merged: Dict[str, Dict[str, int]] = {}
    for result in app_results:
        for obs in result.observations:
            if not obs.alive or obs.software is None:
                continue
            family = family_of(obs.software.name, obs.software.version)
            bucket = merged.setdefault(obs.service, {})
            label = f"{obs.software.name}|{family}"
            bucket[label] = bucket.get(label, 0) + 1

    paper_lookup = {
        (svc.split("/")[0], name, fam): (count, cves)
        for svc, name, fam, count, cves in PAPER_TABLE8
    }
    paper_software_cves = {"dnsmasq": 16, "Jetty": 24, "MiniWeb HTTP Server": 24,
                           "micro_httpd": 24, "GoAhead Embedded": 24,
                           "dropbear": 10, "openssh": 74,
                           "GNU Inetutils": 0, "FreeBSD": 1, "vsftpd": 2}
    for service in sorted(merged):
        for label, count in sorted(
            merged[service].items(), key=lambda kv: kv[1], reverse=True
        ):
            name, family = label.split("|")
            info = cve_db.info(name, family)
            paper = paper_lookup.get((service.split("/")[0], name, family))
            table.add(
                service,
                name,
                family,
                count,
                fmt_count(paper[0]) if paper else "-",
                info.cve_count if info else 0,
                paper_software_cves.get(name, "-"),
                f"{info.lag_years()}y" if info else "-",
            )
    return table


# ---------------------------------------------------------------------------
# Table IX / XI — loop populations
# ---------------------------------------------------------------------------

def table9_bgp(
    n_last_hops: int,
    n_asn: int,
    n_country: int,
    loop_last_hops: int,
    loop_asn: int,
    loop_country: int,
    scale: float,
    as_scale: float,
) -> ComparisonTable:
    table = ComparisonTable(
        "Table IX — BGP-advertised-prefix scanning "
        f"(devices 1/{scale:g}, ASes 1/{as_scale:g})",
        ("Last hops", "# unique", "paper", "# ASN", "paper", "# country",
         "paper"),
    )
    table.add("Total", n_last_hops, "4,029,270", n_asn, "6,911",
              n_country, "170")
    table.add("with Routing Loop", loop_last_hops, "128,288", loop_asn,
              "3,877", loop_country, "132")
    table.add(
        "loop share",
        fmt_pct(100 * loop_last_hops / n_last_hops if n_last_hops else 0),
        "3.2%",
        fmt_pct(100 * loop_asn / n_asn if n_asn else 0), "56.1%",
        fmt_pct(100 * loop_country / n_country if n_country else 0), "77.6%",
    )
    return table


def table11_loops(
    surveys: Mapping[str, LoopSurvey],
    scale: float,
) -> ComparisonTable:
    table = ComparisonTable(
        f"Table XI — peripheries with routing loop per ISP (scale 1/{scale:g})",
        ("ISP", "loops", "paper/scale", "same%", "paper", "diff%", "paper"),
    )
    total = 0
    total_same = 0
    for key, survey in surveys.items():
        profile = _profile_for(key)
        total += survey.n_unique
        total_same += sum(1 for r in survey.records if r.same_slash64)
        table.add(
            f"{profile.isp} ({profile.network[0].lower()})",
            survey.n_unique,
            f"{profile.loop_count / scale:,.1f}",
            fmt_pct(survey.same_pct),
            fmt_pct(profile.loop_same_frac * 100),
            fmt_pct(survey.diff_pct),
            fmt_pct(100 - profile.loop_same_frac * 100),
        )
    if total:
        table.add(
            "Total", total, "5,792.2", fmt_pct(100 * total_same / total),
            "4.9%", fmt_pct(100 - 100 * total_same / total), "95.1%",
        )
    return table


# ---------------------------------------------------------------------------
# Table XII — case study
# ---------------------------------------------------------------------------

def table12_case_study(results: Sequence[CaseStudyResult]) -> ComparisonTable:
    table = ComparisonTable(
        "Table XII — routing loop router testing (99 units)",
        ("Brand", "Model", "Firmware", "WAN loops", "LAN loops",
         "crossings", "immune→unreach"),
    )
    showcased = {"GT-AC5300", "COVR-3902", "WS5100", "EA8100", "R6400v2",
                 "AC23", "TL-XDR3230", "AX5", "19.07.4"}
    for result in results:
        if result.router.model not in showcased:
            continue
        table.add(
            result.router.brand,
            result.router.model,
            result.router.firmware,
            "yes" if result.wan_loops else "no",
            "yes" if result.lan_loops else "no",
            max(result.wan_crossings, result.lan_crossings),
            "yes" if result.immune_prefix_unreachable else "NO",
        )
    vulnerable = sum(1 for r in results if r.vulnerable)
    table.note(
        f"{vulnerable}/{len(results)} units vulnerable "
        "(paper: all 99 vulnerable)"
    )
    capped = [
        r.router.brand for r in results
        if r.router.loop_forward_limit is not None
    ]
    table.note(
        "loop-capped firmware (>10 forwards instead of (255-n)/2): "
        + ", ".join(sorted(set(capped)))
    )
    return table
