"""Data series behind the paper's figures (2, 3, 5, 6).

Figures are regenerated as ranked data series (the numbers a plot would be
drawn from) rather than images: each function returns both the structured
series and a text rendering with the paper's qualitative claims annotated.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence, Tuple

from repro.analysis.report import ComparisonTable
from repro.discovery.vendor_id import IdentifiedDevice
from repro.isp.profiles import SERVICE_KEYS
from repro.loop.bgp import BgpTable
from repro.net.addr import IPv6Addr
from repro.services.zgrab import ServiceObservation

#: Figure 2's expected top vendors (by service-exposed device count).
PAPER_FIG2_VENDORS = (
    "China Mobile", "Fiberhome", "Youhua Tech", "China Unicom", "ZTE",
    "StarNet", "Skyworth", "AVM GmbH", "TP-Link", "Hitron Tech",
)

#: Figure 6's expected top loop vendors and ASes.
PAPER_FIG6_VENDORS = ("China Mobile", "ZTE", "Skyworth", "Youhua Tech", "StarNet")
PAPER_FIG6_ASES = (4812, 4134, 4837, 9808, 24445)

#: Figure 5's expected top loop countries, most-affected first.
PAPER_FIG5_COUNTRIES = ("BR", "CN", "EC", "VN", "US", "MM", "IN", "GB", "DE", "CH")


def vendor_service_matrix(
    identified: Sequence[IdentifiedDevice],
    observations: Iterable[ServiceObservation],
) -> Dict[str, Dict[str, int]]:
    """vendor → service key → alive-device count (Figures 2 and 3 input)."""
    vendor_of: Dict[int, str] = {
        device.last_hop.value: device.vendor for device in identified
    }
    matrix: Dict[str, Dict[str, int]] = {}
    for obs in observations:
        if not obs.alive:
            continue
        vendor = vendor_of.get(obs.target.value)
        if vendor is None:
            continue
        row = matrix.setdefault(vendor, {k: 0 for k in SERVICE_KEYS})
        row[obs.service] = row.get(obs.service, 0) + 1
    return matrix


def figure2_top_vendors(
    matrix: Mapping[str, Mapping[str, int]],
    top: int = 10,
) -> ComparisonTable:
    """Figure 2 — top vendors by devices with exposed services."""
    totals = {
        vendor: sum(services.values()) for vendor, services in matrix.items()
    }
    ranked = sorted(totals, key=lambda v: totals[v], reverse=True)[:top]
    table = ComparisonTable(
        "Figure 2 — top periphery vendors with exposed services",
        ("Rank", "Vendor", "alive services", *[k for k in SERVICE_KEYS],
         "in paper top-10"),
    )
    for rank, vendor in enumerate(ranked, 1):
        row = matrix[vendor]
        table.add(
            rank,
            vendor,
            totals[vendor],
            *[row.get(k, 0) for k in SERVICE_KEYS],
            "yes" if vendor in PAPER_FIG2_VENDORS else "no",
        )
    overlap = len(set(ranked) & set(PAPER_FIG2_VENDORS))
    table.note(f"{overlap}/{min(top, 10)} of the measured top vendors appear "
               "in the paper's Figure 2 top-10")
    return table


def figure3_service_vendors(
    matrix: Mapping[str, Mapping[str, int]],
    top: int = 5,
) -> ComparisonTable:
    """Figure 3 — leading vendors within each service."""
    table = ComparisonTable(
        "Figure 3 — top vendors within each service",
        ("Service", "Leaders (vendor:count)"),
    )
    for service in SERVICE_KEYS:
        counts = [
            (vendor, row.get(service, 0))
            for vendor, row in matrix.items()
            if row.get(service, 0) > 0
        ]
        counts.sort(key=lambda pair: pair[1], reverse=True)
        leaders = ", ".join(f"{v}:{c}" for v, c in counts[:top]) or "-"
        table.add(service, leaders)
    table.note(
        "paper's qualitative pattern: DNS spread across China Mobile/"
        "Fiberhome/Youhua/ZTE; SSH led by Fiberhome+Youhua; TELNET led by "
        "Youhua+ZTE; HTTP/8080 led by China Mobile"
    )
    return table


def figure5_loop_asn_country(
    loop_addrs: Iterable[IPv6Addr],
    bgp: BgpTable,
    top: int = 10,
) -> Tuple[ComparisonTable, ComparisonTable]:
    """Figure 5 — top routing-loop origin ASNs and countries."""
    asn_counts: Dict[int, int] = {}
    country_counts: Dict[str, int] = {}
    for addr in loop_addrs:
        info = bgp.lookup(addr)
        if info is None:
            continue
        asn_counts[info.asn] = asn_counts.get(info.asn, 0) + 1
        country_counts[info.country] = country_counts.get(info.country, 0) + 1

    asn_table = ComparisonTable(
        "Figure 5a — top routing-loop origin ASNs",
        ("Rank", "ASN", "loop devices"),
    )
    for rank, asn in enumerate(
        sorted(asn_counts, key=lambda a: asn_counts[a], reverse=True)[:top], 1
    ):
        asn_table.add(rank, f"AS{asn}", asn_counts[asn])

    country_table = ComparisonTable(
        "Figure 5b — top routing-loop countries",
        ("Rank", "Country", "loop devices", "in paper top-10"),
    )
    ranked = sorted(
        country_counts, key=lambda c: country_counts[c], reverse=True
    )[:top]
    for rank, country in enumerate(ranked, 1):
        country_table.add(
            rank, country, country_counts[country],
            "yes" if country in PAPER_FIG5_COUNTRIES else "no",
        )
    overlap = len(set(ranked) & set(PAPER_FIG5_COUNTRIES))
    country_table.note(
        f"{overlap}/{min(top, 10)} measured top countries match the paper's"
    )
    return asn_table, country_table


def figure6_loop_vendors(
    loop_vendor_by_isp: Mapping[str, Mapping[str, int]],
    top_vendors: int = 5,
) -> ComparisonTable:
    """Figure 6 — top loop-affected vendors within the top ASes.

    ``loop_vendor_by_isp``: ISP key (or AS label) → vendor → loop-device
    count, as produced by joining loop surveys with vendor identification.
    """
    totals: Dict[str, int] = {}
    for services in loop_vendor_by_isp.values():
        for vendor, count in services.items():
            totals[vendor] = totals.get(vendor, 0) + count
    ranked = sorted(totals, key=lambda v: totals[v], reverse=True)[:top_vendors]

    table = ComparisonTable(
        "Figure 6 — top routing-loop periphery vendors within top ASes",
        ("Vendor", "total loop devices", *loop_vendor_by_isp.keys(),
         "in paper top-5"),
    )
    for vendor in ranked:
        table.add(
            vendor,
            totals[vendor],
            *[loop_vendor_by_isp[isp].get(vendor, 0)
              for isp in loop_vendor_by_isp],
            "yes" if vendor in PAPER_FIG6_VENDORS else "no",
        )
    overlap = len(set(ranked) & set(PAPER_FIG6_VENDORS))
    table.note(
        f"{overlap}/{top_vendors} measured top loop vendors match the "
        f"paper's (China Mobile, ZTE, Skyworth, Youhua Tech, StarNet)"
    )
    return table
